"""Tests for repro.pim.verify — static beat signatures."""

import pytest

from repro.errors import ExecutionError
from repro.isa import assemble
from repro.kernels import programs
from repro.pim import (beat_signature, check_stream_length, expected_beats)


class TestBeatSignature:
    def test_dense_streaming_kernels(self):
        assert expected_beats(programs.dcopy_program(5)) == 10
        assert expected_beats(programs.dswap_program(3)) == 12
        assert expected_beats(programs.daxpy_program(4)) == 12
        assert expected_beats(programs.ddot_program(6)) == 12

    def test_spmv_tile_program(self):
        prog = programs.spmv_program(outer=3, loads=2, batch=8)
        assert expected_beats(prog) == 3 * (2 + 8 + 8)

    def test_signature_order_and_direction(self):
        sig = beat_signature(programs.daxpy_program(1))
        assert [s.opcode for s in sig] == ["SDV", "DVDV", "DMOV"]
        assert [s.write for s in sig] == [False, False, True]

    def test_scatter_rmw_is_a_write(self):
        sig = beat_signature(programs.spmv_program(1, 1, 4))
        spvdv = [s for s in sig if s.opcode == "SPVDV"]
        assert spvdv and all(s.write for s in spvdv)

    def test_exit_truncates(self):
        prog = assemble("""
            DMOV DRF0, BANK
            EXIT
            DMOV BANK, DRF0
        """)
        assert expected_beats(prog) == 1

    def test_cexit_assumed_not_taken(self):
        prog = assemble("""
        loop:
            SPMOV SPVQ0, BANK
            CEXIT SPVQ0
            JUMP  loop count=4
            EXIT
        """)
        assert expected_beats(prog) == 4

    def test_nested_loops_multiply(self):
        prog = assemble("""
        outer:
        inner:
            DMOV DRF0, BANK
            JUMP inner order=0 count=3
            DMOV BANK, DRF0
            JUMP outer order=1 count=5
            EXIT
        """)
        assert expected_beats(prog) == 5 * (3 + 1)

    def test_register_only_program_has_no_beats(self):
        prog = assemble("""
            DVDV DRF0, DRF1, DRF2
            REDUCE SRF, DRF0
            EXIT
        """)
        assert expected_beats(prog) == 0

    def test_slot_numbers_reported(self):
        sig = beat_signature(programs.dcopy_program(1))
        assert sig[0].slot == 0 and sig[1].slot == 1

    def test_str_rendering(self):
        sig = beat_signature(programs.dcopy_program(1))
        assert str(sig[0]) == "DMOV@0:RD"
        assert str(sig[1]) == "DMOV@1:WR"


class TestStreamCheck:
    def test_sufficient_stream_passes(self):
        prog = programs.dcopy_program(4)
        check_stream_length(prog, provided=8)
        check_stream_length(prog, provided=100)  # longer is fine

    def test_short_stream_rejected(self):
        prog = programs.dcopy_program(4)
        with pytest.raises(ExecutionError, match="supplies 3"):
            check_stream_length(prog, provided=3)

    def test_signatures_match_drivers(self):
        """Cross-check: the SpVSpV driver's per-pass stream matches its
        program's demand."""
        from repro.kernels.spvspv import spvspv_program
        prog = spvspv_program(outer=5, batch=4, binary="add",
                              set_mode="union", identity="zero")
        # per outer: 2 loads + 2 stores = 4 transactions
        assert expected_beats(prog) == 5 * 4
