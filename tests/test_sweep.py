"""Tests for repro.sweep — parallel sweeps with artifact caching."""

import pickle

import numpy as np
import pytest

from repro import PSyncPIM
from repro.analysis import SweepResult
from repro.config import default_system
from repro.core import plan_spmv, run_spmv, time_spmv
from repro.errors import ExecutionError
from repro.formats import generate
from repro.sweep import (CACHE_DIR_ENV, LEGACY_SCALE_ENV, SCALE_ENV,
                         WORKERS_ENV, ArtifactCache, SweepJob,
                         default_cache_dir, execute_job, matrix_digest,
                         resolve_bench_scale, resolve_workers, run_sweep,
                         stable_digest, suite_jobs)

MATRIX = "facebook"
SCALE = 0.05


def spmv_job(matrix=MATRIX, **kwargs):
    kwargs.setdefault("scale", SCALE)
    return SweepJob(kernel="spmv", matrix=matrix, **kwargs)


# ----------------------------------------------------------------------
# stable digests
# ----------------------------------------------------------------------
class TestStableDigest:
    def test_deterministic_across_calls(self):
        cfg = default_system()
        assert stable_digest(cfg, 1.5, "x") == stable_digest(cfg, 1.5, "x")

    def test_distinguishes_values_and_types(self):
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest("ab", "c") != stable_digest("a", "bc")
        assert stable_digest(None) != stable_digest(0)

    def test_matrix_digest_tracks_content(self):
        a = generate(MATRIX, scale=SCALE)
        b = generate(MATRIX, scale=SCALE)
        assert matrix_digest(a) == matrix_digest(b)
        changed = a.copy()
        changed.vals[0] += 1.0
        assert matrix_digest(changed) != matrix_digest(a)

    def test_array_digest_covers_dtype_and_shape(self):
        data = np.arange(6, dtype=np.int64)
        assert stable_digest(data) != stable_digest(data.astype(np.float64))
        assert stable_digest(data) != stable_digest(data.reshape(2, 3))

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            stable_digest(object())


class TestCacheVersion:
    """The strategy PR bumped the artifact layout version (v5 -> v6)."""

    def test_version_is_six(self):
        from repro.sweep.cache import CACHE_VERSION
        assert CACHE_VERSION == 6

    def test_version_participates_in_every_digest(self, monkeypatch):
        # Pre-v6 artifacts (keyed under CACHE_VERSION=5, before sweep keys
        # carried a strategy component) must never be served: the version
        # is folded into stable_digest, so bumping it rotates every key.
        from repro.sweep import cache as cache_mod
        current = cache_mod.stable_digest("spmv-plan", MATRIX)
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", 5)
        previous = cache_mod.stable_digest("spmv-plan", MATRIX)
        assert current != previous

    def test_stale_version_artifact_is_not_served(self, tmp_path,
                                                  monkeypatch):
        from repro.sweep import cache as cache_mod
        cache = ArtifactCache(tmp_path)
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", 5)
        old_key = cache.key("kernel", MATRIX)
        cache.store("plan", old_key, {"stale": True})
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", 6)
        new_key = cache.key("kernel", MATRIX)
        assert new_key != old_key
        computed = cache.get_or_compute("plan", new_key,
                                        lambda: {"stale": False})
        assert computed == {"stale": False}
        assert cache.misses["plan"] == 1


# ----------------------------------------------------------------------
# the artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []
        key = cache.key("k")
        for _ in range(2):
            value = cache.get_or_compute("plan", key,
                                         lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1
        assert cache.hits == {"plan": 1}
        assert cache.misses == {"plan": 1}
        assert cache.counters() == {"plan": (1, 1)}

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path, enabled=False)
        key = cache.key("k")
        assert cache.get_or_compute("plan", key, lambda: 1) == 1
        assert cache.get_or_compute("plan", key, lambda: 2) == 2
        assert cache.hit_count == 0 and cache.miss_count == 2
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("k")
        cache.get_or_compute("plan", key, lambda: 7)
        cache.path("plan", key).write_bytes(b"not a pickle")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get_or_compute("plan", key, lambda: 7) == 7
        assert fresh.miss_count == 1
        # and the entry healed: a third cache now hits
        assert ArtifactCache(tmp_path).load("plan", key) == 7

    def test_fuzz_results_ride_the_cache(self, tmp_path):
        job = SweepJob(kernel="fuzz", matrix="isa-programs", seed=0)
        first = execute_job(job, cache_dir=tmp_path)
        assert first.error == ""
        assert first.extras["seed_count"] > 0
        again = execute_job(job, cache_dir=tmp_path)
        assert again.cache_hits == 1 and again.cache_misses == 0
        assert again.extras == first.extras

    def test_env_var_resolves_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ArtifactCache().root == tmp_path / "custom"

    def test_clear_removes_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("plan", cache.key("a"), 1)
        cache.store("trace", cache.key("b"), 2)
        assert cache.clear() == 2
        assert not cache.path("plan", cache.key("a")).exists()
        assert not cache.path("trace", cache.key("b")).exists()


# ----------------------------------------------------------------------
# cache integrity (content-hash verification on load)
# ----------------------------------------------------------------------
class TestCacheIntegrity:
    """A cached artifact must load byte-identical or not at all."""

    def _stored(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        value = {"trace": np.arange(64, dtype=np.float64),
                 "cycles": 12345}
        key = cache.key("integrity")
        cache.store("trace", key, value)
        return cache, key, value, cache.path("trace", key)

    def test_random_bit_flips_always_detected(self, tmp_path):
        """Property: any single bit flip anywhere in the file is a miss
        that recomputation heals — never a silently corrupt artifact."""
        cache, key, value, path = self._stored(tmp_path)
        pristine = path.read_bytes()
        rng = np.random.default_rng(2024)
        for _ in range(40):
            offset = int(rng.integers(len(pristine)))
            bit = 1 << int(rng.integers(8))
            tampered = bytearray(pristine)
            tampered[offset] ^= bit
            path.write_bytes(bytes(tampered))
            fresh = ArtifactCache(tmp_path)
            loaded = fresh.get_or_compute("trace", key, lambda: value)
            assert fresh.miss_count == 1, \
                f"bit flip at byte {offset} went undetected"
            assert np.array_equal(loaded["trace"], value["trace"])
        # the last recompute healed the file
        assert ArtifactCache(tmp_path).load("trace", key)["cycles"] == 12345

    def test_truncation_detected(self, tmp_path):
        cache, key, value, path = self._stored(tmp_path)
        data = path.read_bytes()
        for cut in (0, 4, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            fresh = ArtifactCache(tmp_path)
            assert fresh.get_or_compute("trace", key, lambda: "fresh") \
                == "fresh", f"truncation to {cut} bytes went undetected"

    def test_headerless_legacy_file_is_a_miss(self, tmp_path):
        cache, key, value, path = self._stored(tmp_path)
        # a pre-v4 file: bare pickle, no magic/hash header
        path.write_bytes(pickle.dumps(value))
        fresh = ArtifactCache(tmp_path)
        assert fresh.get_or_compute("trace", key, lambda: 99) == 99
        assert fresh.miss_count == 1

    def test_intact_roundtrip_preserves_arrays_bitwise(self, tmp_path):
        cache, key, value, path = self._stored(tmp_path)
        loaded = ArtifactCache(tmp_path).load("trace", key)
        assert loaded["trace"].tobytes() == value["trace"].tobytes()


# ----------------------------------------------------------------------
# environment knobs (the CI escape hatches)
# ----------------------------------------------------------------------
class TestEnvironmentKnobs:
    def test_scale_default(self):
        assert resolve_bench_scale(environ={}) == pytest.approx(0.05)

    def test_psyncpim_scale_overrides(self):
        env = {SCALE_ENV: "0.02", LEGACY_SCALE_ENV: "0.5"}
        assert resolve_bench_scale(environ=env) == pytest.approx(0.02)

    def test_legacy_scale_still_honoured(self):
        env = {LEGACY_SCALE_ENV: "0.25"}
        assert resolve_bench_scale(environ=env) == pytest.approx(0.25)

    def test_scale_override_via_process_env(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV, "0.125")
        assert resolve_bench_scale() == pytest.approx(0.125)

    def test_bad_scale_raises(self):
        with pytest.raises(ExecutionError):
            resolve_bench_scale(environ={SCALE_ENV: "tiny"})
        with pytest.raises(ExecutionError):
            resolve_bench_scale(environ={SCALE_ENV: "-1"})

    def test_workers_env_and_floor(self):
        assert resolve_workers(environ={WORKERS_ENV: "7"}) == 7
        assert resolve_workers(environ={WORKERS_ENV: "0"}) == 1
        assert resolve_workers(environ={}, default=3) == 3
        assert resolve_workers(environ={}) >= 1
        with pytest.raises(ExecutionError):
            resolve_workers(environ={WORKERS_ENV: "many"})


# ----------------------------------------------------------------------
# job execution
# ----------------------------------------------------------------------
class TestExecuteJob:
    def test_spmv_matches_direct_pipeline(self, tmp_path):
        record = execute_job(spmv_job(), cache_dir=tmp_path)
        matrix = generate(MATRIX, scale=SCALE)
        cfg = default_system()
        _, _, execution = plan_spmv(matrix, cfg)
        expected = time_spmv(execution, cfg)
        assert record.report == expected
        assert record.seconds == expected.seconds
        assert record.extras["nnz"] == matrix.nnz
        assert record.extras["rows"] == matrix.shape[0]

    def test_pb_mode_costs_more(self, tmp_path):
        ab = execute_job(spmv_job(), cache_dir=tmp_path)
        pb = execute_job(spmv_job(mode="pb"), cache_dir=tmp_path)
        assert pb.report.seconds > ab.report.seconds

    def test_sptrsv_solves_and_prices(self, tmp_path):
        record = execute_job(SweepJob(kernel="sptrsv", matrix="poisson3Da",
                                      scale=SCALE), cache_dir=tmp_path)
        assert record.report.seconds > 0
        assert record.extras["residual"] < 1e-8
        assert record.extras["levels"] >= 1
        assert record.label == "sptrsv:poisson3Da/lower"

    def test_suite_kernel_materialises_matrix(self, tmp_path):
        record = execute_job(SweepJob(kernel="suite", matrix=MATRIX,
                                      scale=SCALE), cache_dir=tmp_path)
        assert record.report is None
        assert record.extras["matrix"] == generate(MATRIX, scale=SCALE)
        assert record.extras["kind"]

    def test_unknown_kernel_raises(self, tmp_path):
        with pytest.raises(ExecutionError):
            execute_job(SweepJob(kernel="spgemm"), cache_dir=tmp_path)

    def test_energy_rides_on_cached_trace(self, tmp_path):
        plain = execute_job(spmv_job(), cache_dir=tmp_path)
        assert plain.report.energy is None
        energetic = execute_job(spmv_job(with_energy=True),
                                cache_dir=tmp_path)
        assert energetic.report.energy is not None
        # same schedule, differently priced: the trace stage was reused
        assert energetic.report.cycles == plain.report.cycles


# ----------------------------------------------------------------------
# sweeps: caching semantics and aggregation
# ----------------------------------------------------------------------
class TestRunSweep:
    def test_cached_rerun_hits_everywhere_and_is_bitwise_identical(
            self, tmp_path):
        jobs = [spmv_job(), spmv_job(num_cubes=3), spmv_job(mode="pb")]
        cold = run_sweep(jobs, workers=1, cache_dir=tmp_path)
        warm = run_sweep(jobs, workers=1, cache_dir=tmp_path)
        uncached = run_sweep(jobs, workers=1, cache_dir=tmp_path,
                             use_cache=False)
        # first job is fully cold; the pb job then reuses the shared plan
        assert cold.records[0].cache_hits == 0
        assert cold.cache_misses > 0 and not cold.all_cached
        assert warm.all_cached and warm.cache_misses == 0
        assert not uncached.cache_enabled
        for label in cold.labels:
            # PerfReport dataclasses compare field-by-field, energy and
            # command counts included: cached == recomputed, bit for bit.
            assert warm.report(label) == cold.report(label)
            assert uncached.report(label) == cold.report(label)

    def test_order_and_labels_preserved(self, tmp_path):
        jobs = [spmv_job(), spmv_job(matrix="wiki-Vote")]
        result = run_sweep(jobs, workers=1, cache_dir=tmp_path)
        assert result.labels == [f"spmv:{MATRIX}", "spmv:wiki-Vote"]
        assert [record.matrix for record in result] == [MATRIX, "wiki-Vote"]
        with pytest.raises(KeyError):
            result.record("spmv:nonesuch")

    def test_process_pool_matches_serial(self, tmp_path):
        jobs = [spmv_job(), spmv_job(matrix="wiki-Vote"),
                spmv_job(matrix="ca-CondMat")]
        serial = run_sweep(jobs, workers=1, cache_dir=tmp_path / "serial")
        pooled = run_sweep(jobs, workers=2, cache_dir=tmp_path / "pooled")
        assert pooled.workers == 2
        for label in serial.labels:
            assert pooled.report(label) == serial.report(label)

    def test_aggregation_metrics(self, tmp_path):
        result = run_sweep([spmv_job(), spmv_job(matrix="wiki-Vote")],
                           workers=1, cache_dir=tmp_path)
        assert len(result) == 2
        assert result.busy_seconds > 0
        assert result.wall_seconds >= result.busy_seconds * 0.5
        assert 0.0 < result.worker_utilisation <= 1.0
        assert 0.0 <= result.hit_rate <= 1.0
        text = result.summary_table()
        assert f"spmv:{MATRIX}" in text
        assert "utilisation" in text and "hit rate" in text

    def test_records_pickle_roundtrip(self, tmp_path):
        record = execute_job(spmv_job(), cache_dir=tmp_path)
        clone = pickle.loads(pickle.dumps(record))
        assert clone.report == record.report
        assert clone.label == record.label

    def test_suite_jobs_expands_sptrsv_factors(self):
        jobs = suite_jobs(kernel="sptrsv", matrices=["poisson3Da"],
                          scale=SCALE)
        assert [job.lower for job in jobs] == [True, False]
        jobs = suite_jobs(kernel="spmv", matrices=["cant"], scale=SCALE)
        assert len(jobs) == 1
        assert suite_jobs(kernel="suite", scale=SCALE)[0].kernel == "suite"
        with pytest.raises(ExecutionError):
            suite_jobs(kernel="bogus")


# ----------------------------------------------------------------------
# runtime and CLI surfaces
# ----------------------------------------------------------------------
class TestRuntimeSweep:
    def test_psyncpim_sweep_inherits_runtime_settings(self, tmp_path):
        pim = PSyncPIM(num_cubes=3, precision="fp32")
        result = pim.sweep([MATRIX], scale=SCALE, workers=1,
                           cache_dir=tmp_path)
        assert isinstance(result, SweepResult)
        record = result.records[0]
        assert record.job.num_cubes == 3
        assert record.job.precision == "fp32"
        # 3 cubes triple the banks: same matrix spreads further
        solo = run_spmv(generate(MATRIX, scale=SCALE),
                        np.ones(generate(MATRIX, scale=SCALE).shape[1]),
                        default_system(3), precision="fp32")
        assert record.extras["rounds"] == solo.execution.num_rounds

    def test_prebuilt_jobs_pass_through(self, tmp_path):
        job = SweepJob(kernel="suite", matrix=MATRIX, scale=SCALE)
        result = PSyncPIM().sweep([job], workers=1, cache_dir=tmp_path)
        assert result.labels == [f"suite:{MATRIX}"]


class TestSweepCli:
    def run_cli(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        out = capsys.readouterr().out
        return code, out

    def test_sweep_verb_prints_summary(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys, "sweep", "--matrices", f"{MATRIX},wiki-Vote",
            "--scale", str(SCALE), "--workers", "1",
            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "2 spmv jobs over 2 matrices" in out
        assert f"spmv:{MATRIX}" in out
        assert "misses" in out

    def test_second_sweep_reports_cache_hits(self, capsys, tmp_path):
        args = ("sweep", "--matrices", MATRIX, "--scale", str(SCALE),
                "--workers", "1", "--cache-dir", str(tmp_path))
        self.run_cli(capsys, *args)
        code, out = self.run_cli(capsys, *args)
        assert code == 0
        assert "hit rate 100%" in out

    def test_no_cache_flag(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys, "sweep", "--matrices", MATRIX, "--scale", str(SCALE),
            "--workers", "1", "--cache-dir", str(tmp_path), "--no-cache")
        assert code == 0
        assert "disabled (--no-cache)" in out
        assert not any(tmp_path.iterdir())

    def test_sptrsv_sweep_covers_both_factors(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys, "sweep", "--kernel", "sptrsv", "--matrices",
            "poisson3Da", "--scale", str(SCALE), "--workers", "1",
            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "sptrsv:poisson3Da/lower" in out
        assert "sptrsv:poisson3Da/upper" in out

    def test_batch_flag_reaches_summary(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys, "sweep", "--matrices", MATRIX, "--scale", str(SCALE),
            "--workers", "1", "--cache-dir", str(tmp_path),
            "--batch", "jobs")
        assert code == 0
        assert "batch: jobs" in out
        assert "jobs/s" in out


# ----------------------------------------------------------------------
# batched execution: jobs x banks rounds must be invisible in the output
# ----------------------------------------------------------------------
def _listing(root):
    import os
    files = []
    for base, _, names in os.walk(root):
        for name in names:
            path = os.path.join(base, name)
            files.append(os.path.relpath(path, root))
    return sorted(files)


def _assert_results_match(off, batched):
    assert batched.labels == off.labels
    for a, b in zip(off.records, batched.records):
        assert b.error == a.error
        assert b.report == a.report
        assert b.extras == a.extras
        assert (b.cache_hits, b.cache_misses) \
            == (a.cache_hits, a.cache_misses)


class TestBatchSweep:
    def test_spmv_batch_matches_per_job(self, tmp_path):
        jobs = [spmv_job(), spmv_job(matrix="wiki-Vote"),
                spmv_job(num_cubes=3)]
        off = run_sweep(jobs, workers=1, cache_dir=tmp_path / "off",
                        batch="off")
        batched = run_sweep(jobs, workers=1, cache_dir=tmp_path / "jobs",
                            batch="jobs")
        assert off.batch == "off" and batched.batch == "jobs"
        _assert_results_match(off, batched)
        # identical pipelines populate identical cache entries
        assert _listing(tmp_path / "jobs") == _listing(tmp_path / "off")

    def test_batch_mode_with_worker_pool(self, tmp_path):
        jobs = [spmv_job(), spmv_job(matrix="wiki-Vote"),
                spmv_job(matrix="ca-CondMat")]
        off = run_sweep(jobs, workers=1, cache_dir=tmp_path / "off")
        batched = run_sweep(jobs, workers=2, cache_dir=tmp_path / "jobs",
                            batch="jobs")
        _assert_results_match(off, batched)

    def test_fuzz_kernel_batch_parity(self, tmp_path):
        jobs = suite_jobs(kernel="fuzz", scale=SCALE)[:2]
        off = run_sweep(jobs, workers=1, cache_dir=tmp_path / "off",
                        batch="off")
        batched = run_sweep(jobs, workers=1, cache_dir=tmp_path / "jobs",
                            batch="jobs")
        _assert_results_match(off, batched)
        assert _listing(tmp_path / "jobs") == _listing(tmp_path / "off")
        assert all(record.extras["divergences"] == 0 for record in batched)

    def test_env_knob_selects_batch_mode(self, tmp_path, monkeypatch):
        from repro.config import BATCH_ENV
        monkeypatch.setenv(BATCH_ENV, "jobs")
        result = run_sweep([spmv_job()], workers=1, cache_dir=tmp_path)
        assert result.batch == "jobs"
        monkeypatch.setenv(BATCH_ENV, "nonsense")
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown batch mode"):
            run_sweep([spmv_job()], workers=1, cache_dir=tmp_path)

    def test_execute_batch_groups_one_engine_round(self, tmp_path):
        from repro.sweep import execute_batch
        jobs = [spmv_job(), spmv_job(matrix="wiki-Vote")]
        records = execute_batch(jobs, cache_dir=tmp_path)
        assert [record.label for record in records] \
            == [f"spmv:{MATRIX}", "spmv:wiki-Vote"]
        solo = execute_job(spmv_job(), cache_dir=tmp_path / "solo")
        assert records[0].report == solo.report
