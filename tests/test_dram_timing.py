"""Tests for repro.dram — timing parameters, banks, channel scheduling."""

import dataclasses

import pytest

from repro.dram import (BANKS_PER_CHANNEL, Command, CommandType,
                        ChannelScheduler, TimingParams)
from repro.errors import ConfigError, TimingError


@pytest.fixture
def timing():
    return TimingParams()


@pytest.fixture
def sched(timing):
    return ChannelScheduler(timing, enable_refresh=False)


class TestTimingParams:
    def test_defaults_validate(self, timing):
        timing.validate()

    def test_trc_is_ras_plus_rp(self, timing):
        assert timing.trc == timing.tras + timing.trp

    def test_turnaround_windows_positive(self, timing):
        assert timing.read_to_write > 0
        assert timing.write_to_read > 0
        assert timing.write_recovery > timing.twr

    def test_ccd_ordering_enforced(self):
        bad = dataclasses.replace(TimingParams(), tccd_l=1, tccd_s=2)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_rrd_ordering_enforced(self):
        bad = dataclasses.replace(TimingParams(), trrd_l=2, trrd_s=4)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_refresh_window_sanity(self):
        bad = dataclasses.replace(TimingParams(), trfc=5000)
        with pytest.raises(ConfigError):
            bad.validate()


class TestCommandTypes:
    def test_row_column_partition(self):
        for kind in CommandType:
            if kind in (CommandType.MODE,):
                continue
            assert kind.is_row != kind.is_column

    def test_all_bank_markers(self):
        assert CommandType.ACT_AB.is_all_bank
        assert CommandType.RD_AB.is_all_bank
        assert not CommandType.ACT.is_all_bank
        assert CommandType.REF.is_all_bank

    def test_read_write_markers(self):
        assert CommandType.RD.is_read and CommandType.RD_AB.is_read
        assert CommandType.WR.is_write and CommandType.WR_AB.is_write
        assert not CommandType.ACT.is_read

    def test_command_validation(self):
        with pytest.raises(ValueError):
            Command(CommandType.ACT, bank=-1)
        with pytest.raises(ValueError):
            Command(CommandType.ACT, min_gap=-2)


class TestSingleBankTiming:
    def test_act_to_read_is_trcd(self, sched, timing):
        t_act = sched.issue(Command(CommandType.ACT, bank=0, row=3))
        t_rd = sched.issue(Command(CommandType.RD, bank=0, row=3))
        assert t_rd - t_act == timing.trcd

    def test_act_to_pre_is_tras(self, sched, timing):
        t_act = sched.issue(Command(CommandType.ACT, bank=0, row=3))
        t_pre = sched.issue(Command(CommandType.PRE, bank=0))
        assert t_pre - t_act == timing.tras

    def test_pre_to_act_is_trp(self, sched, timing):
        sched.issue(Command(CommandType.ACT, bank=0, row=3))
        t_pre = sched.issue(Command(CommandType.PRE, bank=0))
        t_act = sched.issue(Command(CommandType.ACT, bank=0, row=4))
        assert t_act - t_pre >= timing.trp

    def test_read_to_same_group_read_is_ccdl(self, sched, timing):
        sched.issue(Command(CommandType.ACT, bank=0, row=1))
        t1 = sched.issue(Command(CommandType.RD, bank=0, row=1))
        t2 = sched.issue(Command(CommandType.RD, bank=0, row=1, col=1))
        assert t2 - t1 == timing.tccd_l

    def test_cross_group_read_is_ccds(self, sched, timing):
        sched.issue(Command(CommandType.ACT, bank=0, row=1))
        sched.issue(Command(CommandType.ACT, bank=4, row=1))  # group 1
        sched.issue(Command(CommandType.RD, bank=0, row=1))
        t2 = sched.issue(Command(CommandType.RD, bank=4, row=1))
        # Once both rows are warm, alternating groups pays only tCCD_S.
        t3 = sched.issue(Command(CommandType.RD, bank=0, row=1, col=1))
        assert t3 - t2 == timing.tccd_s

    def test_write_read_turnaround(self, sched, timing):
        sched.issue(Command(CommandType.ACT, bank=0, row=1))
        t_wr = sched.issue(Command(CommandType.WR, bank=0, row=1))
        t_rd = sched.issue(Command(CommandType.RD, bank=0, row=1, col=1))
        assert t_rd - t_wr >= timing.write_to_read

    def test_write_recovery_before_pre(self, sched, timing):
        sched.issue(Command(CommandType.ACT, bank=0, row=1))
        t_wr = sched.issue(Command(CommandType.WR, bank=0, row=1))
        t_pre = sched.issue(Command(CommandType.PRE, bank=0))
        assert t_pre - t_wr >= timing.write_recovery

    def test_same_bank_act_act_is_trc(self, sched, timing):
        t1 = sched.issue(Command(CommandType.ACT, bank=0, row=1))
        sched.issue(Command(CommandType.PRE, bank=0))
        t2 = sched.issue(Command(CommandType.ACT, bank=0, row=2))
        assert t2 - t1 >= timing.trc

    def test_faw_limits_burst_of_activates(self, sched, timing):
        times = [sched.issue(Command(CommandType.ACT, bank=b, row=0))
                 for b in range(5)]
        assert times[4] - times[0] >= timing.tfaw

    def test_rrd_spacing(self, sched, timing):
        t0 = sched.issue(Command(CommandType.ACT, bank=0, row=0))
        t1 = sched.issue(Command(CommandType.ACT, bank=1, row=0))  # same grp
        assert t1 - t0 >= timing.trrd_l
        t2 = sched.issue(Command(CommandType.ACT, bank=4, row=0))  # cross
        assert t2 - t1 >= timing.trrd_s


class TestProtocolErrors:
    def test_read_without_open_row(self, sched):
        with pytest.raises(TimingError, match="precharged"):
            sched.issue(Command(CommandType.RD, bank=0, row=1))

    def test_read_wrong_row(self, sched):
        sched.issue(Command(CommandType.ACT, bank=0, row=1))
        with pytest.raises(TimingError, match="row"):
            sched.issue(Command(CommandType.RD, bank=0, row=2))

    def test_double_activate(self, sched):
        sched.issue(Command(CommandType.ACT, bank=0, row=1))
        with pytest.raises(TimingError, match="open row"):
            sched.issue(Command(CommandType.ACT, bank=0, row=2))

    def test_pre_closed_bank(self, sched):
        with pytest.raises(TimingError, match="precharged"):
            sched.issue(Command(CommandType.PRE, bank=0))

    def test_pre_ab_needs_open_banks(self, sched):
        with pytest.raises(TimingError, match="no open banks"):
            sched.issue(Command(CommandType.PRE_AB))

    def test_bank_out_of_range(self, sched):
        with pytest.raises(TimingError, match="bank"):
            sched.issue(Command(CommandType.ACT, bank=16, row=0))


class TestAllBankCommands:
    def test_act_ab_opens_every_bank(self, sched):
        sched.issue(Command(CommandType.ACT_AB, row=7))
        assert all(b.open_row == 7 for b in sched.banks)

    def test_rd_ab_waits_trcd(self, sched, timing):
        t_act = sched.issue(Command(CommandType.ACT_AB, row=7))
        t_rd = sched.issue(Command(CommandType.RD_AB, row=7))
        assert t_rd - t_act == timing.trcd

    def test_consecutive_rd_ab_spaced_ccdl(self, sched, timing):
        sched.issue(Command(CommandType.ACT_AB, row=7))
        t1 = sched.issue(Command(CommandType.RD_AB, row=7))
        t2 = sched.issue(Command(CommandType.RD_AB, row=7, col=1))
        assert t2 - t1 == timing.tccd_l

    def test_pre_ab_closes_every_bank(self, sched):
        sched.issue(Command(CommandType.ACT_AB, row=7))
        sched.issue(Command(CommandType.PRE_AB))
        assert all(not b.is_open for b in sched.banks)

    def test_all_bank_row_stream_beats_per_bank(self, timing):
        """Streaming one row in AB mode is far cheaper than per-bank."""
        ab = ChannelScheduler(timing, enable_refresh=False)
        ab.issue(Command(CommandType.ACT_AB, row=0))
        for c in range(8):
            ab.issue(Command(CommandType.RD_AB, row=0, col=c))
        ab.issue(Command(CommandType.PRE_AB))
        pb = ChannelScheduler(timing, enable_refresh=False)
        for b in range(BANKS_PER_CHANNEL):
            pb.issue(Command(CommandType.ACT, bank=b, row=0))
            for c in range(8):
                pb.issue(Command(CommandType.RD, bank=b, row=0, col=c))
            pb.issue(Command(CommandType.PRE, bank=b))
        assert pb.now > 3 * ab.now

    def test_min_gap_enforced(self, sched):
        sched.issue(Command(CommandType.ACT_AB, row=0))
        t1 = sched.issue(Command(CommandType.RD_AB, row=0))
        t2 = sched.issue(Command(CommandType.RD_AB, row=0, col=1,
                                 min_gap=40))
        assert t2 - t1 >= 40


class TestModeAndRefresh:
    def test_mode_switch_blocks_buses(self, sched, timing):
        t_mode = sched.issue(Command(CommandType.MODE))
        t_act = sched.issue(Command(CommandType.ACT_AB, row=0))
        assert t_act - t_mode >= timing.mode_switch_cycles

    def test_refresh_requires_precharged(self, timing):
        sched = ChannelScheduler(timing, enable_refresh=False)
        sched.issue(Command(CommandType.ACT, bank=0, row=0))
        with pytest.raises(TimingError, match="precharge"):
            sched.issue(Command(CommandType.REF))

    def test_auto_refresh_inserted(self, timing):
        sched = ChannelScheduler(timing, enable_refresh=True)
        # Idle past several tREFI windows, then issue a command.
        sched.issue(Command(CommandType.ACT, bank=0, row=0),
                    earliest=4 * timing.trefi)
        assert sched.refreshes_performed >= 3

    def test_refresh_blocks_banks_for_trfc(self, timing):
        sched = ChannelScheduler(timing, enable_refresh=False)
        t_ref = sched.issue(Command(CommandType.REF))
        t_act = sched.issue(Command(CommandType.ACT, bank=0, row=0))
        assert t_act - t_ref >= timing.trfc
