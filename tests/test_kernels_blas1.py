"""Tests for repro.kernels — BLAS-1, sparse BLAS-1 and dense L2 drivers.

Every kernel is validated against its numpy golden reference, across bank
counts, precisions and multi-pass lengths. Hypothesis drives the dense
kernels over arbitrary operands.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.formats import SparseVector
from repro.kernels import (daxpy, dcopy, ddot, dgemv, dnrm2, dscal, dswap,
                           dtrsv, elementwise, gather, passes, scatter,
                           spaxpy, spdot, split_even, join_even)

RNG = np.random.default_rng(123)

finite = st.floats(-1e3, 1e3, allow_nan=False)
vectors = st.lists(finite, min_size=1, max_size=200).map(np.array)


class TestHelpers:
    def test_split_join_round_trip(self):
        x = RNG.random(133)
        chunks = split_even(x, 8, 4)
        assert len({c.size for c in chunks}) == 1
        assert chunks[0].size % 4 == 0
        np.testing.assert_allclose(join_even(chunks, x.size), x)

    def test_passes_respects_limit(self):
        steps = list(passes(2500))
        assert sum(steps) == 2500
        assert max(steps) <= 1023

    def test_passes_empty(self):
        assert list(passes(0)) == []
        with pytest.raises(ExecutionError):
            list(passes(-1))


class TestDenseKernels:
    @given(vectors)
    @settings(max_examples=20, deadline=None)
    def test_dcopy_property(self, x):
        np.testing.assert_allclose(dcopy(x, num_banks=4).result, x)

    @given(vectors, finite)
    @settings(max_examples=20, deadline=None)
    def test_dscal_property(self, x, alpha):
        np.testing.assert_allclose(dscal(alpha, x, num_banks=4).result,
                                   alpha * x, rtol=1e-12, atol=1e-9)

    def test_dswap(self):
        x, y = RNG.random(77), RNG.random(77)
        nx, ny = dswap(x, y, num_banks=8).result
        np.testing.assert_allclose(nx, y)
        np.testing.assert_allclose(ny, x)

    def test_daxpy(self):
        x, y = RNG.random(200), RNG.random(200)
        np.testing.assert_allclose(daxpy(2.5, x, y, num_banks=8).result,
                                   2.5 * x + y)

    def test_daxpy_length_mismatch(self):
        with pytest.raises(ExecutionError):
            daxpy(1.0, np.ones(3), np.ones(4))

    def test_ddot(self):
        x, y = RNG.random(301), RNG.random(301)
        assert ddot(x, y, num_banks=8).result == pytest.approx(x @ y)

    def test_ddot_multipass(self):
        # > 1023 groups per bank forces several kernel passes
        x = RNG.random(4 * 1100 * 2)
        run = ddot(x, x, num_banks=2)
        assert run.result == pytest.approx(x @ x)
        assert run.stats.launches >= 2

    def test_dnrm2(self):
        x = RNG.standard_normal(150)
        assert dnrm2(x, num_banks=4).result == pytest.approx(
            np.linalg.norm(x))

    @pytest.mark.parametrize("op,ref", [("add", np.add),
                                        ("sub", np.subtract),
                                        ("mul", np.multiply),
                                        ("min", np.minimum),
                                        ("max", np.maximum)])
    def test_elementwise_ops(self, op, ref):
        x, y = RNG.random(90), RNG.random(90)
        np.testing.assert_allclose(
            elementwise(x, y, op, num_banks=4).result, ref(x, y))

    @pytest.mark.parametrize("precision", ["fp64", "fp32", "int8"])
    def test_precisions_share_semantics(self, precision):
        x, y = np.round(RNG.random(64) * 10), np.round(RNG.random(64) * 10)
        assert ddot(x, y, num_banks=4,
                    precision=precision).result == pytest.approx(x @ y)

    def test_single_bank(self):
        x = RNG.random(40)
        np.testing.assert_allclose(dcopy(x, num_banks=1).result, x)


class TestSparseKernels:
    def _sparse(self, n=400, density=0.1, seed=5):
        rng = np.random.default_rng(seed)
        dense = rng.standard_normal(n) * (rng.random(n) < density)
        return SparseVector.from_dense(dense)

    def test_spaxpy(self):
        sv = self._sparse()
        y = RNG.random(400)
        np.testing.assert_allclose(
            spaxpy(3.0, sv, y, num_banks=8).result, sv.axpy_into(3.0, y))

    def test_spaxpy_empty_vector(self):
        sv = SparseVector.empty(100)
        y = RNG.random(100)
        np.testing.assert_allclose(spaxpy(2.0, sv, y, num_banks=4).result, y)

    def test_spdot(self):
        sv = self._sparse(seed=6)
        y = RNG.random(400)
        assert spdot(sv, y, num_banks=8).result == pytest.approx(
            sv.dot_dense(y))

    def test_spdot_dense_vector(self):
        # fully dense sparse vector still works (union of all indices)
        sv = SparseVector.from_dense(RNG.random(64) + 0.1)
        y = RNG.random(64)
        assert spdot(sv, y, num_banks=4).result == pytest.approx(
            sv.dot_dense(y))

    def test_gather_matches_from_dense(self):
        dense = RNG.standard_normal(300) * (RNG.random(300) < 0.2)
        assert gather(dense, num_banks=8).result == \
            SparseVector.from_dense(dense)

    def test_gather_all_zero(self):
        result = gather(np.zeros(50), num_banks=4).result
        assert result.nnz == 0

    def test_scatter_into_base(self):
        sv = self._sparse(seed=7)
        base = RNG.random(400)
        expect = base.copy()
        expect[sv.indices] = sv.values
        np.testing.assert_allclose(
            scatter(sv, base=base, num_banks=8).result, expect)

    def test_scatter_fresh(self):
        sv = self._sparse(seed=8)
        np.testing.assert_allclose(scatter(sv, num_banks=8).result,
                                   sv.to_dense())

    def test_gather_scatter_round_trip(self):
        dense = RNG.standard_normal(220) * (RNG.random(220) < 0.15)
        sv = gather(dense, num_banks=4).result
        np.testing.assert_allclose(scatter(sv, num_banks=4).result, dense)

    def test_length_mismatches(self):
        sv = self._sparse()
        with pytest.raises(ExecutionError):
            spaxpy(1.0, sv, np.ones(10))
        with pytest.raises(ExecutionError):
            spdot(sv, np.ones(10))
        with pytest.raises(ExecutionError):
            scatter(sv, base=np.ones(10))


class TestDenseL2:
    def test_dgemv_square(self):
        A = RNG.standard_normal((64, 64))
        x = RNG.random(64)
        np.testing.assert_allclose(dgemv(A, x, num_banks=8).result, A @ x)

    def test_dgemv_rectangular(self):
        A = RNG.standard_normal((30, 90))
        x = RNG.random(90)
        np.testing.assert_allclose(dgemv(A, x, num_banks=4).result, A @ x)

    def test_dgemv_shape_check(self):
        with pytest.raises(ExecutionError):
            dgemv(np.ones((3, 4)), np.ones(3))

    def test_dtrsv_lower_upper(self):
        n = 48
        L = np.tril(RNG.standard_normal((n, n))) + 5 * np.eye(n)
        U = np.triu(RNG.standard_normal((n, n))) + 5 * np.eye(n)
        b = RNG.random(n)
        np.testing.assert_allclose(dtrsv(L, b, lower=True,
                                         num_banks=4).result,
                                   np.linalg.solve(L, b))
        np.testing.assert_allclose(dtrsv(U, b, lower=False,
                                         num_banks=4).result,
                                   np.linalg.solve(U, b))

    def test_dtrsv_singular_rejected(self):
        T = np.tril(np.ones((4, 4)))
        T[2, 2] = 0.0
        with pytest.raises(ExecutionError, match="singular"):
            dtrsv(T, np.ones(4))

    def test_launch_stats_populated(self):
        run = daxpy(1.0, RNG.random(100), RNG.random(100), num_banks=4)
        assert run.stats.beats > 0
        assert run.stats.launches >= 1
        assert run.stats.mode_switches >= 3
