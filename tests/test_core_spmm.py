"""Tests for repro.core.spmm — the multi-rhs SpMM runtime.

The load-bearing pins: column ``j`` of an SpMM equals the SpMV of
``X[:, j]`` under the same plan, ``k = 1`` is *bitwise* SpMV (results,
rounds, traces and modelled cycles), and the modelled cycles-per-rhs
strictly fall as the block widens (the amortisation the workload tier
exists to show).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_system
from repro.core import (plan_spmm, run_spmm, run_spmv, spmm_ab_trace,
                        spmm_pb_trace, spmv_ab_trace, spmv_pb_trace,
                        time_spmm, time_spmv)
from repro.core.spmm import SpmmExecution, as_spmm_execution
from repro.errors import ConfigError, ExecutionError
from repro.formats import generate
from repro.formats.generators import (power_law_graph, stencil_2d,
                                      uniform_random)

CFG = default_system()
RNG = np.random.default_rng(0)


def dense_oracle(m, x):
    return np.column_stack([m.matvec(x[:, j])
                            for j in range(x.shape[1])])


class TestFastTier:
    @pytest.mark.parametrize("name,scale,k", [("facebook", 0.2, 3),
                                              ("poisson3Da", 0.3, 4),
                                              ("cant", 0.02, 2)])
    def test_matches_reference(self, name, scale, k):
        m = generate(name, scale=scale)
        x = RNG.random((m.shape[1], k))
        result = run_spmm(m, x, CFG)
        np.testing.assert_allclose(result.y, dense_oracle(m, x),
                                   rtol=1e-10)

    def test_columns_bitwise_spmv(self):
        """Column j of the block is bitwise run_spmv of X[:, j]."""
        m = uniform_random(120, 120, 0.05, seed=1)
        x = RNG.random((120, 5))
        block = run_spmm(m, x, CFG)
        for j in range(5):
            solo = run_spmv(m, x[:, j], CFG)
            np.testing.assert_array_equal(block.y[:, j], solo.y)

    @pytest.mark.parametrize("strategy", ["paper", "nnz-rows", "2d-grid",
                                          "nnz-2d"])
    def test_strategies_same_answer(self, strategy):
        m = power_law_graph(600, 5, seed=2)
        x = RNG.random((600, 3))
        result = run_spmm(m, x, CFG, strategy=strategy)
        np.testing.assert_allclose(result.y, dense_oracle(m, x),
                                   rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("channels", [1, 4, 16])
    def test_channel_sharded(self, channels):
        m = uniform_random(200, 200, 0.04, seed=3)
        x = RNG.random((200, 4))
        result = run_spmm(m, x, CFG, channels=channels)
        np.testing.assert_allclose(result.y, dense_oracle(m, x),
                                   rtol=1e-10)
        assert result.execution.num_channels == channels
        for sub in result.execution.channel_execs:
            assert sub.num_rhs == 4

    def test_rectangular(self):
        m = uniform_random(150, 400, density=0.02, seed=4)
        x = RNG.random((400, 3))
        np.testing.assert_allclose(run_spmm(m, x, CFG).y,
                                   dense_oracle(m, x), rtol=1e-10)

    def test_pathological_shapes(self):
        # dense row, empty rows, single effective column
        rows = np.concatenate([np.zeros(30, dtype=np.int64),
                               np.arange(5, dtype=np.int64) * 7])
        cols = np.concatenate([np.arange(30, dtype=np.int64),
                               np.full(5, 31, dtype=np.int64)])
        vals = RNG.standard_normal(35)
        from repro.formats import COOMatrix
        m = COOMatrix((40, 40), rows, cols, vals)
        x = RNG.random((40, 4))
        np.testing.assert_allclose(run_spmm(m, x, CFG).y,
                                   dense_oracle(m, x), rtol=1e-10)

    def test_vector_input_is_one_column(self):
        m = uniform_random(80, 80, 0.06, seed=5)
        x = RNG.random(80)
        result = run_spmm(m, x, CFG)
        assert result.y.shape == (80, 1)
        assert result.execution.num_rhs == 1

    def test_y0_and_semiring(self):
        m = uniform_random(90, 90, 0.05, seed=6)
        x = RNG.random((90, 3))
        y0 = RNG.random((90, 3))
        result = run_spmm(m, x, CFG, y0=y0, accumulate="sub")
        np.testing.assert_allclose(result.y, y0 - dense_oracle(m, x),
                                   rtol=1e-10)
        # 1-D y0 broadcasts across the block
        vec0 = RNG.random(90)
        broad = run_spmm(m, x, CFG, y0=vec0)
        np.testing.assert_allclose(
            broad.y, vec0[:, None] + dense_oracle(m, x), rtol=1e-10)

    def test_bad_arguments(self):
        m = uniform_random(10, 10, 0.2, seed=7)
        with pytest.raises(ExecutionError):
            run_spmm(m, np.ones((5, 2)), CFG)
        with pytest.raises(ExecutionError):
            run_spmm(m, np.ones((10, 2)), CFG, fidelity="quantum")
        with pytest.raises(ExecutionError):
            run_spmm(m, np.ones((10, 2)), CFG,
                     y0=np.ones((10, 3)))


class TestFunctionalTier:
    def test_matches_fast(self):
        m = generate("facebook", scale=0.04)
        x = RNG.random((m.shape[1], 3))
        fast = run_spmm(m, x, CFG, fidelity="fast")
        func = run_spmm(m, x, CFG, fidelity="functional", engine_banks=4)
        np.testing.assert_allclose(func.y, fast.y, rtol=1e-10)

    def test_columns_bitwise_functional_spmv(self):
        """Functional column j is bitwise the functional SpMV."""
        m = uniform_random(90, 90, 0.05, seed=8)
        x = RNG.random((90, 3))
        block = run_spmm(m, x, CFG, fidelity="functional",
                         engine_banks=4)
        for j in range(3):
            solo = run_spmv(m, x[:, j], CFG, fidelity="functional",
                            engine_banks=4)
            np.testing.assert_array_equal(block.y[:, j], solo.y)

    def test_lane_equals_scalar_engine(self):
        m = uniform_random(80, 80, 0.06, seed=9)
        x = RNG.random((80, 2))
        lane = run_spmm(m, x, CFG, fidelity="functional",
                        engine_banks=4, engine="lane")
        scalar = run_spmm(m, x, CFG, fidelity="functional",
                          engine_banks=4, engine="scalar")
        np.testing.assert_array_equal(lane.y, scalar.y)

    def test_functional_stencil(self):
        m = stencil_2d(10)
        x = RNG.random((100, 2))
        result = run_spmm(m, x, CFG, fidelity="functional",
                          engine_banks=8)
        np.testing.assert_allclose(result.y, dense_oracle(m, x),
                                   rtol=1e-10)

    @given(st.integers(0, 25), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_property_functional_equals_reference(self, seed, k):
        m = uniform_random(70, 70, 0.05, seed=seed)
        x = np.random.default_rng(seed).random((70, k))
        result = run_spmm(m, x, CFG, fidelity="functional",
                          engine_banks=4)
        np.testing.assert_allclose(result.y, dense_oracle(m, x),
                                   rtol=1e-9, atol=1e-12)


class TestOneRhsBitwiseSpmv:
    """The k = 1 contract: SpMM *is* SpMV — results, traces, cycles."""

    def setup_method(self):
        self.m = generate("poisson3Da", scale=0.1)
        self.x = np.random.default_rng(11).random(self.m.shape[1])
        self.spmm = run_spmm(self.m, self.x, CFG)
        self.spmv = run_spmv(self.m, self.x, CFG)

    def test_results_bitwise(self):
        np.testing.assert_array_equal(self.spmm.y[:, 0], self.spmv.y)

    def test_execution_record_matches(self):
        a, b = self.spmm.execution, self.spmv.execution
        assert a.num_rhs == 1
        assert a.num_rounds == b.num_rounds
        assert a.round_batches == b.round_batches
        assert a.round_x_lengths == b.round_x_lengths
        assert a.round_y_lengths == b.round_y_lengths
        assert a.lockstep_elements == b.lockstep_elements

    def test_traces_bitwise(self):
        for spmm_synth, spmv_synth in ((spmm_ab_trace, spmv_ab_trace),
                                       (spmm_pb_trace, spmv_pb_trace)):
            a = spmm_synth(self.spmm.execution, CFG)
            b = spmv_synth(self.spmv.execution, CFG)
            assert a == b

    def test_cycles_bitwise(self):
        for mode in ("ab", "pb"):
            a = time_spmm(self.spmm.execution, CFG, mode=mode)
            b = time_spmv(self.spmv.execution, CFG, mode=mode)
            assert a.cycles == b.cycles
            assert a.tag_cycles == b.tag_cycles

    def test_channel_sharded_traces_bitwise(self):
        from repro.core import spmm_channels_trace, spmv_channels_trace
        a = run_spmm(self.m, self.x, CFG, channels=4).execution
        b = run_spmv(self.m, self.x, CFG, channels=4).execution
        assert (spmm_channels_trace(a, CFG)
                == spmv_channels_trace(b, CFG))


class TestAmortisation:
    def test_cycles_per_rhs_strictly_decreasing(self):
        m = generate("poisson3Da", scale=0.1)
        plan = assignment = None
        per_rhs = []
        for k in (1, 2, 4, 8, 16):
            x = np.random.default_rng(13).random((m.shape[1], k))
            result = run_spmm(m, x, CFG, plan=plan,
                              assignment=assignment)
            plan, assignment = result.plan, result.assignment
            report = time_spmm(result.execution, CFG)
            per_rhs.append(report.cycles / k)
        assert all(a > b for a, b in zip(per_rhs, per_rhs[1:])), per_rhs

    def test_pb_mode_amortises_too(self):
        m = uniform_random(200, 200, 0.04, seed=14)
        cycles = {}
        for k in (1, 8):
            x = np.random.default_rng(15).random((200, k))
            ex = run_spmm(m, x, CFG).execution
            cycles[k] = time_spmm(ex, CFG, mode="pb").cycles
        assert cycles[8] / 8 < cycles[1]

    def test_wider_block_never_cheaper_total(self):
        m = uniform_random(150, 150, 0.05, seed=16)
        ex1 = as_spmm_execution(
            run_spmv(m, RNG.random(150), CFG).execution, 1)
        ex4 = as_spmm_execution(ex1, 4)
        assert (time_spmm(ex4, CFG).cycles
                > time_spmm(ex1, CFG).cycles)


class TestPlanAndRecord:
    def test_plan_spmm_resolves_env(self, monkeypatch):
        m = uniform_random(60, 60, 0.08, seed=17)
        monkeypatch.setenv("PSYNCPIM_RHS", "6")
        _, _, ex = plan_spmm(m, CFG)
        assert ex.num_rhs == 6
        monkeypatch.setenv("PSYNCPIM_RHS", "zero")
        with pytest.raises(ConfigError):
            plan_spmm(m, CFG)

    def test_plan_reuse_with_spmv(self):
        """SpMV plans inject into SpMM verbatim (shared layout)."""
        m = uniform_random(100, 100, 0.05, seed=18)
        x = RNG.random((100, 3))
        spmv = run_spmv(m, x[:, 0], CFG)
        reused = run_spmm(m, x, CFG, plan=spmv.plan,
                          assignment=spmv.assignment)
        np.testing.assert_allclose(reused.y, dense_oracle(m, x),
                                   rtol=1e-10)
        assert reused.plan is spmv.plan

    def test_as_spmm_execution_idempotent(self):
        m = uniform_random(60, 60, 0.08, seed=19)
        ex = run_spmm(m, RNG.random((60, 3)), CFG).execution
        assert as_spmm_execution(ex, 3) is ex
        widened = as_spmm_execution(ex, 7)
        assert isinstance(widened, SpmmExecution)
        assert widened.num_rhs == 7
        assert widened.round_batches == ex.round_batches
