"""Tests for the format-aware SpMV timing path (coo/csr/bitmap)."""

import numpy as np
import pytest

from repro.config import default_system
from repro.core import run_spmv, time_spmv
from repro.errors import ExecutionError
from repro.formats.generators import uniform_random

CFG = default_system()
RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def dense_case():
    matrix = uniform_random(500, 500, density=0.2, seed=1)
    x = RNG.random(500)
    return matrix, x


@pytest.fixture(scope="module")
def sparse_case():
    matrix = uniform_random(2500, 2500, density=0.001, seed=2)
    x = RNG.random(2500)
    return matrix, x


class TestFormatTiming:
    def test_results_identical_across_formats(self, dense_case):
        matrix, x = dense_case
        reference = matrix.matvec(x)
        for fmt in ("coo", "csr", "bitmap"):
            result = run_spmv(matrix, x, CFG, matrix_format=fmt)
            np.testing.assert_allclose(result.y, reference)
            assert result.execution.matrix_format == fmt

    def test_stream_bytes_coo(self, dense_case):
        matrix, x = dense_case
        ex = run_spmv(matrix, x, CFG, matrix_format="coo").execution
        assert ex.stream_bytes_per_element == pytest.approx(12.0)  # fp64

    def test_stream_bytes_csr_below_coo(self, dense_case):
        matrix, x = dense_case
        coo = run_spmv(matrix, x, CFG, matrix_format="coo").execution
        csr = run_spmv(matrix, x, CFG, matrix_format="csr").execution
        assert csr.stream_bytes_per_element < coo.stream_bytes_per_element

    def test_bitmap_wins_dense_loses_sparse(self, dense_case, sparse_case):
        for (matrix, x), better in ((dense_case, "bitmap"),
                                    (sparse_case, "coo")):
            times = {}
            for fmt in ("coo", "bitmap"):
                ex = run_spmv(matrix, x, CFG, matrix_format=fmt).execution
                times[fmt] = time_spmv(ex, CFG).seconds
            worse = "coo" if better == "bitmap" else "bitmap"
            assert times[better] <= times[worse]

    def test_matrix_bytes_follow_format(self, dense_case):
        matrix, x = dense_case
        coo = run_spmv(matrix, x, CFG, matrix_format="coo").execution
        bitmap = run_spmv(matrix, x, CFG,
                          matrix_format="bitmap").execution
        assert coo.matrix_bytes == pytest.approx(
            matrix.nnz * 12, rel=0.01)
        assert bitmap.matrix_bytes < coo.matrix_bytes  # 20% density

    def test_int8_narrower_than_fp64(self, dense_case):
        matrix, x = dense_case
        xi = np.round(x * 4)
        e8 = run_spmv(matrix, xi, CFG, precision="int8").execution
        e64 = run_spmv(matrix, xi, CFG, precision="fp64").execution
        assert (e8.stream_bytes_per_element
                < e64.stream_bytes_per_element)

    def test_unknown_format_rejected(self, dense_case):
        matrix, x = dense_case
        with pytest.raises(ExecutionError, match="format"):
            run_spmv(matrix, x, CFG, matrix_format="quadtree")

    def test_facade_accepts_format(self, dense_case):
        from repro import PSyncPIM
        matrix, x = dense_case
        result = PSyncPIM().spmv(matrix, x, matrix_format="bitmap")
        np.testing.assert_allclose(result.y, matrix.matvec(x))
