"""Differential tests: the jobs x banks BatchEngine vs its oracles.

A batch of N same-template jobs must finish with each job's architectural
state — scalar/dense registers, circular sparse queues, bank memory,
exit/exhaustion/load-target masks — *bitwise* identical to a per-job
:class:`LaneEngine` run of the same case, which the lane suite in turn
pins bitwise to the scalar :class:`AllBankEngine` oracle. Stats counters
are deliberately out of scope: a batch keeps broadcasting beats until the
slowest job exits, so fast jobs see trailing NOPs their solo runs never
saw (see the module docstring of :mod:`repro.pim.batch_engine`).

Corpora come from the ISA fuzzer: a template leader per seed plus
data-only variants (:func:`repro.check.fuzz.vary_case`), including the
historically pathological regression seeds 62/63/69.
"""

import numpy as np
import pytest

from repro.check.fuzz import (build_case, fuzz_batch, fuzz_range,
                              generate_case, run_batch_group, run_single,
                              template_key, vary_case, _first_diff)
from repro.config import BATCH_ENV, resolve_batch
from repro.errors import CheckError, ConfigError, ExecutionError
from repro.pim import BatchEngine, Mode, make_batch_engine

#: Template seeds for the randomized corpus (beyond the regression trio).
CORPUS_SEEDS = (0, 3, 7, 11, 17, 29, 101, 150)

#: Seeds whose programs historically stressed queue back-pressure,
#: exhaustion masks and merge stalls in the lane engine.
REGRESSION_SEEDS = (62, 63, 69)


def _corpus(seed, jobs):
    """A template leader plus data-only variants, with their builds."""
    leader = generate_case(seed)
    cases = [leader] + [vary_case(leader, 10_000 + seed * 100 + i)
                        for i in range(jobs - 1)]
    builts = [build_case(case) for case in cases]
    return cases, builts


def _assert_batch_matches_solo(cases, builts, engine="lane"):
    snapshots, _ = run_batch_group(cases, builts=builts)
    for job, (case, built, snap) in enumerate(zip(cases, builts,
                                                  snapshots)):
        solo, _ = run_single(case, engine=engine, built=built)
        diff = _first_diff(solo, snap, f"job{job}")
        assert diff is None, f"{case.reproducer()}: {diff}"


class TestBatchSelection:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert resolve_batch() == "off"

    def test_env_selects_jobs(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "jobs")
        assert resolve_batch() == "jobs"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "jobs")
        assert resolve_batch("off") == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="unknown batch mode"):
            resolve_batch("lanes")


class TestGeometry:
    def test_lane_layout_is_job_major(self):
        engine = BatchEngine(3, 4)
        assert engine.num_lanes == 12
        assert engine.lane(0, 0) == 0
        assert engine.lane(1, 0) == 4
        assert engine.lane(2, 3) == 11
        assert len(engine.job_units(1)) == 4
        assert len(engine.job_banks(2)) == 4

    def test_jobs_axis_views_alias_flat_state(self):
        engine = BatchEngine(2, 3)
        engine.scalar[4] = 7.5          # job 1, bank 1
        assert engine.scalar_jobs[1, 1] == 7.5
        assert engine.scalar_jobs.shape == (2, 3)
        assert engine.dense_jobs.shape[0] == engine.dense.shape[0]
        assert engine.dense_jobs.shape[1:3] == (2, 3)
        engine.exited[3:] = True        # all of job 1
        assert engine.job_exited.tolist() == [False, True]

    def test_factory_builds_batch_engine(self):
        engine = make_batch_engine(2, 2, precision="fp32")
        assert isinstance(engine, BatchEngine)
        assert (engine.num_jobs, engine.num_banks) == (2, 2)

    def test_validation(self):
        with pytest.raises(ExecutionError, match="at least one job"):
            BatchEngine(0, 4)
        engine = BatchEngine(2, 2)
        with pytest.raises(ExecutionError, match="job 2 out of range"):
            engine.job_units(2)
        with pytest.raises(ExecutionError, match="bank 5 out of range"):
            engine.lane(0, 5)
        with pytest.raises(ExecutionError, match="one array list per job"):
            engine.host_write_dense_jobs("x", [[np.zeros(4)] * 2])
        with pytest.raises(ExecutionError, match="one array per bank"):
            engine.host_write_dense_jobs("x", [[np.zeros(4)]] * 2)

    def test_host_roundtrip_heterogeneous_lengths(self):
        engine = BatchEngine(2, 2)
        data = [[np.arange(3.0), np.arange(5.0)],
                [np.arange(7.0), np.arange(2.0)]]
        engine.host_write_dense_jobs("x", data)
        back = engine.host_read_dense_jobs("x")
        for job in range(2):
            for bank in range(2):
                assert np.array_equal(back[job][bank], data[job][bank])


class TestTemplateGrouping:
    def test_variants_share_the_template(self):
        leader = generate_case(11)
        variant = vary_case(leader, 4242)
        built_l, built_v = build_case(leader), build_case(variant)
        assert template_key(leader, built_l) \
            == template_key(variant, built_v)
        assert built_l.beats == built_v.beats
        assert list(built_l.program) == list(built_v.program)

    def test_variant_data_differs_and_round_trips(self):
        leader = generate_case(11)
        variant = vary_case(leader, 4242)
        built_l, built_v = build_case(leader), build_case(variant)
        assert any(
            not np.array_equal(a, b)
            for name in built_l.dense_data
            for a, b in zip(built_l.dense_data[name],
                            built_v.dense_data[name])) or any(
            not np.array_equal(a[2], b[2])
            for name in built_l.triple_data
            for a, b in zip(built_l.triple_data[name],
                            built_v.triple_data[name]))
        restored = vary_case(variant, None)
        assert restored == leader

    def test_vary_case_is_deterministic(self):
        a = build_case(vary_case(generate_case(7), 99))
        b = build_case(vary_case(generate_case(7), 99))
        for name in a.dense_data:
            for x, y in zip(a.dense_data[name], b.dense_data[name]):
                assert np.array_equal(x, y)

    def test_reproducer_names_the_data_seed(self):
        variant = vary_case(generate_case(7), 99)
        assert "vary_case(generate_case(7), 99)" in variant.reproducer()

    def test_mixed_templates_rejected(self):
        with pytest.raises(CheckError, match="mixed templates"):
            run_batch_group([generate_case(1), generate_case(2)])


class TestDifferentialAgreement:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_batch_matches_per_job_lane(self, seed):
        cases, builts = _corpus(seed, jobs=6)
        _assert_batch_matches_solo(cases, builts, engine="lane")

    @pytest.mark.parametrize("seed", REGRESSION_SEEDS)
    def test_regression_seeds_match_lane_and_scalar(self, seed):
        cases, builts = _corpus(seed, jobs=5)
        _assert_batch_matches_solo(cases, builts, engine="lane")
        _assert_batch_matches_solo(cases, builts, engine="scalar")

    @pytest.mark.parametrize("seed", (0, 29, 62))
    def test_batch_matches_scalar_oracle(self, seed):
        cases, builts = _corpus(seed, jobs=4)
        _assert_batch_matches_solo(cases, builts, engine="scalar")

    def test_width_one_batch_equals_lane(self):
        for seed in REGRESSION_SEEDS:
            case = generate_case(seed)
            built = build_case(case)
            snapshots, _ = run_batch_group([case], builts=[built])
            solo, _ = run_single(case, built=built)
            assert _first_diff(solo, snapshots[0]) is None

    def test_identical_jobs_finish_identically(self):
        case = generate_case(69)
        built = build_case(case)
        cases = [case, vary_case(case, None)]   # same data twice
        snapshots, engine = run_batch_group(cases, builts=[built, built])
        assert _first_diff(snapshots[0], snapshots[1]) is None
        assert engine.job_exited.shape == (2,)

    def test_per_job_exit_state_is_jobwise(self):
        cases, builts = _corpus(3, jobs=4)
        _, engine = run_batch_group(cases, builts=builts)
        assert bool(engine.job_exited.all()) \
            == bool(engine.exited_jobs.all())
        assert engine.exhausted_mask_jobs.shape \
            == (4, cases[0].num_banks)
        assert engine.load_targets_mask_jobs.shape \
            == (4, cases[0].num_banks)


class TestFuzzBatchVerdicts:
    def test_green_corpus_matches_fuzz_range(self):
        seeds = range(0, 48)
        assert fuzz_batch(seeds, batch="jobs") == []
        assert fuzz_batch(seeds, batch="off") == fuzz_range(0, 48)

    def test_group_size_one_degenerates_to_per_seed(self):
        assert fuzz_batch(range(5, 15), batch="jobs", group_size=1) \
            == fuzz_range(5, 10)

    def test_injected_batch_bug_is_reported_per_seed(self, monkeypatch):
        """A batch-only divergence must surface the responsible seed."""
        original = BatchEngine._reduce

        def broken(self, ins, beat, active):
            original(self, ins, beat, active)
            # corrupt the last job's SRF only
            self.scalar[-self.num_banks:] += 1.0

        # seed 1 leads the block and its template contains a REDUCE
        monkeypatch.setattr(BatchEngine, "_reduce", broken)
        seeds = list(range(1, 9))
        failures = fuzz_batch(seeds, batch="jobs", group_size=8,
                              shrink=False)
        assert failures, "corrupted batch run went undetected"
        assert all("lane-vs-batch" in message or "scalar" in message
                   for _, message in failures)
        assert {seed for seed, _ in failures} <= set(seeds)

    def test_batch_execution_error_is_attributed(self, monkeypatch):
        def explode(self, beats):
            raise ExecutionError("injected batch fault")

        monkeypatch.setattr(BatchEngine, "run", explode)
        failures = fuzz_batch(range(0, 4), batch="jobs", group_size=4)
        assert len(failures) == 1
        assert failures[0][0] == 0
        assert "batch execution failed" in failures[0][1]


class TestModeProtocol:
    def test_batch_follows_the_engine_mode_protocol(self):
        case = generate_case(0)
        built = build_case(case)
        engine = BatchEngine(2, case.num_banks,
                             precision=case.precision)
        with pytest.raises(ExecutionError, match="AB mode"):
            engine.load_program(built.program)
        engine.switch_mode(Mode.AB)
        with pytest.raises(ExecutionError, match="SB mode"):
            engine.host_write_dense_jobs(
                "x", [[np.zeros(4)] * case.num_banks] * 2)
