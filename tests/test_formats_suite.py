"""Tests for repro.formats.suite — the Table IX registry."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (TABLE_IX, generate, matrices_for, matrix_spec,
                           suite_names)


class TestRegistry:
    def test_all_26_matrices_present(self):
        assert len(suite_names()) == 26

    def test_paper_order_preserved(self):
        names = suite_names()
        assert names[0] == "2cubes_sphere"
        assert names[-1] == "xenon2"

    def test_spec_lookup(self):
        spec = matrix_spec("bcsstk32")
        assert spec.dimension == 44609
        assert spec.density == pytest.approx(1.01e-3)
        assert "spmv" in spec.applications

    def test_unknown_name(self):
        with pytest.raises(FormatError, match="unknown suite matrix"):
            matrix_spec("not-a-matrix")

    def test_application_tags(self):
        sptrsv = matrices_for("sptrsv")
        assert set(sptrsv) == {"2cubes_sphere", "offshore", "parabolic_fem",
                               "poisson3Da", "rma10"}
        pcg = matrices_for("pcg")
        assert set(pcg) == {"2cubes_sphere", "offshore", "parabolic_fem"}
        assert len(matrices_for("graphs")) == 8
        assert len(matrices_for("spmv")) == 15

    def test_unknown_tag(self):
        with pytest.raises(FormatError, match="tag"):
            matrices_for("spgemm")

    def test_spec_derived_quantities(self):
        spec = matrix_spec("facebook")
        assert spec.mean_row_nnz == pytest.approx(4039 * 5.41e-3)
        assert spec.nnz_estimate == pytest.approx(
            4039 * 4039 * 5.41e-3, rel=1e-4)


class TestGeneration:
    @pytest.mark.parametrize("name", suite_names())
    def test_every_matrix_generates_small(self, name):
        m = generate(name, scale=0.01)
        assert m.nnz > 0
        assert m.shape[0] >= 64
        m.validate()

    def test_scale_one_matches_dimension_class(self):
        m = generate("wiki-Vote", scale=1.0)
        spec = matrix_spec("wiki-Vote")
        assert abs(m.shape[0] - spec.dimension) / spec.dimension < 0.05

    def test_deterministic(self):
        assert generate("facebook", 0.2) == generate("facebook", 0.2)

    def test_sptrsv_matrices_are_spd(self):
        m = generate("poisson3Da", scale=0.05)
        assert m == m.transpose()
        # SPD check on a small principal minor (cheap proxy)
        sub = m.submatrix((0, 120), (0, 120)).to_dense()
        assert np.linalg.eigvalsh(sub).min() > 0

    def test_mean_row_preserved_under_scaling(self):
        spec = matrix_spec("cant")
        small = generate("cant", scale=0.05)
        mean = small.nnz / small.shape[0]
        # symmetrisation can double, dedupe can shrink: wide but real bound
        assert 0.25 * spec.mean_row_nnz <= mean <= 4 * spec.mean_row_nnz

    def test_invalid_scale(self):
        with pytest.raises(FormatError):
            generate("cant", scale=0.0)

    def test_graph_matrices_are_unweighted(self):
        m = generate("wiki-Vote", scale=0.2)
        assert np.all(m.vals == 1.0)

    def test_every_spec_kind_is_generatable(self):
        kinds = {spec.kind for spec in TABLE_IX.values()}
        assert kinds == {"stencil2d", "stencil3d", "mesh", "fem",
                         "powerlaw", "rmat", "random"}
