"""Tests for repro.formats.csr and conversions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FormatError
from repro.formats import (COOMatrix, CSRMatrix, coo_to_scipy, csr_to_scipy,
                           scipy_to_coo, scipy_to_csr)
from repro.formats.generators import uniform_random


@pytest.fixture
def coo():
    return uniform_random(20, 16, density=0.15, seed=7)


class TestCSR:
    def test_round_trip_coo(self, coo):
        assert CSRMatrix.from_coo(coo).to_coo() == coo

    def test_matvec_matches_coo(self, coo):
        x = np.random.default_rng(1).random(coo.shape[1])
        csr = CSRMatrix.from_coo(coo)
        np.testing.assert_allclose(csr.matvec(x), coo.matvec(x))

    def test_row_access(self, coo):
        csr = CSRMatrix.from_coo(coo)
        dense = coo.to_dense()
        for i in range(coo.shape[0]):
            idx, val = csr.row(i)
            expect = np.nonzero(dense[i])[0]
            np.testing.assert_array_equal(np.sort(idx), expect)
            np.testing.assert_allclose(dense[i, idx], val)

    def test_row_counts(self, coo):
        csr = CSRMatrix.from_coo(coo)
        np.testing.assert_array_equal(csr.row_counts(), coo.row_counts())

    def test_row_out_of_range(self, coo):
        csr = CSRMatrix.from_coo(coo)
        with pytest.raises(FormatError):
            csr.row(coo.shape[0])

    def test_to_dense(self, coo):
        np.testing.assert_allclose(CSRMatrix.from_coo(coo).to_dense(),
                                   coo.to_dense())

    def test_empty_matrix(self):
        csr = CSRMatrix.from_coo(COOMatrix.empty((3, 3)))
        assert csr.nnz == 0
        np.testing.assert_allclose(csr.matvec(np.ones(3)), np.zeros(3))

    def test_validate_bad_indptr_length(self):
        with pytest.raises(FormatError, match="indptr length"):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]),
                      np.array([1.0]))

    def test_validate_decreasing_indptr(self):
        with pytest.raises(FormatError, match="non-decreasing"):
            CSRMatrix((2, 2), np.array([0, 2, 1]),
                      np.array([0]), np.array([1.0]))

    def test_validate_index_range(self):
        with pytest.raises(FormatError, match="column index"):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([9]),
                      np.array([1.0]))

    def test_validate_span(self):
        with pytest.raises(FormatError, match="span"):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0]),
                      np.array([1.0]))


class TestScipyConversions:
    def test_coo_scipy_round_trip(self, coo):
        assert scipy_to_coo(coo_to_scipy(coo)) == coo

    def test_csr_scipy_round_trip(self, coo):
        csr = CSRMatrix.from_coo(coo)
        back = scipy_to_csr(csr_to_scipy(csr))
        assert back.to_coo() == coo

    def test_scipy_duplicates_are_summed(self):
        dup = sp.coo_matrix(([1.0, 2.0], ([0, 0], [0, 0])), shape=(2, 2))
        merged = scipy_to_coo(dup)
        assert merged.nnz == 1
        assert merged.vals[0] == 3.0

    def test_scipy_to_coo_rejects_dense(self):
        with pytest.raises(FormatError):
            scipy_to_coo(np.eye(3))

    def test_matches_scipy_matvec(self, coo):
        x = np.random.default_rng(2).random(coo.shape[1])
        np.testing.assert_allclose(coo.matvec(x),
                                   coo_to_scipy(coo) @ x)
