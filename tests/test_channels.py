"""Channel-sharded execution: differential pins and equivalence tests.

The channel scale-out PR must not disturb physics:

* ``channels=1`` is pinned bitwise against the pre-PR building blocks
  composed at single-channel geometry — same distribution rounds, same
  floating-point result, same synthesised trace, same scheduled cycles
  and energy. One channel of the sharded model IS the old model.
* Multi-channel runs must stay bitwise-equal between the fast tier's
  big lane array and the per-channel scalar-engine oracle, and (with
  exactly representable values) equal to accumulating each channel's
  shard solo — channels never interact mid-kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import check_trace
from repro.config import (CHANNELS_ENV, default_system, resolve_channels)
from repro.core import (distribute, ildu, partition, plan_spmv, run_spmv,
                        run_sptrsv, shard_channels, spmv_ab_trace,
                        spmv_channels_trace, sptrsv_channels_trace,
                        time_spmv, time_sptrsv, ChannelAssignment,
                        TraceParams)
from repro.core.spmv import _fast_rounds
from repro.dram import MemoryController, TimingParams
from repro.errors import ConfigError, MappingError
from repro.formats import COOMatrix, generate


CONFIG = default_system()
BPC = CONFIG.memory.banks_per_channel


def random_coo(rng, n=120, density=0.04, integral=False):
    mask = rng.random((n, n)) < density
    rows, cols = np.nonzero(mask)
    if integral:
        vals = rng.integers(-8, 9, size=rows.size).astype(float)
    else:
        vals = rng.standard_normal(rows.size)
    keep = vals != 0
    return COOMatrix((n, n), rows[keep], cols[keep], vals[keep])


# ----------------------------------------------------------------------
class TestResolveChannels:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv(CHANNELS_ENV, raising=False)
        assert resolve_channels() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHANNELS_ENV, "8")
        assert resolve_channels(4) == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CHANNELS_ENV, "16")
        assert resolve_channels() == 16

    def test_blank_env_is_default(self, monkeypatch):
        monkeypatch.setenv(CHANNELS_ENV, "  ")
        assert resolve_channels() is None

    @pytest.mark.parametrize("bad", ["zero", "1.5", ""])
    def test_garbage_env_raises(self, monkeypatch, bad):
        monkeypatch.setenv(CHANNELS_ENV, bad)
        if bad.strip():
            with pytest.raises(ConfigError):
                resolve_channels()

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_raises(self, bad):
        with pytest.raises(ConfigError):
            resolve_channels(bad)

    def test_too_many_channels_for_platform(self):
        matrix = generate("facebook", scale=0.1)
        with pytest.raises(ConfigError):
            plan_spmv(matrix, CONFIG,
                      channels=CONFIG.memory.num_pseudo_channels + 1)


# ----------------------------------------------------------------------
class TestShardChannels:
    def setup_method(self):
        self.matrix = generate("poisson3Da", scale=0.05)
        self.plan = partition(self.matrix, CONFIG)

    def test_shard_shape_and_conservation(self):
        sharded = shard_channels(self.plan, 4, banks_per_channel=BPC)
        assert isinstance(sharded, ChannelAssignment)
        assert sharded.num_channels == 4
        assert len(sharded.shards) == 4
        assert sharded.num_banks == 4 * BPC
        assert sharded.total_elements == self.plan.total_nnz
        assert sharded.per_bank_elements().size == 4 * BPC

    def test_channel_loads_are_balanced(self):
        sharded = shard_channels(self.plan, 4, banks_per_channel=BPC)
        loads = [shard.total_elements for shard in sharded.shards]
        assert min(loads) > 0
        # LPT over tile nnz: no channel may exceed twice the ideal share.
        assert max(loads) < 2 * self.plan.total_nnz / 4

    def test_single_channel_matches_legacy_distribute(self):
        sharded = shard_channels(self.plan, 1, banks_per_channel=BPC)
        legacy = distribute(self.plan, BPC)
        shard = sharded.shards[0]
        assert shard.num_rounds == legacy.num_rounds
        for mine, theirs in zip(shard.rounds, legacy.rounds):
            for a, b in zip(mine, theirs):
                if a is None or b is None:
                    assert a is b
                    continue
                assert np.array_equal(a.rows, b.rows)
                assert np.array_equal(a.cols, b.cols)
                assert np.array_equal(a.vals, b.vals)

    def test_imbalance_metric(self):
        sharded = shard_channels(self.plan, 2, banks_per_channel=BPC)
        assert sharded.imbalance >= 1.0

    @pytest.mark.parametrize("channels,bpc", [(0, 16), (-1, 16), (2, 0)])
    def test_bad_geometry_raises(self, channels, bpc):
        with pytest.raises(MappingError):
            shard_channels(self.plan, channels, banks_per_channel=bpc)


# ----------------------------------------------------------------------
class TestSingleChannelBitwise:
    """channels=1 == the pre-PR pipeline at single-channel geometry."""

    def setup_method(self):
        self.matrix = generate("poisson3Da", scale=0.05)
        self.rng = np.random.default_rng(7)
        self.x = self.rng.random(self.matrix.shape[1])

    def test_result_bitwise_identical(self):
        plan = partition(self.matrix, CONFIG)
        legacy = distribute(plan, BPC)
        y_legacy = _fast_rounds(self.matrix, self.x, legacy.rounds,
                                "add", "mul", None)
        sharded = run_spmv(self.matrix, self.x, CONFIG, channels=1)
        assert np.array_equal(y_legacy, sharded.y)

    def test_trace_and_cycles_identical(self):
        _, _, execution = plan_spmv(self.matrix, CONFIG, channels=1)
        sub = execution.channel_execs[0]
        plan = partition(self.matrix, CONFIG)
        legacy = distribute(plan, BPC)
        assert sub.round_batches == [legacy.round_batch_elements(r)
                                     for r in range(legacy.num_rounds)]
        assert np.array_equal(sub.per_bank_elements,
                              legacy.per_bank_elements())
        sharded_trace = spmv_channels_trace(execution, CONFIG,
                                            TraceParams())
        legacy_trace = spmv_ab_trace(sub, CONFIG, TraceParams())
        assert sharded_trace == legacy_trace
        controller = MemoryController(timing=TimingParams())
        assert (controller.run(sharded_trace).total_cycles
                == controller.run(legacy_trace).total_cycles)

    def test_report_matches_controller_schedule(self):
        _, _, execution = plan_spmv(self.matrix, CONFIG, channels=1)
        trace = spmv_channels_trace(execution, CONFIG, TraceParams())
        report = time_spmv(execution, CONFIG, with_energy=True)
        raw = MemoryController(timing=TimingParams()).run(trace)
        assert report.cycles == raw.total_cycles
        assert report.commands == raw.command_total
        # Sharded energy is per-channel-exact: one cube, no channel
        # multiplier — the trace already is the whole modelled device.
        assert CONFIG.num_cubes == 1
        assert report.energy is not None and report.energy.total_pj > 0

    def test_sptrsv_single_channel_solution_bitwise(self):
        factors = ildu(self.matrix)
        b = self.rng.random(self.matrix.shape[0])
        legacy = run_sptrsv(factors.lower, b, CONFIG, lower=True)
        sharded = run_sptrsv(factors.lower, b, CONFIG, lower=True,
                             channels=1)
        assert np.array_equal(legacy.x, sharded.x)
        assert sharded.execution.num_channels == 1
        sub = sharded.execution.channel_execs[0]
        # Per-channel level accounting conserves the legacy totals.
        assert (sum(sub.level_elements)
                == sum(legacy.execution.level_elements))
        report = time_sptrsv(sharded.execution, CONFIG, with_energy=True)
        assert report.cycles > 0 and report.energy.total_pj > 0


# ----------------------------------------------------------------------
class TestMultiChannelEquivalence:
    """Randomized: lanes == scalar oracle == per-channel solo runs."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("channels", [2, 5, 16])
    def test_fast_matches_functional_oracle(self, seed, channels):
        # Integer-valued data makes fp64 accumulation exact, so the fast
        # tier's lane array must agree *bitwise* with the per-channel
        # scalar-engine oracle; real-valued data agrees to rounding
        # (accumulation order differs), matching the legacy contract.
        rng = np.random.default_rng(seed)
        exact = random_coo(rng, n=60, density=0.05, integral=True)
        xi = rng.integers(-4, 5, size=exact.shape[1]).astype(float)
        fast = run_spmv(exact, xi, CONFIG, channels=channels)
        functional = run_spmv(exact, xi, CONFIG, channels=channels,
                              fidelity="functional")
        assert np.array_equal(fast.y, functional.y)
        assert np.array_equal(fast.y, exact.matvec(xi))

        matrix = random_coo(rng, n=60, density=0.05)
        x = rng.standard_normal(matrix.shape[1])
        fast = run_spmv(matrix, x, CONFIG, channels=channels)
        functional = run_spmv(matrix, x, CONFIG, channels=channels,
                              fidelity="functional")
        np.testing.assert_allclose(functional.y, fast.y, rtol=1e-10)
        assert np.allclose(fast.y, matrix.matvec(x))

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("channels", [2, 4, 8])
    def test_multi_channel_equals_solo_shards(self, seed, channels):
        # Integer-valued data keeps fp64 accumulation exact, so the
        # channel-parallel result must equal running every shard alone
        # and summing — channels never interact mid-kernel.
        rng = np.random.default_rng(100 + seed)
        matrix = random_coo(rng, n=100, density=0.04, integral=True)
        x = rng.integers(-4, 5, size=matrix.shape[1]).astype(float)
        result = run_spmv(matrix, x, CONFIG, channels=channels)
        assert isinstance(result.assignment, ChannelAssignment)
        y_solo = np.zeros(matrix.shape[0])
        for shard in result.assignment.shards:
            y_solo += _fast_rounds(matrix, x, shard.rounds, "add", "mul",
                                   None)
        assert np.array_equal(result.y, y_solo)

    @pytest.mark.parametrize("seed", range(3))
    def test_sptrsv_multi_channel_solution(self, seed):
        rng = np.random.default_rng(200 + seed)
        matrix = random_coo(rng, n=80, density=0.06)
        dense = np.abs(matrix.to_dense()) + np.eye(80) * 80.0
        rows, cols = np.nonzero(dense)
        spd = COOMatrix((80, 80), rows, cols, dense[rows, cols])
        factors = ildu(spd)
        b = rng.standard_normal(80)
        legacy = run_sptrsv(factors.lower, b, CONFIG, lower=True)
        for channels in (2, 16):
            sharded = run_sptrsv(factors.lower, b, CONFIG, lower=True,
                                 channels=channels)
            assert np.array_equal(legacy.x, sharded.x)


# ----------------------------------------------------------------------
class TestChannelTiming:
    def setup_method(self):
        self.matrix = generate("cant", scale=0.02)

    def test_commands_target_their_channels(self):
        _, _, execution = plan_spmv(self.matrix, CONFIG, channels=4,
                                    validate=False)
        trace = spmv_channels_trace(execution, CONFIG, TraceParams())
        seen = set()
        for entry in trace:
            command = getattr(entry, "command", entry)
            assert 0 <= command.channel < 4
            seen.add(command.channel)
        assert seen == {0, 1, 2, 3}

    def test_traces_are_protocol_clean(self):
        _, _, execution = plan_spmv(self.matrix, CONFIG, channels=4,
                                    validate=False)
        trace = spmv_channels_trace(execution, CONFIG, TraceParams())
        assert check_trace(trace) == []

    def test_more_channels_never_model_slower(self):
        cycles = {}
        for channels in (1, 4, 16):
            _, _, execution = plan_spmv(self.matrix, CONFIG,
                                        channels=channels, validate=False)
            cycles[channels] = time_spmv(execution, CONFIG).cycles
        assert cycles[16] <= cycles[4] <= cycles[1]

    def test_sptrsv_channels_price(self):
        factors = ildu(generate("poisson3Da", scale=0.05))
        b = np.random.default_rng(3).random(factors.lower.shape[0])
        solo = run_sptrsv(factors.lower, b, CONFIG, lower=True,
                          channels=1)
        wide = run_sptrsv(factors.lower, b, CONFIG, lower=True,
                          channels=16)
        trace = sptrsv_channels_trace(wide.execution, CONFIG,
                                      TraceParams())
        assert any(getattr(e, "command", e).channel == 15 for e in trace)
        assert (time_sptrsv(wide.execution, CONFIG).cycles
                <= time_sptrsv(solo.execution, CONFIG).cycles)


# ----------------------------------------------------------------------
class TestChannelsPlumbing:
    def test_env_var_engages_sharding(self, monkeypatch):
        monkeypatch.setenv(CHANNELS_ENV, "4")
        matrix = generate("facebook", scale=0.1)
        x = np.random.default_rng(0).random(matrix.shape[1])
        result = run_spmv(matrix, x, CONFIG)
        assert result.execution.num_channels == 4
        assert len(result.execution.channel_execs) == 4

    def test_runtime_threads_channels(self):
        from repro.core import PSyncPIM
        pim = PSyncPIM(channels=2)
        matrix = generate("facebook", scale=0.1)
        x = np.random.default_rng(0).random(matrix.shape[1])
        result = pim.spmv(matrix, x)
        assert result.execution.num_channels == 2
        report = pim.time_spmv(result)
        assert report.cycles > 0

    def test_cli_accepts_channels(self, capsys):
        from repro.cli import main
        code = main(["spmv", "--matrix", "facebook", "--scale", "0.1",
                     "--channels", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SpMV on pSyncPIM" in out

    def test_sweep_job_label_and_key(self):
        from repro.sweep import SweepJob
        from repro.sweep.runner import _batch_key
        plain = SweepJob(kernel="spmv", matrix="facebook", scale=0.1)
        sharded = SweepJob(kernel="spmv", matrix="facebook", scale=0.1,
                           channels=4)
        assert sharded.resolved_label().endswith("4ch")
        assert "ch" not in plain.resolved_label()
        assert _batch_key(plain) != _batch_key(sharded)

    def test_sweep_executes_sharded_job(self, tmp_path):
        from repro.sweep import SweepJob, execute_job
        job = SweepJob(kernel="spmv", matrix="facebook", scale=0.1,
                       channels=2)
        record = execute_job(job, cache_dir=tmp_path)
        assert record.extras["channels"] == 2
        plain = execute_job(SweepJob(kernel="spmv", matrix="facebook",
                                     scale=0.1), cache_dir=tmp_path)
        assert "channels" not in plain.extras
        assert record.report.cycles != 0

    def test_sweep_cache_key_separates_channel_counts(self, tmp_path):
        from repro.sweep import SweepJob, execute_job
        two = execute_job(SweepJob(kernel="spmv", matrix="facebook",
                                   scale=0.1, channels=2),
                          cache_dir=tmp_path)
        one = execute_job(SweepJob(kernel="spmv", matrix="facebook",
                                   scale=0.1, channels=1),
                          cache_dir=tmp_path)
        assert two.report.cycles != one.report.cycles


# ----------------------------------------------------------------------
class TestChannelObs:
    @pytest.fixture
    def recorder(self):
        from repro import obs
        obs.reset()
        obs.enable()
        try:
            yield obs.recorder()
        finally:
            obs.reset()
            obs.disable()

    def test_per_channel_counters_recorded(self, recorder):
        matrix = generate("poisson3Da", scale=0.05)
        _, _, execution = plan_spmv(matrix, CONFIG, channels=4,
                                    validate=False)
        time_spmv(execution, CONFIG)
        busy = recorder.bank_counters.get("channel.busy")
        assert busy is not None and busy.size >= 4
        assert busy[:4].min() > 0
        for name in ("channel.idle", "channel.cycles",
                     "channel.commands", "channel.columns"):
            assert name in recorder.bank_counters

    def test_chrome_trace_channel_series(self, recorder):
        from repro.obs.export import chrome_trace
        matrix = generate("facebook", scale=0.1)
        _, _, execution = plan_spmv(matrix, CONFIG, channels=2,
                                    validate=False)
        time_spmv(execution, CONFIG)
        events = chrome_trace(recorder)["traceEvents"]
        busy = [e for e in events if e["name"] == "channel.busy"]
        assert busy and "ch0" in busy[0]["args"]
        assert not any(k.startswith("bank") for k in busy[0]["args"])

    def test_profile_renders_channel_table(self, recorder):
        from repro.obs.export import metrics_dict
        from repro.obs.profile import render_profile
        matrix = generate("facebook", scale=0.1)
        _, _, execution = plan_spmv(matrix, CONFIG, channels=2,
                                    validate=False)
        time_spmv(execution, CONFIG)
        text = render_profile(metrics_dict(recorder))
        assert "per-channel schedule" in text
        assert "ch 0" in text and "ch 1" in text


class TestRepresentativeChannelLoads:
    """PB traces must chunk per-bank loads by the execution's channel
    width, not a hardcoded 16 (regression: non-default geometry)."""

    @staticmethod
    def _execution(loads, bpc):
        from repro.core import SpmvExecution
        return SpmvExecution(
            precision="fp64", num_banks=loads.size, round_batches=[4],
            per_bank_elements=loads, input_bytes=0, output_bytes=0,
            matrix_bytes=0, banks_used=loads.size, imbalance=1.0,
            policy="paper", compressed=True, round_x_lengths=[4],
            round_y_lengths=[4], banks_per_channel=bpc)

    def test_width_from_execution_record(self):
        from repro.core.trace import _representative_channel_loads
        loads = np.arange(32, dtype=np.int64)
        execution = self._execution(loads, bpc=8)
        # busiest 8-bank chunk is the last one, not a 16-bank window
        assert _representative_channel_loads(execution) \
            == [float(v) for v in loads[24:32]]

    def test_default_geometry_unchanged(self):
        from repro.core.trace import _representative_channel_loads
        loads = np.arange(32, dtype=np.int64)
        execution = self._execution(loads, bpc=16)
        assert _representative_channel_loads(execution) \
            == [float(v) for v in loads[16:32]]

    def test_explicit_banks_override(self):
        from repro.core.trace import _representative_channel_loads
        loads = np.arange(16, dtype=np.int64)
        execution = self._execution(loads, bpc=16)
        assert _representative_channel_loads(execution, banks=4) \
            == [float(v) for v in loads[12:16]]

    def test_pb_trace_arms_at_most_width_banks(self):
        from repro.core import spmv_pb_trace
        loads = np.arange(1, 25, dtype=np.int64)
        execution = self._execution(loads, bpc=8)
        trace = spmv_pb_trace(execution, CONFIG)
        kernel_banks = {entry.bank for entry in trace
                        if entry.bank is not None}
        assert kernel_banks and max(kernel_banks) < 8

    def test_plan_spmv_stamps_platform_width(self):
        matrix = generate("facebook", scale=0.1)
        _, _, execution = plan_spmv(matrix, CONFIG, validate=False)
        assert execution.banks_per_channel \
            == CONFIG.memory.banks_per_channel
