"""Tests for the SpMV tile kernel (Algorithm 2) and its semiring variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.pim import AllBankEngine
from repro.kernels import Tile, empty_tile, run_tile_round


def random_tile(rng, y_len=16, x_len=24, nnz=12):
    pairs = set()
    while len(pairs) < nnz:
        pairs.add((int(rng.integers(0, y_len)), int(rng.integers(0, x_len))))
    rows, cols = np.array(sorted(pairs)).T
    vals = rng.standard_normal(nnz)
    return Tile(rows, cols, vals, rng.random(x_len), y_len)


def golden(tile, op=np.add):
    y = np.zeros(tile.y_len)
    getattr(op, "at")(y, tile.rows, tile.vals * tile.x_segment[tile.cols])
    return y


class TestTileValidation:
    def test_row_bounds(self):
        with pytest.raises(ExecutionError, match="row"):
            Tile(np.array([5]), np.array([0]), np.array([1.0]),
                 np.ones(4), 4)

    def test_col_bounds(self):
        with pytest.raises(ExecutionError, match="col"):
            Tile(np.array([0]), np.array([9]), np.array([1.0]),
                 np.ones(4), 4)

    def test_array_alignment(self):
        with pytest.raises(ExecutionError, match="align"):
            Tile(np.array([0, 1]), np.array([0]), np.array([1.0]),
                 np.ones(4), 4)

    def test_empty_tile(self):
        tile = empty_tile(8, 8)
        assert tile.nnz == 0


class TestTileRound:
    def test_matches_golden_per_bank(self):
        rng = np.random.default_rng(0)
        engine = AllBankEngine(num_banks=8)
        tiles = [random_tile(rng, nnz=int(rng.integers(1, 30)))
                 for _ in range(8)]
        result = run_tile_round(engine, tiles)
        for tile, y in zip(tiles, result.y_per_bank):
            np.testing.assert_allclose(y[:tile.y_len], golden(tile),
                                       rtol=1e-12, atol=1e-12)

    def test_none_tiles_are_empty(self):
        rng = np.random.default_rng(1)
        engine = AllBankEngine(num_banks=4)
        tiles = [random_tile(rng), None, random_tile(rng), None]
        result = run_tile_round(engine, tiles)
        np.testing.assert_allclose(result.y_per_bank[1], 0.0)
        assert result.nnz_per_bank[1] == 0

    def test_batches_track_slowest_bank(self):
        rng = np.random.default_rng(2)
        engine = AllBankEngine(num_banks=4)
        tiles = [random_tile(rng, nnz=n) for n in (2, 40, 5, 1)]
        result = run_tile_round(engine, tiles)
        batch = (engine.units[0].registers.queue_capacity
                 // engine.units[0].registers.group_size
                 * engine.units[0].registers.group_size)
        assert result.batches == -(-40 // batch)

    def test_sub_accumulate(self):
        rng = np.random.default_rng(3)
        engine = AllBankEngine(num_banks=2)
        tile = random_tile(rng)
        result = run_tile_round(engine, [tile, None], accumulate="sub")
        np.testing.assert_allclose(result.y_per_bank[0][:tile.y_len],
                                   golden(tile, np.subtract))

    def test_min_semiring(self):
        """SSSP-style (min, +) semiring: y[r] = min(y[r], x[c] + v)."""
        rng = np.random.default_rng(4)
        engine = AllBankEngine(num_banks=1)
        tile = random_tile(rng, nnz=20)
        result = run_tile_round(engine, [tile], accumulate="min",
                                multiply="add")
        expect = np.zeros(tile.y_len)  # output tiles start at 0
        np.minimum.at(expect, tile.rows,
                      tile.vals + tile.x_segment[tile.cols])
        np.testing.assert_allclose(result.y_per_bank[0][:tile.y_len],
                                   expect)

    def test_tile_count_must_match_banks(self):
        engine = AllBankEngine(num_banks=4)
        with pytest.raises(ExecutionError, match="per bank"):
            run_tile_round(engine, [None, None])

    def test_multi_pass_large_tile(self):
        """More batches than one JUMP immediate allows (forces passes)."""
        rng = np.random.default_rng(5)
        y_len, x_len = 64, 64
        nnz = 1030 * 8 + 17  # > 1023 batches of 8 at fp64
        rows = rng.integers(0, y_len, nnz)
        cols = rng.integers(0, x_len, nnz)
        # dedupe to satisfy Tile's implicit uniqueness-free contract
        # (duplicates are fine for the kernel: each element is a MAC)
        vals = rng.standard_normal(nnz)
        tile = Tile(rows, cols, vals, rng.random(x_len), y_len)
        engine = AllBankEngine(num_banks=1)
        result = run_tile_round(engine, [tile])
        np.testing.assert_allclose(result.y_per_bank[0][:y_len],
                                   golden(tile), rtol=1e-9)
        assert result.stats.launches >= 2

    @given(st.integers(1, 60), st.integers(0, 59))
    @settings(max_examples=15, deadline=None)
    def test_property_random_sizes(self, nnz, seed):
        rng = np.random.default_rng(seed)
        engine = AllBankEngine(num_banks=2)
        tile = random_tile(rng, y_len=20, x_len=20, nnz=min(nnz, 19 * 19))
        result = run_tile_round(engine, [tile, None])
        np.testing.assert_allclose(result.y_per_bank[0][:tile.y_len],
                                   golden(tile), rtol=1e-9, atol=1e-12)


class TestInt8Path:
    def test_int8_tile_round(self):
        rng = np.random.default_rng(6)
        engine = AllBankEngine(num_banks=2, precision="int8")
        tile = random_tile(rng, nnz=25)
        tile.vals = np.round(tile.vals * 4)
        tile.x_segment = np.round(tile.x_segment * 4)
        result = run_tile_round(engine, [tile, None])
        np.testing.assert_allclose(result.y_per_bank[0][:tile.y_len],
                                   golden(tile))

    def test_int8_uses_larger_batches(self):
        engine8 = AllBankEngine(num_banks=1, precision="int8")
        engine64 = AllBankEngine(num_banks=1, precision="fp64")
        assert (engine8.units[0].registers.queue_capacity
                > engine64.units[0].registers.queue_capacity)
