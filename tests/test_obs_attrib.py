"""Cycle-attribution engine: sum-to-total invariants, critical path,
RunReport artifacts and `psyncpim diff` regression triage."""

import json
import pickle

import numpy as np
import pytest

from repro.analysis.report import JobRecord, SweepResult
from repro.config import (default_system, resolve_attrib, resolve_obs)
from repro.core import plan_spmv, run_spmv
from repro.core.sptrsv import ildu, run_sptrsv
from repro.core.trace import spmv_ab_segments, spmv_ab_trace
from repro.dram import Command, CommandRun, CommandType, TimingParams
from repro.dram.commands import expand_trace
from repro.errors import ConfigError, ExecutionError
from repro.formats import generate, matrices_for
from repro.obs.attrib import (ATTRIB_VERSION, CATEGORIES,
                              AttributionCollector, attribute_spmm,
                              attribute_spmv, attribute_sptrsv,
                              attribute_trace, category_of,
                              critical_path, phase_cycles)
from repro.obs.report import (RunReport, build_run_report, diff_reports,
                              load_reports, render_diff, render_html,
                              render_report, save_reports)

SCALE = 0.02
SPMV_SUITE = list(matrices_for("spmv"))
SPTRSV_SUITE = list(matrices_for("sptrsv"))
STRATEGIES = ("paper", "nnz-rows", "2d-grid", "nnz-2d")


@pytest.fixture(scope="module")
def config():
    return default_system()


def _assert_exact(attribution, perf):
    """Every lane's categories sum bitwise to the modelled cycles."""
    assert attribution.total_cycles == perf.cycles
    for vec in attribution.lane_cycles.values():
        assert sum(vec) == perf.cycles
        assert all(v >= 0 for v in vec)
    device = attribution.device_cycles()
    assert sum(device.values()) == perf.cycles * attribution.num_lanes
    attribution.check()


def _spmv_attr(matrix, config, channels=None, strategy="paper",
               mode="ab"):
    _, _, execution = plan_spmv(matrix, config, validate=False,
                                channels=channels, strategy=strategy)
    return attribute_spmv(execution, config, mode=mode)


def _sptrsv_attr(name, config, channels=None):
    matrix = generate(name, scale=SCALE)
    tri = ildu(matrix).lower
    b = np.ones(tri.shape[0])
    execution = run_sptrsv(tri, b, config, channels=channels).execution
    return attribute_sptrsv(execution, config)


# ----------------------------------------------------------------------
# acceptance: 100% of modelled cycles, across the full sweep space
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SPMV_SUITE)
@pytest.mark.parametrize("channels", [1, 4, 16])
def test_spmv_suite_sum_to_total_across_channels(name, channels, config):
    matrix = generate(name, scale=SCALE)
    attribution, perf = _spmv_attr(matrix, config, channels=channels)
    _assert_exact(attribution, perf)
    assert attribution.num_lanes == channels * 16


@pytest.mark.parametrize("name", SPMV_SUITE)
def test_spmv_suite_sum_to_total_representative(name, config):
    matrix = generate(name, scale=SCALE)
    for mode in ("ab", "pb"):
        attribution, perf = _spmv_attr(matrix, config, mode=mode)
        _assert_exact(attribution, perf)


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", SPMV_SUITE)
def test_spmv_all_strategies_sum_to_total(name, strategy, config):
    matrix = generate(name, scale=SCALE)
    for channels in (None, 4):
        attribution, perf = _spmv_attr(matrix, config, channels=channels,
                                       strategy=strategy)
        _assert_exact(attribution, perf)


def test_spmv_auto_strategy_sum_to_total(config):
    matrix = generate("wiki-Vote", scale=SCALE)
    attribution, perf = _spmv_attr(matrix, config, strategy="auto")
    _assert_exact(attribution, perf)


@pytest.mark.parametrize("name", SPTRSV_SUITE)
def test_sptrsv_suite_sum_to_total(name, config):
    attribution, perf = _sptrsv_attr(name, config)
    _assert_exact(attribution, perf)


@pytest.mark.slow
@pytest.mark.parametrize("name", SPTRSV_SUITE)
@pytest.mark.parametrize("channels", [1, 4, 16])
def test_sptrsv_suite_sum_to_total_sharded(name, channels, config):
    attribution, perf = _sptrsv_attr(name, config, channels=channels)
    _assert_exact(attribution, perf)
    assert attribution.num_lanes == channels * 16


def _spmm_attr(matrix, config, num_rhs, channels=None, mode="ab"):
    from repro.core.spmm import plan_spmm
    _, _, execution = plan_spmm(matrix, config, num_rhs=num_rhs,
                                channels=channels)
    return attribute_spmm(execution, config, mode=mode)


@pytest.mark.parametrize("num_rhs", [1, 4, 16])
@pytest.mark.parametrize("mode", ["ab", "pb"])
def test_spmm_sum_to_total(num_rhs, mode, config):
    matrix = generate("wiki-Vote", scale=SCALE)
    attribution, perf = _spmm_attr(matrix, config, num_rhs, mode=mode)
    _assert_exact(attribution, perf)


@pytest.mark.parametrize("channels", [1, 4, 16])
def test_spmm_sharded_sum_to_total(channels, config):
    matrix = generate("poisson3Da", scale=SCALE)
    attribution, perf = _spmm_attr(matrix, config, num_rhs=4,
                                   channels=channels)
    _assert_exact(attribution, perf)
    assert attribution.num_lanes == channels * 16


def test_spmm_phases_include_rhs_blocks(config):
    matrix = generate("wiki-Vote", scale=SCALE)
    attribution, _ = _spmm_attr(matrix, config, num_rhs=8)
    phases = phase_cycles(attribution)
    assert {"stage", "seam", "kernel", "merge"} <= set(phases)
    assert all(v >= 0 for v in phases.values())


@pytest.mark.parametrize("channels", [1, 4, 16])
def test_spmm_traces_pass_protocol_checker(channels, config):
    """Every widened trace still obeys the JEDEC rules the protocol
    checker re-derives from TimingParams."""
    from repro.check import check_trace, summarize
    from repro.core import spmm_channels_trace
    matrix = generate("poisson3Da", scale=SCALE)
    from repro.core.spmm import plan_spmm
    _, _, execution = plan_spmm(matrix, config, num_rhs=4,
                                channels=channels)
    violations = check_trace(spmm_channels_trace(execution, config))
    assert not violations, summarize(violations)


@pytest.mark.parametrize("mode", ["ab", "pb"])
def test_spmm_single_channel_trace_passes_protocol(mode, config):
    from repro.check import check_trace, summarize
    from repro.core import spmm_ab_trace, spmm_pb_trace
    from repro.core.spmm import plan_spmm
    matrix = generate("wiki-Vote", scale=SCALE)
    _, _, execution = plan_spmm(matrix, config, num_rhs=6)
    synth = spmm_ab_trace if mode == "ab" else spmm_pb_trace
    violations = check_trace(synth(execution, config))
    assert not violations, summarize(violations)


def test_both_engines_attribute_identically(config):
    """The lane and scalar engines produce one execution record, so the
    attribution must be identical command for command."""
    matrix = generate("wiki-Vote", scale=SCALE)
    x = np.random.default_rng(3).random(matrix.shape[1])
    results = {}
    for engine in ("lane", "scalar"):
        execution = run_spmv(matrix, x, config, engine=engine,
                             engine_banks=4, validate=False).execution
        results[engine] = attribute_spmv(execution, config)
    lane_att, lane_perf = results["lane"]
    scalar_att, scalar_perf = results["scalar"]
    assert lane_perf.cycles == scalar_perf.cycles
    assert lane_att.lane_cycles == scalar_att.lane_cycles
    _assert_exact(lane_att, lane_perf)


def test_categories_are_exclusive_per_command():
    """Every command kind/tag maps to exactly one category index."""
    for kind in CommandType:
        for tag in (None, "stage_x", "merge_y", "read_b", "broadcast",
                    "program", "kernel"):
            cat = category_of(Command(kind, tag=tag))
            assert 0 <= cat < len(CATEGORIES)


# ----------------------------------------------------------------------
# property tests: randomized traces, expanded vs run-length
# ----------------------------------------------------------------------
def _random_trace(seed, num_channels=3, banks=16):
    """A structured random command stream over several channels."""
    rng = np.random.default_rng(seed)
    trace = []
    tags = [None, "stage_x", "merge_y", "read_b", "program", "kernel"]
    for _ in range(rng.integers(10, 40)):
        ch = int(rng.integers(0, num_channels))
        burst = rng.integers(0, 4)
        if burst == 0:        # single-bank open/stream/close
            bank = int(rng.integers(0, banks))
            row = int(rng.integers(0, 64))
            tag = tags[int(rng.integers(0, len(tags)))]
            trace.append(Command(CommandType.ACT, ch, bank, row))
            trace.append(CommandRun(
                Command(CommandType.RD if rng.integers(0, 2) else
                        CommandType.WR, ch, bank, row,
                        tag=tag), int(rng.integers(1, 20))))
            trace.append(Command(CommandType.PRE, ch, bank, row))
        elif burst == 1:      # all-bank broadcast burst
            row = int(rng.integers(0, 64))
            trace.append(Command(CommandType.MODE, ch))
            trace.append(Command(CommandType.ACT_AB, ch, row=row))
            trace.append(CommandRun(
                Command(CommandType.RD_AB, ch, row=row,
                        min_gap=int(rng.integers(0, 3))),
                int(rng.integers(1, 30))))
            trace.append(Command(CommandType.PRE_AB, ch, row=row))
        elif burst == 2:      # explicit refresh
            trace.append(Command(CommandType.REF, ch))
        else:                 # bare mode switch
            trace.append(Command(CommandType.MODE, ch))
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_random_traces_sum_to_total(seed, config):
    trace = _random_trace(seed)
    attribution, perf = attribute_trace(trace, config)
    _assert_exact(attribution, perf)


@pytest.mark.parametrize("seed", range(12))
def test_run_length_and_expanded_attribute_identically(seed, config):
    trace = _random_trace(seed)
    expanded = list(expand_trace(trace))
    att_runs, perf_runs = attribute_trace(trace, config)
    att_flat, perf_flat = attribute_trace(expanded, config)
    assert perf_runs.cycles == perf_flat.cycles
    assert att_runs.lane_cycles == att_flat.lane_cycles
    assert att_runs.channel_clock == att_flat.channel_clock


def test_real_trace_run_length_equivalence(config):
    matrix = generate("wiki-Vote", scale=SCALE)
    _, _, execution = plan_spmv(matrix, config, validate=False)
    trace = spmv_ab_trace(execution, config)
    att_runs, _ = attribute_trace(trace, config)
    att_flat, _ = attribute_trace(list(expand_trace(trace)), config)
    assert att_runs.lane_cycles == att_flat.lane_cycles


def test_collector_total_cross_check(config):
    trace = _random_trace(0)
    timing = TimingParams()
    collector = AttributionCollector(
        trfc=timing.trfc, mode_switch_cycles=timing.mode_switch_cycles)
    from repro.core.timing import price_trace
    perf = price_trace(trace, config, collector=collector)
    with pytest.raises(ExecutionError):
        collector.finalize(banks_per_channel=16,
                           total_cycles=perf.cycles + 1)


def test_collector_does_not_change_pricing(config):
    trace = _random_trace(1)
    from repro.core.timing import price_trace
    timing = TimingParams()
    plain = price_trace(trace, config)
    collector = AttributionCollector(
        trfc=timing.trfc, mode_switch_cycles=timing.mode_switch_cycles)
    observed = price_trace(trace, config, collector=collector)
    assert plain.cycles == observed.cycles
    assert plain.counts == observed.counts
    assert plain.tag_cycles == observed.tag_cycles


# ----------------------------------------------------------------------
# segments, critical path, phases
# ----------------------------------------------------------------------
def test_segments_tile_the_trace(config):
    matrix = generate("cant", scale=SCALE)
    _, _, execution = plan_spmv(matrix, config, validate=False)
    seg = spmv_ab_segments(execution, config)
    assert seg.trace == spmv_ab_trace(execution, config)
    covered = sorted((s.start, s.end) for s in seg.segments)
    assert covered[0][0] == 0
    assert covered[-1][1] == len(seg.trace)
    for (_, end), (start, _) in zip(covered, covered[1:]):
        assert end == start


def test_representative_critical_path_is_exact(config):
    """One channel, serialized: the barrier makespan IS the schedule."""
    matrix = generate("cant", scale=SCALE)
    attribution, perf = _spmv_attr(matrix, config)
    path = critical_path(attribution)
    assert path is not None
    assert path.makespan == perf.cycles
    assert path.modelled_cycles == perf.cycles
    assert path.total_slack == 0
    for node in path.nodes:
        assert node.critical_channel == 0
        assert node.duration == node.durations[0]


def test_sharded_critical_path_bounds_modelled_cycles(config):
    attribution, perf = _sptrsv_attr("2cubes_sphere", config, channels=4)
    path = critical_path(attribution)
    assert path is not None
    assert path.makespan >= perf.cycles
    assert path.total_slack >= 0
    for node in path.nodes:
        assert node.slack[node.critical_channel] == 0
        assert all(s >= 0 for s in node.slack.values())


def test_phase_cycles_cover_known_phases(config):
    attribution, _ = _sptrsv_attr("2cubes_sphere", config)
    phases = phase_cycles(attribution)
    assert {"merge", "broadcast", "kernel"} <= set(phases)
    assert all(v >= 0 for v in phases.values())
    matrix = generate("cant", scale=SCALE)
    spmv_att, _ = _spmv_attr(matrix, config)
    spmv_phases = phase_cycles(spmv_att)
    assert {"stage", "seam", "kernel", "merge"} <= set(spmv_phases)


def test_padding_only_in_ab_mode(config):
    matrix = generate("webbase-1M", scale=SCALE)
    ab, _ = _spmv_attr(matrix, config, mode="ab")
    pb, _ = _spmv_attr(matrix, config, mode="pb")
    assert ab.device_cycles()["padding"] > 0   # skewed matrix: real waste
    assert pb.device_cycles()["padding"] == 0  # per-bank mode never pads


# ----------------------------------------------------------------------
# RunReport artifact
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sample_report(config):
    matrix = generate("cant", scale=SCALE)
    _, _, execution = plan_spmv(matrix, config, validate=False)
    attribution, perf = attribute_spmv(execution, config)
    return build_run_report(
        attribution, perf, label="spmv/cant", kind="spmv", matrix="cant",
        strategy="paper", config=config,
        alu_operations=2 * execution.total_elements)


def test_run_report_invariants(sample_report):
    sample_report.check()
    fractions = sample_report.fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-12
    assert sample_report.attrib_version == ATTRIB_VERSION
    util = sample_report.utilization
    assert 0.0 < util["bus_utilisation"] <= 1.0
    assert util["compute_efficiency"] > 0
    assert sample_report.critical_path["makespan"] == \
        sample_report.total_cycles


def test_run_report_json_roundtrip(sample_report, tmp_path):
    path = save_reports(tmp_path / "bundle.json", {"a": sample_report})
    loaded = load_reports(path)["a"]
    assert loaded.to_dict() == sample_report.to_dict()
    loaded.check()
    # the on-disk form is stable, sorted JSON
    payload = json.loads(path.read_text())
    assert payload["reports"]["a"]["total_cycles"] == \
        sample_report.total_cycles


def test_run_report_pickle_roundtrip(sample_report, tmp_path):
    path = save_reports(tmp_path / "bundle.pkl", {"a": sample_report})
    loaded = load_reports(path)["a"]
    assert loaded.to_dict() == sample_report.to_dict()
    clone = pickle.loads(pickle.dumps(sample_report))
    assert clone.to_dict() == sample_report.to_dict()


def test_render_report_and_html(sample_report):
    text = render_report(sample_report)
    assert "cycle attribution" in text
    assert "critical path" in text
    html = render_html({"spmv/cant": sample_report})
    assert html.startswith("<!DOCTYPE html>")
    assert "spmv/cant" in html and "</html>" in html


def test_load_reports_rejects_missing_and_malformed(tmp_path):
    with pytest.raises(ExecutionError, match="no report bundle"):
        load_reports(tmp_path / "missing.json")
    junk = tmp_path / "junk.json"
    junk.write_text('{"not": "a bundle"}')
    with pytest.raises(ExecutionError, match="not a report bundle"):
        load_reports(junk)


def test_run_report_check_rejects_corruption(sample_report):
    bad = RunReport.from_dict(sample_report.to_dict())
    bad.lane_cycles[0][0] += 1
    with pytest.raises(ExecutionError):
        bad.check()


# ----------------------------------------------------------------------
# acceptance: diff names the dominant category and top regressors
# ----------------------------------------------------------------------
def _bundle(config, strategy, names):
    reports = {}
    for name in names:
        matrix = generate(name, scale=SCALE)
        attribution, perf = _spmv_attr(matrix, config, strategy=strategy)
        reports[f"spmv/{name}"] = build_run_report(
            attribution, perf, label=f"spmv/{name}", kind="spmv",
            matrix=name, strategy=strategy, config=config)
    return reports


def test_diff_names_dominant_category_and_regressors(config):
    names = ["webbase-1M", "Stanford", "rma10"]
    base = _bundle(config, "paper", names)
    new = _bundle(config, "2d-grid", names)   # the injected regression
    diff = diff_reports(base, new)
    assert diff.total_delta > 0
    assert diff.dominant_category in CATEGORIES
    regressions = diff.regressions(top=5)
    assert regressions, "2d-grid must regress webbase-1M/Stanford"
    assert regressions[0].label == "spmv/webbase-1M"
    assert {e.label for e in regressions} >= {"spmv/webbase-1M",
                                              "spmv/Stanford"}
    for entry in regressions:
        assert entry.dominant_category in CATEGORIES
        assert entry.delta > 0 and entry.ratio > 1.0
    text = render_diff(diff)
    assert "dominant changed category:" in text
    assert "webbase-1M" in text and "top regressions" in text


def test_diff_tracks_missing_labels(sample_report):
    diff = diff_reports({"only-base": sample_report},
                        {"only-new": sample_report})
    assert diff.entries == []
    assert diff.only_base == ["only-base"]
    assert diff.only_new == ["only-new"]
    assert "no common labels" in render_diff(diff)


# ----------------------------------------------------------------------
# satellite: merged metrics keep failed jobs' payloads, tagged
# ----------------------------------------------------------------------
def _record(label, failed=False, metrics=None):
    return JobRecord(label=label, kernel="spmv", matrix="m",
                     error="ValueError: boom" if failed else "",
                     metrics=metrics)


def test_merged_counters_tags_failed_jobs():
    result = SweepResult(records=[
        _record("good", metrics={"counters": {"dram.cycles": 100.0}}),
        _record("bad", failed=True,
                metrics={"counters": {"dram.cycles": 7.0}}),
    ], wall_seconds=1.0)
    merged = result.merged_counters()
    assert merged["dram.cycles"] == 100.0
    assert merged["failed[bad].dram.cycles"] == 7.0


def test_merged_gauges_and_bank_counters_survive_failures():
    result = SweepResult(records=[
        _record("good", metrics={
            "gauges": {"imbalance": 1.5},
            "bank_counters": {"channel.busy": [1.0, 2.0]}}),
        _record("bad", failed=True, metrics={
            "gauges": {"imbalance": 9.0},
            "bank_counters": {"channel.busy": [5.0]}}),
        _record("good2", metrics={
            "bank_counters": {"channel.busy": [10.0, 10.0, 10.0]}}),
    ], wall_seconds=1.0)
    gauges = result.merged_gauges()
    assert gauges["imbalance"] == 1.5
    assert gauges["failed[bad].imbalance"] == 9.0
    banks = result.merged_bank_counters()
    assert banks["channel.busy"] == [11.0, 12.0, 10.0]
    assert banks["failed[bad].channel.busy"] == [5.0]


def test_merged_counters_empty_without_metrics():
    result = SweepResult(records=[_record("a"), _record("b", failed=True)],
                         wall_seconds=1.0)
    assert result.merged_counters() == {}
    assert result.merged_gauges() == {}
    assert result.merged_bank_counters() == {}


# ----------------------------------------------------------------------
# satellite: sweep integration ships RunReports in JobRecords
# ----------------------------------------------------------------------
def test_sweep_job_attrib_flows_into_record(tmp_path):
    from repro.sweep.runner import SweepJob, execute_job
    job = SweepJob(kernel="spmv", matrix="wiki-Vote", scale=SCALE,
                   attrib=True)
    record = execute_job(job, cache_dir=tmp_path)
    assert not record.failed, record.error
    assert isinstance(record.attrib, RunReport)
    record.attrib.check()
    assert record.attrib.total_cycles == record.report.cycles
    assert "_attrib" not in record.extras
    # cached rerun returns the identical artifact
    again = execute_job(job, cache_dir=tmp_path)
    assert again.cache_misses == 0
    assert again.attrib.to_dict() == record.attrib.to_dict()


def test_sweep_without_attrib_has_no_report(tmp_path):
    from repro.sweep.runner import SweepJob, execute_job
    record = execute_job(SweepJob(kernel="spmv", matrix="wiki-Vote",
                                  scale=SCALE), cache_dir=tmp_path)
    assert record.attrib is None


def test_sweep_result_attrib_reports(tmp_path):
    from repro.sweep import run_sweep, suite_jobs
    jobs = suite_jobs(kernel="sptrsv", matrices=["poisson3Da"],
                      scale=SCALE, attrib=True, lower=True)
    result = run_sweep(jobs, workers=1, cache_dir=tmp_path)
    result.raise_failures()
    reports = result.attrib_reports()
    assert set(reports) == {"sptrsv:poisson3Da/lower"}
    reports["sptrsv:poisson3Da/lower"].check()


# ----------------------------------------------------------------------
# satellite: flag/env precedence
# ----------------------------------------------------------------------
def test_resolve_attrib_precedence(monkeypatch):
    monkeypatch.delenv("PSYNCPIM_ATTRIB", raising=False)
    assert resolve_attrib() is False
    assert resolve_attrib(True) is True
    monkeypatch.setenv("PSYNCPIM_ATTRIB", "1")
    assert resolve_attrib() is True
    assert resolve_attrib(False) is False    # explicit beats env
    monkeypatch.setenv("PSYNCPIM_ATTRIB", "off")
    assert resolve_attrib() is False
    monkeypatch.setenv("PSYNCPIM_ATTRIB", "maybe")
    with pytest.raises(ConfigError):
        resolve_attrib()


def test_resolve_obs_precedence(monkeypatch):
    monkeypatch.delenv("PSYNCPIM_OBS", raising=False)
    assert resolve_obs() is False
    monkeypatch.setenv("PSYNCPIM_OBS", "yes")
    assert resolve_obs() is True
    assert resolve_obs(False) is False


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def test_cli_attrib_writes_bundle_and_html(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "bundle.json"
    html = tmp_path / "report.html"
    code = main(["attrib", "--kernel", "spmv", "--matrices", "wiki-Vote",
                 "--scale", str(SCALE), "--out", str(out),
                 "--html", str(html)])
    assert code == 0
    text = capsys.readouterr().out
    assert "cycle attribution" in text
    assert out.exists() and html.exists()
    assert "</html>" in html.read_text()
    loaded = load_reports(out)
    assert set(loaded) == {"spmv/wiki-Vote"}
    loaded["spmv/wiki-Vote"].check()


def test_cli_diff_reports_regression(tmp_path, capsys):
    from repro.cli import main
    base, new = tmp_path / "base.json", tmp_path / "new.json"
    for strategy, path in (("paper", base), ("2d-grid", new)):
        assert main(["attrib", "--matrices", "webbase-1M", "--scale",
                     str(SCALE), "--strategy", strategy, "--quiet",
                     "--out", str(path)]) == 0
    capsys.readouterr()
    assert main(["diff", str(base), str(new)]) == 0
    text = capsys.readouterr().out
    assert "dominant changed category:" in text
    assert "webbase-1M" in text
    # the gate flips the exit code on a big regression
    assert main(["diff", str(base), str(new),
                 "--fail-above", "1.0"]) == 1
    assert main(["diff", str(new), str(base),
                 "--fail-above", "1.0"]) == 0


def test_cli_spmv_attrib_flag(capsys):
    from repro.cli import main
    assert main(["spmv", "--matrix", "wiki-Vote", "--scale", str(SCALE),
                 "--attrib"]) == 0
    text = capsys.readouterr().out
    assert "cycle attribution" in text
    assert "critical path" in text


def test_cli_sweep_attrib_out(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "sweep.json"
    assert main(["sweep", "--kernel", "spmv", "--matrices", "wiki-Vote",
                 "--scale", str(SCALE), "--workers", "1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--attrib-out", str(out)]) == 0
    assert "attribution summary" in capsys.readouterr().out
    loaded = load_reports(out)
    assert set(loaded) == {"spmv:wiki-Vote"}
