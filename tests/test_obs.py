"""The observability subsystem: recorder, exporters, instrumentation.

Covers the three tentpole guarantees:

* recording fidelity — spans nest, counters/gauges/bank arrays accumulate,
  cross-process payloads (mark/delta/merge) round-trip losslessly;
* zero interference — with ``PSYNCPIM_OBS`` off nothing is recorded, and
  enabling it never changes modelled cycles or energy (bitwise);
* implementation independence — the scalar and lane engines, and the
  scalar and fast planners, emit identical obs counters, the differential
  guarantee the profile tables rely on.
"""

import json
import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro import obs
from repro.config import ENGINE_ENV, default_system
from repro.core import run_spmv, run_sptrsv, time_spmv
from repro.core.spmv import plan_spmv
from repro.core.sptrsv import ildu
from repro.formats import generate
from repro.sweep import SweepJob, execute_job, run_sweep

CFG = default_system()


@pytest.fixture
def recording():
    """Obs on, starting and finishing with an empty recorder."""
    was = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        yield obs.recorder()
    finally:
        obs.reset()
        if not was:
            obs.disable()


@contextmanager
def _engine_env(name):
    old = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = name
    try:
        yield
    finally:
        if old is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = old


# ----------------------------------------------------------------------
# recorder basics
# ----------------------------------------------------------------------
def test_disabled_records_nothing():
    obs.reset()
    obs.disable()
    with obs.span("phase"):
        obs.add_counter("c", 5)
        obs.set_gauge("g", 1.0)
        obs.add_bank_counter("b", [1, 2, 3])
    rec = obs.recorder()
    assert rec.update_count == 0
    assert not rec.events and not rec.counters
    assert not rec.gauges and not rec.bank_counters


def test_disabled_span_is_shared_noop():
    obs.disable()
    assert obs.span("a") is obs.span("b")


def test_span_nesting_depth_and_args(recording):
    with obs.span("outer", cat="t", answer=42):
        with obs.span("inner", cat="t"):
            pass
    by_name = {e.name: e for e in recording.events}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    assert by_name["outer"].args == {"answer": 42}
    assert by_name["inner"].start_ns >= by_name["outer"].start_ns
    assert by_name["outer"].dur_ns >= by_name["inner"].dur_ns


def test_span_records_exception(recording):
    with pytest.raises(ValueError):
        with obs.span("failing"):
            raise ValueError("boom")
    (event,) = recording.events
    assert event.args["error"] == "ValueError"


def test_profiled_decorator(recording):
    @obs.profiled("decorated", cat="t")
    def fn(x):
        return x + 1

    assert fn(1) == 2
    assert [e.name for e in recording.events] == ["decorated"]


def test_counters_gauges_accumulate(recording):
    obs.add_counter("c", 2)
    obs.add_counter("c", 3)
    obs.set_gauge("g", 1.0)
    obs.set_gauge("g", 7.0)
    assert recording.counters["c"] == 5
    assert recording.gauges["g"] == 7.0


def test_bank_counter_mixed_lengths(recording):
    obs.add_bank_counter("b", [1.0, 2.0])
    obs.add_bank_counter("b", [10.0, 10.0, 10.0, 10.0])
    obs.add_bank_counter("b", [1.0])
    np.testing.assert_array_equal(recording.bank_counters["b"],
                                  [12.0, 12.0, 10.0, 10.0])


def test_mark_delta_merge_roundtrip(recording):
    obs.add_counter("before", 1)
    mark = recording.mark()
    with obs.span("phase"):
        obs.add_counter("after", 2, sample=True)
        obs.add_bank_counter("banks", [1.0, 2.0])
        obs.set_gauge("g", 3.0)
    payload = recording.delta_since(mark)
    assert payload["counters"] == {"after": 2}
    assert "before" not in payload["counters"]
    assert payload["gauges"] == {"g": 3.0}
    assert payload["bank_counters"] == {"banks": [1.0, 2.0]}
    assert len(payload["events"]) == 1 and len(payload["samples"]) == 1

    other = obs.Recorder()
    other.merge(payload)
    assert other.counters == {"after": 2}
    np.testing.assert_array_equal(other.bank_counters["banks"], [1.0, 2.0])
    assert [e.name for e in other.events] == ["phase"]


def test_env_enabled():
    assert obs.env_enabled({"PSYNCPIM_OBS": "1"})
    assert obs.env_enabled({"PSYNCPIM_OBS": "true"})
    assert not obs.env_enabled({"PSYNCPIM_OBS": "0"})
    assert not obs.env_enabled({})


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def test_chrome_trace_structure(recording):
    with obs.span("outer"):
        with obs.span("inner"):
            obs.add_counter("c", 1, sample=True)
    obs.add_bank_counter("banks", list(range(40)))
    trace = obs.chrome_trace(recording)
    events = trace["traceEvents"]
    assert {e["ph"] for e in events} == {"X", "C"}
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"outer", "inner"}
    for e in spans:
        assert e["pid"] == os.getpid() and e["dur"] >= 0
    (bank_event,) = [e for e in events
                     if e["ph"] == "C" and e["name"] == "banks"]
    assert len(bank_event["args"]) == obs.MAX_BANK_SERIES + 1  # +rest
    json.dumps(trace)  # must be JSON-serialisable as-is


def test_export_and_load_roundtrip(recording, tmp_path):
    with obs.span("phase"):
        obs.add_counter("c", 4)
    obs.add_bank_counter("banks", [1.0, 2.0])
    paths = obs.export(tmp_path)
    for path in paths.values():
        assert path.exists()
    metrics = obs.load_metrics(tmp_path)
    assert metrics["counters"] == {"c": 4}
    assert metrics["bank_counters"]["banks"] == [1.0, 2.0]
    assert metrics["spans"]["phase"]["calls"] == 1
    rendered = obs.render_profile(metrics)
    assert "per-phase timings" in rendered and "phase" in rendered


def test_render_profile_sections(recording):
    m = generate("poisson3Da", scale=0.03)
    x = np.random.default_rng(0).random(m.shape[1])
    result = run_spmv(m, x, CFG, fidelity="functional", engine_banks=8)
    time_spmv(result.execution, CFG, with_energy=True)
    rendered = obs.render_profile(obs.metrics_dict(obs.recorder()))
    assert "per-phase timings" in rendered
    assert "per-bank beats" in rendered
    assert "DRAM command mix" in rendered
    assert "energy breakdown" in rendered


# ----------------------------------------------------------------------
# zero interference: obs on/off changes no modelled numbers
# ----------------------------------------------------------------------
def test_obs_does_not_change_results():
    m = generate("poisson3Da", scale=0.05)
    x = np.random.default_rng(1).random(m.shape[1])

    def workload():
        result = run_spmv(m, x, CFG)
        report = time_spmv(result.execution, CFG, with_energy=True)
        return result.y, report

    obs.reset()
    obs.disable()
    y_off, report_off = workload()
    obs.enable()
    try:
        y_on, report_on = workload()
    finally:
        obs.reset()
        obs.disable()
    np.testing.assert_array_equal(y_off, y_on)
    assert report_off.cycles == report_on.cycles
    assert report_off.counts == report_on.counts
    assert report_off.energy.total_pj == report_on.energy.total_pj


# ----------------------------------------------------------------------
# differential guarantees
# ----------------------------------------------------------------------
def _counter_state():
    rec = obs.recorder()
    return (dict(rec.counters),
            {k: v.tolist() for k, v in rec.bank_counters.items()})


def test_scalar_and_lane_engine_counters_match(recording):
    m = generate("poisson3Da", scale=0.04)
    x = np.random.default_rng(2).random(m.shape[1])
    states = {}
    for engine in ("scalar", "lane"):
        obs.reset()
        with _engine_env(engine):
            run_spmv(m, x, CFG, fidelity="functional", engine_banks=8)
        states[engine] = _counter_state()
    scalar_counters, scalar_banks = states["scalar"]
    lane_counters, lane_banks = states["lane"]
    assert scalar_counters == lane_counters
    assert scalar_banks.keys() == lane_banks.keys()
    for name in scalar_banks:
        assert scalar_banks[name] == lane_banks[name], name
    assert scalar_banks["engine.bank_busy_beats"]  # non-trivial workload


def test_scalar_and_fast_planner_counters_match(recording):
    m = generate("poisson3Da", scale=0.05)
    states = {}
    for planner in ("scalar", "fast"):
        obs.reset()
        _, _, execution = plan_spmv(m, CFG, planner=planner)
        time_spmv(execution, CFG)
        counters, _ = _counter_state()
        states[planner] = {k: v for k, v in counters.items()
                           if k.startswith(("dram.", "spmv."))}
    assert states["scalar"] == states["fast"]
    assert any(k.startswith("dram.cmd.") for k in states["fast"])


# ----------------------------------------------------------------------
# instrumented layers emit what the profile report consumes
# ----------------------------------------------------------------------
def test_spmv_emits_planner_spans_and_gauges(recording):
    m = generate("poisson3Da", scale=0.04)
    x = np.random.default_rng(0).random(m.shape[1])
    run_spmv(m, x, CFG)
    names = {e.name for e in recording.events}
    assert {"plan.partition", "plan.distribute", "spmv.rounds"} <= names
    assert "spmv.banks_used" in recording.gauges
    assert "spmv.imbalance" in recording.gauges


def test_sptrsv_emits_spans(recording):
    m = generate("poisson3Da", scale=0.04)
    factors = ildu(m)
    b = np.random.default_rng(0).random(m.shape[0])
    run_sptrsv(factors.lower, b, CFG)
    names = {e.name for e in recording.events}
    assert {"sptrsv.ildu", "sptrsv.level_schedule",
            "sptrsv.solve"} <= names
    assert recording.counters["sptrsv.solves"] == 1


def test_dram_pricing_emits_command_mix_and_energy(recording):
    m = generate("poisson3Da", scale=0.04)
    _, _, execution = plan_spmv(m, CFG)
    report = time_spmv(execution, CFG, with_energy=True)
    counters = recording.counters
    assert counters["dram.cycles"] == report.cycles
    for kind, n in report.counts.items():
        if n:
            assert counters[f"dram.cmd.{kind.name}"] == n
    assert (counters["dram.row_hits"] + counters["dram.row_misses"]
            == report.column_commands)
    assert counters["energy.total_pj"] == pytest.approx(
        report.energy.total_pj)


# ----------------------------------------------------------------------
# sweep integration: exception capture + metric shipping
# ----------------------------------------------------------------------
def test_sweep_job_failure_is_captured(tmp_path):
    job = SweepJob(kernel="spmv", matrix=str(tmp_path / "missing.mtx"))
    record = execute_job(job, cache_dir=tmp_path, use_cache=False)
    assert record.failed
    assert record.report is None
    assert "FileNotFoundError" in record.error
    assert "missing.mtx" in record.traceback
    assert "Traceback" in record.traceback


def test_sweep_unknown_kernel_still_raises(tmp_path):
    from repro.errors import ExecutionError
    with pytest.raises(ExecutionError, match="unknown sweep kernel"):
        execute_job(SweepJob(kernel="nope"), cache_dir=tmp_path)


def test_sweep_failures_surface_in_result(tmp_path):
    from repro.errors import ExecutionError
    jobs = [SweepJob(kernel="spmv", matrix="poisson3Da", scale=0.03),
            SweepJob(kernel="spmv", matrix=str(tmp_path / "gone.mtx"))]
    result = run_sweep(jobs, workers=1, cache_dir=tmp_path,
                       use_cache=False)
    assert len(result) == 2
    assert not result.ok
    assert [r.label for r in result.failures] == [jobs[1].resolved_label()]
    assert "FAILED" in result.summary_table()
    with pytest.raises(ExecutionError, match="gone.mtx"):
        result.raise_failures()
    assert result.records[0].report is not None  # good job unaffected


def test_sweep_ships_metrics_payloads(recording, tmp_path):
    jobs = [SweepJob(kernel="spmv", matrix="poisson3Da", scale=0.03)]
    result = run_sweep(jobs, workers=1, cache_dir=tmp_path,
                       use_cache=False)
    (record,) = result.records
    assert record.metrics is not None
    assert record.metrics["counters"].get("sweep.jobs") == 1
    assert any(k.startswith("dram.cmd.")
               for k in record.metrics["counters"])
    assert result.merged_counters()["sweep.jobs"] == 1
    # Serial sweeps record in-process: the parent recorder already has it.
    assert recording.counters["sweep.jobs"] == 1
    assert (recording.counters["sweep.cache_misses"]
            == record.cache_misses > 0)
    assert recording.counters["sweep.cache_hits"] == 0  # cache disabled
    assert any(e.name == "sweep.job" for e in recording.events)
