"""Differential suite for the partitioning strategy library.

Every strategy must produce plans that pass the planner's own invariant
check, compute exactly A @ x (functional path vs the scipy oracle and
the scalar-planner paper path), and respect the one-memory-row tile
capacity — across randomized and pathological matrices. The ``"paper"``
strategy is pinned byte-identical to the pre-registry planner, and the
auto-tuner must be deterministic and cache-stable.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.config import (STRATEGY_CHOICES, STRATEGY_ENV, default_system,
                          resolve_strategy)
from repro.core import (PSyncPIM, make_strategy, partition, plan_spmv,
                        run_spmv, run_sptrsv, strategy_names,
                        tile_capacity, tune_strategy)
from repro.core.partition import _check_plan
from repro.core.strategies import AutoStrategy, estimate_cycles
from repro.errors import ConfigError
from repro.formats import COOMatrix, generate
from repro.sweep import ArtifactCache

CONFIG = default_system()
CONCRETE = tuple(strategy_names())


def random_coo(rng, nrows, ncols, density=0.03):
    mask = rng.random((nrows, ncols)) < density
    rows, cols = np.nonzero(mask)
    vals = rng.standard_normal(rows.size)
    return COOMatrix((nrows, ncols), rows.astype(np.int64),
                     cols.astype(np.int64), vals)


def from_dense(dense):
    rows, cols = np.nonzero(dense)
    return COOMatrix(dense.shape, rows.astype(np.int64),
                     cols.astype(np.int64),
                     np.asarray(dense)[rows, cols].astype(np.float64))


def pathological_matrices():
    """Shapes that historically break tiling code."""
    rng = np.random.default_rng(7)
    out = {}
    # empty rows: only every 5th row is populated
    dense = np.zeros((150, 200))
    dense[::5, :] = (rng.random((30, 200)) < 0.2) * rng.standard_normal(
        (30, 200))
    out["empty-rows"] = from_dense(dense)
    # one dense column dominating an otherwise sparse matrix
    dense = (rng.random((200, 180)) < 0.005) * rng.standard_normal(
        (200, 180))
    dense[:, 11] = rng.standard_normal(200)
    out["dense-column"] = from_dense(dense)
    # single row / single column
    out["single-row"] = random_coo(rng, 1, 500, density=0.4)
    out["single-col"] = random_coo(rng, 400, 1, density=0.4)
    # wide and tall aspect ratios spanning several tiles
    out["wide"] = random_coo(rng, 40, 900, density=0.05)
    out["tall"] = random_coo(rng, 900, 40, density=0.05)
    return out


PATHOLOGICAL = pathological_matrices()


def scipy_spmv(matrix, x):
    return sp.coo_matrix((matrix.vals, (matrix.rows, matrix.cols)),
                         shape=matrix.shape).tocsr() @ x


class TestResolveStrategy:
    def test_default_is_paper(self, monkeypatch):
        monkeypatch.delenv(STRATEGY_ENV, raising=False)
        assert resolve_strategy(None) == "paper"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "nnz-rows")
        assert resolve_strategy("2d-grid") == "2d-grid"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "nnz-2d")
        assert resolve_strategy(None) == "nnz-2d"

    def test_case_and_whitespace_normalised(self):
        assert resolve_strategy("  Auto ") == "auto"

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            resolve_strategy("zigzag")

    def test_registry_matches_choices(self):
        assert set(CONCRETE) | {"auto"} == set(STRATEGY_CHOICES)
        assert CONCRETE[0] == "paper"

    def test_make_strategy_auto_facade(self):
        assert isinstance(make_strategy("auto"), AutoStrategy)


class TestPlanInvariants:
    """Every strategy, every matrix: valid plans within tile capacity."""

    @pytest.mark.parametrize("strategy", CONCRETE)
    @pytest.mark.parametrize("compress", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_plans_check(self, strategy, compress, seed):
        rng = np.random.default_rng(seed)
        matrix = random_coo(rng, 200 + 40 * seed, 260 - 30 * seed,
                            density=0.02 + 0.01 * seed)
        plan = make_strategy(strategy).partition(matrix, CONFIG,
                                                 compress=compress)
        _check_plan(plan, matrix)
        self._check_capacity(plan)

    @pytest.mark.parametrize("strategy", CONCRETE)
    @pytest.mark.parametrize("name", sorted(PATHOLOGICAL))
    def test_pathological_plans_check(self, strategy, name):
        matrix = PATHOLOGICAL[name]
        for compress in (True, False):
            plan = make_strategy(strategy).partition(matrix, CONFIG,
                                                     compress=compress)
            _check_plan(plan, matrix)
            self._check_capacity(plan)

    @staticmethod
    def _check_capacity(plan):
        cap = tile_capacity(default_system(), "fp64")
        for tile in plan.tiles:
            lo, hi = tile.row_range
            assert 0 < hi - lo <= cap
            assert tile.x_length <= cap
            tile.validate()

    @pytest.mark.parametrize("strategy", CONCRETE)
    def test_empty_matrix(self, strategy):
        matrix = COOMatrix((64, 64), np.array([], dtype=np.int64),
                           np.array([], dtype=np.int64),
                           np.array([], dtype=np.float64))
        plan = make_strategy(strategy).partition(matrix, CONFIG)
        assert plan.tiles == []


class TestFunctionalDifferential:
    """Strategy results vs scipy and vs the scalar-planner paper path."""

    @pytest.mark.parametrize("strategy", CONCRETE)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_spmv_matches_scipy(self, strategy, seed):
        rng = np.random.default_rng(seed)
        matrix = random_coo(rng, 230, 190, density=0.03)
        x = rng.standard_normal(190)
        got = run_spmv(matrix, x, CONFIG, strategy=strategy).y
        assert np.allclose(got, scipy_spmv(matrix, x))

    @pytest.mark.parametrize("strategy", CONCRETE)
    @pytest.mark.parametrize("name", sorted(PATHOLOGICAL))
    def test_spmv_pathological_matches_scipy(self, strategy, name):
        matrix = PATHOLOGICAL[name]
        rng = np.random.default_rng(11)
        x = rng.standard_normal(matrix.shape[1])
        got = run_spmv(matrix, x, CONFIG, strategy=strategy).y
        assert np.allclose(got, scipy_spmv(matrix, x))

    @pytest.mark.parametrize("strategy", CONCRETE)
    def test_spmv_matches_scalar_planner_paper(self, strategy):
        rng = np.random.default_rng(5)
        matrix = random_coo(rng, 260, 260, density=0.025)
        x = rng.standard_normal(260)
        oracle = run_spmv(matrix, x, CONFIG, planner="scalar").y
        got = run_spmv(matrix, x, CONFIG, strategy=strategy).y
        assert np.allclose(got, oracle)

    @pytest.mark.parametrize("strategy", CONCRETE)
    def test_sptrsv_matches_scipy(self, strategy):
        rng = np.random.default_rng(9)
        n = 180
        dense = (rng.random((n, n)) < 0.03) * rng.standard_normal((n, n))
        dense = np.tril(dense, k=-1) + np.eye(n)
        tri = from_dense(dense)
        b = rng.standard_normal(n)
        got = run_sptrsv(tri, b, CONFIG, strategy=strategy).x
        want = sp.linalg.spsolve_triangular(
            sp.csr_matrix(dense), b, lower=True, unit_diagonal=True)
        assert np.allclose(got, want)

    @pytest.mark.parametrize("strategy", ["nnz-rows", "2d-grid", "nnz-2d"])
    def test_functional_fidelity_matches_fast(self, strategy):
        rng = np.random.default_rng(13)
        matrix = random_coo(rng, 90, 90, density=0.05)
        x = rng.standard_normal(90)
        fast = run_spmv(matrix, x, CONFIG, strategy=strategy).y
        functional = run_spmv(matrix, x, CONFIG, strategy=strategy,
                              fidelity="functional", engine_banks=4).y
        assert np.allclose(fast, functional)


class TestPaperBitwisePin:
    """The default path must stay byte-identical to the pre-PR planner."""

    @staticmethod
    def _assert_plans_identical(a, b):
        assert a.shape == b.shape and len(a.tiles) == len(b.tiles)
        assert (a.tile_rows, a.tile_cols, a.compressed) \
            == (b.tile_rows, b.tile_cols, b.compressed)
        for ta, tb in zip(a.tiles, b.tiles):
            assert ta.row_range == tb.row_range
            assert np.array_equal(ta.global_cols, tb.global_cols)
            assert np.array_equal(ta.rows, tb.rows)
            assert np.array_equal(ta.cols, tb.cols)
            assert np.array_equal(ta.vals, tb.vals)

    @pytest.mark.parametrize("compress", [True, False])
    def test_paper_strategy_equals_partition(self, compress):
        matrix = generate("cant", scale=0.02)
        self._assert_plans_identical(
            partition(matrix, CONFIG, compress=compress),
            make_strategy("paper").partition(matrix, CONFIG,
                                             compress=compress))

    def test_unset_strategy_is_paper(self, monkeypatch):
        monkeypatch.delenv(STRATEGY_ENV, raising=False)
        matrix = generate("pdb1HYS", scale=0.02)
        default_plan, _, default_exec = plan_spmv(matrix, CONFIG)
        paper_plan, _, paper_exec = plan_spmv(matrix, CONFIG,
                                              strategy="paper")
        self._assert_plans_identical(default_plan, paper_plan)
        assert default_exec.round_batches == paper_exec.round_batches
        assert np.array_equal(default_exec.per_bank_elements,
                              paper_exec.per_bank_elements)

    def test_default_result_bitwise(self, monkeypatch):
        monkeypatch.delenv(STRATEGY_ENV, raising=False)
        rng = np.random.default_rng(2)
        matrix = random_coo(rng, 300, 300, density=0.02)
        x = rng.standard_normal(300)
        assert np.array_equal(run_spmv(matrix, x, CONFIG).y,
                              run_spmv(matrix, x, CONFIG,
                                       strategy="paper").y)


class TestAutoTuner:
    MATRIX = generate("xenon2", scale=0.02)

    def test_deterministic(self):
        a = tune_strategy(self.MATRIX, CONFIG)
        b = tune_strategy(self.MATRIX, CONFIG)
        assert a.chosen == b.chosen and a.scores == b.scores

    def test_never_loses_to_paper(self):
        result = tune_strategy(self.MATRIX, CONFIG)
        if result.chosen != "paper":
            assert result.cycles[result.chosen] < result.cycles["paper"]

    def test_scores_cover_all_strategies(self):
        result = tune_strategy(self.MATRIX, CONFIG)
        assert set(result.scores) == set(CONCRETE)
        assert all(v > 0 for v in result.scores.values())

    def test_cache_stable(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = tune_strategy(self.MATRIX, CONFIG, cache=cache)
        misses = cache.miss_count
        second = tune_strategy(self.MATRIX, CONFIG, cache=cache)
        assert cache.miss_count == misses and cache.hit_count >= 1
        assert first.chosen == second.chosen
        assert first.scores == second.scores
        assert first.cycles == second.cycles

    def test_context_changes_the_key(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        tune_strategy(self.MATRIX, CONFIG, cache=cache)
        misses = cache.miss_count
        tune_strategy(self.MATRIX, CONFIG, mode="pb", cache=cache)
        assert cache.miss_count == misses + 1

    def test_auto_partition_runs(self):
        rng = np.random.default_rng(21)
        matrix = random_coo(rng, 250, 250, density=0.02)
        x = rng.standard_normal(250)
        result = run_spmv(matrix, x, CONFIG, strategy="auto")
        assert np.allclose(result.y, scipy_spmv(matrix, x))

    def test_estimate_tracks_work(self):
        # doubling the lock-step work must raise the estimate
        small, _, ex_small = plan_spmv(
            generate("cant", scale=0.01), CONFIG)
        _, _, ex_big = plan_spmv(generate("cant", scale=0.03), CONFIG)
        assert estimate_cycles(ex_big, CONFIG) \
            > estimate_cycles(ex_small, CONFIG)


class TestRuntimeAndSweepPlumbing:
    def test_runtime_threads_strategy(self):
        rng = np.random.default_rng(4)
        matrix = random_coo(rng, 150, 150, density=0.04)
        x = rng.standard_normal(150)
        pim = PSyncPIM(strategy="nnz-rows")
        result = pim.spmv(matrix, x)
        assert np.allclose(result.y, scipy_spmv(matrix, x))

    def test_env_var_engages_strategy(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "2d-grid")
        matrix = PATHOLOGICAL["wide"]
        plan, _, _ = plan_spmv(matrix, CONFIG)
        # global column cuts: every tile's kept columns live in one
        # tile_cols-wide window of the global axis
        for tile in plan.tiles:
            cols = np.asarray(tile.global_cols)
            assert cols.max() // plan.tile_cols \
                == cols.min() // plan.tile_cols

    def test_sweep_job_label_and_batch_key(self):
        from repro.sweep import SweepJob
        from repro.sweep.runner import _batch_key
        base = SweepJob(kernel="spmv", matrix="cant", scale=0.02)
        tuned = SweepJob(kernel="spmv", matrix="cant", scale=0.02,
                         strategy="auto")
        assert "auto" in tuned.resolved_label()
        assert "paper" not in base.resolved_label()
        assert _batch_key(base) != _batch_key(tuned)

    def test_sweep_executes_strategy_job(self, tmp_path):
        from repro.sweep import SweepJob, execute_job
        job = SweepJob(kernel="spmv", matrix="cant", scale=0.02,
                       strategy="auto")
        record = execute_job(job, cache_dir=tmp_path)
        assert record.error == ""
        assert record.report is not None and record.report.cycles > 0

    def test_sweep_cache_key_separates_strategies(self, tmp_path):
        from repro.sweep import SweepJob, execute_job
        for strategy in ("paper", "nnz-rows"):
            job = SweepJob(kernel="spmv", matrix="cant", scale=0.02,
                           strategy=strategy)
            record = execute_job(job, cache_dir=tmp_path)
            assert record.error == ""
            assert record.cache_misses > 0  # never served the other's plan
