"""Tests for repro.analysis — area model and report helpers."""

import dataclasses

import pytest

from repro.analysis import (TABLE_X, format_breakdown, format_table,
                            geomean, normalised_series, table_x_model,
                            unit_area)
from repro.config import ProcessingUnitConfig


class TestArea:
    def test_calibrated_to_paper(self):
        breakdown = unit_area()
        assert breakdown.per_unit == pytest.approx(0.967, abs=1e-3)
        assert breakdown.pe_total == pytest.approx(30.94, abs=0.05)
        assert breakdown.die_total == pytest.approx(68.99, abs=0.05)

    def test_table_x_entries(self):
        assert TABLE_X["pSyncPIM"]["total_area"] == 68.99
        assert TABLE_X["SpaceA"]["baseline"] == "HMC"
        assert TABLE_X["Samsung HBM-PIM"]["pe_area"] == 22.8

    def test_model_row(self):
        row = table_x_model()
        assert row["total_area_mm2"] == pytest.approx(
            row["paper_total_area_mm2"], rel=0.01)

    def test_area_scales_with_resources(self):
        small = unit_area()
        bigger = unit_area(dataclasses.replace(
            ProcessingUnitConfig(), num_sparse_queues=6))
        assert bigger.per_unit > small.per_unit
        assert bigger.queues == pytest.approx(2 * small.queues)

    def test_components_positive(self):
        b = unit_area()
        assert min(b.valu, b.registers, b.queues, b.control) > 0


class TestReport:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_geomean_errors(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["longer", 12.25]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_format_table_floatfmt(self):
        text = format_table(["v"], [[3.14159]], floatfmt="{:.4f}")
        assert "3.1416" in text

    def test_format_breakdown_percentages(self):
        text = format_breakdown(
            {"app": {"spmv": 3.0, "vector": 1.0}},
            classes=("spmv", "vector"))
        assert "75.00" in text and "25.00" in text

    def test_normalised_series(self):
        series = normalised_series({"gpu": 2.0, "pim": 1.0}, "gpu")
        assert series["pim"] == pytest.approx(2.0)
        assert series["gpu"] == pytest.approx(1.0)
