"""Tests for the schedule statistics (row-buffer locality, bus use)."""

import numpy as np
import pytest

from repro.config import default_system
from repro.core import run_spmv, spmv_ab_trace
from repro.dram import Command, CommandType, MemoryController
from repro.formats import generate

CFG = default_system()


def _run(trace):
    return MemoryController(enable_refresh=False).run(trace)


class TestScheduleStats:
    def test_streaming_has_high_locality(self):
        trace = [Command(CommandType.ACT_AB, row=0)]
        trace += [Command(CommandType.RD_AB, row=0, col=c % 64)
                  for c in range(32)]
        trace += [Command(CommandType.PRE_AB)]
        result = _run(trace)
        assert result.row_buffer_locality == pytest.approx(32.0)

    def test_thrashing_has_unit_locality(self):
        trace = []
        for i in range(8):
            trace.append(Command(CommandType.ACT, bank=0, row=i))
            trace.append(Command(CommandType.RD, bank=0, row=i))
            trace.append(Command(CommandType.PRE, bank=0))
        result = _run(trace)
        assert result.row_buffer_locality == pytest.approx(1.0)

    def test_activations_counts_both_kinds(self):
        trace = [Command(CommandType.ACT, bank=0, row=0),
                 Command(CommandType.PRE, bank=0),
                 Command(CommandType.ACT_AB, row=1),
                 Command(CommandType.PRE_AB)]
        assert _run(trace).activations == 2

    def test_bus_utilisation_bounds(self):
        trace = [Command(CommandType.ACT_AB, row=0)]
        trace += [Command(CommandType.RD_AB, row=0, col=c % 64)
                  for c in range(16)]
        result = _run(trace)
        assert 0.0 < result.bus_utilisation <= 1.0

    def test_empty_schedule(self):
        result = _run([])
        assert result.row_buffer_locality == 0.0
        assert result.bus_utilisation == 0.0

    def test_spmv_trace_locality_is_reasonable(self):
        matrix = generate("cant", scale=0.03)
        x = np.random.default_rng(0).random(matrix.shape[1])
        execution = run_spmv(matrix, x, CFG).execution
        result = _run(spmv_ab_trace(execution, CFG))
        # phased schedule: several beats per row visit, far from thrash
        assert result.row_buffer_locality > 4.0
