"""Tests for the SpVSpV sparse-sparse elementwise kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.formats import SparseVector
from repro.kernels import spvspv

RNG = np.random.default_rng(0)


def sparse_pair(n=250, density=0.15, seed=0):
    rng = np.random.default_rng(seed)
    dx = rng.standard_normal(n) * (rng.random(n) < density)
    dy = rng.standard_normal(n) * (rng.random(n) < density)
    return dx, dy, SparseVector.from_dense(dx), SparseVector.from_dense(dy)


class TestUnion:
    def test_add_matches_dense(self):
        dx, dy, x, y = sparse_pair()
        run = spvspv(x, y, binary="add", set_mode="union", num_banks=8)
        assert run.result == SparseVector.from_dense(dx + dy)

    def test_max_with_neg_inf_identity(self):
        dx, dy, x, y = sparse_pair(seed=1)
        run = spvspv(x, y, binary="max", set_mode="union",
                     identity="neg_inf", num_banks=4)
        mask = (dx != 0) | (dy != 0)
        ex = np.where(dx != 0, dx, -np.inf)
        ey = np.where(dy != 0, dy, -np.inf)
        expect = np.where(mask, np.maximum(ex, ey), 0.0)
        assert run.result == SparseVector.from_dense(expect)

    def test_disjoint_supports(self):
        x = SparseVector(10, [0, 2, 4], [1.0, 2.0, 3.0])
        y = SparseVector(10, [1, 3, 5], [10.0, 20.0, 30.0])
        run = spvspv(x, y, binary="add", set_mode="union", num_banks=2)
        assert run.result == SparseVector.from_dense(
            x.to_dense() + y.to_dense())

    def test_one_empty_operand(self):
        dx, _, x, _ = sparse_pair(seed=2)
        empty = SparseVector.empty(x.length)
        run = spvspv(x, empty, binary="add", set_mode="union", num_banks=4)
        assert run.result == x.sorted()

    def test_both_empty(self):
        empty = SparseVector.empty(64)
        assert spvspv(empty, empty, num_banks=4).result.nnz == 0


class TestIntersection:
    def test_mul_matches_dense_product(self):
        dx, dy, x, y = sparse_pair(seed=3)
        run = spvspv(x, y, binary="mul", set_mode="intersection",
                     num_banks=8)
        both = (dx != 0) & (dy != 0)
        assert run.result == SparseVector.from_dense(dx * dy * both)

    def test_disjoint_intersection_is_empty(self):
        x = SparseVector(10, [0, 2], [1.0, 2.0])
        y = SparseVector(10, [1, 3], [10.0, 20.0])
        run = spvspv(x, y, binary="mul", set_mode="intersection",
                     num_banks=2)
        assert run.result.nnz == 0

    def test_min_intersection(self):
        dx, dy, x, y = sparse_pair(seed=4)
        run = spvspv(x, y, binary="min", set_mode="intersection",
                     num_banks=4)
        both = (dx != 0) & (dy != 0)
        assert run.result == SparseVector.from_dense(
            np.minimum(dx, dy) * both)


class TestMechanics:
    def test_length_mismatch(self):
        with pytest.raises(ExecutionError):
            spvspv(SparseVector.empty(4), SparseVector.empty(5))

    def test_single_bank(self):
        dx, dy, x, y = sparse_pair(n=60, seed=5)
        run = spvspv(x, y, binary="add", num_banks=1)
        assert run.result == SparseVector.from_dense(dx + dy)

    def test_skewed_operands_stall_and_recover(self):
        """One dense chunk against one sparse chunk forces load stalls;
        the per-unit cursors must not lose elements."""
        n = 64
        dx = np.zeros(n)
        dx[:32] = np.arange(1.0, 33.0)  # dense head
        dy = np.zeros(n)
        dy[::7] = 5.0                   # sparse throughout
        x, y = SparseVector.from_dense(dx), SparseVector.from_dense(dy)
        run = spvspv(x, y, binary="add", num_banks=2)
        assert run.result == SparseVector.from_dense(dx + dy)

    def test_stats_populated(self):
        dx, dy, x, y = sparse_pair(seed=6)
        run = spvspv(x, y, num_banks=4)
        assert run.stats.beats > 0
        assert run.stats.launches >= 1

    @given(st.integers(0, 25))
    @settings(max_examples=10, deadline=None)
    def test_property_union_add(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(16, 200))
        dx = rng.standard_normal(n) * (rng.random(n) < 0.25)
        dy = rng.standard_normal(n) * (rng.random(n) < 0.25)
        run = spvspv(SparseVector.from_dense(dx),
                     SparseVector.from_dense(dy),
                     binary="add", set_mode="union", num_banks=4)
        assert run.result == SparseVector.from_dense(dx + dy)
