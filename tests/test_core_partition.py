"""Tests for repro.core.partition and repro.core.distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_system
from repro.core import (distribute, partition, reassemble,
                        replication_traffic_bytes, tile_capacity)
from repro.core.distribution import split_oversized
from repro.errors import MappingError
from repro.formats import COOMatrix
from repro.formats.generators import power_law_graph, uniform_random

CFG = default_system()


class TestPartition:
    def test_round_trip(self):
        m = uniform_random(500, 400, density=0.01, seed=1)
        plan = partition(m, CFG)
        assert reassemble(plan) == m

    def test_round_trip_uncompressed(self):
        m = uniform_random(300, 300, density=0.02, seed=2)
        plan = partition(m, CFG, compress=False)
        assert reassemble(plan) == m

    def test_no_elements_lost(self):
        m = power_law_graph(600, avg_degree=5, seed=3)
        plan = partition(m, CFG)
        assert plan.total_nnz == m.nnz

    def test_tile_dimension_bound(self):
        m = uniform_random(1000, 1000, density=0.005, seed=4)
        cap = tile_capacity(CFG, "fp64")
        plan = partition(m, CFG)
        for tile in plan.tiles:
            assert tile.y_length <= cap
            assert tile.x_length <= cap

    def test_capacity_by_precision(self):
        assert tile_capacity(CFG, "fp64") == 128
        assert tile_capacity(CFG, "int8") == 1024

    def test_int8_tiles_are_bigger(self):
        m = uniform_random(2000, 2000, density=0.002, seed=5)
        plan64 = partition(m, CFG, precision="fp64")
        plan8 = partition(m, CFG, precision="int8")
        assert len(plan8.tiles) < len(plan64.tiles)

    def test_compression_reduces_replication(self):
        # sparse graph: most columns of a row block are empty
        m = power_law_graph(2000, avg_degree=4, seed=6)
        with_c = partition(m, CFG, compress=True)
        without = partition(m, CFG, compress=False)
        assert (with_c.replicated_input_elements
                < without.replicated_input_elements)

    def test_compressed_tiles_drop_zero_columns(self):
        m = COOMatrix((10, 300), [0, 5], [10, 250], [1.0, 2.0])
        plan = partition(m, CFG, compress=True)
        assert len(plan.tiles) == 1
        np.testing.assert_array_equal(plan.tiles[0].global_cols, [10, 250])
        assert plan.tiles[0].x_length == 2

    def test_uncompressed_keeps_ranges(self):
        m = COOMatrix((10, 300), [0, 5], [10, 250], [1.0, 2.0])
        plan = partition(m, CFG, compress=False)
        # 300 cols -> segments [0,128), [128,256), [256,300); cols 10 and
        # 250 land in the first two, the third is empty and dropped
        assert len(plan.tiles) == 2
        # tiles carry whole column ranges
        assert plan.tiles[0].x_length == 128

    def test_x_segment_gather(self):
        m = COOMatrix((4, 6), [0, 1], [2, 5], [1.0, 1.0])
        plan = partition(m, CFG)
        x = np.arange(6, dtype=float)
        seg = plan.tiles[0].x_segment(x)
        np.testing.assert_allclose(seg, [2.0, 5.0])

    def test_empty_matrix(self):
        plan = partition(COOMatrix.empty((100, 100)), CFG)
        assert plan.tiles == []
        assert reassemble(plan) == COOMatrix.empty((100, 100))

    def test_invalid_tile_dims(self):
        m = uniform_random(10, 10, 0.2, seed=7)
        with pytest.raises(MappingError):
            partition(m, CFG, tile_rows=0)
        with pytest.raises(MappingError):
            partition(m, CFG, tile_rows=4096)

    @given(st.integers(1, 200), st.integers(1, 200), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, nrows, ncols, seed):
        m = uniform_random(nrows, ncols, density=0.05, seed=seed)
        plan = partition(m, CFG)
        assert reassemble(plan) == m
        for tile in plan.tiles:
            tile.validate()


class TestDistribution:
    @pytest.fixture
    def plan(self):
        return partition(power_law_graph(3000, avg_degree=6, seed=8), CFG)

    def test_all_elements_placed(self, plan):
        a = distribute(plan, 256)
        assert a.total_elements == plan.total_nnz

    def test_paper_policy_balances(self, plan):
        naive = distribute(plan, 256, policy="naive")
        paper = distribute(plan, 256, policy="paper")
        assert paper.imbalance <= naive.imbalance

    def test_balanced_policy(self, plan):
        a = distribute(plan, 256, policy="balanced")
        naive = distribute(plan, 256, policy="naive")
        assert a.total_elements == plan.total_nnz
        # greedy LPT never loses to blind round-robin on total bank load
        assert a.per_bank_elements().max() <= \
            naive.per_bank_elements().max()

    def test_unknown_policy(self, plan):
        with pytest.raises(MappingError):
            distribute(plan, 256, policy="chaotic")

    def test_needs_banks(self, plan):
        with pytest.raises(MappingError):
            distribute(plan, 0)

    def test_rounds_structure(self, plan):
        a = distribute(plan, 64)
        for round_tiles in a.rounds:
            assert len(round_tiles) == 64

    def test_split_oversized(self):
        m = uniform_random(100, 100, 0.3, seed=9)
        plan = partition(m, CFG)
        tiles = split_oversized(plan.tiles, nnz_cap=50)
        assert all(t.nnz <= 50 for t in tiles)
        assert sum(t.nnz for t in tiles) == plan.total_nnz
        # split pieces keep valid local indices
        for tile in tiles:
            tile.validate()

    def test_split_noop_below_cap(self):
        m = uniform_random(50, 50, 0.05, seed=10)
        plan = partition(m, CFG)
        tiles = split_oversized(plan.tiles, nnz_cap=10 ** 6)
        assert len(tiles) == len(plan.tiles)

    def test_split_rejects_bad_cap(self):
        with pytest.raises(MappingError):
            split_oversized([], 0)

    def test_traffic_accounting_positive(self, plan):
        a = distribute(plan, 256)
        assert replication_traffic_bytes(a, 8) > 0

    def test_imbalance_metric(self, plan):
        a = distribute(plan, 256)
        assert a.imbalance >= 1.0
        assert 0 < a.banks_used <= 256

    def test_single_bank_distribution(self, plan):
        a = distribute(plan, 1)
        assert a.imbalance == pytest.approx(1.0)
        assert a.banks_used == 1
