"""Differential tests: the fast planner against its scalar oracle.

The vectorized planning front-end (:mod:`repro.core.planner`) promises
*bitwise-identical* outputs to the scalar reference for every planning
stage — tiles, round assignments, dependency levels, and the numerical
results / execution records built on top of them. These tests pin that
contract on randomized and pathological inputs.
"""

import numpy as np
import pytest

from repro.config import (PLANNER_ENV, default_system, resolve_planner)
from repro.core import (Planner, distribute, make_planner, partition,
                        reassemble, run_spmv, run_sptrsv)
from repro.core.planner import concat_ranges, stable_desc_order
from repro.core.sptrsv import level_schedule, reorder_by_levels
from repro.errors import ConfigError, MappingError
from repro.formats import COOMatrix
from repro.formats.generators import (power_law_graph, uniform_random,
                                      unit_lower_from)

CFG = default_system()


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def assert_tiles_equal(a, b):
    assert a.row_range == b.row_range
    assert np.array_equal(a.global_cols, b.global_cols)
    assert np.array_equal(a.rows, b.rows)
    assert np.array_equal(a.cols, b.cols)
    assert np.array_equal(a.vals, b.vals)


def assert_plans_equal(fast, scalar):
    assert fast.shape == scalar.shape
    assert len(fast.tiles) == len(scalar.tiles)
    for tf, ts in zip(fast.tiles, scalar.tiles):
        assert_tiles_equal(tf, ts)


def assert_assignments_equal(fast, scalar):
    assert fast.num_rounds == scalar.num_rounds
    for rf, rs in zip(fast.rounds, scalar.rounds):
        assert len(rf) == len(rs)
        for tf, ts in zip(rf, rs):
            assert (tf is None) == (ts is None)
            if tf is not None:
                assert_tiles_equal(tf, ts)


def both_partitions(matrix, **kwargs):
    return (partition(matrix, CFG, planner="fast", **kwargs),
            partition(matrix, CFG, planner="scalar", **kwargs))


# ----------------------------------------------------------------------
# matrices that stress the partitioner's corner cases
# ----------------------------------------------------------------------
def pathological_matrices():
    yield "empty", COOMatrix.empty((64, 64))
    # empty row blocks: nonzeros only in the first and last rows
    n = 300
    yield "empty_row_blocks", COOMatrix(
        (n, n), np.array([0, 0, n - 1]), np.array([0, n - 1, n // 2]),
        np.array([1.0, 2.0, 3.0]))
    # fully dense rows (hub rows spanning many column segments)
    yield "dense_rows", COOMatrix(
        (40, 400), np.repeat(np.arange(3), 400),
        np.tile(np.arange(400), 3), np.arange(1200, dtype=float))
    # a single column touched by every row
    yield "single_column", COOMatrix(
        (200, 200), np.arange(200), np.zeros(200, dtype=np.int64),
        np.arange(200, dtype=float) + 1.0)
    yield "uniform", uniform_random(500, 430, density=0.015, seed=7)
    yield "power_law", power_law_graph(400, avg_degree=6, seed=8)


@pytest.mark.parametrize("name,matrix", list(pathological_matrices()))
@pytest.mark.parametrize("compress", [True, False])
def test_partition_identical(name, matrix, compress):
    fast, scalar = both_partitions(matrix, compress=compress,
                                   tile_rows=64, tile_cols=64)
    assert_plans_equal(fast, scalar)
    assert reassemble(fast) == matrix


@pytest.mark.parametrize("seed", range(6))
def test_partition_identical_randomized(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(50, 700))
    m = int(rng.integers(50, 700))
    density = float(rng.uniform(0.002, 0.05))
    matrix = uniform_random(n, m, density=density, seed=seed + 100)
    tile_rows = int(rng.integers(8, 128))
    tile_cols = int(rng.integers(8, 128))
    for compress in (True, False):
        fast, scalar = both_partitions(matrix, compress=compress,
                                       tile_rows=tile_rows,
                                       tile_cols=tile_cols)
        assert_plans_equal(fast, scalar)
        assert reassemble(fast) == matrix


def test_partition_identical_int8_capacity():
    # int8 quadruples the per-row element capacity vs fp64, exercising a
    # different default tiling without explicit tile dimensions.
    matrix = power_law_graph(900, avg_degree=4, seed=11)
    fast = partition(matrix, CFG, precision="int8", planner="fast")
    scalar = partition(matrix, CFG, precision="int8", planner="scalar")
    assert_plans_equal(fast, scalar)


@pytest.mark.parametrize("policy", ["paper", "balanced", "naive"])
@pytest.mark.parametrize("num_banks", [1, 7, 64])
def test_distribute_identical(policy, num_banks):
    matrix = power_law_graph(600, avg_degree=8, seed=21)
    plan = partition(matrix, CFG, tile_rows=48, tile_cols=48)
    fast = distribute(plan, num_banks, policy=policy, planner="fast")
    scalar = distribute(plan, num_banks, policy=policy, planner="scalar")
    assert_assignments_equal(fast, scalar)


def test_distribute_identical_with_ties():
    # Many equal-nnz tiles force the LPT tie-break path: the heap must
    # reproduce np.argmin's first-minimum choice exactly.
    tiles_src = COOMatrix(
        (256, 64), np.arange(256), np.tile(np.arange(64), 4),
        np.ones(256))
    plan = partition(tiles_src, CFG, tile_rows=16, tile_cols=64)
    nnz = {t.nnz for t in plan.tiles}
    assert len(nnz) == 1  # all tiles identical in weight: pure tie-break
    for policy in ("paper", "balanced"):
        fast = distribute(plan, 5, policy=policy, planner="fast")
        scalar = distribute(plan, 5, policy=policy, planner="scalar")
        assert_assignments_equal(fast, scalar)


# ----------------------------------------------------------------------
# level scheduling
# ----------------------------------------------------------------------
def triangular_cases():
    n = 200
    eye = np.arange(n)
    ones = np.ones(n)
    yield "diagonal_only", COOMatrix((n, n), eye, eye, ones)
    # bidiagonal chain: worst-case dependency depth (n levels)
    rows = np.concatenate([eye, eye[1:]])
    cols = np.concatenate([eye, eye[:-1]])
    vals = np.concatenate([ones, 0.5 * np.ones(n - 1)])
    yield "bidiagonal_chain", COOMatrix((n, n), rows, cols, vals)
    yield "random_sparse", unit_lower_from(
        uniform_random(300, 300, density=0.02, seed=31), seed=32)
    yield "random_denser", unit_lower_from(
        uniform_random(150, 150, density=0.15, seed=33), seed=34)
    yield "empty", COOMatrix.empty((0, 0))


@pytest.mark.parametrize("name,tri", list(triangular_cases()))
@pytest.mark.parametrize("lower", [True, False])
def test_level_schedule_identical(name, tri, lower):
    work = tri if lower else tri.transpose()
    fast = level_schedule(work, lower=lower, planner="fast")
    scalar = level_schedule(work, lower=lower, planner="scalar")
    assert len(fast) == len(scalar)
    for lf, ls in zip(fast, scalar):
        assert np.array_equal(lf, ls)


@pytest.mark.parametrize("lower", [True, False])
def test_reorder_by_levels_identical(lower):
    tri = unit_lower_from(
        uniform_random(250, 250, density=0.03, seed=41), seed=42)
    work = tri if lower else tri.transpose()
    perm_f, re_f = reorder_by_levels(work, lower=lower, planner="fast")
    perm_s, re_s = reorder_by_levels(work, lower=lower, planner="scalar")
    assert np.array_equal(perm_f, perm_s)
    assert re_f == re_s


# ----------------------------------------------------------------------
# end-to-end numerical identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("compress", [True, False])
@pytest.mark.parametrize("fidelity", ["fast", "functional"])
def test_spmv_end_to_end_identical(compress, fidelity):
    matrix = power_law_graph(400, avg_degree=7, seed=51)
    x = np.random.default_rng(52).random(matrix.shape[1])
    fast = run_spmv(matrix, x, CFG, compress=compress, fidelity=fidelity,
                    engine_banks=4, planner="fast")
    scalar = run_spmv(matrix, x, CFG, compress=compress, fidelity=fidelity,
                      engine_banks=4, planner="scalar")
    assert np.array_equal(fast.y, scalar.y)
    assert fast.execution.round_batches == scalar.execution.round_batches
    assert np.array_equal(fast.execution.per_bank_elements,
                          scalar.execution.per_bank_elements)
    assert fast.execution.input_bytes == scalar.execution.input_bytes
    assert fast.execution.output_bytes == scalar.execution.output_bytes
    assert np.allclose(fast.y, matrix.matvec(x))


@pytest.mark.parametrize("reorder", [True, False])
def test_sptrsv_end_to_end_identical(reorder):
    tri = unit_lower_from(
        uniform_random(350, 350, density=0.02, seed=61), seed=62)
    b = np.random.default_rng(63).random(350)
    fast = run_sptrsv(tri, b, CFG, reorder=reorder, planner="fast")
    scalar = run_sptrsv(tri, b, CFG, reorder=reorder, planner="scalar")
    assert np.array_equal(fast.x, scalar.x)
    assert fast.execution.level_batches == scalar.execution.level_batches
    assert fast.execution.level_elements == scalar.execution.level_elements
    assert fast.execution.level_widths == scalar.execution.level_widths
    assert fast.execution.update_elements == scalar.execution.update_elements
    assert fast.execution.update_batches == scalar.execution.update_batches


def test_sptrsv_deep_chain_identical():
    # Bidiagonal chain: leaves degenerate to one column per level, the
    # worst case for the frontier sweep's convergence and ordering.
    n = 180
    eye = np.arange(n)
    tri = COOMatrix((n, n),
                    np.concatenate([eye, eye[1:]]),
                    np.concatenate([eye, eye[:-1]]),
                    np.concatenate([np.ones(n), 0.25 * np.ones(n - 1)]))
    b = np.random.default_rng(64).random(n)
    for reorder in (True, False):
        fast = run_sptrsv(tri, b, CFG, reorder=reorder, planner="fast")
        scalar = run_sptrsv(tri, b, CFG, reorder=reorder, planner="scalar")
        assert np.array_equal(fast.x, scalar.x)
        assert fast.execution.level_widths == scalar.execution.level_widths


def test_sptrsv_upper_identical():
    tri = unit_lower_from(
        uniform_random(220, 220, density=0.03, seed=71), seed=72)
    upper = tri.transpose()
    b = np.random.default_rng(73).random(220)
    fast = run_sptrsv(upper, b, CFG, lower=False, planner="fast")
    scalar = run_sptrsv(upper, b, CFG, lower=False, planner="scalar")
    assert np.array_equal(fast.x, scalar.x)


# ----------------------------------------------------------------------
# selection plumbing and helpers
# ----------------------------------------------------------------------
class TestSelection:
    def test_factory_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert make_planner().name == "fast"

    def test_factory_explicit(self):
        assert make_planner("scalar").name == "scalar"
        assert isinstance(make_planner("fast"), Planner)

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV, "scalar")
        assert resolve_planner() == "scalar"
        assert make_planner().name == "scalar"
        # explicit argument wins over the environment
        assert resolve_planner("fast") == "fast"

    def test_unknown_planner_rejected(self):
        with pytest.raises(ConfigError):
            resolve_planner("magic")
        with pytest.raises(ConfigError):
            partition(uniform_random(50, 50, density=0.05, seed=1), CFG,
                      planner="magic")

    def test_planner_facade_routes(self):
        matrix = uniform_random(120, 120, density=0.05, seed=81)
        p = make_planner("scalar")
        plan = p.partition(matrix, CFG)
        assert reassemble(plan) == matrix
        assignment = p.distribute(plan, 8)
        assert assignment.num_banks == 8


class TestValidationGate:
    def test_check_plan_catches_corruption(self):
        matrix = uniform_random(200, 200, density=0.03, seed=91)
        plan = partition(matrix, CFG)
        plan.tiles[0].rows[0] = 10 ** 6  # corrupt a tile-local index
        from repro.core.partition import _check_plan
        with pytest.raises(MappingError):
            _check_plan(plan, matrix)

    def test_validate_off_skips_check(self):
        matrix = uniform_random(100, 100, density=0.05, seed=92)
        plan = partition(matrix, CFG, validate=False)
        assert reassemble(plan) == matrix


class TestHelpers:
    def test_concat_ranges(self):
        starts = np.array([0, 5, 9], dtype=np.int64)
        ends = np.array([2, 5, 12], dtype=np.int64)
        assert np.array_equal(concat_ranges(starts, ends),
                              [0, 1, 9, 10, 11])
        empty = np.zeros(0, dtype=np.int64)
        assert concat_ranges(empty, empty).size == 0

    def test_stable_desc_order_matches_sorted(self):
        rng = np.random.default_rng(5)
        weights = rng.integers(0, 10, size=200)
        expected = sorted(range(200), key=lambda i: -weights[i])
        assert np.array_equal(stable_desc_order(weights), expected)

    def test_plan_stats_memoized(self):
        matrix = uniform_random(300, 300, density=0.02, seed=93)
        plan = partition(matrix, CFG)
        assert plan.total_nnz == matrix.nnz
        assert plan.tile_nnz.sum() == matrix.nnz
        assert plan.replicated_input_elements == sum(
            t.x_length for t in plan.tiles)
        assert np.array_equal(plan.tile_touched_rows,
                              [t.touched_rows for t in plan.tiles])
