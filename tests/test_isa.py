"""Tests for repro.isa — encodings, programs, assembler (incl. hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblerError, EncodingError
from repro.isa import (BInstruction, BinaryOp, CInstruction, Identity,
                       MAX_INSTRUCTIONS, Opcode, Operand, Program, SetMode,
                       SubQueue, ValueFormat, assemble, decode, decode_bytes,
                       encode, encode_bytes)

B_OPCODES = [op for op in Opcode if not op.is_control]


class TestOpcodeTaxonomy:
    def test_fifteen_instructions(self):
        assert len(Opcode) == 15

    def test_partition(self):
        control = [op for op in Opcode if op.is_control]
        movement = [op for op in Opcode if op.is_movement]
        binary = [op for op in Opcode if op.is_binary]
        assert len(control) == 4
        assert len(movement) == 5
        assert len(binary) == 6
        assert set(control + movement + binary) == set(Opcode)

    def test_operand_helpers(self):
        assert Operand.SPVQ2.queue_index == 2
        assert Operand.DRF1.dense_index == 1
        with pytest.raises(ValueError):
            Operand.SRF.queue_index
        with pytest.raises(ValueError):
            Operand.BANK.dense_index

    def test_identity_values(self):
        assert Identity.ZERO.value_as_float == 0.0
        assert Identity.POS_INF.value_as_float == float("inf")


@st.composite
def b_instructions(draw):
    return BInstruction(
        opcode=draw(st.sampled_from(B_OPCODES)),
        dst=draw(st.sampled_from(list(Operand))),
        src0=draw(st.sampled_from(list(Operand))),
        src1=draw(st.sampled_from(list(Operand))),
        value=draw(st.sampled_from(list(ValueFormat))),
        binary=draw(st.sampled_from(list(BinaryOp))),
        set_mode=draw(st.sampled_from(list(SetMode))),
        idx=draw(st.sampled_from(list(SubQueue))),
        idnt=draw(st.sampled_from(list(Identity))))


@st.composite
def c_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.NOP, Opcode.JUMP, Opcode.EXIT,
                                   Opcode.CEXIT]))
    if opcode is Opcode.JUMP:
        return CInstruction(opcode, imm0=draw(st.integers(0, 255)),
                            order=draw(st.integers(0, 63)),
                            imm1=draw(st.integers(1, 1023)))
    if opcode is Opcode.CEXIT:
        return CInstruction(opcode, imm1=draw(st.integers(1, 7)))
    return CInstruction(opcode)


class TestEncoding:
    @given(b_instructions())
    def test_b_round_trip(self, instruction):
        assert decode(encode(instruction)) == instruction

    @given(c_instructions())
    def test_c_round_trip(self, instruction):
        assert decode(encode(instruction)) == instruction

    @given(b_instructions())
    def test_bytes_round_trip(self, instruction):
        blob = encode_bytes(instruction)
        assert len(blob) == 4
        assert decode_bytes(blob) == instruction

    def test_word_range_checked(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)
        with pytest.raises(EncodingError):
            decode(-1)

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError, match="opcode"):
            decode(0xF << 28)

    def test_bad_byte_length(self):
        with pytest.raises(EncodingError):
            decode_bytes(b"abc")

    def test_control_field_limits(self):
        with pytest.raises(EncodingError):
            CInstruction(Opcode.JUMP, imm0=256, imm1=1)
        with pytest.raises(EncodingError):
            CInstruction(Opcode.JUMP, order=64, imm1=1)
        with pytest.raises(EncodingError):
            CInstruction(Opcode.JUMP, imm1=1024)
        with pytest.raises(EncodingError):
            CInstruction(Opcode.JUMP, imm1=0)
        with pytest.raises(EncodingError):
            CInstruction(Opcode.CEXIT, imm1=0)
        with pytest.raises(EncodingError):
            CInstruction(Opcode.CEXIT, imm1=8)

    def test_format_cross_checks(self):
        with pytest.raises(EncodingError):
            BInstruction(Opcode.JUMP)
        with pytest.raises(EncodingError):
            CInstruction(Opcode.DMOV)


class TestProgram:
    def _nop(self):
        return CInstruction(Opcode.NOP)

    def test_length_limit(self):
        with pytest.raises(EncodingError, match="control register"):
            Program([self._nop()] * (MAX_INSTRUCTIONS + 1))

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            Program([])

    def test_jump_target_validated(self):
        with pytest.raises(EncodingError, match="target"):
            Program([CInstruction(Opcode.JUMP, imm0=5, imm1=2),
                     CInstruction(Opcode.EXIT)])

    def test_duplicate_jump_orders_rejected(self):
        with pytest.raises(EncodingError, match="ORDER"):
            Program([CInstruction(Opcode.JUMP, imm0=0, order=1, imm1=2),
                     CInstruction(Opcode.JUMP, imm0=0, order=1, imm1=2)])

    def test_word_round_trip(self):
        program = assemble("""
        loop: DMOV DRF0, BANK
              JUMP loop count=4
              EXIT
        """)
        again = Program.decode_words(program.encode_words())
        assert again == program

    def test_encode_bytes_length(self):
        program = Program([self._nop(), CInstruction(Opcode.EXIT)])
        assert len(program.encode_bytes()) == 8

    def test_has_terminator(self):
        assert Program([CInstruction(Opcode.EXIT)]).has_terminator
        assert not Program([self._nop()]).has_terminator

    def test_disassemble_mentions_slots(self):
        program = Program([self._nop(), CInstruction(Opcode.EXIT)],
                          name="demo")
        text = program.disassemble()
        assert "demo" in text and "0:" in text and "1:" in text


class TestAssembler:
    def test_labels_and_modifiers(self):
        program = assemble("""
        ; kernel with every feature
        start:
            SDV  DRF0, SRF, BANK  value=fp32 binary=mul
            DMOV BANK, DRF0
            JUMP start order=2 count=10
            CEXIT SPVQ0|SPVQ2
        """)
        assert len(program) == 4
        jump = program[2]
        assert jump.imm0 == 0 and jump.order == 2 and jump.imm1 == 10
        assert program[3].queue_mask == 0b101
        assert program[0].value is ValueFormat.FP32

    def test_numeric_jump_target(self):
        program = assemble("DMOV DRF0, BANK\nJUMP @0 count=2\nEXIT")
        assert program[1].imm0 == 0

    def test_case_insensitive(self):
        program = assemble("dmov drf0, bank value=FP16")
        assert program[0].value is ValueFormat.FP16

    def test_comments_stripped(self):
        program = assemble("NOP ; trailing\n# whole line\nEXIT")
        assert len(program) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="mnemonic"):
            assemble("FROB DRF0, BANK")

    def test_unknown_operand(self):
        with pytest.raises(AssemblerError, match="operand"):
            assemble("DMOV DRF9, BANK")

    def test_bad_modifier_value(self):
        with pytest.raises(AssemblerError, match="binary"):
            assemble("DVDV DRF0, DRF1, DRF2 binary=frobnicate")

    def test_unknown_modifier_key(self):
        with pytest.raises(AssemblerError, match="modifiers"):
            assemble("DMOV DRF0, BANK turbo=yes")

    def test_jump_requires_count(self):
        with pytest.raises(AssemblerError, match="count"):
            assemble("x: NOP\nJUMP x")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("JUMP nowhere count=2")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a: NOP\na: EXIT")

    def test_cexit_requires_queues(self):
        with pytest.raises(AssemblerError, match="SPVQ"):
            assemble("CEXIT")
        with pytest.raises(AssemblerError, match="sparse queues"):
            assemble("CEXIT DRF0")

    def test_exit_takes_no_operands(self):
        with pytest.raises(AssemblerError, match="no operands"):
            assemble("EXIT DRF0")

    def test_empty_program(self):
        with pytest.raises(AssemblerError, match="no instructions"):
            assemble("; nothing here\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("NOP\nNOP\nFROB x\n")

    def test_assembled_round_trips_through_encoding(self):
        program = assemble("""
        outer:
            SPMOV  SPVQ0, BANK
            INDMOV SRF, BANK, SPVQ0
            SSPV   SPVQ1, SRF, SPVQ0 binary=mul
            SPVDV  BANK, SPVQ1 binary=add
            CEXIT  SPVQ0|SPVQ1
            JUMP   outer count=100
            EXIT
        """)
        assert Program.decode_words(program.encode_words()) == program
