"""Tests for repro.baselines — GPU, SpaceA and SpGEMM-accelerator models."""

import dataclasses

import pytest

from repro.baselines import (GPUConfig, GPUModel, SpaceAConfig, SpaceAModel,
                             SpGEMMAcceleratorConfig,
                             SpGEMMAcceleratorModel)
from repro.errors import ConfigError


class TestGPUModel:
    @pytest.fixture
    def gpu(self):
        return GPUModel()

    def test_spmv_scales_with_nnz(self, gpu):
        small = gpu.spmv_seconds(10_000, 10_000, 50_000)
        large = gpu.spmv_seconds(10_000, 10_000, 5_000_000)
        assert large > 5 * small

    def test_spmv_launch_floor(self, gpu):
        tiny = gpu.spmv_seconds(100, 100, 200)
        assert tiny >= gpu.config.kernel_launch_s

    def test_l2_spill_increases_gather_cost(self, gpu):
        fits = gpu.spmv_seconds(100_000, 100_000, 10_000_000)
        spills = gpu.spmv_seconds(2_000_000, 2_000_000, 10_000_000)
        assert spills > fits

    def test_narrow_precision_does_not_help_gpu(self, gpu):
        fp64 = gpu.spmv_seconds(10_000, 10_000, 500_000, precision="fp64")
        int8 = gpu.spmv_seconds(10_000, 10_000, 500_000, precision="int8")
        assert int8 >= 0.5 * fp64  # floor at fp32 operand width

    def test_sptrsv_level_dominated(self, gpu):
        few = gpu.sptrsv_seconds(10_000, 50_000, num_levels=10)
        many = gpu.sptrsv_seconds(10_000, 50_000, num_levels=1000)
        assert many > 10 * few

    def test_graphblast_overhead(self, gpu):
        plain = gpu.dense_vector_seconds(100_000)
        gb = gpu.dense_vector_seconds(100_000, graphblast=True)
        assert gb == pytest.approx(plain * gpu.config.graphblast_overhead)

    def test_reduction_has_two_launches(self, gpu):
        assert gpu.reduction_seconds(10) >= 2 * gpu.config.kernel_launch_s

    def test_dgemv_bandwidth_bound(self, gpu):
        t = gpu.dgemv_seconds(1000, 1000)
        nbytes = 1000 * 1000 * 8
        floor = nbytes / gpu.config.memory_bandwidth
        assert t > floor

    def test_spgemm_compute_vs_traffic(self, gpu):
        traffic_bound = gpu.spgemm_seconds(1e3, 1_000_000, 1_000_000)
        compute_bound = gpu.spgemm_seconds(1e12, 1_000, 1_000)
        assert compute_bound > traffic_bound

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(GPUConfig(), spmv_efficiency=0.0).validate()
        with pytest.raises(ConfigError):
            dataclasses.replace(GPUConfig(),
                                stream_efficiency=1.5).validate()


class TestSpaceAModel:
    def test_linear_in_nnz(self):
        model = SpaceAModel()
        assert model.spmv_seconds(2_000_000) == pytest.approx(
            2 * model.spmv_seconds(1_000_000))

    def test_faster_than_balanced_psyncpim_story(self):
        # SpaceA has no lock-step or staging overhead: its per-element
        # cost must be finite and positive, and scale with banks.
        few_banks = SpaceAModel(dataclasses.replace(SpaceAConfig(),
                                                    num_banks=64))
        many_banks = SpaceAModel()
        assert few_banks.spmv_seconds(10 ** 6) > \
            many_banks.spmv_seconds(10 ** 6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(SpaceAConfig(),
                                overhead_factor=0.5).validate()


class TestSpGEMMAccelerator:
    def test_spmv_as_spgemm_penalised(self):
        model = SpGEMMAcceleratorModel()
        direct = model.spgemm_seconds(2e6, 1_000_000, 500_000)
        forced = model.spmv_as_spgemm_seconds(100_000, 1_000_000)
        assert forced > direct  # the Fig. 13 inefficiency

    def test_spgemm_rooflines(self):
        model = SpGEMMAcceleratorModel()
        stream = model.spgemm_seconds(1.0, 10_000_000, 10_000_000)
        compute = model.spgemm_seconds(1e13, 100, 100)
        assert compute > stream

    def test_validation(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(SpGEMMAcceleratorConfig(),
                                spmv_inefficiency=0.1).validate()
