"""Tests for repro.dram.controller, address mapping and the energy model."""

import pytest

from repro.config import HBM2Config
from repro.dram import (AddressMapper, Command, CommandType, EnergyModel,
                        EnergyParams, MemoryController, TimingParams,
                        count_commands)
from repro.errors import AddressError, TimingError


class TestAddressMapper:
    @pytest.fixture
    def mapper(self):
        return AddressMapper(HBM2Config())

    def test_covers_cube_capacity(self, mapper):
        assert mapper.addressable_bytes == HBM2Config().capacity_bytes

    def test_encode_decode_round_trip(self, mapper):
        for coords in ((0, 0, 0, 0, 0), (3, 2, 1, 100, 63),
                       (15, 3, 3, 16383, 63), (7, 1, 2, 4097, 31)):
            ch, bg, ba, row, col = coords
            addr = mapper.encode(ch, bg, ba, row, col)
            dec = mapper.decode(addr)
            assert (dec.channel, dec.bankgroup, dec.bank, dec.row,
                    dec.column) == coords

    def test_flat_bank_index(self, mapper):
        dec = mapper.decode(mapper.encode(0, 2, 3, 0, 0))
        assert dec.flat_bank == 11

    def test_offset_within_column(self, mapper):
        base = mapper.encode(1, 1, 1, 1, 1)
        assert mapper.encode(1, 1, 1, 1, 1, offset=8) == base + 8

    def test_address_out_of_range(self, mapper):
        with pytest.raises(AddressError):
            mapper.decode(mapper.addressable_bytes)
        with pytest.raises(AddressError):
            mapper.decode(-1)

    def test_encode_rejects_bad_fields(self, mapper):
        with pytest.raises(AddressError):
            mapper.encode(16, 0, 0, 0, 0)
        with pytest.raises(AddressError):
            mapper.encode(0, 0, 0, 0, 64)
        with pytest.raises(AddressError):
            mapper.encode(0, 0, 0, 0, 0, offset=16)

    def test_bad_mapping_strings(self):
        import dataclasses
        with pytest.raises(AddressError, match="unknown"):
            AddressMapper(dataclasses.replace(
                HBM2Config(), address_mapping="zzrorabgbachco"))
        with pytest.raises(AddressError, match="twice"):
            AddressMapper(dataclasses.replace(
                HBM2Config(), address_mapping="roro bgbachco".replace(" ", "")))
        with pytest.raises(AddressError, match="misses"):
            AddressMapper(dataclasses.replace(
                HBM2Config(), address_mapping="robgba"))


def _row_trace(kind_act, kind_col, kind_pre, banks, reads=4, channel=0):
    trace = []
    for b in banks:
        trace.append(Command(kind_act, channel=channel, bank=b, row=1))
        for c in range(reads):
            trace.append(Command(kind_col, channel=channel, bank=b,
                                 row=1, col=c))
        trace.append(Command(kind_pre, channel=channel, bank=b))
    return trace


class TestMemoryController:
    def test_empty_trace(self):
        result = MemoryController().run([])
        assert result.total_cycles == 0
        assert result.command_total == 0

    def test_counts_and_totals(self):
        trace = _row_trace(CommandType.ACT, CommandType.RD,
                           CommandType.PRE, banks=range(4))
        result = MemoryController(enable_refresh=False).run(trace)
        assert result.command_total == len(trace)
        assert result.counts[CommandType.ACT] == 4
        assert result.counts[CommandType.RD] == 16
        assert result.row_commands == 8
        assert result.column_commands == 16

    def test_channels_run_in_parallel(self):
        one = _row_trace(CommandType.ACT, CommandType.RD,
                         CommandType.PRE, banks=range(8), channel=0)
        controller = MemoryController(enable_refresh=False)
        single = controller.run(one).total_cycles
        two = one + _row_trace(CommandType.ACT, CommandType.RD,
                               CommandType.PRE, banks=range(8), channel=1)
        both = MemoryController(enable_refresh=False).run(two)
        # Same work on a second channel costs (almost) no extra time.
        assert both.total_cycles == pytest.approx(single, abs=2)

    def test_all_bank_trace_faster_than_per_bank(self):
        ab = []
        ab.append(Command(CommandType.ACT_AB, row=1))
        for c in range(8):
            ab.append(Command(CommandType.RD_AB, row=1, col=c))
        ab.append(Command(CommandType.PRE_AB))
        pb = _row_trace(CommandType.ACT, CommandType.RD, CommandType.PRE,
                        banks=range(16), reads=8)
        ctrl = MemoryController(enable_refresh=False)
        t_ab = ctrl.run(ab).total_cycles
        t_pb = MemoryController(enable_refresh=False).run(pb).total_cycles
        assert t_pb > 4 * t_ab

    def test_rejects_out_of_range_channel(self):
        with pytest.raises(TimingError):
            MemoryController(num_channels=2).run(
                [Command(CommandType.ACT, channel=5, bank=0, row=0)])

    def test_seconds_conversion(self):
        trace = [Command(CommandType.ACT_AB, row=0)]
        result = MemoryController(enable_refresh=False).run(trace)
        assert result.seconds(TimingParams()) == pytest.approx(
            result.total_cycles * 1e-9)

    def test_tag_cycle_attribution(self):
        trace = [Command(CommandType.ACT_AB, row=0, tag="open"),
                 Command(CommandType.RD_AB, row=0, tag="stream"),
                 Command(CommandType.RD_AB, row=0, col=1, tag="stream")]
        result = MemoryController(enable_refresh=False).run(trace)
        assert set(result.tag_cycles) == {"open", "stream"}
        assert result.tag_cycles["stream"] > 0

    def test_count_commands_without_scheduling(self):
        trace = _row_trace(CommandType.ACT, CommandType.RD,
                           CommandType.PRE, banks=range(2))
        counts = count_commands(trace)
        assert counts[CommandType.ACT] == 2
        assert counts[CommandType.RD] == 8


class TestEnergyModel:
    def test_all_bank_charges_every_bank(self):
        model = EnergyModel()
        counts = {CommandType.ACT_AB: 1, CommandType.RD_AB: 2}
        report = model.command_energy(counts, banks_per_channel=16)
        p = EnergyParams()
        assert report.activation_pj == pytest.approx(16 * p.act_pre_pj)
        assert report.read_pj == pytest.approx(32 * p.read_internal_pj)

    def test_external_traffic_energy(self):
        model = EnergyModel()
        report = model.command_energy({}, host_column_traffic=10)
        assert report.external_pj == pytest.approx(
            10 * EnergyParams().external_io_pj)

    def test_background_scales_with_time(self):
        model = EnergyModel()
        r1 = model.add_background(model.command_energy({}), 1000)
        r2 = model.add_background(model.command_energy({}), 2000)
        assert r2.background_pj == pytest.approx(2 * r1.background_pj)

    def test_alu_energy_scales_by_precision(self):
        model = EnergyModel()
        r_int8 = model.add_alu(model.command_energy({}), 100, "int8")
        r_fp64 = model.add_alu(model.command_energy({}), 100, "fp64")
        assert r_fp64.alu_pj > 10 * r_int8.alu_pj

    def test_average_power(self):
        model = EnergyModel()
        report = model.add_background(model.command_energy({}), 10 ** 6)
        watts = report.average_power_watts(10 ** 6, TimingParams())
        # background power per channel over one channel of time
        expected = EnergyParams().background_mw_per_channel * 1e-3
        assert watts == pytest.approx(expected, rel=1e-6)

    def test_controller_energy_integration(self):
        trace = [Command(CommandType.ACT_AB, row=0),
                 Command(CommandType.RD_AB, row=0),
                 Command(CommandType.PRE_AB)]
        result = MemoryController(enable_refresh=False).run(
            trace, with_energy=True, alu_operations=50, precision="fp32")
        assert result.energy is not None
        assert result.energy.total_pj > 0
        assert result.energy.alu_pj > 0
