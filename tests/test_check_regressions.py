"""Fuzz-derived regression corpus.

Every entry in :data:`REGRESSION_SEEDS` is a seed that once exposed a
real divergence between the engines. The harness replays them on every
run; new fuzzer finds should be appended here (with a note on what they
caught) after the underlying bug is fixed.

Corpus history:

* 62, 63, 69 — scalar engine flipped SpVSpV union operands on a
  stream's final element: ``qa.is_empty`` was re-read *after* the pop,
  so the pass-through of qa's last element computed ``op(ident, value)``
  instead of ``op(value, ident)``. Invisible to commutative ops; caught
  by FIRST in union mode. Fixed in ``repro.pim.unit._spvspv`` (and the
  matching transcription in ``repro.check.reference``).
"""

import pytest

from repro.check.fuzz import generate_case, run_case
from repro.isa import (BInstruction, BinaryOp, Identity, Opcode, Operand,
                       Program, SetMode)
from repro.pim.memory import BankMemory
from repro.pim.unit import ProcessingUnit

#: Seeds that historically diverged. Append new finds, never remove.
REGRESSION_SEEDS = [62, 63, 69]


@pytest.mark.parametrize("seed", REGRESSION_SEEDS)
def test_regression_seed(seed):
    run_case(generate_case(seed))


class TestSpVSpVUnionOperandOrder:
    """Direct replay of the bug behind seeds 62/63/69."""

    def _unit_with_last_element(self):
        unit = ProcessingUnit(BankMemory())
        ins = BInstruction(Opcode.SPVSPV, dst=Operand.SPVQ2,
                           src0=Operand.SPVQ0, src1=Operand.SPVQ1,
                           binary=BinaryOp.FIRST, set_mode=SetMode.UNION,
                           idnt=Identity.ONE)
        unit.program = Program([ins])
        unit.exhausted_mask = 0b11
        return unit, ins

    def test_last_element_keeps_left_operand_position(self):
        unit, ins = self._unit_with_last_element()
        unit.registers.queues[0].push(5, 1, 2.0)   # qa's final element
        unit._spvspv(ins, None)
        # FIRST(value, ident) == value: the element passes through
        assert list(unit.registers.queues[2]._items) == [(5, 1, 2.0)]

    def test_b_side_pass_through_takes_identity(self):
        unit, ins = self._unit_with_last_element()
        unit.registers.queues[1].push(4, 2, 3.0)   # qb's final element
        unit._spvspv(ins, None)
        # FIRST(ident, value) == ident: the b-side pass-through under
        # FIRST yields the identity, by construction
        assert list(unit.registers.queues[2]._items) == [(4, 2, 1.0)]
