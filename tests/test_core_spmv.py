"""Tests for repro.core.spmv — the end-to-end SpMV runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_system
from repro.core import run_spmv
from repro.errors import ExecutionError
from repro.formats import generate
from repro.formats.generators import (power_law_graph, stencil_2d,
                                      uniform_random)

CFG = default_system()
RNG = np.random.default_rng(0)


class TestFastTier:
    @pytest.mark.parametrize("name,scale", [("facebook", 0.2),
                                            ("poisson3Da", 0.3),
                                            ("cant", 0.02)])
    def test_matches_reference(self, name, scale):
        m = generate(name, scale=scale)
        x = RNG.random(m.shape[1])
        result = run_spmv(m, x, CFG)
        np.testing.assert_allclose(result.y, m.matvec(x), rtol=1e-10)

    def test_rectangular(self):
        m = uniform_random(300, 700, density=0.01, seed=1)
        x = RNG.random(700)
        np.testing.assert_allclose(run_spmv(m, x, CFG).y, m.matvec(x))

    def test_uncompressed_same_answer(self):
        m = power_law_graph(800, 5, seed=2)
        x = RNG.random(800)
        a = run_spmv(m, x, CFG, compress=True)
        b = run_spmv(m, x, CFG, compress=False)
        np.testing.assert_allclose(a.y, b.y)
        assert a.execution.input_bytes < b.execution.input_bytes

    def test_policies_same_answer(self):
        m = power_law_graph(800, 5, seed=3)
        x = RNG.random(800)
        ys = [run_spmv(m, x, CFG, policy=p).y
              for p in ("paper", "naive", "balanced")]
        np.testing.assert_allclose(ys[0], ys[1])
        np.testing.assert_allclose(ys[0], ys[2])

    def test_y0_accumulation(self):
        m = uniform_random(100, 100, 0.05, seed=4)
        x = RNG.random(100)
        y0 = RNG.random(100)
        result = run_spmv(m, x, CFG, y0=y0)
        np.testing.assert_allclose(result.y, y0 + m.matvec(x))

    def test_sub_accumulate(self):
        m = uniform_random(100, 100, 0.05, seed=5)
        x = RNG.random(100)
        y0 = RNG.random(100)
        result = run_spmv(m, x, CFG, accumulate="sub", y0=y0)
        np.testing.assert_allclose(result.y, y0 - m.matvec(x))

    def test_min_plus_semiring(self):
        m = uniform_random(60, 60, 0.1, seed=6, values="uniform")
        x = RNG.random(60)
        y0 = np.full(60, np.inf)
        result = run_spmv(m, x, CFG, multiply="add", accumulate="min",
                          y0=y0)
        expect = y0.copy()
        np.minimum.at(expect, m.rows, m.vals + x[m.cols])
        np.testing.assert_allclose(result.y, expect)

    def test_second_min_semiring(self):
        m = uniform_random(60, 60, 0.1, seed=7, values="ones")
        labels = np.arange(60, dtype=float)
        result = run_spmv(m, labels, CFG, multiply="second",
                          accumulate="min", y0=np.full(60, np.inf))
        expect = np.full(60, np.inf)
        np.minimum.at(expect, m.rows, labels[m.cols])
        np.testing.assert_allclose(result.y, expect)

    def test_lor_land_semiring(self):
        m = uniform_random(80, 80, 0.08, seed=8, values="ones")
        f = (RNG.random(80) < 0.2).astype(float)
        result = run_spmv(m, f, CFG, multiply="land", accumulate="lor")
        expect = np.zeros(80)
        np.maximum.at(expect, m.rows, f[m.cols])
        np.testing.assert_allclose(result.y, expect)

    def test_bad_arguments(self):
        m = uniform_random(10, 10, 0.2, seed=9)
        with pytest.raises(ExecutionError):
            run_spmv(m, np.ones(5), CFG)
        with pytest.raises(ExecutionError):
            run_spmv(m, np.ones(10), CFG, fidelity="quantum")
        with pytest.raises(ExecutionError):
            run_spmv(m, np.ones(10), CFG, multiply="xor")


class TestFunctionalTier:
    def test_matches_fast(self):
        m = generate("facebook", scale=0.04)
        x = RNG.random(m.shape[1])
        fast = run_spmv(m, x, CFG, fidelity="fast")
        func = run_spmv(m, x, CFG, fidelity="functional", engine_banks=8)
        np.testing.assert_allclose(func.y, fast.y, rtol=1e-10)

    def test_functional_sub(self):
        m = uniform_random(90, 90, 0.04, seed=10)
        x = RNG.random(90)
        y0 = RNG.random(90)
        result = run_spmv(m, x, CFG, fidelity="functional", y0=y0,
                          accumulate="sub", engine_banks=4)
        np.testing.assert_allclose(result.y, y0 - m.matvec(x))

    def test_functional_stencil(self):
        m = stencil_2d(12)
        x = RNG.random(144)
        result = run_spmv(m, x, CFG, fidelity="functional", engine_banks=8)
        np.testing.assert_allclose(result.y, m.matvec(x))

    @given(st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_property_functional_equals_reference(self, seed):
        m = uniform_random(70, 70, 0.05, seed=seed)
        x = np.random.default_rng(seed).random(70)
        result = run_spmv(m, x, CFG, fidelity="functional", engine_banks=4)
        np.testing.assert_allclose(result.y, m.matvec(x), rtol=1e-9,
                                   atol=1e-12)


class TestExecutionRecord:
    def test_record_consistency(self):
        m = generate("cant", scale=0.02)
        x = RNG.random(m.shape[1])
        ex = run_spmv(m, x, CFG).execution
        assert ex.total_elements == m.nnz
        assert ex.num_rounds == len(ex.round_batches)
        assert len(ex.round_x_lengths) == ex.num_rounds
        assert ex.lockstep_elements >= max(ex.round_batches)
        assert ex.imbalance >= 1.0
        assert 0 < ex.banks_used <= CFG.total_units
        assert ex.input_bytes > 0 and ex.output_bytes > 0
        assert ex.matrix_bytes == m.nnz * 12  # fp64: 8 B value + 4 B idx

    def test_three_cube_spread(self):
        m = generate("cant", scale=0.05)
        x = RNG.random(m.shape[1])
        ex1 = run_spmv(m, x, default_system(1)).execution
        ex3 = run_spmv(m, x, default_system(3)).execution
        assert ex3.num_banks == 3 * ex1.num_banks
        assert ex3.lockstep_elements < ex1.lockstep_elements
