"""Tests for repro.config — Tables VII and VIII constants and validation."""

import dataclasses

import pytest

from repro.config import (ALU_LANES, PRECISION_BYTES,
                          TABLE_VIII_THROUGHPUT_GOPS, HBM2Config,
                          ProcessingUnitConfig, SystemConfig, default_system,
                          element_size)
from repro.errors import ConfigError


class TestHBM2Config:
    def test_table_vii_defaults(self):
        mem = HBM2Config()
        assert mem.num_bankgroups == 4
        assert mem.banks_per_group == 4
        assert mem.num_rows == 16384
        assert mem.num_columns == 64
        assert mem.num_stacks == 8
        assert mem.num_pseudo_channels == 16
        assert mem.clock_hz == 1e9
        assert mem.external_bandwidth == 256e9
        assert mem.internal_bandwidth == 2e12
        assert mem.capacity_bytes == 4 << 30

    def test_row_is_1kb(self):
        assert HBM2Config().row_bytes == 1024

    def test_256_banks_per_cube(self):
        assert HBM2Config().total_banks == 256

    def test_16_banks_per_channel(self):
        assert HBM2Config().banks_per_channel == 16

    def test_capacity_consistency(self):
        mem = HBM2Config()
        mem.validate()
        assert mem.bank_bytes * mem.total_banks == mem.capacity_bytes

    def test_capacity_mismatch_rejected(self):
        mem = dataclasses.replace(HBM2Config(), capacity_bytes=1 << 30)
        with pytest.raises(ConfigError, match="capacity"):
            mem.validate()

    def test_internal_must_exceed_external(self):
        mem = dataclasses.replace(HBM2Config(), internal_bandwidth=100e9)
        with pytest.raises(ConfigError, match="internal bandwidth"):
            mem.validate()

    def test_nonpositive_field_rejected(self):
        mem = dataclasses.replace(HBM2Config(), num_rows=0)
        with pytest.raises(ConfigError):
            mem.validate()


class TestProcessingUnitConfig:
    def test_table_viii_defaults(self):
        pu = ProcessingUnitConfig()
        assert pu.datapath_bytes == 32
        assert pu.clock_hz == 250e6
        assert pu.instruction_slots == 32
        assert pu.scalar_register_bytes == 16
        assert pu.num_dense_registers == 3
        assert pu.dense_register_bytes == 32
        assert pu.num_sparse_queues == 3
        assert pu.sparse_queue_bytes == 192

    def test_control_register_is_128_bytes(self):
        assert ProcessingUnitConfig().control_register_bytes == 128

    def test_subqueue_is_64_bytes(self):
        assert ProcessingUnitConfig().subqueue_bytes == 64

    @pytest.mark.parametrize("precision,lanes", sorted(ALU_LANES.items()))
    def test_alu_lane_counts(self, precision, lanes):
        assert ProcessingUnitConfig().alu_lanes(precision) == lanes

    def test_throughput_scales_with_lanes(self):
        pu = ProcessingUnitConfig()
        assert pu.throughput_ops("int8") == 32 * 250e6
        assert pu.throughput_ops("fp64") == 4 * 250e6

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigError, match="unknown precision"):
            ProcessingUnitConfig().alu_lanes("fp8")

    def test_validate_rejects_tiny_subqueue(self):
        pu = dataclasses.replace(ProcessingUnitConfig(),
                                 sparse_queue_bytes=48)
        with pytest.raises(ConfigError):
            pu.validate()


class TestSystemConfig:
    def test_default_system_validates(self):
        cfg = default_system()
        assert cfg.total_units == 256
        assert cfg.num_cubes == 1

    def test_three_cube_scaling(self):
        cfg = default_system(num_cubes=3)
        assert cfg.total_units == 768
        assert cfg.external_bandwidth == 3 * 256e9
        assert cfg.internal_bandwidth == 3 * 2e12

    def test_submatrix_limit_fits_row(self):
        cfg = default_system()
        assert cfg.submatrix_limit_bytes == 1024
        assert cfg.submatrix_limit_bytes <= cfg.memory.row_bytes

    def test_oversized_submatrix_limit_rejected(self):
        cfg = dataclasses.replace(SystemConfig(), submatrix_limit_bytes=4096)
        with pytest.raises(ConfigError, match="fit one memory row"):
            cfg.validate()

    def test_vector_capacity_per_precision(self):
        cfg = default_system()
        assert cfg.vector_capacity("fp64") == 128
        assert cfg.vector_capacity("int8") == 1024

    def test_peak_throughput_aggregates_units(self):
        cfg = default_system()
        assert cfg.peak_throughput("fp64") == 4 * 250e6 * 256

    def test_zero_cubes_rejected(self):
        cfg = dataclasses.replace(SystemConfig(), num_cubes=0)
        with pytest.raises(ConfigError, match="num_cubes"):
            cfg.validate()


class TestPrecisionTables:
    def test_every_precision_has_lanes(self):
        assert set(PRECISION_BYTES) == set(ALU_LANES)

    def test_element_sizes(self):
        assert element_size("int8") == 1
        assert element_size("fp16") == 2
        assert element_size("fp64") == 8

    def test_table_viii_throughputs_listed(self):
        assert TABLE_VIII_THROUGHPUT_GOPS["int8"] == 25.6
        assert TABLE_VIII_THROUGHPUT_GOPS["fp64"] == 3.2
        assert set(TABLE_VIII_THROUGHPUT_GOPS) == set(PRECISION_BYTES)

    def test_lane_width_matches_datapath(self):
        # lanes * element size == 32 B datapath for every precision
        pu = ProcessingUnitConfig()
        for prec, lanes in ALU_LANES.items():
            assert lanes * PRECISION_BYTES[prec] == pu.datapath_bytes


class TestPseudoChannelGeometry:
    def test_default_split(self):
        cfg = HBM2Config()
        assert cfg.pseudo_channels_per_channel == 2
        assert cfg.num_physical_channels == 8

    def test_indivisible_rejected(self):
        import dataclasses
        bad = dataclasses.replace(HBM2Config(),
                                  pseudo_channels_per_channel=3)
        with pytest.raises(ConfigError):
            bad.validate()

    def test_nonpositive_rejected(self):
        import dataclasses
        bad = dataclasses.replace(HBM2Config(),
                                  pseudo_channels_per_channel=0)
        with pytest.raises(ConfigError):
            bad.validate()
