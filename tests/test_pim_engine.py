"""Tests for repro.pim.engine — mode protocol and lock-step broadcast."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.isa import assemble
from repro.pim import AllBankEngine, Beat, Mode, padded_triples


@pytest.fixture
def engine():
    return AllBankEngine(num_banks=4)


COPY = """
loop:
    DMOV DRF0, BANK
    DMOV BANK, DRF0
    JUMP loop count=2
    EXIT
"""


class TestModeProtocol:
    def test_starts_in_sb(self, engine):
        assert engine.mode is Mode.SB

    def test_legal_cycle(self, engine):
        engine.switch_mode(Mode.AB)
        engine.switch_mode(Mode.AB_PIM)
        engine.switch_mode(Mode.SB)
        assert engine.stats.mode_switches == 3

    def test_illegal_transition(self, engine):
        with pytest.raises(ExecutionError, match="illegal mode"):
            engine.switch_mode(Mode.AB_PIM)

    def test_same_mode_is_noop(self, engine):
        engine.switch_mode(Mode.SB)
        assert engine.stats.mode_switches == 0

    def test_program_requires_ab(self, engine):
        with pytest.raises(ExecutionError, match="AB mode"):
            engine.load_program(assemble("EXIT"))

    def test_step_requires_ab_pim(self, engine):
        engine.switch_mode(Mode.AB)
        engine.load_program(assemble(COPY))
        with pytest.raises(ExecutionError, match="AB-PIM"):
            engine.step(Beat("x", 0))

    def test_host_io_requires_sb(self, engine):
        engine.switch_mode(Mode.AB)
        with pytest.raises(ExecutionError, match="SB mode"):
            engine.host_write_dense("x", [np.zeros(4)] * 4)
        with pytest.raises(ExecutionError, match="SB mode"):
            engine.host_read_dense("x")


class TestBroadcast:
    def _setup(self, engine):
        engine.host_write_dense(
            "x", [np.full(8, float(b)) for b in range(4)])
        engine.host_write_dense("y", [np.zeros(8) for _ in range(4)])
        engine.switch_mode(Mode.AB)
        engine.load_program(assemble(COPY))
        engine.switch_mode(Mode.AB_PIM)

    def test_every_bank_executes(self, engine):
        self._setup(engine)
        for g in range(2):
            engine.step(Beat("x", g))
            engine.step(Beat("y", g, write=True))
        engine.switch_mode(Mode.SB)
        for b, chunk in enumerate(engine.host_read_dense("y")):
            np.testing.assert_allclose(chunk, float(b))

    def test_run_stops_after_all_exit(self, engine):
        self._setup(engine)
        beats = [Beat("x", 0), Beat("y", 0, write=True),
                 Beat("x", 1), Beat("y", 1, write=True)] * 3
        consumed = engine.run(iter(beats))
        # 4 data beats + 1 retiring transaction that executes JUMP/EXIT
        assert consumed == 5
        assert engine.all_exited

    def test_run_collects_stats(self, engine):
        self._setup(engine)
        engine.run(iter([Beat("x", 0), Beat("y", 0, write=True),
                         Beat("x", 1), Beat("y", 1, write=True)]))
        assert engine.stats.beats == 4
        assert engine.stats.instructions > 0
        assert engine.stats.kernel_launches == 1

    def test_per_bank_data_mismatch_rejected(self, engine):
        with pytest.raises(ExecutionError, match="per bank"):
            engine.host_write_dense("x", [np.zeros(4)] * 3)
        with pytest.raises(ExecutionError, match="per bank"):
            engine.host_write_triples("m", [(np.zeros(1),) * 3] * 3)

    def test_lockstep_violation_detected(self, engine):
        # Force divergent PCs by hand and check the invariant fires.
        self._setup(engine)
        engine.step(Beat("x", 0))
        engine.units[0].pc = 0
        engine.units[1].pc = 1
        with pytest.raises(ExecutionError, match="lock-step"):
            engine._assert_lockstep()


class TestConditionalExitDivergence:
    def test_units_exit_at_different_times(self):
        """Banks with less data retire early; big banks keep streaming."""
        engine = AllBankEngine(num_banks=3)
        counts = [8, 4, 0]  # valid elements per bank
        total = 8
        per_bank = []
        for n in counts:
            rows = np.arange(n)
            per_bank.append(padded_triples(rows, rows, np.ones(n), total))
        engine.host_write_triples("m", per_bank)
        engine.host_write_dense("y", [np.zeros(8)] * 3)
        program = assemble("""
        outer:
            SPMOV SPVQ0, BANK
        drain:
            SPVDV BANK, SPVQ0 binary=add
            JUMP  drain order=0 count=4
            CEXIT SPVQ0
            JUMP  outer order=1 count=2
            EXIT
        """)
        engine.switch_mode(Mode.AB)
        engine.load_program(program)
        engine.switch_mode(Mode.AB_PIM)

        def beats():
            for g in range(2):
                yield Beat("m", g)
                for _ in range(4):
                    yield Beat("y", 0, write=True)

        engine.run(beats())
        engine.switch_mode(Mode.SB)
        assert engine.all_exited
        ys = engine.host_read_dense("y")
        np.testing.assert_allclose(ys[0], np.ones(8))
        np.testing.assert_allclose(ys[1], [1, 1, 1, 1, 0, 0, 0, 0])
        np.testing.assert_allclose(ys[2], np.zeros(8))
        # the empty bank saw pure padding -> it must have NOP'd beats
        assert engine.units[2].stats.nop_beats > 0
        assert engine.stats.predicated_beats > 0
