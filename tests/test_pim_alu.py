"""Direct edge-case tests for repro.pim.alu.

All VALU arithmetic runs in float64 regardless of the Value format
(DESIGN.md), so the interesting edges are IEEE-754 ones: overflow to
infinity, NaN generation and propagation, and the places where the
Reduce fold's Python ``min``/``max`` deliberately differ from numpy's
NaN-propagating elementwise forms. These pins keep the semantics the
three-oracle fuzzer relies on from drifting silently.
"""

import math

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.isa import BinaryOp
from repro.pim import alu

REDUCIBLE = [BinaryOp.ADD, BinaryOp.MUL, BinaryOp.MIN, BinaryOp.MAX,
             BinaryOp.LAND, BinaryOp.LOR]


class TestOverflow:
    def test_mul_overflows_to_inf(self):
        assert alu.apply(BinaryOp.MUL, 1e308, 1e308) == math.inf
        assert alu.apply(BinaryOp.MUL, -1e308, 1e308) == -math.inf

    def test_array_add_overflows_to_inf(self):
        with np.errstate(over="ignore"):
            out = alu.apply(BinaryOp.ADD, np.array([1e308, 1.0]),
                            np.array([1e308, 2.0]))
        assert out[0] == math.inf and out[1] == 3.0

    def test_inf_minus_inf_is_nan(self):
        with np.errstate(invalid="ignore"):
            assert math.isnan(alu.apply(BinaryOp.SUB, math.inf, math.inf))

    def test_reduce_mul_overflow_chains_to_inf(self):
        with np.errstate(over="ignore"):
            result = alu.reduce_array(BinaryOp.MUL,
                                      np.array([1e200, 1e200]), 1.0)
        assert result == math.inf

    def test_subnormal_underflow_to_zero(self):
        tiny = 5e-324   # smallest subnormal
        assert alu.apply(BinaryOp.MUL, tiny, 0.5) == 0.0


class TestNaN:
    def test_elementwise_min_max_propagate_nan(self):
        # numpy's minimum/maximum propagate NaN from either operand
        assert math.isnan(alu.apply(BinaryOp.MIN, math.nan, 3.0))
        assert math.isnan(alu.apply(BinaryOp.MIN, 3.0, math.nan))
        assert math.isnan(alu.apply(BinaryOp.MAX, math.nan, 3.0))

    def test_reduce_min_max_swallow_nan(self):
        """The Reduce fold uses Python min/max over np.min/np.max of the
        block, so a NaN inside the block wins np.min but then loses the
        comparison against the seed — the seed survives. Pinned: the
        fuzzer's reference interpreter transcribes exactly this."""
        values = np.array([math.nan, 2.0])
        assert alu.reduce_array(BinaryOp.MIN, values, 5.0) == 5.0
        assert alu.reduce_array(BinaryOp.MAX, values, 5.0) == 5.0

    def test_nan_is_truthy_for_logical_ops(self):
        assert alu.apply(BinaryOp.LAND, math.nan, 1.0) == 1.0
        assert alu.apply(BinaryOp.LOR, math.nan, 0.0) == 1.0


class TestBroadcastingAndShapes:
    def test_first_broadcasts_scalar_to_array_shape(self):
        out = alu.apply(BinaryOp.FIRST, 2.5, np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3,)
        assert np.array_equal(out, [2.5, 2.5, 2.5])

    def test_first_with_scalar_b_stays_scalar(self):
        assert alu.apply(BinaryOp.FIRST, 2.5, 7.0) == 2.5

    def test_second_returns_b_unchanged(self):
        b = np.array([1.0, -0.0, math.inf])
        assert alu.apply(BinaryOp.SECOND, 99.0, b) is b

    def test_logical_ops_coerce_to_float(self):
        out = alu.apply(BinaryOp.LAND, np.array([0.5, 0.0, 2.0]), 1.0)
        assert out.dtype == np.float64
        assert np.array_equal(out, [1.0, 0.0, 1.0])


class TestReduceFold:
    def test_empty_block_returns_seed(self):
        for op in REDUCIBLE:
            assert alu.reduce_array(op, np.array([]), 7.5) == 7.5

    @pytest.mark.parametrize("op", REDUCIBLE)
    def test_identity_seed_is_neutral(self, op):
        values = np.array([1.0, 0.0, 1.0])
        seeded = alu.reduce_array(op, values, alu.identity(op))
        twice = alu.reduce_array(op, values, seeded) \
            if op in (BinaryOp.MIN, BinaryOp.MAX, BinaryOp.LAND,
                      BinaryOp.LOR) else None
        if twice is not None:   # idempotent ops: folding again is stable
            assert twice == seeded
        assert seeded == alu.reduce_array(op, values, alu.identity(op))

    def test_add_reduce_matches_numpy_sum(self):
        values = np.array([1e16, 1.0, -1e16])
        assert alu.reduce_array(BinaryOp.ADD, values, 0.0) \
            == float(np.sum(values))

    def test_logical_reduce_collapses_to_zero_or_one(self):
        assert alu.reduce_array(BinaryOp.LOR, np.array([0.0, 0.0]), 0.0) \
            == 0.0
        assert alu.reduce_array(BinaryOp.LOR, np.array([0.0, 0.5]), 0.0) \
            == 1.0
        assert alu.reduce_array(BinaryOp.LAND, np.array([1.0, 0.0]), 1.0) \
            == 0.0

    @pytest.mark.parametrize("op", [BinaryOp.SUB, BinaryOp.FIRST,
                                    BinaryOp.SECOND])
    def test_non_reducible_ops_rejected(self, op):
        with pytest.raises(ExecutionError):
            alu.reduce_array(op, np.array([1.0]), 0.0)
        with pytest.raises(ExecutionError):
            alu.identity(op)


class TestIdentityElements:
    @pytest.mark.parametrize("op", REDUCIBLE)
    def test_identity_is_left_neutral(self, op):
        for x in (0.0, 1.0, -3.5, 0.25):
            result = alu.apply(op, alu.identity(op), x)
            if op in (BinaryOp.LAND, BinaryOp.LOR):
                # logical ops collapse to 0/1, neutral up to truthiness
                assert bool(result) == bool(x)
            else:
                assert result == x

    def test_min_max_identities_are_infinite(self):
        assert alu.identity(BinaryOp.MIN) == math.inf
        assert alu.identity(BinaryOp.MAX) == -math.inf
