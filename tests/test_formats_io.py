"""Tests for repro.formats.matrix_market — .mtx parsing and writing."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (COOMatrix, read_matrix_market,
                           reads_matrix_market, write_matrix_market,
                           writes_matrix_market)
from repro.formats.generators import uniform_random

GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment line
3 3 4
1 1 1.5
1 3 2.0
2 2 -3.0
3 1 4.25
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 3 5.0
"""

SKEW = """%%MatrixMarket matrix coordinate real skew-symmetric
3 3 2
2 1 1.0
3 2 -2.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""


class TestParsing:
    def test_general(self):
        m = reads_matrix_market(GENERAL)
        assert m.shape == (3, 3)
        assert m.nnz == 4
        dense = m.to_dense()
        assert dense[0, 0] == 1.5
        assert dense[0, 2] == 2.0
        assert dense[2, 0] == 4.25

    def test_symmetric_expansion(self):
        m = reads_matrix_market(SYMMETRIC)
        dense = m.to_dense()
        assert dense[1, 0] == dense[0, 1] == -1.0
        assert m.nnz == 4  # 3 stored + 1 mirrored off-diagonal

    def test_skew_symmetric_expansion(self):
        m = reads_matrix_market(SKEW)
        dense = m.to_dense()
        assert dense[1, 0] == 1.0 and dense[0, 1] == -1.0
        assert dense[2, 1] == -2.0 and dense[1, 2] == 2.0

    def test_pattern_values_are_one(self):
        m = reads_matrix_market(PATTERN)
        np.testing.assert_allclose(m.vals, [1.0, 1.0])

    def test_integer_field(self):
        text = GENERAL.replace("real", "integer").replace("1.5", "2")
        m = reads_matrix_market(text)
        assert m.to_dense()[0, 0] == 2.0

    def test_blank_and_comment_lines_skipped(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% c1\n\n%c2\n2 2 1\n\n1 1 3.0\n")
        m = reads_matrix_market(text)
        assert m.nnz == 1


class TestParsingErrors:
    def test_missing_header(self):
        with pytest.raises(FormatError, match="header"):
            reads_matrix_market("3 3 1\n1 1 1.0\n")

    def test_unsupported_layout(self):
        with pytest.raises(FormatError, match="layout"):
            reads_matrix_market(
                "%%MatrixMarket matrix array real general\n")

    def test_unsupported_field(self):
        with pytest.raises(FormatError, match="field"):
            reads_matrix_market(
                "%%MatrixMarket matrix coordinate complex general\n")

    def test_unsupported_symmetry(self):
        with pytest.raises(FormatError, match="symmetry"):
            reads_matrix_market(
                "%%MatrixMarket matrix coordinate real hermitian\n")

    def test_truncated_entries(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(FormatError, match="ends early"):
            reads_matrix_market(text)

    def test_malformed_size_line(self):
        text = "%%MatrixMarket matrix coordinate real general\nx y z\n"
        with pytest.raises(FormatError, match="size line"):
            reads_matrix_market(text)

    def test_malformed_entry(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"
        with pytest.raises(FormatError, match="entry"):
            reads_matrix_market(text)


class TestWriting:
    def test_string_round_trip(self):
        m = uniform_random(12, 9, density=0.2, seed=3)
        again = reads_matrix_market(writes_matrix_market(m))
        assert again == m

    def test_file_round_trip(self, tmp_path):
        m = uniform_random(8, 8, density=0.25, seed=4)
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path, comment="generated\nfor tests")
        again = read_matrix_market(path)
        assert again == m

    def test_comment_lines_written(self):
        m = COOMatrix((1, 1), [0], [0], [1.0])
        text = writes_matrix_market(m, comment="hello")
        assert "% hello" in text

    def test_values_survive_exactly(self):
        m = COOMatrix((1, 2), [0], [1], [1.0 / 3.0])
        again = reads_matrix_market(writes_matrix_market(m))
        assert again.vals[0] == m.vals[0]  # repr() round-trips floats
