"""Smoke tests: every shipped example runs to completion.

The examples are part of the public deliverable; each embeds its own
assertions (results checked against references), so a clean exit is a real
correctness signal, not just an import check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

#: Each example is a full end-to-end scenario (several seconds apiece);
#: tier-1 CI deselects them and the smoke job runs them.
pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # quickstart + two domain scenarios


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    result = subprocess.run([sys.executable, str(example)],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"
