"""Tests for repro.pim — memory regions, registers, the PU interpreter."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import ProcessingUnitConfig
from repro.errors import CapacityError, ExecutionError
from repro.isa import BinaryOp, assemble
from repro.pim import (BankMemory, Beat, DenseRegion, ProcessingUnit,
                       RegisterFile, SparseQueue, TripleRegion,
                       padded_triples, alu)
from repro.pim.unit import uses_bank


class TestDenseRegion:
    def test_read_write(self):
        region = DenseRegion("v", np.arange(8.0))
        np.testing.assert_allclose(region.read(2, 3), [2, 3, 4])
        region.write(2, np.array([9.0, 9.0]))
        assert region.data[2] == 9.0 and region.data[3] == 9.0

    def test_reads_past_end_are_zero(self):
        region = DenseRegion("v", np.arange(4.0))
        np.testing.assert_allclose(region.read(2, 4), [2, 3, 0, 0])
        np.testing.assert_allclose(region.read(10, 2), [0, 0])

    def test_writes_past_end_dropped(self):
        region = DenseRegion("v", np.arange(4.0))
        region.write(3, np.array([7.0, 8.0]))
        assert region.data[3] == 7.0  # 8.0 silently dropped

    def test_scalar_access(self):
        region = DenseRegion("v", np.arange(4.0))
        assert region.read_scalar(1) == 1.0
        assert region.read_scalar(99) == 0.0

    def test_negative_access_rejected(self):
        region = DenseRegion("v", np.arange(4.0))
        with pytest.raises(ExecutionError):
            region.read(-1, 2)

    def test_accumulate_predicated(self):
        region = DenseRegion("v", np.zeros(4))
        region.accumulate(np.array([1, 99, 2]), np.array([5.0, 7.0, 3.0]),
                          lambda a, b: a + b)
        np.testing.assert_allclose(region.data, [0, 5, 3, 0])


class TestTripleRegion:
    def test_group_reads(self):
        region = TripleRegion("m", np.arange(10), np.arange(10),
                              np.arange(10.0))
        rows, cols, vals = region.read_group(1, 4)
        np.testing.assert_array_equal(rows, [4, 5, 6, 7])
        rows, _, _ = region.read_group(2, 4)
        assert rows.size == 2  # tail group is short

    def test_reads_past_end_empty(self):
        region = TripleRegion("m", np.arange(4), np.arange(4),
                              np.arange(4.0))
        rows, cols, vals = region.read_group(5, 4)
        assert rows.size == cols.size == vals.size == 0

    def test_padding_and_valid_count(self):
        rows, cols, vals = padded_triples(np.array([1, 2]), np.array([0, 1]),
                                          np.array([1.0, 2.0]), total=6)
        region = TripleRegion("m", rows, cols, vals)
        assert len(region) == 6
        assert region.valid_count == 2

    def test_padding_cannot_shrink(self):
        with pytest.raises(CapacityError):
            padded_triples(np.arange(4), np.arange(4), np.zeros(4), total=2)

    def test_write_elements_bounds(self):
        region = TripleRegion("m", np.zeros(4, dtype=np.int64),
                              np.zeros(4, dtype=np.int64), np.zeros(4))
        with pytest.raises(CapacityError):
            region.write_elements(3, np.array([1, 2]), np.array([1, 2]),
                                  np.array([1.0, 2.0]))


class TestBankMemory:
    def test_region_lookup_and_kinds(self):
        memory = BankMemory()
        memory.add_dense("x", np.zeros(4))
        memory.add_triples("m", np.zeros(2, dtype=np.int64),
                           np.zeros(2, dtype=np.int64), np.zeros(2))
        assert "x" in memory and "m" in memory
        with pytest.raises(ExecutionError):
            memory.dense("m")
        with pytest.raises(ExecutionError):
            memory.triples("x")
        with pytest.raises(ExecutionError):
            memory.dense("nope")


class TestSparseQueue:
    def test_fifo_order(self):
        queue = SparseQueue(4)
        queue.push(1, 2, 3.0)
        queue.push(4, 5, 6.0)
        assert queue.pop() == (1, 2, 3.0)
        assert queue.pop() == (4, 5, 6.0)

    def test_predicated_push_when_full(self):
        queue = SparseQueue(2)
        assert queue.push(0, 0, 0.0)
        assert queue.push(1, 1, 1.0)
        assert not queue.push(2, 2, 2.0)
        assert len(queue) == 2

    def test_pop_up_to(self):
        queue = SparseQueue(8)
        for i in range(3):
            queue.push(i, i, float(i))
        assert len(queue.pop_up_to(5)) == 3
        assert queue.is_empty

    def test_pop_empty_raises(self):
        with pytest.raises(ExecutionError):
            SparseQueue(2).pop()

    def test_capacities_by_precision(self):
        fp64 = RegisterFile(ProcessingUnitConfig(), "fp64")
        assert fp64.lanes == 4
        assert fp64.queue_capacity == 8   # 64 B / 8 B values
        assert fp64.group_size == 4
        int8 = RegisterFile(ProcessingUnitConfig(), "int8")
        assert int8.lanes == 32
        assert int8.queue_capacity == 32  # bound by int16 indices
        assert int8.group_size == 32

    def test_queues_empty_mask(self):
        rf = RegisterFile(ProcessingUnitConfig(), "fp64")
        rf.queues[1].push(0, 0, 1.0)
        assert rf.queues_empty(0b001)
        assert not rf.queues_empty(0b010)
        assert not rf.queues_empty(0b111)


class TestALU:
    @given(st.sampled_from([BinaryOp.ADD, BinaryOp.MUL, BinaryOp.MIN,
                            BinaryOp.MAX]),
           st.lists(st.floats(-100, 100), min_size=1, max_size=8))
    def test_reduce_matches_numpy(self, op, values):
        arr = np.array(values)
        seed = alu.identity(op)
        got = alu.reduce_array(op, arr, seed)
        expect = {BinaryOp.ADD: np.sum, BinaryOp.MUL: np.prod,
                  BinaryOp.MIN: np.min, BinaryOp.MAX: np.max}[op](arr)
        assert got == pytest.approx(float(expect), rel=1e-9, abs=1e-9)

    def test_identity_elements(self):
        for op in (BinaryOp.ADD, BinaryOp.MUL, BinaryOp.MIN, BinaryOp.MAX,
                   BinaryOp.LAND, BinaryOp.LOR):
            ident = alu.identity(op)
            assert alu.apply(op, ident, 5.0) == pytest.approx(
                alu.apply(op, ident, 5.0))

    def test_non_reducible_ops(self):
        with pytest.raises(ExecutionError):
            alu.identity(BinaryOp.SUB)
        with pytest.raises(ExecutionError):
            alu.reduce_array(BinaryOp.FIRST, np.ones(3), 0.0)

    def test_logical_ops(self):
        assert alu.apply(BinaryOp.LAND, 1.0, 0.0) == 0.0
        assert alu.apply(BinaryOp.LOR, 1.0, 0.0) == 1.0

    def test_select_ops(self):
        assert alu.apply(BinaryOp.SECOND, 1.0, 2.0) == 2.0


class TestUsesBank:
    def test_register_only_ops(self):
        program = assemble("""
            REDUCE SRF, DRF0
            SSPV   SPVQ1, SRF, SPVQ0
            DVDV   DRF2, DRF0, DRF1
            DMOV   DRF0, DRF1
        """)
        for instruction in program:
            assert not uses_bank(instruction)

    def test_bank_ops(self):
        program = assemble("""
            DMOV   DRF0, BANK
            SDV    DRF0, SRF, BANK
            INDMOV SRF, BANK, SPVQ0
            SPVDV  BANK, SPVQ0
            SPMOV  SPVQ0, BANK
            GTHSCT SPVQ0, BANK
        """)
        for instruction in program:
            assert uses_bank(instruction)


class TestProcessingUnit:
    def _unit(self):
        memory = BankMemory()
        memory.add_dense("x", np.arange(8.0))
        memory.add_dense("y", np.zeros(8))
        return ProcessingUnit(memory)

    def test_requires_program(self):
        unit = self._unit()
        with pytest.raises(ExecutionError, match="no program"):
            unit.consume_beat(Beat("x", 0))

    def test_dense_copy_beats(self):
        unit = self._unit()
        unit.load_program(assemble("""
        loop:
            DMOV DRF0, BANK
            DMOV BANK, DRF0
            JUMP loop count=2
            EXIT
        """))
        for g in range(2):
            unit.consume_beat(Beat("x", g))
            unit.consume_beat(Beat("y", g, write=True))
        unit.flush_control()
        assert unit.exited
        np.testing.assert_allclose(unit.memory.dense("y").data,
                                   np.arange(8.0))

    def test_exited_unit_ignores_beats(self):
        unit = self._unit()
        unit.load_program(assemble("EXIT"))
        unit.consume_beat(Beat("x", 0))
        assert unit.exited
        before = unit.memory.dense("y").data.copy()
        unit.consume_beat(Beat("y", 0, write=True))
        np.testing.assert_allclose(unit.memory.dense("y").data, before)
        assert unit.stats.nop_beats >= 1

    def test_runaway_program_detected(self):
        unit = self._unit()
        # A loop with no bank access can never consume a transaction.
        unit.load_program(assemble("""
        loop:
            DMOV DRF0, DRF1
            JUMP loop count=1000
            EXIT
        """))
        with pytest.raises(ExecutionError, match="no bank access"):
            unit.consume_beat(Beat("x", 0))

    def test_cexit_requires_exhaustion(self):
        memory = BankMemory()
        rows, cols, vals = padded_triples(np.array([0]), np.array([0]),
                                          np.array([2.0]), total=4)
        memory.add_triples("m", rows, cols, vals)
        unit = ProcessingUnit(memory)
        unit.load_program(assemble("""
        loop:
            SPMOV SPVQ0, BANK
            CEXIT SPVQ0
            JUMP  loop count=2
            EXIT
        """))
        unit.consume_beat(Beat("m", 0))
        unit.flush_control()
        # stream had padding -> exhausted, but queue still holds one item
        assert not unit.exited
        assert unit.exhausted
        assert len(unit.registers.queues[0]) == 1

    def test_nested_loops_with_orders(self):
        unit = self._unit()
        unit.load_program(assemble("""
        outer:
        inner:
            DMOV DRF0, BANK
            JUMP inner order=0 count=2
            DMOV BANK, DRF0
            JUMP outer order=1 count=3
            EXIT
        """))
        consumed = 0
        for _ in range(3):
            for _ in range(2):
                unit.consume_beat(Beat("x", 0))
                consumed += 1
            unit.consume_beat(Beat("y", 0, write=True))
            consumed += 1
        unit.flush_control()
        assert unit.exited
        assert unit.stats.beats == consumed

    def test_arm_preserves_registers(self):
        unit = self._unit()
        unit.load_program(assemble("EXIT"))
        unit.registers.scalar = 42.0
        unit.arm(reset_registers=False)
        assert unit.registers.scalar == 42.0
        unit.arm(reset_registers=True)
        assert unit.registers.scalar == 0.0
