"""Tests for repro.apps — backends, graph applications and solvers."""

import numpy as np
import pytest
import scipy.sparse.csgraph as csgraph

from repro.apps import (GPUBackend, PIMBackend, bfs, connected_components,
                        pagerank, pbicgstab, pcg, sssp, triangle_count)
from repro.core import ildu
from repro.formats import coo_to_scipy, generate
from repro.formats.generators import (make_spd, power_law_graph,
                                      uniform_random)

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def graph():
    return generate("wiki-Vote", scale=0.15)


@pytest.fixture(scope="module")
def sgraph(graph):
    return coo_to_scipy(graph).tocsr()


@pytest.fixture()
def gpu():
    return GPUBackend(graphblast=True)


@pytest.fixture()
def pim():
    return PIMBackend()


class TestBackends:
    def test_ledger_accumulates(self, pim, graph):
        x = RNG.random(graph.shape[1])
        pim.spmv(graph, x)
        pim.dot(x, x)
        assert pim.ledger["spmv"] > 0
        assert pim.ledger["vector"] > 0
        assert pim.calls["spmv"] == 1
        assert pim.total_seconds == sum(pim.ledger.values())

    def test_reset(self, pim, graph):
        pim.spmv(graph, RNG.random(graph.shape[1]))
        pim.reset()
        assert pim.total_seconds == 0.0

    def test_spmv_memoises_timing(self, pim, graph):
        x = RNG.random(graph.shape[1])
        pim.spmv(graph, x)
        first = pim.ledger["spmv"]
        pim.spmv(graph, x)
        assert pim.ledger["spmv"] == pytest.approx(2 * first)

    def test_backends_agree_numerically(self, gpu, pim, graph):
        x = RNG.random(graph.shape[1])
        np.testing.assert_allclose(gpu.spmv(graph, x), pim.spmv(graph, x),
                                   rtol=1e-10)

    def test_vector_ops(self, pim):
        x, y = RNG.random(100), RNG.random(100)
        np.testing.assert_allclose(pim.axpy(2.0, x, y), 2 * x + y)
        np.testing.assert_allclose(pim.ewise(x, y, "max"), np.maximum(x, y))
        np.testing.assert_allclose(pim.scale(3.0, x), 3 * x)
        assert pim.dot(x, y) == pytest.approx(x @ y)
        assert pim.norm(x) == pytest.approx(np.linalg.norm(x))

    def test_gpu_vector_costs_more_with_graphblast(self, graph):
        plain = GPUBackend(graphblast=False)
        gb = GPUBackend(graphblast=True)
        x = RNG.random(1000)
        plain.dot(x, x)
        gb.dot(x, x)
        assert gb.ledger["vector"] > plain.ledger["vector"]

    def test_fig13_offload_switch(self, graph):
        onto_pim = PIMBackend(offload_spmv=True)
        accel_only = PIMBackend(offload_spmv=False)
        x = RNG.random(graph.shape[1])
        onto_pim.spmv(graph, x)
        accel_only.spmv(graph, x)
        assert accel_only.ledger["spmv"] > onto_pim.ledger["spmv"]


class TestGraphApps:
    def test_bfs_matches_scipy(self, pim, graph, sgraph):
        result = bfs(graph, 0, pim)
        dist = csgraph.shortest_path(sgraph, method="D", unweighted=True,
                                     indices=0)
        expect = np.where(np.isinf(dist), -1.0, dist)
        np.testing.assert_array_equal(result.value, expect)

    def test_bfs_gpu_pim_same_answer(self, gpu, pim, graph):
        a = bfs(graph, 3, gpu)
        b = bfs(graph, 3, pim)
        np.testing.assert_array_equal(a.value, b.value)
        assert a.total_seconds > 0 and b.total_seconds > 0

    def test_bfs_isolated_source(self, pim):
        g = power_law_graph(50, 3, seed=1)
        result = bfs(g, 0, pim)
        assert result.value[0] == 0

    def test_cc_matches_scipy(self, pim, graph, sgraph):
        result = connected_components(graph, pim)
        n_comp, _ = csgraph.connected_components(sgraph, directed=False)
        assert len(set(result.value.tolist())) == n_comp

    def test_pagerank_is_distribution(self, pim, graph):
        result = pagerank(graph, pim, iterations=15)
        assert result.value.sum() == pytest.approx(1.0)
        assert np.all(result.value >= 0)

    def test_pagerank_favours_hubs(self, pim):
        # star graph: everyone points at vertex 0
        import numpy as np
        from repro.formats import COOMatrix
        n = 20
        star = COOMatrix((n, n), np.arange(1, n),
                         np.zeros(n - 1, dtype=np.int64), np.ones(n - 1))
        result = pagerank(star, pim)
        assert np.argmax(result.value) == 0

    def test_sssp_matches_scipy(self, pim, graph, sgraph):
        result = sssp(graph, 0, pim)
        dist = csgraph.shortest_path(sgraph, indices=0)
        np.testing.assert_allclose(result.value, dist)

    def test_triangle_count_matches_dense(self, pim, graph, sgraph):
        result = triangle_count(graph, pim)
        a = (sgraph + sgraph.T).astype(bool).astype(float).toarray()
        np.fill_diagonal(a, 0)
        expect = np.trace(a @ a @ a) / 6
        assert result.value == expect

    def test_breakdowns_populated(self, pim, graph):
        result = pagerank(graph, pim, iterations=5)
        assert result.breakdown["spmv"] > 0
        assert result.breakdown["vector"] > 0
        assert result.iterations == 5


class TestSolvers:
    @pytest.fixture(scope="class")
    def system(self):
        matrix = make_spd(uniform_random(250, 250, 0.02, seed=2))
        x_true = np.random.default_rng(3).random(250)
        return matrix, x_true, matrix.matvec(x_true)

    def test_pcg_converges(self, pim, system):
        matrix, x_true, b = system
        result = pcg(matrix, b, pim, tol=1e-10)
        assert result.value.converged
        np.testing.assert_allclose(result.value.x, x_true, rtol=1e-6)

    def test_pcg_faster_than_unpreconditioned_story(self, pim, system):
        matrix, _, b = system
        result = pcg(matrix, b, pim, tol=1e-10)
        # the ILDU preconditioner must make CG converge well below n iters
        assert result.iterations < matrix.shape[0] // 4

    def test_pcg_breakdown_has_sptrsv(self, pim, system):
        matrix, _, b = system
        result = pcg(matrix, b, pim, tol=1e-8)
        assert result.breakdown["sptrsv"] > 0
        assert result.breakdown["spmv"] > 0
        assert result.breakdown["vector"] > 0

    def test_pbicgstab_converges(self, pim, system):
        matrix, x_true, b = system
        result = pbicgstab(matrix, b, pim, tol=1e-10)
        assert result.value.converged
        np.testing.assert_allclose(result.value.x, x_true, rtol=1e-6)

    def test_pbicgstab_nonsymmetric(self, pim):
        base = make_spd(uniform_random(150, 150, 0.03, seed=4))
        # perturb off-diagonals to break symmetry but keep dominance
        skew = uniform_random(150, 150, 0.005, seed=5)
        from repro.formats import scipy_to_coo, coo_to_scipy
        matrix = scipy_to_coo(coo_to_scipy(base)
                              + 0.05 * coo_to_scipy(skew))
        x_true = RNG.random(150)
        b = matrix.matvec(x_true)
        result = pbicgstab(matrix, b, pim, tol=1e-10, max_iterations=400)
        assert result.value.residual < 1e-6

    def test_pcg_zero_rhs(self, pim, system):
        matrix, _, _ = system
        result = pcg(matrix, np.zeros(matrix.shape[0]), pim)
        assert result.value.converged
        np.testing.assert_allclose(result.value.x, 0.0)

    def test_shared_factors_reused(self, pim, system):
        matrix, _, b = system
        factors = ildu(matrix)
        r1 = pcg(matrix, b, pim, factors=factors, tol=1e-8)
        r2 = pcg(matrix, b, pim, factors=factors, tol=1e-8)
        assert r1.iterations == r2.iterations

    def test_gpu_pim_same_iterations(self, gpu, pim, system):
        matrix, _, b = system
        a = pcg(matrix, b, gpu, tol=1e-9)
        c = pcg(matrix, b, pim, tol=1e-9)
        assert a.iterations == c.iterations
        np.testing.assert_allclose(a.value.x, c.value.x, rtol=1e-8)
