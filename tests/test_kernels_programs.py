"""Tests for repro.kernels.programs — the Table III kernel programs.

Each builder must produce a valid, terminating program whose beat demand
matches the driver contract; the checks here pin those schedules so a
program edit that silently changes a kernel's transaction pattern fails
loudly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import MAX_INSTRUCTIONS, Program
from repro.kernels import programs
from repro.pim import beat_signature, expected_beats

BUILDERS = {
    "dcopy": lambda n: programs.dcopy_program(n),
    "dswap": lambda n: programs.dswap_program(n),
    "dscal": lambda n: programs.dscal_program(n),
    "daxpy": lambda n: programs.daxpy_program(n),
    "ddot": lambda n: programs.ddot_program(n),
    "gather": lambda n: programs.gather_program(n),
    "scatter": lambda n: programs.scatter_program(n),
    "spaxpy": lambda n: programs.spaxpy_program(n, 4),
    "spdot": lambda n: programs.spdot_program(n, 4),
    "spmv": lambda n: programs.spmv_program(n, 2, 8),
    "dgemv_row": lambda n: programs.dgemv_row_program(n),
    "dtrsv": lambda n: programs.dtrsv_update_program(n),
    "elementwise": lambda n: programs.elementwise_program(n, "add"),
}

#: Transactions each kernel consumes per loop iteration.
BEATS_PER_GROUP = {
    "dcopy": 2, "dswap": 4, "dscal": 2, "daxpy": 3, "ddot": 2,
    "gather": 2, "scatter": 2, "spaxpy": 5, "spdot": 5, "spmv": 18,
    "elementwise": 3, "dtrsv": 3,
}


class TestBuilders:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_valid_and_fits_control_register(self, name):
        program = BUILDERS[name](7)
        assert isinstance(program, Program)
        assert len(program) <= MAX_INSTRUCTIONS
        assert program.has_terminator

    @pytest.mark.parametrize("name", sorted(BEATS_PER_GROUP))
    def test_beats_per_group_contract(self, name):
        per_group = BEATS_PER_GROUP[name]
        for groups in (1, 5):
            program = BUILDERS[name](groups)
            extra = 1 if name == "dgemv_row" else 0
            assert expected_beats(program) == groups * per_group + extra, \
                name

    def test_dgemv_row_ends_with_scalar_store(self):
        signature = beat_signature(programs.dgemv_row_program(3))
        assert signature[-1].opcode == "DMOV" and signature[-1].write

    def test_spmv_accumulate_variants(self):
        for op in ("add", "sub", "min", "lor"):
            program = programs.spmv_program(4, 2, 8, accumulate=op)
            assert expected_beats(program) == 4 * 18

    @pytest.mark.parametrize("precision", ["fp64", "fp32", "int8"])
    def test_precision_threads_through(self, precision):
        program = programs.daxpy_program(3, precision)
        assert precision in str(program[0]).lower()

    @given(st.integers(1, 1023))
    @settings(max_examples=20, deadline=None)
    def test_any_legal_group_count_assembles(self, groups):
        program = programs.dcopy_program(groups)
        assert expected_beats(program) == 2 * groups

    def test_round_trip_through_encoding(self):
        for name, builder in BUILDERS.items():
            program = builder(3)
            assert Program.decode_words(program.encode_words()) == \
                program, name
