"""Direct bit-slicing tests for repro.dram.address.

The Table VII ``rorabgbachco`` interleave is easy to get subtly wrong:
an off-by-one in a field width silently aliases banks or rows. These
tests pin the exact bit positions of every field, exhaustively
round-trip the sub-row fields, and cover the degenerate widths (rank is
0 bits; 1-item fields consume no address bits).
"""

import dataclasses

import pytest

from repro.config import HBM2Config
from repro.dram import AddressMapper
from repro.errors import AddressError

CFG = HBM2Config()


@pytest.fixture()
def mapper():
    return AddressMapper(CFG)


class TestBitLayout:
    """Pin each field to its exact bit position (Table VII order)."""

    # low to high: 4 offset bits (16 B columns), 6 column, 4 channel,
    # 2 bank, 2 bankgroup, 0 rank, 14 row
    OFFSET_BITS = 4
    COLUMN_SHIFT = 4
    CHANNEL_SHIFT = 10
    BANK_SHIFT = 14
    BANKGROUP_SHIFT = 16
    ROW_SHIFT = 18

    def test_offset_occupies_low_bits(self, mapper):
        base = mapper.encode(0, 0, 0, 0, 0)
        assert mapper.encode(0, 0, 0, 0, 0, offset=15) == base + 15

    @pytest.mark.parametrize("field,shift", [
        ("column", COLUMN_SHIFT),
        ("channel", CHANNEL_SHIFT),
        ("bank", BANK_SHIFT),
        ("bankgroup", BANKGROUP_SHIFT),
        ("row", ROW_SHIFT),
    ])
    def test_field_lsb_position(self, mapper, field, shift):
        kwargs = dict(channel=0, bankgroup=0, bank=0, row=0, column=0)
        kwargs[field] = 1
        assert mapper.encode(**kwargs) == 1 << shift

    def test_field_msb_positions(self, mapper):
        top = mapper.encode(channel=CFG.num_pseudo_channels - 1,
                            bankgroup=CFG.num_bankgroups - 1,
                            bank=CFG.banks_per_group - 1,
                            row=CFG.num_rows - 1,
                            column=CFG.num_columns - 1,
                            offset=CFG.column_bytes - 1)
        assert top == mapper.addressable_bytes - 1

    def test_adjacent_columns_are_contiguous_bytes(self, mapper):
        a = mapper.encode(3, 1, 2, 100, 7)
        b = mapper.encode(3, 1, 2, 100, 8)
        assert b - a == CFG.column_bytes

    def test_row_stride_spans_all_sub_row_fields(self, mapper):
        a = mapper.encode(0, 0, 0, 5, 0)
        b = mapper.encode(0, 0, 0, 6, 0)
        assert b - a == (CFG.row_bytes * CFG.num_pseudo_channels
                         * CFG.banks_per_channel)


class TestRoundTrip:
    def test_exhaustive_sub_row_round_trip(self, mapper):
        """Every (channel, bankgroup, bank, column) is distinct and
        decodes back exactly — no aliasing anywhere below the row."""
        seen = set()
        for ch in range(CFG.num_pseudo_channels):
            for bg in range(CFG.num_bankgroups):
                for ba in range(CFG.banks_per_group):
                    for co in range(CFG.num_columns):
                        addr = mapper.encode(ch, bg, ba, 77, co)
                        assert addr not in seen
                        seen.add(addr)
                        d = mapper.decode(addr)
                        assert (d.channel, d.bankgroup, d.bank,
                                d.row, d.column) == (ch, bg, ba, 77, co)
        assert len(seen) == (CFG.num_pseudo_channels * CFG.banks_per_channel
                             * CFG.num_columns)

    def test_row_boundaries_round_trip(self, mapper):
        for row in (0, 1, CFG.num_rows // 2, CFG.num_rows - 1):
            d = mapper.decode(mapper.encode(9, 2, 3, row, 31))
            assert d.row == row and d.flat_bank == 2 * 4 + 3

    def test_offset_not_part_of_decode(self, mapper):
        base = mapper.decode(mapper.encode(1, 2, 3, 4, 5))
        assert mapper.decode(mapper.encode(1, 2, 3, 4, 5, offset=9)) == base


class TestEdges:
    def test_rank_field_is_zero_bits(self, mapper):
        # capacity covers exactly the non-rank fields: 0 rank bits
        assert mapper.addressable_bytes == CFG.capacity_bytes

    def test_single_item_fields_consume_no_bits(self):
        tiny = dataclasses.replace(CFG, num_pseudo_channels=1,
                                   num_bankgroups=1)
        mapper = AddressMapper(tiny)
        assert mapper.addressable_bytes == (
            tiny.banks_per_group * tiny.num_rows * tiny.row_bytes)
        d = mapper.decode(mapper.encode(0, 0, 3, 12, 60))
        assert (d.bank, d.row, d.column) == (3, 12, 60)

    def test_alternative_mapping_permutes_bits(self):
        swapped = AddressMapper(dataclasses.replace(
            CFG, address_mapping="rorabgbacoch"))
        default = AddressMapper(CFG)
        # same coordinates, different bit layout, both self-consistent
        addr_a = swapped.encode(5, 1, 2, 9, 33)
        addr_b = default.encode(5, 1, 2, 9, 33)
        assert addr_a != addr_b
        d = swapped.decode(addr_a)
        assert (d.channel, d.bankgroup, d.bank, d.row, d.column) \
            == (5, 1, 2, 9, 33)

    def test_out_of_range_rejected(self, mapper):
        with pytest.raises(AddressError):
            mapper.encode(CFG.num_pseudo_channels, 0, 0, 0, 0)
        with pytest.raises(AddressError):
            mapper.encode(0, 0, 0, CFG.num_rows, 0)
        with pytest.raises(AddressError):
            mapper.encode(0, 0, 0, 0, 0, offset=CFG.column_bytes)
        with pytest.raises(AddressError):
            mapper.decode(-1)
        with pytest.raises(AddressError):
            mapper.decode(mapper.addressable_bytes)


class TestPseudoChannelSplit:
    """The optional ``pc`` token splits the channel bits: ``ch`` indexes
    the physical channel, ``pc`` the pseudo-channel within it."""

    SPLIT = dataclasses.replace(CFG, address_mapping="rorabgbachpcco")

    # low to high: 4 offset, 6 column, 1 pseudo-channel, 3 physical
    # channel, 2 bank, 2 bankgroup, 0 rank, 14 row
    PC_SHIFT = 10
    CH_SHIFT = 11
    BANK_SHIFT = 14
    BANKGROUP_SHIFT = 16
    ROW_SHIFT = 18

    @pytest.fixture()
    def split(self):
        return AddressMapper(self.SPLIT)

    def test_exact_bit_positions(self, split):
        # channel=1 is pseudo-channel 1 of physical channel 0: the pc bit
        assert split.encode(1, 0, 0, 0, 0) == 1 << self.PC_SHIFT
        # channel=2 is physical channel 1: the ch field's low bit
        assert split.encode(2, 0, 0, 0, 0) == 1 << self.CH_SHIFT
        assert split.encode(0, 0, 1, 0, 0) == 1 << self.BANK_SHIFT
        assert split.encode(0, 1, 0, 0, 0) == 1 << self.BANKGROUP_SHIFT
        assert split.encode(0, 0, 0, 1, 0) == 1 << self.ROW_SHIFT
        assert split.encode(0, 0, 0, 0, 1) == 1 << 4

    def test_same_capacity_as_combined(self, split):
        assert split.addressable_bytes \
            == AddressMapper(CFG).addressable_bytes == CFG.capacity_bytes

    def test_decode_matches_combined_mapping(self, split):
        """ch directly above pc is bit-identical to the combined field,
        so both mappings decode the same address the same way."""
        combined = AddressMapper(CFG)
        for ch in range(CFG.num_pseudo_channels):
            addr = combined.encode(ch, 2, 1, 321, 17)
            assert split.encode(ch, 2, 1, 321, 17) == addr
            assert split.decode(addr) == combined.decode(addr)

    def test_split_fields_populated(self, split):
        pcs = CFG.pseudo_channels_per_channel
        for ch in (0, 1, 7, 15):
            d = split.decode(split.encode(ch, 0, 0, 5, 9))
            assert d.channel == ch
            assert d.physical_channel == ch // pcs
            assert d.pseudo_channel == ch % pcs
            assert d.physical_channel * pcs + d.pseudo_channel == ch

    def test_combined_mapping_also_reports_split(self, mapper):
        pcs = CFG.pseudo_channels_per_channel
        d = mapper.decode(mapper.encode(13, 1, 2, 8, 3))
        assert (d.physical_channel, d.pseudo_channel) == (13 // pcs,
                                                          13 % pcs)

    def test_round_trip_exhaustive_channels(self, split):
        seen = set()
        for ch in range(CFG.num_pseudo_channels):
            for co in range(0, CFG.num_columns, 7):
                addr = split.encode(ch, 3, 2, 99, co)
                assert addr not in seen
                seen.add(addr)
                d = split.decode(addr)
                assert (d.channel, d.column) == (ch, co)

    def test_pc_elsewhere_in_mapping(self):
        # pc can sit away from ch: put it just above the column bits
        mapper = AddressMapper(dataclasses.replace(
            CFG, address_mapping="rorabgbachcopc"))
        pcs = CFG.pseudo_channels_per_channel
        assert mapper.encode(1, 0, 0, 0, 0) == 1 << 4      # pc bit
        assert mapper.encode(pcs, 0, 0, 0, 0) == 1 << 11   # ch low bit
        for ch in (0, 3, 15):
            d = mapper.decode(mapper.encode(ch, 1, 1, 7, 21))
            assert d.channel == ch

    def test_duplicate_pc_rejected(self):
        with pytest.raises(AddressError):
            AddressMapper(dataclasses.replace(
                CFG, address_mapping="rorabgbachpcpcco"))

    def test_out_of_range_channel_rejected(self, split):
        with pytest.raises(AddressError):
            split.encode(CFG.num_pseudo_channels, 0, 0, 0, 0)
