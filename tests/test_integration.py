"""Cross-subsystem integration tests.

Each test exercises several packages together the way a downstream user
would: suite matrices through the full runtime, Matrix Market files through
the CLI-facing loaders, the functional ISA tier against the fast tier on
the same plans, and complete solver pipelines with timing and energy.
"""

import numpy as np
import pytest

from repro import PSyncPIM, default_system
from repro.apps import PIMBackend, pcg
from repro.core import (ildu, run_spmv, run_sptrsv,
                        solve_unit_triangular_reference, time_spmv,
                        time_sptrsv)
from repro.dram import TimingParams
from repro.formats import (generate, matrices_for, read_matrix_market,
                           write_matrix_market)
from repro.formats.generators import make_spd, uniform_random

CFG = default_system()
RNG = np.random.default_rng(0)


class TestSuiteWideSpmv:
    """Every Table IX matrix runs the full SpMV plan correctly."""

    @pytest.mark.parametrize("name", matrices_for("spmv"))
    def test_spmv_matches_reference(self, name):
        matrix = generate(name, scale=0.015)
        x = RNG.random(matrix.shape[1])
        result = run_spmv(matrix, x, CFG)
        np.testing.assert_allclose(result.y, matrix.matvec(x),
                                   rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("name", matrices_for("graphs"))
    def test_graph_matrices_through_semiring(self, name):
        matrix = generate(name, scale=0.01)
        frontier = (RNG.random(matrix.shape[1]) < 0.2).astype(float)
        result = run_spmv(matrix.transpose(), frontier, multiply="land",
                          accumulate="lor", config=CFG)
        expect = np.zeros(matrix.shape[0])
        at = matrix.transpose()
        np.maximum.at(expect, at.rows, frontier[at.cols])
        np.testing.assert_allclose(result.y, expect)


@pytest.mark.slow
class TestSuiteWideSolvers:
    @pytest.mark.parametrize("name", matrices_for("pcg"))
    def test_pcg_on_suite_matrices(self, name):
        matrix = generate(name, scale=0.008)
        x_true = RNG.random(matrix.shape[0])
        b = matrix.matvec(x_true)
        result = pcg(matrix, b, PIMBackend(), tol=1e-9)
        assert result.value.converged, name
        np.testing.assert_allclose(result.value.x, x_true, rtol=1e-5)

    @pytest.mark.parametrize("name", matrices_for("sptrsv"))
    def test_sptrsv_on_suite_matrices(self, name):
        matrix = generate(name, scale=0.008)
        factors = ildu(matrix)
        b = RNG.random(matrix.shape[0])
        solve = run_sptrsv(factors.lower, b, CFG)
        np.testing.assert_allclose(
            solve.x, solve_unit_triangular_reference(factors.lower, b),
            rtol=1e-8)


class TestTierAgreement:
    """The instruction-accurate tier agrees with the fast tier."""

    def test_spmv_tiers_agree(self):
        matrix = generate("ca-CondMat", scale=0.05)
        x = RNG.random(matrix.shape[1])
        fast = run_spmv(matrix, x, CFG, fidelity="fast")
        functional = run_spmv(matrix, x, CFG, fidelity="functional",
                              engine_banks=8)
        np.testing.assert_allclose(functional.y, fast.y, rtol=1e-10)
        # identical plans -> identical execution records
        assert (functional.execution.round_batches
                == fast.execution.round_batches)
        assert functional.execution.input_bytes == fast.execution.input_bytes

    def test_sptrsv_tiers_agree(self):
        low = ildu(make_spd(uniform_random(90, 90, 0.04, seed=3))).lower
        b = RNG.random(90)
        fast = run_sptrsv(low, b, CFG, leaf_size=32, fidelity="fast")
        functional = run_sptrsv(low, b, CFG, leaf_size=32,
                                fidelity="functional", engine_banks=4)
        np.testing.assert_allclose(functional.x, fast.x, rtol=1e-10)

    def test_facade_tiers_agree(self):
        matrix = generate("facebook", scale=0.04)
        x = RNG.random(matrix.shape[1])
        fast = PSyncPIM(fidelity="fast").spmv(matrix, x)
        functional = PSyncPIM(fidelity="functional",
                              engine_banks=8).spmv(matrix, x)
        np.testing.assert_allclose(functional.y, fast.y)


class TestFileRoundTrips:
    def test_mtx_through_full_pipeline(self, tmp_path):
        matrix = make_spd(uniform_random(120, 120, 0.04, seed=4))
        path = tmp_path / "system.mtx"
        write_matrix_market(matrix, path, comment="integration test")
        loaded = read_matrix_market(path)
        assert loaded == matrix
        pim = PSyncPIM()
        x_true = RNG.random(120)
        b = loaded.matvec(x_true)
        factors = pim.factorize(loaded)
        y = pim.sptrsv(factors.lower, b).x
        y = y * factors.diag_inv
        z = pim.sptrsv(factors.upper, y, lower=False).x
        # one preconditioner application approximates the solve
        assert (np.linalg.norm(z - x_true)
                < np.linalg.norm(b - x_true))


class TestTimingEnergyConsistency:
    def test_spmv_timing_deterministic(self):
        matrix = generate("cant", scale=0.02)
        x = RNG.random(matrix.shape[1])
        execution = run_spmv(matrix, x, CFG).execution
        a = time_spmv(execution, CFG, with_energy=True)
        b = time_spmv(execution, CFG, with_energy=True)
        assert a.cycles == b.cycles
        assert a.energy.total_pj == b.energy.total_pj

    def test_more_work_costs_more(self):
        x_small = generate("cant", scale=0.015)
        x_large = generate("cant", scale=0.05)
        ex_small = run_spmv(x_small, RNG.random(x_small.shape[1]),
                            CFG).execution
        ex_large = run_spmv(x_large, RNG.random(x_large.shape[1]),
                            CFG).execution
        assert (time_spmv(ex_large, CFG).cycles
                > time_spmv(ex_small, CFG).cycles)

    def test_sptrsv_energy_positive_and_bounded(self):
        matrix = generate("poisson3Da", scale=0.12)
        factors = ildu(matrix)
        b = RNG.random(matrix.shape[0])
        solve = run_sptrsv(factors.lower, b, CFG)
        report = time_sptrsv(solve.execution, CFG, with_energy=True)
        watts = report.energy.average_power_watts(report.cycles,
                                                  TimingParams())
        assert 0 < watts < 10.0

    def test_three_cubes_faster_not_cheaper_per_op(self):
        matrix = generate("pwtk", scale=0.04)
        x = RNG.random(matrix.shape[1])
        one = default_system(1)
        three = default_system(3)
        t1 = time_spmv(run_spmv(matrix, x, one).execution, one)
        t3 = time_spmv(run_spmv(matrix, x, three).execution, three)
        assert t3.cycles < t1.cycles
