"""Tests for repro.formats.vector — SparseVector and index-set helpers."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import SparseVector, intersect, union


@pytest.fixture
def vec():
    return SparseVector(10, [7, 1, 4], [70.0, 10.0, 40.0])


class TestSparseVector:
    def test_dense_round_trip(self, vec):
        assert SparseVector.from_dense(vec.to_dense()) == vec

    def test_from_dense_tolerance(self):
        v = SparseVector.from_dense(np.array([1e-14, 1.0]), tol=1e-9)
        assert v.nnz == 1

    def test_from_dense_rejects_2d(self):
        with pytest.raises(FormatError):
            SparseVector.from_dense(np.eye(2))

    def test_empty(self):
        v = SparseVector.empty(5)
        assert v.nnz == 0
        assert v.density == 0.0
        np.testing.assert_allclose(v.to_dense(), np.zeros(5))

    def test_density(self, vec):
        assert vec.density == pytest.approx(0.3)

    def test_sorted(self, vec):
        s = vec.sorted()
        np.testing.assert_array_equal(s.indices, [1, 4, 7])
        np.testing.assert_allclose(s.values, [10.0, 40.0, 70.0])

    def test_dot_dense(self, vec):
        y = np.arange(10, dtype=float)
        assert vec.dot_dense(y) == pytest.approx(vec.to_dense() @ y)

    def test_dot_dense_length_check(self, vec):
        with pytest.raises(FormatError):
            vec.dot_dense(np.ones(3))

    def test_axpy_into(self, vec):
        y = np.ones(10)
        out = vec.axpy_into(2.0, y)
        np.testing.assert_allclose(out, 2.0 * vec.to_dense() + y)
        np.testing.assert_allclose(y, np.ones(10))  # input untouched

    def test_scaled(self, vec):
        np.testing.assert_allclose(vec.scaled(-1.0).to_dense(),
                                   -vec.to_dense())

    def test_validation_duplicates(self):
        with pytest.raises(FormatError, match="duplicate"):
            SparseVector(4, [1, 1], [1.0, 2.0])

    def test_validation_bounds(self):
        with pytest.raises(FormatError, match="out of range"):
            SparseVector(4, [4], [1.0])

    def test_iteration(self, vec):
        items = dict((i, v) for i, v in vec)
        assert items == {7: 70.0, 1: 10.0, 4: 40.0}

    def test_equality_order_insensitive(self, vec):
        shuffled = SparseVector(10, [4, 7, 1], [40.0, 70.0, 10.0])
        assert vec == shuffled
        assert vec != SparseVector(10, [4], [40.0])


class TestIndexSets:
    def test_intersect(self):
        a = SparseVector(8, [0, 3, 5], [1.0, 2.0, 3.0])
        b = SparseVector(8, [3, 5, 7], [10.0, 20.0, 30.0])
        idx, av, bv = intersect(a, b)
        np.testing.assert_array_equal(idx, [3, 5])
        np.testing.assert_allclose(av, [2.0, 3.0])
        np.testing.assert_allclose(bv, [10.0, 20.0])

    def test_intersect_disjoint(self):
        a = SparseVector(4, [0], [1.0])
        b = SparseVector(4, [1], [1.0])
        idx, av, bv = intersect(a, b)
        assert idx.size == 0

    def test_union_zero_fills(self):
        a = SparseVector(8, [0, 3], [1.0, 2.0])
        b = SparseVector(8, [3, 7], [10.0, 30.0])
        idx, av, bv = union(a, b)
        np.testing.assert_array_equal(idx, [0, 3, 7])
        np.testing.assert_allclose(av, [1.0, 2.0, 0.0])
        np.testing.assert_allclose(bv, [0.0, 10.0, 30.0])

    def test_union_matches_dense_add(self):
        rng = np.random.default_rng(5)
        a = SparseVector.from_dense(rng.random(20) * (rng.random(20) < 0.3))
        b = SparseVector.from_dense(rng.random(20) * (rng.random(20) < 0.3))
        idx, av, bv = union(a, b)
        dense_sum = a.to_dense() + b.to_dense()
        out = np.zeros(20)
        out[idx] = av + bv
        np.testing.assert_allclose(out, dense_sum)

    def test_length_mismatch(self):
        with pytest.raises(FormatError):
            intersect(SparseVector.empty(3), SparseVector.empty(4))
        with pytest.raises(FormatError):
            union(SparseVector.empty(3), SparseVector.empty(4))
