"""Tests for repro.core.sptrsv — ILDU, levels, recursive blocks, solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_system
from repro.core import (ildu, level_schedule, recursive_plan,
                        reorder_by_levels, run_sptrsv,
                        solve_unit_triangular_reference)
from repro.errors import ExecutionError, MappingError, SolverError
from repro.formats import COOMatrix, generate
from repro.formats.generators import (make_spd, uniform_random,
                                      unit_lower_from, unit_upper_from)

CFG = default_system()
RNG = np.random.default_rng(0)


def lower_case(n=200, density=0.03, seed=1):
    base = uniform_random(n, n, density, seed=seed)
    return unit_lower_from(base, seed=seed + 1)


class TestReferenceSolve:
    def test_matches_numpy_lower(self):
        low = lower_case()
        b = RNG.random(200)
        np.testing.assert_allclose(
            solve_unit_triangular_reference(low, b, lower=True),
            np.linalg.solve(low.to_dense(), b))

    def test_matches_numpy_upper(self):
        up = unit_upper_from(uniform_random(150, 150, 0.04, seed=2), seed=3)
        b = RNG.random(150)
        np.testing.assert_allclose(
            solve_unit_triangular_reference(up, b, lower=False),
            np.linalg.solve(up.to_dense(), b))


class TestILDU:
    @pytest.fixture
    def spd(self):
        return make_spd(uniform_random(120, 120, 0.04, seed=4))

    def test_factor_shapes(self, spd):
        f = ildu(spd)
        assert f.lower.is_lower_triangular()
        assert f.upper.is_upper_triangular()
        np.testing.assert_allclose(f.lower.diagonal(), 1.0)
        np.testing.assert_allclose(f.upper.diagonal(), 1.0)
        assert np.all(np.isfinite(f.diag_inv))

    def test_pattern_preserved(self, spd):
        f = ildu(spd)
        # ILU(0): factor pattern is a subset of A's pattern (plus diagonal)
        a_keys = set(zip(spd.rows.tolist(), spd.cols.tolist()))
        for r, c, _ in f.lower.strictly_lower():
            assert (r, c) in a_keys
        for r, c, _ in f.upper.strictly_upper():
            assert (r, c) in a_keys

    def test_preconditioner_reduces_error(self, spd):
        x = RNG.random(120)
        b = spd.matvec(x)
        approx = ildu(spd).apply(b)
        raw = np.linalg.norm(b - x) / np.linalg.norm(x)
        pre = np.linalg.norm(approx - x) / np.linalg.norm(x)
        assert pre < raw

    def test_exact_on_triangular_product(self):
        # A = L D U exactly representable -> ILDU recovers a perfect
        # preconditioner on A's own pattern when no fill is dropped.
        low = lower_case(n=60, density=0.02, seed=5)
        diag = np.abs(RNG.random(60)) + 1.0
        dense = low.to_dense() @ np.diag(diag) @ low.to_dense().T
        spd_exact = COOMatrix.from_dense(dense)
        f = ildu(spd_exact)
        x = RNG.random(60)
        b = spd_exact.matvec(x)
        # not exact (pattern of A adds fill), but very strong
        assert np.linalg.norm(f.apply(b) - x) / np.linalg.norm(x) < 0.5

    def test_rejects_non_square(self):
        with pytest.raises(SolverError):
            ildu(uniform_random(4, 5, 0.5, seed=6))

    def test_rejects_zero_diagonal(self):
        m = COOMatrix((3, 3), [0, 1], [0, 1], [1.0, 1.0])
        with pytest.raises(SolverError, match="diagonal"):
            ildu(m)


class TestLevels:
    def test_levels_partition_rows(self):
        low = lower_case()
        levels = level_schedule(low)
        flat = np.concatenate(levels)
        assert np.array_equal(np.sort(flat), np.arange(200))

    def test_level_independence(self):
        low = lower_case()
        dense = low.strictly_lower().to_dense()
        for level in level_schedule(low):
            members = set(level.tolist())
            for i in level:
                deps = np.nonzero(dense[i])[0]
                assert not members.intersection(deps.tolist())

    def test_diagonal_matrix_single_level(self):
        eye = COOMatrix.from_dense(np.eye(10))
        assert len(level_schedule(eye)) == 1

    def test_dense_chain_n_levels(self):
        n = 8
        chain = COOMatrix((n, n),
                          list(range(1, n)) + list(range(n)),
                          list(range(n - 1)) + list(range(n)),
                          [1.0] * (n - 1) + [1.0] * n)
        assert len(level_schedule(chain)) == n

    def test_upper_levels_match_flipped(self):
        low = lower_case(seed=7)
        up = low.transpose()
        lower_levels = level_schedule(low, lower=True)
        upper_levels = level_schedule(up, lower=False)
        assert len(lower_levels) == len(upper_levels)

    def test_reorder_preserves_triangularity_and_solution(self):
        low = lower_case(seed=8)
        b = RNG.random(200)
        perm, reordered = reorder_by_levels(low)
        assert reordered.is_lower_triangular()
        x_ref = solve_unit_triangular_reference(low, b)
        x_perm = solve_unit_triangular_reference(reordered, b[perm])
        unperm = np.empty_like(x_perm)
        unperm[perm] = x_perm
        np.testing.assert_allclose(unperm, x_ref)

    def test_reorder_reduces_or_keeps_levels_contiguous(self):
        low = lower_case(seed=9)
        _, reordered = reorder_by_levels(low)
        levels = level_schedule(reordered)
        # after reordering each level occupies a contiguous index range
        start = 0
        for level in levels:
            np.testing.assert_array_equal(
                np.sort(level), np.arange(start, start + level.size))
            start += level.size


class TestRecursivePlan:
    def test_leaf_only(self):
        plan = recursive_plan(10, leaf_size=16)
        assert len(plan) == 1
        assert plan[0].kind == "leaf"

    def test_structure(self):
        plan = recursive_plan(100, leaf_size=25)
        kinds = [s.kind for s in plan]
        assert kinds.count("update") == kinds.count("leaf") - 1
        # leaves tile [0, n) in order
        leaves = [s for s in plan if s.kind == "leaf"]
        assert leaves[0].row_range[0] == 0
        assert leaves[-1].row_range[1] == 100
        for a, b in zip(leaves, leaves[1:]):
            assert a.row_range[1] == b.row_range[0]

    def test_update_blocks_are_below_diagonal(self):
        for step in recursive_plan(200, leaf_size=30):
            if step.kind == "update":
                assert step.col_range[1] <= step.row_range[0]

    def test_bad_leaf(self):
        with pytest.raises(MappingError):
            recursive_plan(10, leaf_size=0)

    def test_empty(self):
        assert recursive_plan(0, leaf_size=4) == []


class TestRunSpTRSV:
    @pytest.mark.parametrize("reorder", [True, False])
    @pytest.mark.parametrize("leaf", [16, 64, 512])
    def test_lower_solve(self, reorder, leaf):
        low = lower_case(seed=10)
        b = RNG.random(200)
        result = run_sptrsv(low, b, CFG, reorder=reorder, leaf_size=leaf)
        np.testing.assert_allclose(result.x,
                                   np.linalg.solve(low.to_dense(), b),
                                   rtol=1e-9)

    def test_upper_solve(self):
        up = unit_upper_from(uniform_random(150, 150, 0.04, seed=11),
                             seed=12)
        b = RNG.random(150)
        result = run_sptrsv(up, b, CFG, lower=False)
        np.testing.assert_allclose(result.x,
                                   np.linalg.solve(up.to_dense(), b),
                                   rtol=1e-9)

    def test_functional_fidelity(self):
        low = lower_case(n=80, density=0.05, seed=13)
        b = RNG.random(80)
        result = run_sptrsv(low, b, CFG, fidelity="functional",
                            engine_banks=4, leaf_size=32)
        np.testing.assert_allclose(result.x,
                                   np.linalg.solve(low.to_dense(), b),
                                   rtol=1e-9)

    def test_execution_record(self):
        low = lower_case(seed=14)
        b = RNG.random(200)
        result = run_sptrsv(low, b, CFG, leaf_size=64)
        ex = result.execution
        assert ex.num_levels == len(ex.level_elements)
        assert sum(ex.level_elements) + sum(ex.update_elements) \
            == low.strictly_lower().nnz
        assert len(ex.update_execs) == len(ex.update_elements)

    def test_solve_via_ildu_pipeline(self):
        spd = make_spd(uniform_random(150, 150, 0.03, seed=15))
        f = ildu(spd)
        x = RNG.random(150)
        b = spd.matvec(x)
        y = run_sptrsv(f.lower, b, CFG, lower=True).x
        y = y * f.diag_inv
        z = run_sptrsv(f.upper, y, CFG, lower=False).x
        np.testing.assert_allclose(z, f.apply(b), rtol=1e-9)

    def test_bad_inputs(self):
        low = lower_case(seed=16)
        with pytest.raises(ExecutionError):
            run_sptrsv(low, np.ones(3), CFG)
        with pytest.raises(ExecutionError):
            run_sptrsv(low, np.ones(200), CFG, lower=False)
        up = low.transpose()
        with pytest.raises(ExecutionError):
            run_sptrsv(up, np.ones(200), CFG, lower=True)

    @given(st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_property_solve(self, seed):
        low = lower_case(n=90, density=0.05, seed=seed)
        b = np.random.default_rng(seed).random(90)
        result = run_sptrsv(low, b, CFG, leaf_size=32)
        residual = low.matvec(result.x) - b
        assert np.abs(residual).max() < 1e-8

    def test_suite_matrix_pipeline(self):
        m = generate("poisson3Da", scale=0.15)
        f = ildu(m)
        b = RNG.random(m.shape[0])
        x = run_sptrsv(f.lower, b, CFG).x
        np.testing.assert_allclose(
            x, solve_unit_triangular_reference(f.lower, b), rtol=1e-8)
