"""Tests for repro.formats.generators — synthetic pattern generators."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix
from repro.formats.generators import (banded_fem, make_spd, power_law_graph,
                                      rmat, stencil_2d, stencil_3d,
                                      uniform_random, unit_lower_from,
                                      unit_upper_from)


def is_symmetric(m: COOMatrix) -> bool:
    return m == m.transpose()


class TestStencils:
    def test_2d_shape_and_diag(self):
        m = stencil_2d(5, 4)
        assert m.shape == (20, 20)
        np.testing.assert_allclose(m.diagonal(), 4.0)

    def test_2d_symmetric(self):
        assert is_symmetric(stencil_2d(6))

    def test_2d_interior_row_has_5_entries(self):
        m = stencil_2d(5, 5)
        counts = m.row_counts()
        assert counts[12] == 5  # centre point
        assert counts[0] == 3   # corner

    def test_2d_positive_definite(self):
        m = stencil_2d(4)
        eigs = np.linalg.eigvalsh(m.to_dense())
        assert eigs.min() > 0

    def test_3d_shape_and_counts(self):
        m = stencil_3d(3, 3, 3)
        assert m.shape == (27, 27)
        assert m.row_counts()[13] == 7  # centre of the cube
        np.testing.assert_allclose(m.diagonal(), 6.0)

    def test_3d_symmetric(self):
        assert is_symmetric(stencil_3d(3))

    def test_rejects_bad_dims(self):
        with pytest.raises(FormatError):
            stencil_2d(0)
        with pytest.raises(FormatError):
            stencil_3d(2, 0, 2)


class TestBandedFEM:
    def test_symmetric_and_spd(self):
        m = banded_fem(60, avg_row_nnz=6, seed=1)
        assert is_symmetric(m)
        eigs = np.linalg.eigvalsh(m.to_dense())
        assert eigs.min() > 0  # diagonally dominant by construction

    def test_deterministic(self):
        assert banded_fem(50, 5, seed=9) == banded_fem(50, 5, seed=9)

    def test_seed_changes_matrix(self):
        assert banded_fem(50, 5, seed=1) != banded_fem(50, 5, seed=2)

    def test_band_is_respected(self):
        m = banded_fem(100, avg_row_nnz=4, bandwidth=7, seed=2)
        assert np.max(np.abs(m.rows - m.cols)) <= 7

    def test_mean_row_nnz_close(self):
        m = banded_fem(500, avg_row_nnz=8, seed=3)
        mean = m.nnz / m.shape[0]
        assert 4 <= mean <= 12

    def test_rejects_bad_args(self):
        with pytest.raises(FormatError):
            banded_fem(0, 4)
        with pytest.raises(FormatError):
            banded_fem(10, 0.5)


class TestGraphs:
    def test_power_law_no_self_loops(self):
        g = power_law_graph(200, avg_degree=6, seed=4)
        assert np.all(g.rows != g.cols)

    def test_power_law_mean_degree(self):
        g = power_law_graph(1000, avg_degree=8, seed=5)
        mean = g.nnz / g.shape[0]
        assert 3 <= mean <= 10  # dedupe and self-loop removal shrink it

    def test_power_law_heavy_tail(self):
        g = power_law_graph(2000, avg_degree=8, seed=6)
        indeg = g.col_counts()
        # hubs exist: max in-degree far above the mean
        assert indeg.max() > 5 * indeg.mean()

    def test_power_law_symmetric_option(self):
        g = power_law_graph(100, avg_degree=4, seed=7, symmetric=True)
        assert is_symmetric(g)

    def test_power_law_deterministic(self):
        assert power_law_graph(100, 4, seed=8) == power_law_graph(
            100, 4, seed=8)

    def test_rmat_within_bounds(self):
        g = rmat(100, nnz=400, seed=9)
        assert g.shape == (100, 100)
        assert 0 < g.nnz <= 400
        assert np.all(g.rows != g.cols)

    def test_rmat_skew(self):
        # default probs concentrate edges in the low-index quadrant
        g = rmat(512, nnz=4000, seed=10)
        low = np.sum((g.rows < 256) & (g.cols < 256))
        assert low > g.nnz * 0.4

    def test_rmat_rejects_bad_probs(self):
        with pytest.raises(FormatError):
            rmat(64, 100, probs=(0.5, 0.5, 0.5, 0.5))

    def test_graph_arg_validation(self):
        with pytest.raises(FormatError):
            power_law_graph(1, 2)
        with pytest.raises(FormatError):
            rmat(1, 5)


class TestUniformRandom:
    def test_density_close(self):
        m = uniform_random(100, 100, density=0.05, seed=11)
        assert 0.03 <= m.density <= 0.055

    def test_rectangular(self):
        m = uniform_random(30, 50, density=0.1, seed=12)
        assert m.shape == (30, 50)

    def test_value_distributions(self):
        ones = uniform_random(30, 30, 0.1, seed=13, values="ones")
        assert np.all(ones.vals == 1.0)
        uni = uniform_random(30, 30, 0.1, seed=13, values="uniform")
        assert np.all(uni.vals > 0)

    def test_unknown_values_kind(self):
        with pytest.raises(FormatError):
            uniform_random(10, 10, 0.1, values="cauchy")

    def test_density_bounds(self):
        with pytest.raises(FormatError):
            uniform_random(10, 10, 1.5)


class TestTransforms:
    def test_make_spd(self):
        base = uniform_random(40, 40, density=0.08, seed=14)
        spd = make_spd(base)
        assert is_symmetric(spd)
        eigs = np.linalg.eigvalsh(spd.to_dense())
        assert eigs.min() > 0

    def test_make_spd_requires_square(self):
        with pytest.raises(FormatError):
            make_spd(uniform_random(3, 4, 0.5, seed=0))

    def test_unit_lower_structure(self):
        base = uniform_random(30, 30, density=0.1, seed=15)
        low = unit_lower_from(base, seed=15)
        assert low.is_lower_triangular()
        np.testing.assert_allclose(low.diagonal(), np.ones(30))

    def test_unit_lower_solvable(self):
        base = uniform_random(25, 25, density=0.15, seed=16)
        low = unit_lower_from(base, seed=16)
        b = np.random.default_rng(0).random(25)
        x = np.linalg.solve(low.to_dense(), b)
        assert np.all(np.isfinite(x))
        # well-conditioned: solution stays within a sane magnitude
        assert np.abs(x).max() < 1e6

    def test_unit_upper_structure(self):
        base = uniform_random(30, 30, density=0.1, seed=17)
        up = unit_upper_from(base, seed=17)
        assert up.is_upper_triangular()
        np.testing.assert_allclose(up.diagonal(), np.ones(30))

    def test_unit_lower_matches_strict_structure(self):
        base = uniform_random(30, 30, density=0.1, seed=18)
        low = unit_lower_from(base, seed=18)
        expect = base.strictly_lower().nnz + 30
        assert low.nnz == expect
