"""Tests for repro.formats.bitmap — the §VIII neural-network format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import (BitmapMatrix, COOMatrix, best_format,
                           coo_footprint_bytes)
from repro.formats.generators import uniform_random


class TestBitmapRoundTrip:
    def test_round_trip(self):
        m = uniform_random(40, 60, density=0.2, seed=1)
        assert BitmapMatrix.from_coo(m).to_coo() == m

    def test_matvec_matches(self):
        m = uniform_random(50, 50, density=0.3, seed=2)
        x = np.random.default_rng(0).random(50)
        np.testing.assert_allclose(BitmapMatrix.from_coo(m).matvec(x),
                                   m.matvec(x))

    def test_empty_matrix(self):
        bm = BitmapMatrix.from_coo(COOMatrix.empty((8, 8)))
        assert bm.nnz == 0
        assert bm.to_coo() == COOMatrix.empty((8, 8))

    def test_full_matrix(self):
        dense = np.arange(1.0, 13.0).reshape(3, 4)
        m = COOMatrix.from_dense(dense)
        bm = BitmapMatrix.from_coo(m)
        assert bm.density == 1.0
        np.testing.assert_allclose(bm.to_coo().to_dense(), dense)

    def test_non_byte_aligned_shape(self):
        m = uniform_random(7, 13, density=0.4, seed=3)  # 91 bits
        assert BitmapMatrix.from_coo(m).to_coo() == m

    def test_values_in_scan_order(self):
        m = COOMatrix((2, 3), [1, 0, 0], [0, 2, 0], [30.0, 20.0, 10.0])
        bm = BitmapMatrix.from_coo(m)
        np.testing.assert_allclose(bm.values, [10.0, 20.0, 30.0])

    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_property_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        nrows, ncols = int(rng.integers(1, 30)), int(rng.integers(1, 30))
        m = uniform_random(nrows, ncols, density=0.25, seed=seed)
        assert BitmapMatrix.from_coo(m).to_coo() == m


class TestValidation:
    def test_bit_count_mismatch(self):
        with pytest.raises(FormatError, match="bytes"):
            BitmapMatrix((4, 4), np.zeros(1, dtype=np.uint8), np.zeros(0))

    def test_popcount_mismatch(self):
        bits = np.packbits(np.ones(16, dtype=bool))
        with pytest.raises(FormatError, match="set bits"):
            BitmapMatrix((4, 4), bits, np.zeros(3))

    def test_equality(self):
        m = uniform_random(10, 10, 0.3, seed=4)
        assert BitmapMatrix.from_coo(m) == BitmapMatrix.from_coo(m)
        other = uniform_random(10, 10, 0.3, seed=5)
        assert BitmapMatrix.from_coo(m) != BitmapMatrix.from_coo(other)


class TestFootprints:
    def test_bitmap_wins_at_high_density(self):
        m = uniform_random(64, 64, density=0.3, seed=6)
        bm = BitmapMatrix.from_coo(m)
        assert bm.footprint_bytes() < coo_footprint_bytes(m)

    def test_coo_wins_at_low_density(self):
        m = uniform_random(256, 256, density=0.002, seed=7)
        bm = BitmapMatrix.from_coo(m)
        assert coo_footprint_bytes(m) < bm.footprint_bytes()

    def test_best_format_rule(self):
        assert best_format(0.5) == "bitmap"
        assert best_format(0.2) == "bitmap"
        assert best_format(0.005) == "coo"
        assert best_format(0.0) == "coo"

    def test_best_format_crossover_consistency(self):
        """At the rule's crossover the footprints are close to equal."""
        crossover = 1.0 / 32  # 16-bit indices
        n = 400
        m = uniform_random(n, n, density=crossover, seed=8)
        bm = BitmapMatrix.from_coo(m)
        ratio = bm.footprint_bytes() / coo_footprint_bytes(m)
        assert 0.8 < ratio < 1.2

    def test_best_format_validates(self):
        with pytest.raises(FormatError):
            best_format(1.5)
