"""Golden-trace regression: the committed snapshots must match exactly.

``test_snapshots_match`` is the CI tripwire: regenerating every
canonical workload must reproduce the committed ``tests/golden/*.json``
byte-for-byte at the record level. The remaining tests pin the harness
itself: determinism, tamper detection, the missing-file advice, and
that the canonical traces obey the JEDEC protocol rules.
"""

import json

import pytest

from repro.check import (check_trace, compare_golden, golden_traces,
                         update_golden)
from repro.check.golden import (WORKLOADS, build_record,
                                default_golden_dir, golden_path)


class TestSnapshots:
    def test_snapshots_match(self):
        problems = compare_golden()
        assert problems == [], "\n".join(problems)

    def test_all_workloads_have_snapshots(self):
        for name in WORKLOADS:
            assert golden_path(default_golden_dir(), name).exists()

    def test_record_build_is_deterministic(self):
        name = next(iter(WORKLOADS))
        assert build_record(name) == build_record(name)

    def test_record_json_round_trips_exactly(self):
        name = next(iter(WORKLOADS))
        record = build_record(name)
        loaded = json.loads(json.dumps(record))
        # trace rows come back as lists either way; floats via repr
        assert loaded["energy_pj"] == record["energy_pj"]
        assert loaded["schedule"] == record["schedule"]
        assert loaded["trace"] == record["trace"]


class TestHarness:
    def test_update_writes_all_snapshots(self, tmp_path):
        written = update_golden(tmp_path)
        assert sorted(p.name for p in written) == \
            sorted(f"{n}.json" for n in WORKLOADS)
        assert compare_golden(tmp_path) == []

    def test_missing_snapshot_advises_update(self, tmp_path):
        problems = compare_golden(tmp_path, names=["spmv_ab"])
        assert len(problems) == 1
        assert "--update-golden" in problems[0]

    def test_tampered_cycles_detected(self, tmp_path):
        update_golden(tmp_path, names=["dense_stream_ab"])
        path = golden_path(tmp_path, "dense_stream_ab")
        record = json.loads(path.read_text())
        record["schedule"]["total_cycles"] += 1
        path.write_text(json.dumps(record))
        problems = compare_golden(tmp_path, names=["dense_stream_ab"])
        assert any("schedule" in p for p in problems)

    def test_tampered_trace_row_detected(self, tmp_path):
        update_golden(tmp_path, names=["spmv_ab"])
        path = golden_path(tmp_path, "spmv_ab")
        record = json.loads(path.read_text())
        record["trace"][0][3] ^= 1   # flip a row address bit
        path.write_text(json.dumps(record))
        problems = compare_golden(tmp_path, names=["spmv_ab"])
        assert any("trace[0]" in p for p in problems)

    def test_tampered_energy_detected(self, tmp_path):
        update_golden(tmp_path, names=["sptrsv_ab"])
        path = golden_path(tmp_path, "sptrsv_ab")
        record = json.loads(path.read_text())
        key = next(iter(record["energy_pj"]))
        record["energy_pj"][key] += 0.5
        path.write_text(json.dumps(record))
        problems = compare_golden(tmp_path, names=["sptrsv_ab"])
        assert any("energy_pj" in p for p in problems)


class TestProtocolOnGolden:
    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_canonical_trace_is_protocol_clean(self, name):
        assert check_trace(golden_traces()[name]) == []
