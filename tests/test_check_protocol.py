"""The independent JEDEC protocol checker vs the scheduler and vs
hand-built illegal command streams.

Two directions: every schedule the repo's own scheduler produces must be
violation-free under the checker (the conformance direction), and
deliberately illegal timed streams must be reported with the command
index, bank and constraint that was breached (the detection direction).
"""

import numpy as np
import pytest

from repro.check import ProtocolChecker, check_timed, check_trace, summarize
from repro.config import default_system
from repro.core import (dense_stream_trace, run_spmv, run_sptrsv,
                        spmv_ab_trace, spmv_pb_trace, sptrsv_ab_trace)
from repro.dram import (Command, CommandRun, CommandType, MemoryController,
                        TimingParams, expand_trace)
from repro.errors import CheckError
from repro.formats import generate
from repro.formats.generators import uniform_random, unit_lower_from

CFG = default_system()
T = TimingParams()

ACT = CommandType.ACT
PRE = CommandType.PRE
RD = CommandType.RD
WR = CommandType.WR


def _assert_clean(trace, timing=TimingParams(), enable_refresh=True):
    """The scheduler's own schedule of *trace* passes the checker, and
    enabling validation does not change the schedule itself."""
    violations = check_trace(trace, timing=timing,
                             enable_refresh=enable_refresh)
    assert violations == [], summarize(violations)
    plain = MemoryController(timing=timing,
                             enable_refresh=enable_refresh).run(trace)
    checked = MemoryController(timing=timing,
                               enable_refresh=enable_refresh,
                               validate_protocol=True).run(trace)
    assert checked.total_cycles == plain.total_cycles
    assert checked.counts == plain.counts
    assert plain.violations == []


@pytest.fixture(scope="module")
def spmv_execution():
    m = generate("facebook", scale=0.1)
    x = np.random.default_rng(1).random(m.shape[1])
    return run_spmv(m, x, CFG).execution


class TestSchedulerConformance:
    """Every trace family the repo generates is protocol-clean."""

    def test_spmv_ab_trace(self, spmv_execution):
        _assert_clean(spmv_ab_trace(spmv_execution, CFG))

    def test_spmv_ab_trace_expanded(self, spmv_execution):
        trace = spmv_ab_trace(spmv_execution, CFG)
        _assert_clean(list(expand_trace(trace)))

    def test_spmv_pb_trace(self, spmv_execution):
        _assert_clean(spmv_pb_trace(spmv_execution, CFG))

    def test_sptrsv_trace(self):
        low = unit_lower_from(uniform_random(300, 300, 0.02, seed=2),
                              seed=3)
        b = np.random.default_rng(2).random(300)
        execution = run_sptrsv(low, b, CFG).execution
        _assert_clean(sptrsv_ab_trace(execution, CFG))

    @pytest.mark.parametrize("all_bank", [True, False])
    def test_dense_stream_trace(self, all_bank):
        _assert_clean(dense_stream_trace(1 << 12, 2, 1, "fp64",
                                         all_bank=all_bank))

    def test_deferred_refresh_is_checked_and_clean(self):
        # A stream long enough to cross tREFI: the scheduler inserts
        # refreshes that never appear in the input trace; the checker
        # must still see (and accept) them.
        count = 2 * T.trefi // T.tccd_l
        trace = [Command(CommandType.MODE),
                 Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0), count),
                 Command(CommandType.PRE_AB),
                 Command(CommandType.ACT_AB, row=1),
                 CommandRun(Command(CommandType.WR_AB, row=1), 16),
                 Command(CommandType.PRE_AB)]
        result = MemoryController(validate_protocol=True).run(trace)
        assert result.refreshes > 0
        assert result.violations == []

    def test_min_gap_throttled_runs(self):
        trace = [Command(CommandType.MODE),
                 Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0, min_gap=11),
                            20),
                 Command(CommandType.PRE_AB)]
        _assert_clean(trace)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_broadcast_traces(self, seed):
        rng = np.random.default_rng(seed)
        trace = [Command(CommandType.MODE)]
        open_row = None
        for _ in range(40):
            if open_row is None or rng.random() < 0.2:
                if open_row is not None:
                    trace.append(Command(CommandType.PRE_AB))
                open_row = int(rng.integers(0, 64))
                trace.append(Command(CommandType.ACT_AB, row=open_row))
            kind = (CommandType.RD_AB if rng.random() < 0.7
                    else CommandType.WR_AB)
            cmd = Command(kind, row=open_row,
                          min_gap=int(rng.integers(0, 5)))
            n = int(rng.integers(1, 20))
            trace.append(cmd if n == 1 else CommandRun(cmd, n))
        trace.append(Command(CommandType.PRE_AB))
        _assert_clean(trace)

    def test_multi_channel_violations_tagged_by_channel(self):
        trace = []
        for ch in (0, 3):
            trace.append(Command(ACT, channel=ch, bank=0, row=1))
            trace.append(Command(RD, channel=ch, bank=0, row=1))
            trace.append(Command(PRE, channel=ch, bank=0))
        result = MemoryController(validate_protocol=True).run(trace)
        assert result.violations == []


class TestIllegalStreams:
    """Hand-built timed streams must be reported precisely."""

    def test_five_acts_inside_tfaw(self):
        # tFAW wide enough that four back-to-back legally-RRD-spaced
        # ACTs fill the window; the fifth lands inside it.
        timing = TimingParams(tfaw=30)
        banks = (0, 4, 8, 12, 1)  # distinct groups: only tRRD_S applies
        events = [(i * timing.trrd_s, Command(ACT, bank=b, row=0))
                  for i, b in enumerate(banks)]
        violations = check_timed(events, timing)
        assert [v.constraint for v in violations] == ["tFAW"]
        v = violations[0]
        assert v.index == 4
        assert v.bank == 1
        assert v.cycle == 4 * timing.trrd_s
        assert v.earliest_legal == 0 + timing.tfaw
        assert "tFAW" in str(v)

    def test_broadcast_act_exempt_from_tfaw(self):
        # All-bank ACTs are excluded from the four-activation window
        # (the model's documented relaxation); only single-bank ACTs
        # count toward it.
        timing = TimingParams(tfaw=30)
        events = [(0, Command(ACT, bank=0, row=0)),
                  (4, Command(ACT, bank=4, row=0)),
                  (8, Command(ACT, bank=8, row=0)),
                  (12, Command(ACT, bank=12, row=0))]
        events.append((70, Command(CommandType.MODE)))
        violations = check_timed(events, timing)
        assert violations == []

    def test_read_before_trcd(self):
        events = [(0, Command(ACT, bank=2, row=7)),
                  (T.trcd - 1, Command(RD, bank=2, row=7))]
        violations = check_timed(events)
        assert [v.constraint for v in violations] == ["tRCD"]
        assert violations[0].bank == 2
        assert violations[0].earliest_legal == T.trcd

    def test_column_to_closed_bank(self):
        violations = check_timed([(0, Command(RD, bank=5, row=3))])
        assert [v.constraint for v in violations] == ["bank-state"]
        assert "precharged" in violations[0].detail

    def test_column_to_wrong_row(self):
        events = [(0, Command(ACT, bank=1, row=3)),
                  (T.trcd, Command(RD, bank=1, row=9))]
        violations = check_timed(events)
        assert [v.constraint for v in violations] == ["bank-state"]
        assert "row 9" in violations[0].detail

    def test_act_before_trp(self):
        events = [(0, Command(ACT, bank=0, row=1)),
                  (T.tras, Command(PRE, bank=0)),
                  (T.tras + T.trp - 2, Command(ACT, bank=0, row=2))]
        violations = check_timed(events)
        constraints = {v.constraint for v in violations}
        assert "tRP" in constraints

    def test_premature_precharge_after_write(self):
        wr_cycle = T.trcd
        events = [(0, Command(ACT, bank=0, row=1)),
                  (wr_cycle, Command(WR, bank=0, row=1)),
                  (T.tras, Command(PRE, bank=0))]
        violations = check_timed(events)
        assert [v.constraint for v in violations] == ["tWR"]
        assert violations[0].earliest_legal == (
            wr_cycle + T.cwl + T.burst_cycles + T.twr)

    def test_read_to_precharge(self):
        events = [(0, Command(ACT, bank=0, row=1)),
                  (T.tras - 1, Command(RD, bank=0, row=1)),
                  (T.tras, Command(PRE, bank=0))]
        violations = check_timed(events)
        assert [v.constraint for v in violations] == ["tRTP"]

    def test_act_on_open_bank(self):
        events = [(0, Command(ACT, bank=0, row=1)),
                  (100, Command(ACT, bank=0, row=2))]
        violations = check_timed(events)
        assert [v.constraint for v in violations] == ["bank-state"]

    def test_row_bus_conflict(self):
        events = [(0, Command(ACT, bank=0, row=1)),
                  (0, Command(ACT, bank=8, row=1))]
        violations = check_timed(events)
        assert "row-bus" in {v.constraint for v in violations}

    def test_ccd_violation_on_broadcast_columns(self):
        events = [(0, Command(CommandType.MODE)),
                  (T.mode_switch_cycles,
                   Command(CommandType.ACT_AB, row=0)),
                  (100, Command(CommandType.RD_AB, row=0)),
                  (100 + T.tccd_l - 1, Command(CommandType.RD_AB, row=0))]
        violations = check_timed(events)
        assert [v.constraint for v in violations] == ["tCCD_L"]

    def test_turnaround_violation(self):
        base = 100
        events = [(0, Command(CommandType.MODE)),
                  (T.mode_switch_cycles,
                   Command(CommandType.ACT_AB, row=0)),
                  (base, Command(CommandType.RD_AB, row=0)),
                  (base + T.tccd_l, Command(CommandType.WR_AB, row=0))]
        violations = check_timed(events)
        constraints = {v.constraint for v in violations}
        assert "turnaround" in constraints or "rd->wr" in constraints

    def test_broadcast_without_mode_switch(self):
        violations = check_timed([(0, Command(CommandType.ACT_AB, row=0))])
        assert [v.constraint for v in violations] == ["mode-protocol"]

    def test_min_gap_violation(self):
        events = [(0, Command(ACT, bank=0, row=1)),
                  (5, Command(RD, bank=0, row=1, min_gap=20))]
        violations = check_timed(events)
        constraints = [v.constraint for v in violations]
        assert "min_gap" in constraints

    def test_out_of_order_stream(self):
        events = [(50, Command(ACT, bank=0, row=1)),
                  (10, Command(PRE, bank=4))]
        violations = check_timed(events)
        constraints = {v.constraint for v in violations}
        assert "in-order" in constraints

    def test_refresh_with_open_row(self):
        events = [(0, Command(ACT, bank=3, row=1)),
                  (200, Command(CommandType.REF))]
        violations = check_timed(events)
        assert any(v.constraint == "bank-state" and v.bank == 3
                   for v in violations)

    def test_pre_ab_with_no_open_banks(self):
        events = [(40, Command(CommandType.MODE)),
                  (100, Command(CommandType.PRE_AB))]
        violations = check_timed(events)
        assert any(v.constraint == "bank-state" for v in violations)

    def test_strict_mode_raises(self):
        checker = ProtocolChecker(TimingParams(), strict=True)
        with pytest.raises(CheckError, match="bank-state"):
            checker.observe(0, Command(RD, bank=0, row=0))

    def test_perturbed_legal_stream_detected(self):
        # A carefully legal hand-timed stream stays clean; nudging one
        # command a cycle earlier breaks exactly one constraint.
        row = 5
        events = [
            (0, Command(CommandType.MODE)),
            (40, Command(CommandType.ACT_AB, row=row)),
            (40 + T.trcd, Command(CommandType.RD_AB, row=row)),
            (40 + T.trcd + T.tccd_l, Command(CommandType.RD_AB, row=row)),
        ]
        assert check_timed(events) == []
        cycle, cmd = events[-1]
        bad = events[:-1] + [(cycle - 1, cmd)]
        violations = check_timed(bad)
        assert [v.constraint for v in violations] == ["tCCD_L"]

    def test_summarize_output(self):
        violations = check_timed([(0, Command(RD, bank=0, row=0))])
        text = summarize(violations)
        assert "1 protocol violation" in text
        assert "bank-state" in text
        assert summarize([]) == "protocol check passed: no violations"
