"""Tests for repro.core.runtime — the PSyncPIM facade."""

import numpy as np
import pytest

from repro import PSyncPIM, default_system
from repro.errors import ExecutionError
from repro.formats import generate
from repro.formats.generators import make_spd, uniform_random

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def pim():
    return PSyncPIM()


@pytest.fixture(scope="module")
def matrix():
    return generate("facebook", scale=0.1)


class TestFacade:
    def test_default_configuration(self, pim):
        assert pim.config.total_units == 256
        assert pim.precision == "fp64"

    def test_three_cube(self):
        assert PSyncPIM(num_cubes=3).config.total_units == 768

    def test_custom_config(self):
        cfg = default_system(2)
        assert PSyncPIM(config=cfg).config is cfg

    def test_rejects_unknown_fidelity(self):
        with pytest.raises(ExecutionError):
            PSyncPIM(fidelity="dreams")

    def test_spmv(self, pim, matrix):
        x = RNG.random(matrix.shape[1])
        result = pim.spmv(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x))

    def test_spmv_timing(self, pim, matrix):
        x = RNG.random(matrix.shape[1])
        result = pim.spmv(matrix, x)
        ab = pim.time_spmv(result)
        pb = pim.time_spmv(result, mode="pb")
        assert pb.cycles > ab.cycles > 0

    def test_sptrsv_pipeline(self, pim):
        spd = make_spd(uniform_random(150, 150, 0.03, seed=1))
        factors = pim.factorize(spd)
        x = RNG.random(150)
        b = spd.matvec(x)
        z = pim.precondition(factors, b)
        # preconditioner approximately inverts the operator
        assert (np.linalg.norm(z - x) / np.linalg.norm(x)
                < np.linalg.norm(b - x) / np.linalg.norm(x))

    def test_sptrsv_solve_and_timing(self, pim):
        spd = make_spd(uniform_random(120, 120, 0.04, seed=2))
        factors = pim.factorize(spd)
        b = RNG.random(120)
        result = pim.sptrsv(factors.lower, b, lower=True)
        report = pim.time_sptrsv(result)
        assert report.cycles > 0
        residual = factors.lower.matvec(result.x) - b
        assert np.abs(residual).max() < 1e-9

    def test_vector_kernel_timing(self, pim):
        report = pim.time_vector_kernel(1 << 14)
        assert report.cycles > 0

    def test_backend_factory(self, pim, matrix):
        backend = pim.backend()
        x = RNG.random(matrix.shape[1])
        y = backend.spmv(matrix, x)
        np.testing.assert_allclose(y, matrix.matvec(x))
        assert backend.config is pim.config

    def test_functional_facade(self, matrix):
        functional = PSyncPIM(fidelity="functional", engine_banks=8)
        small = generate("facebook", scale=0.03)
        x = RNG.random(small.shape[1])
        result = functional.spmv(small, x)
        np.testing.assert_allclose(result.y, small.matvec(x))

    def test_energy_report(self, pim, matrix):
        x = RNG.random(matrix.shape[1])
        report = pim.time_spmv(pim.spmv(matrix, x), with_energy=True)
        assert report.energy.total_joules > 0
        # Fig. 14 sanity: SpMV cube power stays near the 5 W HBM2 budget
        from repro.dram import TimingParams
        cube_watts = report.energy.average_power_watts(
            report.cycles, TimingParams())
        assert cube_watts < 6.0
