"""Tests for the GDDR6-AiM platform variant (paper §II-B contrast)."""

import numpy as np
import pytest

from repro import PSyncPIM, default_system, gddr6_aim_system
from repro.core import run_spmv, time_spmv
from repro.formats import generate

RNG = np.random.default_rng(0)


class TestGddr6Config:
    def test_geometry(self):
        cfg = gddr6_aim_system()
        assert cfg.total_units == 512
        assert cfg.memory.row_bytes == 2048
        assert cfg.memory.num_pseudo_channels == 32
        assert cfg.external_bandwidth == 1024e9

    def test_validates(self):
        cfg = gddr6_aim_system()
        assert cfg.memory.bank_bytes * cfg.memory.total_banks \
            == cfg.memory.capacity_bytes

    def test_bigger_tiles_from_bigger_rows(self):
        hbm = default_system()
        aim = gddr6_aim_system()
        assert aim.vector_capacity("fp64") == 2 * hbm.vector_capacity(
            "fp64")

    def test_multi_device(self):
        assert gddr6_aim_system(num_devices=2).total_units == 1024


class TestGddr6Execution:
    @pytest.fixture(scope="class")
    def case(self):
        matrix = generate("pwtk", scale=0.03)
        x = np.random.default_rng(1).random(matrix.shape[1])
        return matrix, x

    def test_same_results_as_hbm(self, case):
        matrix, x = case
        hbm = run_spmv(matrix, x, default_system())
        aim = run_spmv(matrix, x, gddr6_aim_system())
        np.testing.assert_allclose(aim.y, hbm.y)

    def test_fewer_tiles_with_2kb_rows(self, case):
        matrix, x = case
        hbm = run_spmv(matrix, x, default_system())
        aim = run_spmv(matrix, x, gddr6_aim_system())
        assert len(aim.plan.tiles) < len(hbm.plan.tiles)

    def test_timing_runs_on_both_platforms(self, case):
        matrix, x = case
        for cfg in (default_system(), gddr6_aim_system()):
            execution = run_spmv(matrix, x, cfg).execution
            report = time_spmv(execution, cfg)
            assert report.cycles > 0

    def test_facade_accepts_gddr6(self, case):
        matrix, x = case
        pim = PSyncPIM(config=gddr6_aim_system())
        result = pim.spmv(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x))
        assert pim.time_spmv(result).cycles > 0
