"""Differential tests: the vectorized LaneEngine vs the scalar oracle.

The scalar :class:`AllBankEngine` is the reference semantics; the
:class:`LaneEngine` must match it *bitwise* — register and memory contents,
every stats counter, exit/exhaustion state — on driver-produced programs
and on randomized workloads covering predication, conditional exit,
per-unit IndMOV columns and queue exhaustion.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.config import ENGINE_ENV, resolve_engine
from repro.errors import ConfigError, ExecutionError
from repro.formats import SparseVector
from repro.isa import assemble
from repro.kernels import (Tile, daxpy, ddot, dscal, empty_tile, gather,
                           run_tile_round, scatter, spaxpy, spdot, spvspv)
from repro.pim import (AllBankEngine, Beat, LaneEngine, Mode, make_engine,
                       padded_triples)

ENGINE_STATS = ("beats", "mode_switches", "programs_loaded",
                "kernel_launches", "instructions", "alu_ops",
                "predicated_beats")
UNIT_STATS = ("instructions", "alu_ops", "beats", "nop_beats")


@contextmanager
def _engine_env(name):
    old = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = name
    try:
        yield
    finally:
        if old is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = old


def _both(fn):
    """Run *fn* once per engine implementation; return (scalar, lane)."""
    with _engine_env("scalar"):
        scalar = fn()
    with _engine_env("lane"):
        lane = fn()
    return scalar, lane


def _assert_engines_match(scalar, lane):
    """Full architectural-state equality, bitwise."""
    for field in ENGINE_STATS:
        assert getattr(scalar.stats, field) == getattr(lane.stats, field), \
            f"stats.{field}"
    assert scalar.stats.per_mode_beats == lane.stats.per_mode_beats
    for b, (su, lu) in enumerate(zip(scalar.units, lane.units)):
        assert su.exited == lu.exited, f"bank {b} exited"
        assert su.exhausted_mask == lu.exhausted_mask, f"bank {b}"
        assert su.load_targets_mask == lu.load_targets_mask, f"bank {b}"
        for field in UNIT_STATS:
            assert getattr(su.stats, field) == getattr(lu.stats, field), \
                f"bank {b} stats.{field}"
        assert su.registers.scalar == lu.registers.scalar, f"bank {b} SRF"
        for i, reg in enumerate(su.registers.dense):
            assert np.array_equal(reg.data, lane.dense[i, b]), \
                f"bank {b} DRF{i}"
        for qi, queue in enumerate(su.registers.queues):
            assert list(queue._items) == lane.queues[qi].snapshot(b), \
                f"bank {b} SPVQ{qi}"
    for b, bank in enumerate(scalar.banks):
        for name in bank.region_names():
            lane_bank = lane.banks[b]
            try:
                region = bank.dense(name)
            except ExecutionError:
                sct = bank.triples(name)
                lct = lane_bank.triples(name)
                assert np.array_equal(sct.rows, lct.rows), (b, name)
                assert np.array_equal(sct.cols, lct.cols), (b, name)
                assert np.array_equal(sct.vals, lct.vals), (b, name)
            else:
                assert np.array_equal(region.data,
                                      lane_bank.dense(name).data), (b, name)


def _assert_runs_match(scalar_run, lane_run):
    assert isinstance(scalar_run.engine, AllBankEngine)
    assert isinstance(lane_run.engine, LaneEngine)
    for field in ("beats", "launches", "mode_switches", "programs_loaded"):
        assert (getattr(scalar_run.stats, field)
                == getattr(lane_run.stats, field)), field
    _assert_engines_match(scalar_run.engine, lane_run.engine)


def _sparse(rng, length, density):
    nnz = min(length, max(0, int(round(density * length))))
    idx = np.sort(rng.choice(length, size=nnz, replace=False))
    return SparseVector(length, idx, rng.standard_normal(nnz))


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_default_is_lane(self):
        old = os.environ.pop(ENGINE_ENV, None)
        try:
            assert resolve_engine() == "lane"
            assert isinstance(make_engine(num_banks=2), LaneEngine)
        finally:
            if old is not None:
                os.environ[ENGINE_ENV] = old

    def test_env_selects_scalar(self):
        with _engine_env("scalar"):
            assert isinstance(make_engine(num_banks=2), AllBankEngine)

    def test_explicit_beats_env(self):
        with _engine_env("scalar"):
            assert resolve_engine("lane") == "lane"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            resolve_engine("warp")


# ----------------------------------------------------------------------
# kernel drivers, both engines
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("precision", ["fp64", "fp32", "int8"])
    def test_daxpy(self, precision):
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal(333), rng.standard_normal(333)
        s, l = _both(lambda: daxpy(1.5, x, y, precision=precision))
        assert np.array_equal(s.result, l.result)
        _assert_runs_match(s, l)

    def test_ddot_reduction(self):
        rng = np.random.default_rng(2)
        x, y = rng.standard_normal(500), rng.standard_normal(500)
        s, l = _both(lambda: ddot(x, y))
        assert s.result == l.result  # bitwise, not approx
        _assert_runs_match(s, l)

    def test_dscal_scalar_broadcast(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(100)
        s, l = _both(lambda: dscal(-0.75, x, num_banks=8))
        assert np.array_equal(s.result, l.result)
        _assert_runs_match(s, l)

    def test_spaxpy_predicated_streams(self):
        rng = np.random.default_rng(4)
        xs = _sparse(rng, 640, 0.11)  # uneven per-bank splits -> PAD beats
        y = rng.standard_normal(640)
        s, l = _both(lambda: spaxpy(2.0, xs, y))
        assert np.array_equal(s.result, l.result)
        _assert_runs_match(s, l)

    def test_spdot_queue_reduce(self):
        rng = np.random.default_rng(5)
        xs = _sparse(rng, 512, 0.2)
        y = rng.standard_normal(512)
        s, l = _both(lambda: spdot(xs, y))
        assert s.result == l.result
        _assert_runs_match(s, l)

    def test_gather_scatter_roundtrip(self):
        rng = np.random.default_rng(6)
        dense = rng.standard_normal(256)
        dense[rng.random(256) < 0.6] = 0.0
        s, l = _both(lambda: gather(dense))
        assert np.array_equal(s.result.indices, l.result.indices)
        assert np.array_equal(s.result.values, l.result.values)
        _assert_runs_match(s, l)
        xs = _sparse(rng, 256, 0.3)
        s, l = _both(lambda: scatter(xs))
        assert np.array_equal(s.result, l.result)
        _assert_runs_match(s, l)

    @pytest.mark.parametrize("set_mode,binary", [("union", "add"),
                                                 ("intersection", "mul")])
    def test_spvspv_dual_queue(self, set_mode, binary):
        rng = np.random.default_rng(7)
        xs = _sparse(rng, 400, 0.15)
        ys = _sparse(rng, 400, 0.1)  # different lengths -> stalls
        s, l = _both(lambda: spvspv(xs, ys, binary=binary,
                                    set_mode=set_mode))
        assert np.array_equal(s.result.indices, l.result.indices)
        assert np.array_equal(s.result.values, l.result.values)
        _assert_runs_match(s, l)


# ----------------------------------------------------------------------
# randomized tile rounds: predication, CEXIT, IndMOV, exhaustion
# ----------------------------------------------------------------------
def _random_tiles(rng, num_banks, x_len, y_len, max_nnz):
    tiles = []
    for _ in range(num_banks):
        nnz = int(rng.integers(0, max_nnz + 1))
        if nnz == 0 and rng.random() < 0.5:
            tiles.append(empty_tile(x_len, y_len))  # pure-padding bank
            continue
        tiles.append(Tile(rows=rng.integers(0, y_len, size=nnz),
                          cols=rng.integers(0, x_len, size=nnz),
                          vals=rng.standard_normal(nnz),
                          x_segment=rng.standard_normal(x_len),
                          y_len=y_len))
    return tiles


class TestTileRoundEquivalence:
    """Tile rounds drive SPMOV loads, per-unit IndMOV gather columns,
    SPVDV scatters and CEXIT with uneven streams — the full partially
    synchronous repertoire — through both engines."""

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_rounds(self, seed):
        rng = np.random.default_rng(seed)
        num_banks = int(rng.integers(1, 9))
        x_len = int(rng.integers(1, 40))
        y_len = int(rng.integers(1, 40))
        max_nnz = int(rng.integers(1, 70))
        tiles = _random_tiles(rng, num_banks, x_len, y_len, max_nnz)

        def round_once():
            engine = make_engine(num_banks=num_banks)
            return run_tile_round(engine, tiles), engine

        (sres, seng), (lres, leng) = _both(round_once)
        assert sres.batches == lres.batches
        assert sres.nnz_per_bank == lres.nnz_per_bank
        for sy, ly in zip(sres.y_per_bank, lres.y_per_bank):
            assert np.array_equal(sy, ly)
        _assert_engines_match(seng, leng)

    @pytest.mark.parametrize("accumulate,y_init", [("sub", 0.0),
                                                   ("min", 1e30)])
    def test_semiring_variants(self, accumulate, y_init):
        rng = np.random.default_rng(99)
        tiles = _random_tiles(rng, 4, 16, 16, 40)

        def round_once():
            engine = make_engine(num_banks=4)
            return run_tile_round(engine, tiles, accumulate=accumulate,
                                  y_init=y_init), engine

        (sres, seng), (lres, leng) = _both(round_once)
        for sy, ly in zip(sres.y_per_bank, lres.y_per_bank):
            assert np.array_equal(sy, ly)
        _assert_engines_match(seng, leng)


# ----------------------------------------------------------------------
# raw beat-by-beat lock-step: state compared after every transaction
# ----------------------------------------------------------------------
SCATTER_PROG = """
loop:
    SPMOV  SPVQ0, BANK
    GTHSCT BANK, SPVQ0
    JUMP   loop order=0 count=6
    CEXIT  SPVQ0
"""


class TestBeatByBeat:
    def test_state_matches_after_every_beat(self):
        rng = np.random.default_rng(11)
        num_banks = 4
        # Uneven streams: bank b holds 3*b elements, so exhaustion and
        # conditional exit trigger on different beats per bank.
        cap = 24
        streams = [padded_triples(np.zeros(3 * b, dtype=np.int64),
                                  rng.integers(0, 8, size=3 * b),
                                  rng.standard_normal(3 * b), cap)
                   for b in range(num_banks)]
        engines = []
        for name in ("scalar", "lane"):
            eng = make_engine(num_banks=num_banks, engine=name)
            eng.host_write_triples("x", streams)
            eng.host_write_dense("y", [np.zeros(8)] * num_banks)
            eng.switch_mode(Mode.AB)
            eng.load_program(assemble(SCATTER_PROG))
            eng.switch_mode(Mode.AB_PIM)
            engines.append(eng)
        scalar, lane = engines
        group = scalar.units[0].registers.group_size
        for g in range(-(-cap // group)):
            for beat in (Beat("x", g), Beat("y", 0, write=True)):
                scalar.step(beat)
                lane.step(beat)
                _assert_engines_match(scalar, lane)
        # run([]) flushes trailing control instructions and collects stats
        # identically on both implementations.
        scalar.run([])
        lane.run([])
        _assert_engines_match(scalar, lane)
        assert scalar.all_exited and lane.all_exited
