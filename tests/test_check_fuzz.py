"""The ISA program fuzzer: three-oracle agreement and self-tests.

The headline test runs 200+ seeded random programs through the scalar
engine, the lane engine and the independent reference interpreter and
requires bitwise-identical architectural state. The rest pins the
fuzzer's own machinery: determinism, block coverage, the shrinker, and
that an injected semantic bug is actually detected and reported with a
reproducer seed.
"""

import numpy as np
import pytest

from repro.check import fuzz
from repro.check.fuzz import (FuzzCase, build_case, fuzz_range,
                              generate_case, run_case, shrink_case)
from repro.check.reference import ReferenceEngine
from repro.errors import CheckError
from repro.isa import CInstruction, Opcode

#: Tier-1 seed range (the CI fuzz-smoke job runs a disjoint range).
SEED_COUNT = 220


class TestThreeOracleAgreement:
    def test_seed_range_agrees(self):
        failures = fuzz_range(0, SEED_COUNT, shrink=False)
        assert failures == [], \
            f"{len(failures)} divergent seeds: {failures[:3]}"

    @pytest.mark.parametrize("seed", [0, 7, 31, 101])
    def test_single_seed_runs_to_exit(self, seed):
        built = run_case(generate_case(seed))
        assert len(built.beats) > 0
        assert len(built.program) <= 32


class TestCaseGeneration:
    def test_generation_is_deterministic(self):
        assert generate_case(42) == generate_case(42)

    def test_build_is_deterministic(self):
        case = generate_case(42)
        a, b = build_case(case), build_case(case)
        assert a.beats == b.beats
        assert list(a.program) == list(b.program)
        for name in a.dense_data:
            for x, y in zip(a.dense_data[name], b.dense_data[name]):
                assert np.array_equal(x, y)

    def test_distinct_seeds_differ(self):
        assert generate_case(1) != generate_case(2)

    def test_block_kinds_all_covered(self):
        kinds = {block.kind
                 for seed in range(60)
                 for block in generate_case(seed).blocks}
        assert kinds == {"dense", "spmv", "gather", "merge"}

    def test_streaming_blocks_carry_cexit(self):
        """Every looped block must be exitable (paper §IV-D)."""
        for seed in range(40):
            program = build_case(generate_case(seed)).program
            jumps = [i for i in program
                     if isinstance(i, CInstruction)
                     and i.opcode is Opcode.JUMP]
            cexits = [i for i in program
                      if isinstance(i, CInstruction)
                      and i.opcode is Opcode.CEXIT]
            streaming = [j for j in jumps if j.imm1 > 4]
            if streaming:
                assert cexits, f"seed {seed}: unbounded loop, no CEXIT"

    def test_reproducer_names_seed(self):
        case = generate_case(77)
        assert "generate_case(77)" in case.reproducer()


class TestShrinker:
    def test_shrinks_to_single_block(self):
        case = generate_case(62)   # historically 3 blocks
        assert len(case.blocks) > 1

        def failed(c):
            return any(b.kind == "merge" for b in c.blocks)

        small = shrink_case(case, failed)
        assert failed(small)
        assert len(small.blocks) == 1
        assert small.stream_len <= case.stream_len
        assert small.num_banks == 1

    def test_shrink_keeps_failing_predicate(self):
        case = generate_case(5)

        def failed(c):
            return c.stream_len >= 6   # always true

        small = shrink_case(case, failed)
        assert failed(small)
        assert len(small.blocks) == 1


class TestBugDetection:
    """An injected semantic bug must surface as a CheckError + seed."""

    def _seed_with(self, kind):
        for seed in range(200):
            case = generate_case(seed)
            if any(b.kind == kind for b in case.blocks):
                return seed, case
        raise AssertionError(f"no {kind} block in 200 seeds")

    def test_broken_reference_reduce_is_caught(self, monkeypatch):
        seed, case = self._seed_with("dense")
        real = fuzz.ReferenceEngine

        class Broken(ReferenceEngine):
            def _reduce(self, bank, ins):
                super()._reduce(bank, ins)
                bank.srf += 1.0

        monkeypatch.setattr(fuzz, "ReferenceEngine", Broken)
        with pytest.raises(CheckError, match=f"generate_case\\({seed}\\)"):
            run_case(case)
        monkeypatch.setattr(fuzz, "ReferenceEngine", real)
        run_case(case)   # sanity: the unbroken oracle passes

    def test_broken_exit_state_is_caught(self, monkeypatch):
        seed, case = self._seed_with("spmv")

        class Broken(ReferenceEngine):
            def run(self, beats):
                consumed = super().run(beats)
                self.banks[0].exhausted_mask = 0x7
                return consumed

        monkeypatch.setattr(fuzz, "ReferenceEngine", Broken)
        with pytest.raises(CheckError, match="exhausted_mask"):
            run_case(case)

    def test_fuzz_range_reports_and_shrinks(self, monkeypatch):
        class Broken(ReferenceEngine):
            def _reduce(self, bank, ins):
                super()._reduce(bank, ins)
                bank.srf += 1.0

        monkeypatch.setattr(fuzz, "ReferenceEngine", Broken)
        seed, _ = self._seed_with("dense")
        failures = fuzz_range(seed, 1, shrink=True)
        assert len(failures) == 1
        assert failures[0][0] == seed
        assert "reproduce" in failures[0][1]


class TestStaticExpansion:
    def test_beat_stream_is_bounded(self):
        for seed in range(40):
            assert len(build_case(generate_case(seed)).beats) \
                <= fuzz.MAX_BEATS

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_truncated_stream_agreement(self, seed):
        """Agreement must hold even when the stream is cut short —
        mid-kernel state is architectural state too."""
        from repro.config import ProcessingUnitConfig
        from repro.pim import AllBankEngine, LaneEngine

        case = generate_case(seed)
        built = build_case(case)
        built.beats = built.beats[:max(1, len(built.beats) // 2)]
        config = ProcessingUnitConfig()
        scalar = AllBankEngine(case.num_banks, config, case.precision)
        lane = LaneEngine(case.num_banks, config, case.precision)
        ref = ReferenceEngine(case.num_banks, config, case.precision)
        fuzz._drive_production(scalar, built)
        fuzz._drive_production(lane, built)
        fuzz._drive_reference(ref, built)
        snap_s = fuzz._snapshot_production(scalar, built)
        assert fuzz._first_diff(
            snap_s, fuzz._snapshot_production(lane, built)) is None
        assert fuzz._first_diff(
            snap_s, fuzz._snapshot_reference(ref, built)) is None


class TestDataSeedCompatibility:
    """The ``data_seed`` field must not disturb pre-batch behaviour."""

    def test_default_case_has_no_data_seed(self):
        case = generate_case(42)
        assert case.data_seed is None
        assert "vary_case" not in case.reproducer()

    def test_leader_data_equals_explicit_data_seed(self):
        """data_seed=seed is the documented identity: same data stream."""
        from repro.check.fuzz import vary_case
        leader = build_case(generate_case(42))
        pinned = build_case(vary_case(generate_case(42), 42))
        for name in leader.dense_data:
            for a, b in zip(leader.dense_data[name],
                            pinned.dense_data[name]):
                assert np.array_equal(a, b)

    def test_fuzz_batch_tier1_prefix_is_green_both_modes(self):
        from repro.check.fuzz import fuzz_batch
        assert fuzz_batch(range(0, 32), batch="jobs") == []
        assert fuzz_batch(range(0, 32), batch="off") == fuzz_range(0, 32)
