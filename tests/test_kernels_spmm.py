"""Tests for the SpMM tile-block kernel (banks x rhs lane expansion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.pim import AllBankEngine, LaneEngine
from repro.kernels import (Tile, expand_block_tiles, run_tile_block,
                           run_tile_round)


def random_block_tile(rng, y_len=16, x_len=24, nnz=12, k=3):
    pairs = set()
    while len(pairs) < nnz:
        pairs.add((int(rng.integers(0, y_len)),
                   int(rng.integers(0, x_len))))
    rows, cols = np.array(sorted(pairs)).T
    vals = rng.standard_normal(nnz)
    return Tile(rows, cols, vals, rng.random((x_len, k)), y_len)


def golden_block(tile, op=np.add):
    seg = np.atleast_2d(tile.x_segment.T).T
    y = np.zeros((tile.y_len, seg.shape[1]))
    getattr(op, "at")(y, tile.rows, tile.vals[:, None] * seg[tile.cols])
    return y


class TestExpandBlockTiles:
    def test_column_lanes(self):
        rng = np.random.default_rng(0)
        tile = random_block_tile(rng, k=3)
        lanes = expand_block_tiles([tile], 3)
        assert len(lanes) == 3
        for j, lane in enumerate(lanes):
            np.testing.assert_array_equal(lane.x_segment,
                                          tile.x_segment[:, j])
            np.testing.assert_array_equal(lane.vals, tile.vals)

    def test_none_tiles_stay_none(self):
        rng = np.random.default_rng(1)
        tile = random_block_tile(rng, k=2)
        lanes = expand_block_tiles([None, tile], 2)
        assert lanes[0] is None and lanes[1] is None
        assert lanes[2] is not None and lanes[3] is not None

    def test_one_column_accepts_vector_segment(self):
        rng = np.random.default_rng(2)
        tile = random_block_tile(rng, k=1)
        flat = Tile(tile.rows, tile.cols, tile.vals,
                    np.ascontiguousarray(tile.x_segment[:, 0]),
                    tile.y_len)
        lanes = expand_block_tiles([flat], 1)
        np.testing.assert_array_equal(lanes[0].x_segment,
                                      tile.x_segment[:, 0])

    def test_width_mismatch_raises(self):
        rng = np.random.default_rng(3)
        tile = random_block_tile(rng, k=2)
        with pytest.raises(ExecutionError, match="columns"):
            expand_block_tiles([tile], 4)

    def test_bad_width_raises(self):
        with pytest.raises(ExecutionError, match="rhs"):
            expand_block_tiles([None], 0)


class TestTileBlock:
    def test_matches_golden(self):
        rng = np.random.default_rng(4)
        k = 3
        tiles = [random_block_tile(rng, nnz=int(rng.integers(1, 30)), k=k)
                 for _ in range(4)]
        engine = AllBankEngine(num_banks=4 * k)
        result = run_tile_block(engine, tiles, num_rhs=k)
        for tile, y in zip(tiles, result.y_per_bank):
            assert y.shape == (tile.y_len, k)
            np.testing.assert_allclose(y, golden_block(tile),
                                       rtol=1e-12, atol=1e-12)

    def test_one_column_equals_tile_round(self):
        """k = 1 is bitwise the plain SpMV tile round."""
        rng = np.random.default_rng(5)
        tiles = [random_block_tile(rng, nnz=20, k=1) for _ in range(3)]
        flat = [Tile(t.rows, t.cols, t.vals,
                     np.ascontiguousarray(t.x_segment[:, 0]), t.y_len)
                for t in tiles]
        block = run_tile_block(AllBankEngine(num_banks=3), tiles,
                               num_rhs=1)
        solo = run_tile_round(AllBankEngine(num_banks=3), flat)
        for yb, ys in zip(block.y_per_bank, solo.y_per_bank):
            np.testing.assert_array_equal(yb[:, 0], ys)
        assert block.batches == solo.batches
        assert block.nnz_per_bank == solo.nnz_per_bank

    def test_lane_equals_scalar(self):
        rng = np.random.default_rng(6)
        k = 2
        tiles = [random_block_tile(rng, nnz=15, k=k) for _ in range(2)]
        a = run_tile_block(AllBankEngine(num_banks=2 * k), tiles,
                           num_rhs=k)
        b = run_tile_block(LaneEngine(num_banks=2 * k), tiles, num_rhs=k)
        for ya, yb in zip(a.y_per_bank, b.y_per_bank):
            np.testing.assert_array_equal(ya, yb)

    def test_none_tile_block(self):
        rng = np.random.default_rng(7)
        tiles = [random_block_tile(rng, k=2), None]
        result = run_tile_block(AllBankEngine(num_banks=4), tiles,
                                num_rhs=2)
        np.testing.assert_allclose(result.y_per_bank[1], 0.0)
        assert result.nnz_per_bank[1] == 0

    def test_engine_size_must_match(self):
        rng = np.random.default_rng(8)
        tiles = [random_block_tile(rng, k=2)]
        with pytest.raises(ExecutionError, match="lane"):
            run_tile_block(AllBankEngine(num_banks=3), tiles, num_rhs=2)

    def test_semiring_block(self):
        rng = np.random.default_rng(9)
        tile = random_block_tile(rng, nnz=18, k=2)
        result = run_tile_block(AllBankEngine(num_banks=2), [tile],
                                num_rhs=2, accumulate="min",
                                multiply="add", y_init=0.0)
        expect = np.zeros((tile.y_len, 2))
        np.minimum.at(expect, tile.rows,
                      tile.vals[:, None] + tile.x_segment[tile.cols])
        np.testing.assert_allclose(result.y_per_bank[0], expect)

    @given(st.integers(1, 40), st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_property_random_blocks(self, nnz, k, seed):
        rng = np.random.default_rng(seed)
        tile = random_block_tile(rng, y_len=20, x_len=20,
                                 nnz=min(nnz, 19 * 19), k=k)
        result = run_tile_block(AllBankEngine(num_banks=k), [tile],
                                num_rhs=k)
        np.testing.assert_allclose(result.y_per_bank[0],
                                   golden_block(tile), rtol=1e-9,
                                   atol=1e-12)
