"""Tests for repro.core.trace / repro.core.timing — the performance tier."""

import numpy as np
import pytest

from repro.config import default_system
from repro.core import (TraceParams, run_spmv, run_sptrsv, spmv_ab_trace,
                        spmv_pb_trace, sptrsv_ab_trace, time_dense_kernel,
                        time_spmv, time_sptrsv, ildu)
from repro.dram import CommandType
from repro.errors import ExecutionError
from repro.formats import generate
from repro.formats.generators import uniform_random, unit_lower_from

CFG = default_system()
RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def spmv_execution():
    m = generate("facebook", scale=0.15)
    x = np.random.default_rng(1).random(m.shape[1])
    return run_spmv(m, x, CFG).execution


@pytest.fixture(scope="module")
def sptrsv_execution():
    low = unit_lower_from(uniform_random(400, 400, 0.02, seed=2), seed=3)
    b = np.random.default_rng(2).random(400)
    return run_sptrsv(low, b, CFG).execution


class TestSpmvTraces:
    def test_ab_trace_is_schedulable(self, spmv_execution):
        report = time_spmv(spmv_execution, CFG)
        assert report.cycles > 0
        assert report.commands > 0
        assert report.seconds == pytest.approx(report.cycles * 1e-9)

    def test_ab_uses_broadcast_commands(self, spmv_execution):
        trace = spmv_ab_trace(spmv_execution, CFG)
        kinds = {c.kind for c in trace}
        assert CommandType.RD_AB in kinds
        assert CommandType.ACT_AB in kinds
        assert CommandType.MODE in kinds

    def test_pb_uses_single_bank_kernel_commands(self, spmv_execution):
        trace = spmv_pb_trace(spmv_execution, CFG)
        kinds = {c.kind for c in trace}
        assert CommandType.RD in kinds
        assert CommandType.RD_AB not in kinds

    def test_pb_needs_more_commands_and_time(self, spmv_execution):
        ab = time_spmv(spmv_execution, CFG, mode="ab")
        pb = time_spmv(spmv_execution, CFG, mode="pb")
        assert pb.commands > 1.5 * ab.commands  # Fig. 3 direction
        assert pb.cycles > 2 * ab.cycles        # Fig. 8 per-bank gap

    def test_unknown_mode(self, spmv_execution):
        with pytest.raises(ExecutionError):
            time_spmv(spmv_execution, CFG, mode="warp")

    def test_host_cycles_tracked(self, spmv_execution):
        report = time_spmv(spmv_execution, CFG)
        assert 0 < report.host_cycles < report.cycles
        assert report.kernel_cycles == report.cycles - report.host_cycles

    def test_energy_populated(self, spmv_execution):
        report = time_spmv(spmv_execution, CFG, with_energy=True)
        assert report.energy is not None
        assert report.energy.total_joules > 0
        assert report.energy.alu_pj > 0
        assert report.energy.external_pj > 0  # staging traffic

    def test_pb_consumes_more_energy(self, spmv_execution):
        ab = time_spmv(spmv_execution, CFG, mode="ab", with_energy=True)
        pb = time_spmv(spmv_execution, CFG, mode="pb", with_energy=True)
        # longer schedule -> more background energy (Fig. 14 direction)
        assert pb.energy.total_joules > ab.energy.total_joules

    def test_trace_params_affect_cost(self, spmv_execution):
        fast = time_spmv(spmv_execution, CFG,
                         params=TraceParams(gather_locality=8.0))
        slow = time_spmv(spmv_execution, CFG,
                         params=TraceParams(gather_locality=1.0))
        assert slow.cycles > fast.cycles

    def test_compression_speeds_up_sparse_matrices(self):
        m = generate("p2p-Gnutella31", scale=0.2)
        x = RNG.random(m.shape[1])
        on = run_spmv(m, x, CFG, compress=True).execution
        off = run_spmv(m, x, CFG, compress=False).execution
        assert time_spmv(on, CFG).cycles < time_spmv(off, CFG).cycles


class TestSpTrsvTraces:
    def test_schedulable(self, sptrsv_execution):
        report = time_sptrsv(sptrsv_execution, CFG)
        assert report.cycles > 0

    def test_trace_contains_levels(self, sptrsv_execution):
        trace = sptrsv_ab_trace(sptrsv_execution, CFG)
        modes = sum(1 for c in trace if c.kind is CommandType.MODE)
        # three switches per level plus the update SpMVs' switches
        assert modes >= 3 * sptrsv_execution.num_levels

    def test_more_levels_cost_more(self):
        b = RNG.random(300)
        chain = unit_lower_from(uniform_random(300, 300, 0.05, seed=4),
                                seed=5)
        diag_only = unit_lower_from(uniform_random(300, 300, 0.0005,
                                                   seed=6), seed=7)
        dense_ex = run_sptrsv(chain, b, CFG).execution
        sparse_ex = run_sptrsv(diag_only, b, CFG).execution
        assert dense_ex.num_levels > sparse_ex.num_levels
        assert (time_sptrsv(dense_ex, CFG).cycles
                > time_sptrsv(sparse_ex, CFG).cycles)

    def test_ildu_pipeline_timing(self):
        m = generate("poisson3Da", scale=0.12)
        f = ildu(m)
        b = RNG.random(m.shape[0])
        result = run_sptrsv(f.lower, b, CFG)
        report = time_sptrsv(result.execution, CFG, with_energy=True)
        assert report.seconds > 0
        assert report.energy.total_joules > 0


class TestDenseKernelTiming:
    def test_ab_faster_than_pb(self):
        ab = time_dense_kernel(1 << 16, 2, 1, CFG, mode="ab")
        pb = time_dense_kernel(1 << 16, 2, 1, CFG, mode="pb")
        assert pb.cycles > 4 * ab.cycles  # Fig. 10: 9.6x average

    def test_scales_with_elements(self):
        small = time_dense_kernel(1 << 12, 2, 1, CFG)
        large = time_dense_kernel(1 << 18, 2, 1, CFG)
        assert large.cycles > 10 * small.cycles

    def test_int8_beats_fp64_per_element(self):
        n = 1 << 16
        t8 = time_dense_kernel(n, 2, 1, CFG, precision="int8")
        t64 = time_dense_kernel(n, 2, 1, CFG, precision="fp64")
        assert t8.cycles < t64.cycles

    def test_energy_accounting(self):
        report = time_dense_kernel(1 << 14, 2, 1, CFG, ops_per_element=1,
                                   with_energy=True)
        assert report.energy.alu_pj > 0
