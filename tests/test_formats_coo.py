"""Tests for repro.formats.coo — the COO container."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix


@pytest.fixture
def small():
    # [[1, 0, 2],
    #  [0, 3, 0],
    #  [4, 0, 5]]
    return COOMatrix((3, 3), [0, 0, 1, 2, 2], [0, 2, 1, 0, 2],
                     [1.0, 2.0, 3.0, 4.0, 5.0])


class TestConstruction:
    def test_round_trip_dense(self, small):
        dense = small.to_dense()
        again = COOMatrix.from_dense(dense)
        assert again == small

    def test_from_triplets(self):
        m = COOMatrix.from_triplets((2, 2), [(0, 1, 5.0), (1, 0, -1.0)])
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 5.0

    def test_from_triplets_empty(self):
        m = COOMatrix.from_triplets((2, 2), [])
        assert m.nnz == 0
        assert np.all(m.to_dense() == 0)

    def test_empty(self):
        m = COOMatrix.empty((4, 6))
        assert m.shape == (4, 6)
        assert m.nnz == 0
        assert m.density == 0.0

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-12, 2.0], [0.0, 0.0]])
        m = COOMatrix.from_dense(dense, tol=1e-9)
        assert m.nnz == 1

    def test_from_dense_rejects_1d(self):
        with pytest.raises(FormatError):
            COOMatrix.from_dense(np.ones(3))

    def test_copy_is_independent(self, small):
        dup = small.copy()
        dup.vals[0] = 99.0
        assert small.vals[0] == 1.0


class TestValidation:
    def test_row_out_of_range(self):
        with pytest.raises(FormatError, match="row index"):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_col_out_of_range(self):
        with pytest.raises(FormatError, match="column index"):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_negative_index(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [-1], [0], [1.0])

    def test_duplicate_coordinates(self):
        with pytest.raises(FormatError, match="duplicate"):
            COOMatrix((2, 2), [0, 0], [1, 1], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(FormatError, match="identical length"):
            COOMatrix((2, 2), [0], [0, 1], [1.0, 2.0])


class TestOrdering:
    def test_sorted_rows_is_row_major(self, small):
        srt = small.sorted_rows()
        keys = srt.rows * small.shape[1] + srt.cols
        assert np.all(np.diff(keys) > 0)

    def test_sorted_cols_is_col_major(self, small):
        srt = small.sorted_cols()
        keys = srt.cols * small.shape[0] + srt.rows
        assert np.all(np.diff(keys) > 0)

    def test_sorting_preserves_content(self, small):
        assert small.sorted_cols() == small
        assert small.sorted_rows() == small


class TestArithmetic:
    def test_matvec_matches_dense(self, small):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(small.matvec(x), small.to_dense() @ x)

    def test_matvec_rejects_bad_length(self, small):
        with pytest.raises(FormatError):
            small.matvec(np.ones(4))

    def test_rmatvec(self, small):
        x = np.array([1.0, -1.0, 0.5])
        np.testing.assert_allclose(small.rmatvec(x), small.to_dense().T @ x)

    def test_transpose_round_trip(self, small):
        assert small.transpose().transpose() == small

    def test_scaled(self, small):
        np.testing.assert_allclose(small.scaled(2.0).to_dense(),
                                   2.0 * small.to_dense())

    def test_matvec_rectangular(self):
        m = COOMatrix((2, 4), [0, 1], [3, 0], [2.0, 7.0])
        y = m.matvec(np.array([1.0, 0.0, 0.0, 1.0]))
        np.testing.assert_allclose(y, [2.0, 7.0])


class TestStructure:
    def test_row_counts(self, small):
        np.testing.assert_array_equal(small.row_counts(), [2, 1, 2])

    def test_col_counts(self, small):
        np.testing.assert_array_equal(small.col_counts(), [2, 1, 2])

    def test_nonempty_cols(self):
        m = COOMatrix((3, 5), [0, 2], [1, 4], [1.0, 1.0])
        np.testing.assert_array_equal(m.nonempty_cols(), [1, 4])

    def test_submatrix(self, small):
        sub = small.submatrix((0, 2), (0, 2))
        np.testing.assert_allclose(sub.to_dense(),
                                   small.to_dense()[:2, :2])

    def test_submatrix_rebases_indices(self, small):
        sub = small.submatrix((1, 3), (1, 3))
        np.testing.assert_allclose(sub.to_dense(),
                                   small.to_dense()[1:, 1:])

    def test_submatrix_invalid_range(self, small):
        with pytest.raises(FormatError):
            small.submatrix((2, 1), (0, 3))
        with pytest.raises(FormatError):
            small.submatrix((0, 5), (0, 3))

    def test_select_mask_length(self, small):
        with pytest.raises(FormatError):
            small.select(np.ones(2, dtype=bool))

    def test_diagonal(self, small):
        np.testing.assert_allclose(small.diagonal(), [1.0, 3.0, 5.0])

    def test_diagonal_with_gaps(self):
        m = COOMatrix((3, 3), [0, 1], [0, 2], [7.0, 1.0])
        np.testing.assert_allclose(m.diagonal(), [7.0, 0.0, 0.0])


class TestTriangles:
    @pytest.fixture
    def full(self):
        rng = np.random.default_rng(3)
        return COOMatrix.from_dense(rng.standard_normal((6, 6)))

    def test_strict_triangles_partition(self, full):
        lower = full.strictly_lower()
        upper = full.strictly_upper()
        diag_count = int(np.sum(full.rows == full.cols))
        assert lower.nnz + upper.nnz + diag_count == full.nnz

    def test_lower_triangular_dense(self, full):
        np.testing.assert_allclose(full.lower_triangular().to_dense(),
                                   np.tril(full.to_dense()))

    def test_upper_triangular_dense(self, full):
        np.testing.assert_allclose(full.upper_triangular().to_dense(),
                                   np.triu(full.to_dense()))

    def test_unit_triangles(self, full):
        lo = full.lower_triangular(unit=True)
        np.testing.assert_allclose(lo.diagonal(), np.ones(6))
        assert lo.is_lower_triangular()
        hi = full.upper_triangular(unit=True)
        np.testing.assert_allclose(hi.diagonal(), np.ones(6))
        assert hi.is_upper_triangular()

    def test_triangle_predicates(self, full):
        assert not full.is_lower_triangular()
        assert full.lower_triangular().is_lower_triangular()
        assert not full.lower_triangular().is_upper_triangular()

    def test_has_full_diagonal(self, full):
        assert full.lower_triangular(unit=True).has_full_diagonal()
        hollow = full.strictly_lower()
        assert not hollow.has_full_diagonal()

    def test_with_diagonal_custom_values(self, full):
        vals = np.arange(1.0, 7.0)
        m = full.with_diagonal(vals)
        np.testing.assert_allclose(m.diagonal(), vals)

    def test_with_diagonal_requires_square(self):
        m = COOMatrix((2, 3), [0], [1], [1.0])
        with pytest.raises(FormatError):
            m.with_diagonal()


class TestEquality:
    def test_order_insensitive(self):
        a = COOMatrix((2, 2), [0, 1], [1, 0], [2.0, 3.0])
        b = COOMatrix((2, 2), [1, 0], [0, 1], [3.0, 2.0])
        assert a == b

    def test_shape_mismatch(self):
        a = COOMatrix((2, 2), [0], [0], [1.0])
        b = COOMatrix((2, 3), [0], [0], [1.0])
        assert a != b

    def test_value_mismatch(self):
        a = COOMatrix((2, 2), [0], [0], [1.0])
        b = COOMatrix((2, 2), [0], [0], [2.0])
        assert a != b

    def test_not_equal_other_type(self):
        a = COOMatrix((2, 2), [0], [0], [1.0])
        assert (a == object()) is False or (a == object()) is NotImplemented
