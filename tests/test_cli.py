"""Tests for repro.cli — the command-line interface."""

import pytest

from repro.cli import main
from repro.formats import write_matrix_market
from repro.formats.generators import make_spd, uniform_random


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInfoAndSuite:
    def test_no_command_prints_help(self, capsys):
        code, out, _ = run_cli(capsys)
        assert code == 2
        assert "psyncpim" in out

    def test_info(self, capsys):
        code, out, _ = run_cli(capsys, "info")
        assert code == 0
        assert "HBM2" in out
        assert "256" in out
        assert "68.99" in out

    def test_suite_lists_26(self, capsys):
        code, out, _ = run_cli(capsys, "suite")
        assert code == 0
        assert "bcsstk32" in out and "webbase-1M" in out
        matrix_lines = [line for line in out.splitlines()
                        if "e-0" in line]
        assert len(matrix_lines) == 26


class TestSpmvCommand:
    def test_default(self, capsys):
        code, out, _ = run_cli(capsys, "spmv", "--matrix", "facebook",
                               "--scale", "0.1")
        assert code == 0
        assert "all-bank time" in out
        assert "RTX 3080" in out

    def test_int8_bitmap(self, capsys):
        code, out, _ = run_cli(capsys, "spmv", "--matrix", "wiki-Vote",
                               "--scale", "0.2", "--precision", "int8",
                               "--format", "bitmap")
        assert code == 0
        assert "int8" in out and "bitmap" in out

    def test_no_compress(self, capsys):
        code, out, _ = run_cli(capsys, "spmv", "--matrix", "facebook",
                               "--scale", "0.1", "--no-compress")
        assert code == 0

    def test_three_cubes(self, capsys):
        code, out, _ = run_cli(capsys, "spmv", "--matrix", "facebook",
                               "--scale", "0.1", "--cubes", "3")
        assert code == 0
        assert "/768" in out

    def test_mtx_file(self, capsys, tmp_path):
        m = uniform_random(80, 80, density=0.05, seed=1)
        path = tmp_path / "input.mtx"
        write_matrix_market(m, path)
        code, out, _ = run_cli(capsys, "spmv", "--mtx", str(path))
        assert code == 0
        assert f"nnz={m.nnz}" in out

    def test_unknown_matrix_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "spmv", "--matrix", "nope")
        assert code == 1
        assert "unknown suite matrix" in err


class TestSptrsvCommand:
    def test_runs_both_factors(self, capsys):
        code, out, _ = run_cli(capsys, "sptrsv", "--matrix", "poisson3Da",
                               "--scale", "0.15")
        assert code == 0
        assert "lower" in out and "upper" in out
        assert "levels" in out


class TestAppCommand:
    @pytest.mark.parametrize("app", ["bfs", "pr", "tc"])
    def test_graph_apps(self, capsys, app):
        code, out, _ = run_cli(capsys, "app", app, "--matrix",
                               "wiki-Vote", "--scale", "0.12")
        assert code == 0
        assert "speedup" in out
        assert "total" in out

    def test_solver_app(self, capsys, tmp_path):
        m = make_spd(uniform_random(120, 120, 0.03, seed=2))
        path = tmp_path / "spd.mtx"
        write_matrix_market(m, path)
        code, out, _ = run_cli(capsys, "app", "pcg", "--mtx", str(path))
        assert code == 0
        assert "sptrsv" in out


class TestCheckCommand:
    def test_default_runs_golden_and_protocol(self, capsys):
        code, out, _ = run_cli(capsys, "check")
        assert code == 0
        assert "golden: ok" in out
        assert "protocol: ok spmv_ab" in out
        assert "check: all oracles passed" in out

    def test_fuzz_range(self, capsys):
        code, out, _ = run_cli(capsys, "check", "--skip-golden",
                               "--skip-protocol", "--fuzz", "5",
                               "--seed", "100")
        assert code == 0
        assert "fuzz: ok (5 programs, seeds 100..104" in out
        assert "seeds/s" in out
        assert "batch=off" in out

    def test_fuzz_batched(self, capsys):
        code, out, _ = run_cli(capsys, "check", "--skip-golden",
                               "--skip-protocol", "--fuzz", "8",
                               "--seed", "100", "--batch", "jobs",
                               "--group-size", "4")
        assert code == 0
        assert "fuzz: ok (8 programs, seeds 100..107" in out
        assert "batch=jobs" in out

    def test_update_golden_to_directory(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "check", "--update-golden",
                               "--skip-protocol", "--golden-dir",
                               str(tmp_path))
        assert code == 0
        assert "golden: wrote" in out
        code, out, _ = run_cli(capsys, "check", "--skip-protocol",
                               "--golden-dir", str(tmp_path))
        assert code == 0
        assert "golden: ok" in out

    def test_missing_golden_fails_with_advice(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "check", "--skip-protocol",
                               "--golden-dir", str(tmp_path / "empty"))
        assert code == 1
        assert "golden: FAIL" in out
        assert "--update-golden" in out
        assert "check: FAILED" in out

    def test_tampered_golden_fails(self, capsys, tmp_path):
        import json
        run_cli(capsys, "check", "--update-golden", "--skip-protocol",
                "--golden-dir", str(tmp_path))
        path = tmp_path / "spmv_ab.json"
        record = json.loads(path.read_text())
        record["schedule"]["total_cycles"] += 1
        path.write_text(json.dumps(record))
        code, out, _ = run_cli(capsys, "check", "--skip-protocol",
                               "--golden-dir", str(tmp_path))
        assert code == 1
        assert "golden: FAIL spmv_ab" in out
