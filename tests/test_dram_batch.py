"""Differential tests: closed-form CommandRun pricing vs per-command issue.

Every run in a trace must price exactly like its expansion — total cycles,
per-channel cycles, per-type counters, tag attributions and energy — under
refresh, turnarounds, bank-group mixes and both broadcast and single-bank
streams.
"""

import numpy as np
import pytest

from repro.config import default_system
from repro.core import (dense_stream_trace, price_trace, run_spmv,
                        run_sptrsv, spmv_ab_trace, spmv_pb_trace,
                        sptrsv_ab_trace)
from repro.dram import (Command, CommandRun, CommandType, MemoryController,
                        TimingParams, as_run, count_commands, expand_trace)
from repro.formats import generate
from repro.formats.generators import uniform_random, unit_lower_from

CFG = default_system()


def _schedules_match(trace, timing=TimingParams(), enable_refresh=True):
    run = MemoryController(timing=timing,
                           enable_refresh=enable_refresh).run
    batched = run(trace, with_energy=True)
    expanded = run(list(expand_trace(trace)), with_energy=True)
    assert batched.total_cycles == expanded.total_cycles
    assert batched.per_channel_cycles == expanded.per_channel_cycles
    assert batched.counts == expanded.counts
    assert batched.command_total == expanded.command_total
    assert batched.refreshes == expanded.refreshes
    assert batched.tag_cycles == expanded.tag_cycles
    assert batched.energy.total_joules == expanded.energy.total_joules
    return batched


class TestCommandRun:
    def test_needs_at_least_one(self):
        with pytest.raises(ValueError, match="at least one"):
            CommandRun(Command(CommandType.RD), 0)

    def test_delegates_command_fields(self):
        cmd = Command(CommandType.WR_AB, row=3, col=5, min_gap=2,
                      tag="stream")
        batch = CommandRun(cmd, 7)
        assert batch.kind is CommandType.WR_AB
        assert (batch.row, batch.col, batch.min_gap) == (3, 5, 2)
        assert batch.tag == "stream"

    def test_as_run_and_expand(self):
        cmd = Command(CommandType.RD, bank=1, row=2)
        assert as_run(cmd) == (cmd, 1)
        assert as_run(CommandRun(cmd, 4)) == (cmd, 4)
        trace = [cmd, CommandRun(cmd, 3)]
        assert list(expand_trace(trace)) == [cmd] * 4

    def test_count_commands_expands_runs(self):
        trace = [Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0), 9)]
        counts = count_commands(trace)
        assert counts[CommandType.RD_AB] == 9
        assert counts[CommandType.ACT_AB] == 1


class TestSyntheticRuns:
    def test_broadcast_read_run(self):
        trace = [Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0), 64),
                 Command(CommandType.PRE_AB)]
        _schedules_match(trace)

    def test_single_bank_write_run(self):
        trace = [Command(CommandType.ACT, bank=3, row=7),
                 CommandRun(Command(CommandType.WR, bank=3, row=7), 32),
                 Command(CommandType.PRE, bank=3)]
        _schedules_match(trace)

    def test_run_with_min_gap_throttling(self):
        slow = Command(CommandType.RD_AB, row=0, min_gap=11)
        trace = [Command(CommandType.ACT_AB, row=0),
                 CommandRun(slow, 20),
                 Command(CommandType.PRE_AB)]
        _schedules_match(trace)

    def test_runs_across_turnarounds(self):
        trace = [Command(CommandType.ACT_AB, row=0)]
        for _ in range(4):  # WR->RD->WR turnaround at every boundary
            trace.append(CommandRun(Command(CommandType.RD_AB, row=0), 6))
            trace.append(CommandRun(Command(CommandType.WR_AB, row=0), 6))
        trace.append(Command(CommandType.PRE_AB))
        _schedules_match(trace)

    def test_runs_across_bank_groups(self):
        trace = []
        for bank in (0, 4, 8, 1):  # group changes exercise tCCD_S vs _L
            trace.append(Command(CommandType.ACT, bank=bank, row=1))
            trace.append(CommandRun(
                Command(CommandType.RD, bank=bank, row=1), 8))
        for bank in (0, 4, 8, 1):
            trace.append(Command(CommandType.PRE, bank=bank))
        _schedules_match(trace)

    def test_long_run_slides_past_refresh(self):
        # A run long enough to cross tREFI: refresh must defer until the
        # row closes, identically on both paths.
        timing = TimingParams()
        count = 2 * timing.trefi // max(timing.tccd_l, 1)
        trace = [Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0), count),
                 Command(CommandType.PRE_AB),
                 Command(CommandType.ACT_AB, row=1),
                 CommandRun(Command(CommandType.WR_AB, row=1), 16),
                 Command(CommandType.PRE_AB)]
        result = _schedules_match(trace)
        assert result.refreshes > 0

    def test_refresh_disabled(self):
        trace = [Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0), 500),
                 Command(CommandType.PRE_AB)]
        _schedules_match(trace, enable_refresh=False)

    def test_non_column_run_falls_back(self):
        # MODE runs have no closed form; the scheduler must loop.
        trace = [CommandRun(Command(CommandType.MODE), 3)]
        _schedules_match(trace)

    def test_tagged_run_attribution(self):
        trace = [Command(CommandType.ACT_AB, row=0),
                 CommandRun(Command(CommandType.RD_AB, row=0,
                                    tag="stream"), 40),
                 Command(CommandType.PRE_AB)]
        result = _schedules_match(trace)
        assert result.tag_cycles["stream"] > 0

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_mixed_traces(self, seed):
        rng = np.random.default_rng(seed)
        trace = []
        open_row = None
        for _ in range(40):
            if open_row is None or rng.random() < 0.2:
                if open_row is not None:
                    trace.append(Command(CommandType.PRE_AB))
                open_row = int(rng.integers(0, 64))
                trace.append(Command(CommandType.ACT_AB, row=open_row))
            kind = (CommandType.RD_AB if rng.random() < 0.7
                    else CommandType.WR_AB)
            cmd = Command(kind, row=open_row,
                          min_gap=int(rng.integers(0, 5)))
            n = int(rng.integers(1, 20))
            trace.append(cmd if n == 1 else CommandRun(cmd, n))
        trace.append(Command(CommandType.PRE_AB))
        _schedules_match(trace)


class TestKernelTraceRuns:
    """The synthesised kernel traces emit runs; their pricing must match
    the per-command reference exactly on every trace family."""

    @pytest.fixture(scope="class")
    def spmv_execution(self):
        m = generate("facebook", scale=0.1)
        x = np.random.default_rng(1).random(m.shape[1])
        return run_spmv(m, x, CFG).execution

    def test_spmv_ab_trace(self, spmv_execution):
        trace = spmv_ab_trace(spmv_execution, CFG)
        assert any(isinstance(e, CommandRun) for e in trace)
        _schedules_match(trace)

    def test_spmv_pb_trace(self, spmv_execution):
        _schedules_match(spmv_pb_trace(spmv_execution, CFG))

    def test_sptrsv_trace(self):
        low = unit_lower_from(uniform_random(300, 300, 0.02, seed=2),
                              seed=3)
        b = np.random.default_rng(2).random(300)
        execution = run_sptrsv(low, b, CFG).execution
        _schedules_match(sptrsv_ab_trace(execution, CFG))

    @pytest.mark.parametrize("all_bank", [True, False])
    def test_dense_stream_trace(self, all_bank):
        trace = dense_stream_trace(1 << 12, 2, 1, "fp64",
                                   all_bank=all_bank)
        _schedules_match(trace)

    def test_price_trace_host_columns_count_runs(self, spmv_execution):
        # Energy's external traffic must count a run's full beat count.
        trace = spmv_ab_trace(spmv_execution, CFG)
        batched = price_trace(trace, CFG, with_energy=True)
        expanded = price_trace(list(expand_trace(trace)), CFG,
                               with_energy=True)
        assert batched.cycles == expanded.cycles
        assert batched.counts == expanded.counts
        assert batched.tag_cycles == expanded.tag_cycles
        assert (batched.energy.external_pj
                == expanded.energy.external_pj)
        assert (batched.energy.total_joules
                == expanded.energy.total_joules)
