"""Ablation: tile-to-bank distribution policies.

Compares the paper policy (split + descending round packing) against the
naive placement and the greedy-balanced assignment, quantifying the
lock-step imbalance each leaves behind and what it costs in cycles.
"""

import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.analysis import format_table
from repro.core import run_spmv, time_spmv

MATRICES = ("bcsstk32", "facebook", "pwtk")
POLICIES = ("paper", "naive", "balanced")


@pytest.fixture(scope="module")
def results(cfg1):
    table = {}
    for name in MATRICES:
        matrix = bench_matrix(name, scale=0.1)
        x = bench_vector(matrix.shape[1])
        rows = {}
        for policy in POLICIES:
            execution = run_spmv(matrix, x, cfg1, policy=policy).execution
            rows[policy] = (execution.imbalance, execution.banks_used,
                            time_spmv(execution, cfg1).seconds)
        table[name] = rows
    return table


class TestDistributionAblation:
    def test_paper_policy_most_balanced(self, results):
        for name, rows in results.items():
            assert rows["paper"][0] <= rows["naive"][0] + 1e-9, name

    def test_paper_policy_fastest_or_close(self, results):
        for name, rows in results.items():
            best = min(r[2] for r in rows.values())
            assert rows["paper"][2] <= 1.35 * best, name

    def test_imbalance_predicts_time(self, results):
        """Within a matrix, more imbalance never means less time."""
        for name, rows in results.items():
            ordered = sorted(rows.values(), key=lambda r: r[0])
            assert ordered[0][2] <= ordered[-1][2] * 1.4, name


def test_render_ablation(results, benchmark):
    def render():
        rows = []
        for name, data in results.items():
            for policy in POLICIES:
                imb, used, seconds = data[policy]
                rows.append([f"{name}/{policy}", imb, used, seconds * 1e6])
        text = format_table(
            ["matrix/policy", "imbalance", "banks used", "time (us)"],
            rows, title="Ablation: distribution policy")
        print("\n" + text)
        write_result("ablation_distribution", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
