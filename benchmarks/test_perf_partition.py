"""Partition-strategy benchmark: per-matrix planning vs the paper layout.

Prices the Fig. 8 SpMV suite under every registered partitioning
strategy plus the cost-model auto-tuner and writes
``benchmarks/results/BENCH_partition.json`` for the CI perf-trend gate.

Three kinds of numbers land in the dump:

* ``cycles`` — modelled schedule length per matrix per strategy, plus
  per-strategy suite aggregates. ``speedups.auto_vs_paper`` is the
  gated metric: the auto-tuner picks per matrix, so its aggregate must
  sit at or above the fixed paper layout (it falls back to paper
  whenever no alternative wins the exact pricing duel).
* ``speedups`` — aggregate-cycle ratios of each strategy against the
  paper baseline. Fixed alternatives may lose on some matrices (that
  is the SparseP observation motivating per-matrix planning); only the
  tuner is required to be uniformly at least as good.
* ``times`` — host wall-clock for the paper plan+price pipeline and
  for the tuner. The tuner partitions every strategy and exact-prices
  two candidates, so its cost is a small constant factor over a single
  plan; the in-test bound keeps that overhead from regressing into a
  full exhaustive search.

The modelled-cycle ratios are machine-independent (both sides come from
the same DRAM model), so the gate transfers across CI hardware.
"""

from __future__ import annotations

import json
import time

from conftest import BENCH_SCALE, RESULTS_DIR, SPMV_MATRICES, bench_matrix
from repro.config import default_system
from repro.core import (make_strategy, plan_spmv, strategy_names, time_spmv,
                        tune_strategy)

#: Wall-clock budget for one tune relative to one paper plan+price.
#: The tuner partitions len(strategy_names()) layouts and exact-prices
#: two of them, so ~6x is the expected cost; 25x leaves slack for
#: scheduler noise at small bench scales without admitting a move to
#: exhaustive per-strategy pricing.
TUNE_OVERHEAD_LIMIT = 25.0


def test_partition_strategy_benchmark():
    config = default_system()
    names = strategy_names()
    bench = {"scale": BENCH_SCALE, "cycles": {}, "times": {},
             "speedups": {}}
    totals = {strat: 0 for strat in names}

    paper_seconds = 0.0
    for name in SPMV_MATRICES:
        matrix = bench_matrix(name)
        for strat in names:
            start = time.perf_counter()
            plan = make_strategy(strat).partition(matrix, config,
                                                  validate=False)
            _, _, execution = plan_spmv(matrix, config, plan=plan,
                                        validate=False)
            report = time_spmv(execution, config)
            elapsed = time.perf_counter() - start
            if strat == "paper":
                paper_seconds += elapsed
            bench["cycles"][f"{name}_{strat}"] = report.cycles
            totals[strat] += report.cycles

    # The auto-tuner scores every strategy with the calibrated cost
    # model, then settles the winner against paper by exact pricing —
    # so per matrix it can tie paper but never lose to it.
    totals["auto"] = 0
    tune_start = time.perf_counter()
    for name in SPMV_MATRICES:
        matrix = bench_matrix(name)
        tuned = tune_strategy(matrix, config)
        cycles = bench["cycles"][f"{name}_{tuned.chosen}"]
        bench["cycles"][f"{name}_auto"] = cycles
        totals["auto"] += cycles
        assert cycles <= bench["cycles"][f"{name}_paper"], (
            name, tuned.chosen, cycles)
    tune_seconds = time.perf_counter() - tune_start

    for strat, total in totals.items():
        bench["cycles"][f"suite_{strat}"] = total
        if strat != "paper":
            bench["speedups"][f"{strat}_vs_paper"] = (
                totals["paper"] / total)
    bench["times"]["paper_plan_price_s"] = paper_seconds
    bench["times"]["tune_s"] = tune_seconds

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_partition.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    # Tuning must stay a bounded constant factor over one paper
    # plan+price, not drift toward pricing the full cross product.
    assert tune_seconds <= TUNE_OVERHEAD_LIMIT * max(paper_seconds, 1e-9), (
        tune_seconds, paper_seconds)
    if BENCH_SCALE >= 0.02:
        assert bench["speedups"]["auto_vs_paper"] >= 1.0, bench["speedups"]
