"""Table IX: the 26-matrix evaluation suite.

Regenerates every synthetic stand-in at bench scale and reports the
published vs realised dimension/density, asserting the generator family
preserves the quantities pSyncPIM is sensitive to.
"""

import pytest

from conftest import BENCH_SCALE, write_result
from repro.analysis import format_table
from repro.formats import matrix_spec, suite_names
from repro.sweep import SweepJob, run_sweep


@pytest.fixture(scope="module")
def suite(sweep_workers):
    """All 26 Table IX matrices, regenerated through the sweep runner so
    the suite parallelises and repeated runs reuse cached matrices."""
    jobs = [SweepJob(kernel="suite", matrix=name, scale=BENCH_SCALE)
            for name in suite_names()]
    sweep = run_sweep(jobs, workers=sweep_workers)
    return {record.matrix: record.extras["matrix"] for record in sweep}


class TestTable9Claims:
    def test_all_26_generate(self, suite):
        assert len(suite) == 26
        for name, matrix in suite.items():
            assert matrix.nnz > 0, name

    def test_dimensions_track_scale(self, suite):
        for name, matrix in suite.items():
            spec = matrix_spec(name)
            target = max(64, round(spec.dimension * BENCH_SCALE))
            assert 0.5 * target <= matrix.shape[0] <= 2.5 * target, name

    def test_mean_row_population_preserved(self, suite):
        for name, matrix in suite.items():
            spec = matrix_spec(name)
            mean = matrix.nnz / matrix.shape[0]
            target = max(spec.mean_row_nnz, 1.0)
            assert 0.2 * target <= mean <= 6.0 * target, name

    def test_solver_matrices_symmetric(self, suite):
        for name in ("2cubes_sphere", "offshore", "parabolic_fem",
                     "poisson3Da", "rma10"):
            matrix = suite[name]
            assert matrix == matrix.transpose(), name


def test_render_table9(suite, benchmark):
    def render():
        rows = []
        for name, matrix in suite.items():
            spec = matrix_spec(name)
            rows.append([name, spec.dimension, matrix.shape[0],
                         f"{spec.density:.2e}", f"{matrix.density:.2e}",
                         matrix.nnz, spec.kind])
        text = format_table(
            ["matrix", "paper dim", "bench dim", "paper density",
             "bench density", "bench nnz", "pattern"],
            rows,
            title=f"Table IX: evaluation suite at scale={BENCH_SCALE}")
        print("\n" + text)
        write_result("table09_suite", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
