"""Planner microbenchmark: vectorized planning front-end vs the oracle.

Times the three host-side planning stages this optimisation targets —
matrix partitioning (compressed and uncompressed), tile distribution
(paper and balanced policies) and SpTRSV level scheduling — under both
planners at ``PSYNCPIM_SCALE``, asserts the plans stay bitwise identical,
and writes the measurements to ``benchmarks/results/BENCH_plan.json`` for
the CI perf-smoke gate.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import BENCH_SCALE, RESULTS_DIR
from repro.config import default_system
from repro.core import distribute, partition
from repro.core.sptrsv import level_schedule
from repro.formats.generators import (power_law_graph, uniform_random,
                                      unit_lower_from)

CFG = default_system()


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_plans_equal(fast, scalar):
    assert len(fast.tiles) == len(scalar.tiles)
    for tf, ts in zip(fast.tiles, scalar.tiles):
        assert tf.row_range == ts.row_range
        assert np.array_equal(tf.global_cols, ts.global_cols)
        assert np.array_equal(tf.rows, ts.rows)
        assert np.array_equal(tf.cols, ts.cols)
        assert np.array_equal(tf.vals, ts.vals)


def _assert_assignments_equal(fast, scalar):
    assert fast.num_rounds == scalar.num_rounds
    for rf, rs in zip(fast.rounds, scalar.rounds):
        for tf, ts in zip(rf, rs):
            assert (tf is None) == (ts is None)
            if tf is not None:
                assert np.array_equal(tf.rows, ts.rows)
                assert np.array_equal(tf.vals, ts.vals)


def test_planner_microbenchmark():
    n = max(20_000, int(400_000 * BENCH_SCALE))
    # Canonicalize outside the timed region: both planners share the same
    # row-major sort on entry, so timing it would only dilute the
    # comparison of the planning work itself.
    matrix = power_law_graph(n, avg_degree=8, seed=5).sorted_rows()
    # SpTRSV factors are the paper's largest planning inputs (the Table IX
    # solver matrices reach parabolic_fem's ~525k rows), so the level
    # scheduler gets a proportionally larger workload.
    tri_n = max(100_000, int(525_000 * BENCH_SCALE))
    tri = unit_lower_from(
        uniform_random(tri_n, tri_n, density=min(0.002, 40 / tri_n),
                       seed=6), seed=7)

    bench = {"scale": BENCH_SCALE,
             "matrix": {"n": n, "nnz": matrix.nnz,
                        "tri_n": tri_n, "tri_nnz": tri.nnz},
             "times": {}, "speedups": {}}

    def measure(key, fast_fn, scalar_fn, check, repeats=3):
        t_scalar, r_scalar = _best_of(scalar_fn, repeats)
        t_fast, r_fast = _best_of(fast_fn, repeats)
        check(r_fast, r_scalar)
        bench["times"][f"{key}_scalar_s"] = t_scalar
        bench["times"][f"{key}_fast_s"] = t_fast
        bench["speedups"][key] = t_scalar / t_fast
        return t_scalar, t_fast

    # --- partitioning (validation off: timing the cut itself) ---------
    for compress in (True, False):
        key = "partition_compressed" if compress else "partition_raw"
        measure(
            key,
            lambda: partition(matrix, CFG, compress=compress,
                              planner="fast", validate=False),
            lambda: partition(matrix, CFG, compress=compress,
                              planner="scalar", validate=False),
            _assert_plans_equal)

    # --- distribution --------------------------------------------------
    plan = partition(matrix, CFG, planner="fast", validate=False)
    for policy in ("paper", "balanced"):
        measure(
            f"distribute_{policy}",
            lambda: distribute(plan, CFG.total_units, policy=policy,
                               planner="fast"),
            lambda: distribute(plan, CFG.total_units, policy=policy,
                               planner="scalar"),
            _assert_assignments_equal)

    # --- level scheduling ----------------------------------------------
    def levels_equal(fast, scalar):
        assert len(fast) == len(scalar)
        for lf, ls in zip(fast, scalar):
            assert np.array_equal(lf, ls)

    measure(
        "level_schedule",
        lambda: level_schedule(tri, planner="fast"),
        lambda: level_schedule(tri, planner="scalar"),
        levels_equal, repeats=2)

    scalar_total = sum(v for k, v in bench["times"].items()
                       if k.endswith("_scalar_s"))
    fast_total = sum(v for k, v in bench["times"].items()
                     if k.endswith("_fast_s"))
    bench["times"]["combined_scalar_s"] = scalar_total
    bench["times"]["combined_fast_s"] = fast_total
    bench["speedups"]["combined"] = scalar_total / fast_total

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_plan.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    # The fast planner must never lose to the oracle; at default scale and
    # above the combined planning path must clear the 5x target.
    for key, speedup in bench["speedups"].items():
        assert speedup > 1.0, (key, bench)
    if BENCH_SCALE >= 0.05:
        assert bench["speedups"]["combined"] >= 5.0, bench
