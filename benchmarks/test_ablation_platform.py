"""Ablation: HBM-PIM vs a GDDR6-AiM-style platform (paper §II-B).

The paper evaluates on an HBM2 substrate; SK Hynix's GDDR6-AiM is the
other commercial all-bank PIM. Running the identical pSyncPIM execution
model on an AiM-style geometry (2x the banks/units, 2 KB rows, 4x the
external bandwidth per card) shows how much of the result is the execution
model versus the substrate.
"""

import pytest

from conftest import SPMV_MATRICES, bench_matrix, bench_vector, write_result
from repro import default_system, gddr6_aim_system
from repro.analysis import format_table, geomean
from repro.core import run_spmv, time_spmv

MATRICES = SPMV_MATRICES[:6]


@pytest.fixture(scope="module")
def results():
    hbm = default_system()
    aim = gddr6_aim_system()
    table = {}
    for name in MATRICES:
        matrix = bench_matrix(name)
        x = bench_vector(matrix.shape[1])
        row = {}
        for label, cfg in (("hbm", hbm), ("aim", aim)):
            execution = run_spmv(matrix, x, cfg).execution
            row[label] = (time_spmv(execution, cfg).seconds,
                          execution.num_rounds, execution.banks_used)
        table[name] = row
    return table


class TestPlatformAblation:
    def test_platforms_within_a_small_factor(self, results):
        """The execution model dominates the substrate: swapping the
        geometry moves SpMV time by well under 2x either way. (At bench
        scale the 2 KB tiles halve the tile count, so the extra AiM banks
        are only partly used; larger operands favour AiM.)"""
        gain = geomean([row["hbm"][0] / row["aim"][0]
                        for row in results.values()])
        assert 0.5 < gain < 2.0

    def test_aim_needs_fewer_or_equal_rounds(self, results):
        for name, row in results.items():
            assert row["aim"][1] <= row["hbm"][1], name

    def test_both_platforms_spread_work(self, results):
        for name, row in results.items():
            assert row["hbm"][2] > 128
            assert row["aim"][2] > 256


def test_render_ablation(results, benchmark):
    def render():
        rows = []
        for name, row in results.items():
            rows.append([name, row["hbm"][0] * 1e6, row["aim"][0] * 1e6,
                         row["hbm"][0] / row["aim"][0]])
        rows.append(["geomean", "", "",
                     geomean([r["hbm"][0] / r["aim"][0]
                              for r in results.values()])])
        text = format_table(
            ["matrix", "HBM-PIM (us)", "GDDR6-AiM (us)", "AiM gain"],
            rows,
            title="Ablation: pSyncPIM on HBM-PIM vs GDDR6-AiM geometry")
        print("\n" + text)
        write_result("ablation_platform", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
