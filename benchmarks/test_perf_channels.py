"""Channel scale-out benchmark: modelled cycles vs channel count.

Prices the Fig. 8 SpMV suite under the channel-sharded execution model
(``plan_spmv(channels=C)``) for channel counts 1 through 16 and writes
``benchmarks/results/BENCH_channels.json`` for the CI perf-trend gate.

Two kinds of numbers land in the dump:

* ``cycles`` — modelled schedule length per matrix per channel count,
  plus the suite aggregate. ``speedups.channels_16v1`` and
  ``speedups.channels_4v1`` are aggregate-cycle ratios against the
  single-channel layout; the aggregate is the stable, gated metric
  because small matrices are overhead-bound (mode switches, program
  load and host staging are paid per channel) while large ones approach
  the bank-parallelism limit.
* ``times`` — host wall-clock for the plan+price pipeline at each
  channel count. Informational: sharding plans C per-channel
  distributions instead of one, and this records that planning cost
  does not grow pathologically with C.

The modelled-cycle ratios are machine-independent (both sides come from
the same DRAM model), so the gate transfers across CI hardware.
"""

from __future__ import annotations

import json
import time

from conftest import BENCH_SCALE, RESULTS_DIR, SPMV_MATRICES, bench_matrix
from repro.config import default_system
from repro.core import plan_spmv, time_spmv

#: Channel counts swept; 16 is the full HBM2 pseudo-channel complement.
CHANNEL_COUNTS = (1, 2, 4, 8, 16)


def test_channel_scaling_benchmark():
    config = default_system()
    bench = {"scale": BENCH_SCALE, "cycles": {}, "times": {},
             "speedups": {}}
    totals = {}

    for channels in CHANNEL_COUNTS:
        total_cycles = 0
        start = time.perf_counter()
        for name in SPMV_MATRICES:
            matrix = bench_matrix(name)
            _, _, execution = plan_spmv(matrix, config, channels=channels,
                                        validate=False)
            report = time_spmv(execution, config)
            bench["cycles"][f"{name}_{channels}ch"] = report.cycles
            total_cycles += report.cycles
        bench["times"][f"plan_price_{channels}ch_s"] = (
            time.perf_counter() - start)
        bench["cycles"][f"suite_{channels}ch"] = total_cycles
        totals[channels] = total_cycles

    for channels in CHANNEL_COUNTS[1:]:
        bench["speedups"][f"channels_{channels}v1"] = (
            totals[1] / totals[channels])

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_channels.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    # More channels must never model slower than fewer on the aggregate,
    # and the full 16-channel complement must clear the 6x scale-out
    # target at CI scale and above.
    previous = float("inf")
    for channels in CHANNEL_COUNTS:
        assert totals[channels] <= previous, (channels, totals)
        previous = totals[channels]
    if BENCH_SCALE >= 0.02:
        assert bench["speedups"]["channels_16v1"] >= 6.0, bench["speedups"]
