"""Ablation: sparse-vector-queue sizing — SRAM area vs lock-step amortisation.

The 3 x 192 B queues of Table VIII bound how many elements a processing
unit buffers between row switches. Bigger queues amortise the
PRE/ACT-dominated phase turnarounds over more elements but cost SRAM area
per unit (and 32 units per die). The bench sweeps the sub-queue size and
reports the performance/area trade-off around the paper's design point.
"""

import dataclasses

import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.analysis import format_table, unit_area
from repro.config import ProcessingUnitConfig
from repro.core import TraceParams, run_spmv, time_spmv

SUBQUEUE_BYTES = (32, 64, 128, 256)


@pytest.fixture(scope="module")
def sweep(cfg1):
    matrix = bench_matrix("pwtk", scale=0.04)
    x = bench_vector(matrix.shape[1])
    execution = run_spmv(matrix, x, cfg1).execution
    table = {}
    for subq in SUBQUEUE_BYTES:
        params = TraceParams(subqueue_bytes=subq)
        seconds = time_spmv(execution, cfg1, params=params).seconds
        pu = dataclasses.replace(ProcessingUnitConfig(),
                                 sparse_queue_bytes=3 * subq)
        area = unit_area(pu).per_unit
        table[subq] = (seconds, area)
    return table


class TestQueueSizingAblation:
    def test_bigger_queues_never_slower(self, sweep):
        times = [sweep[q][0] for q in SUBQUEUE_BYTES]
        assert times == sorted(times, reverse=True)

    def test_area_grows_with_queues(self, sweep):
        areas = [sweep[q][1] for q in SUBQUEUE_BYTES]
        assert areas == sorted(areas)

    def test_diminishing_returns_past_design_point(self, sweep):
        """The paper's 64 B sub-queue sits near the knee: halving it costs
        more time than doubling it saves."""
        shrink_penalty = sweep[32][0] / sweep[64][0]
        grow_gain = sweep[64][0] / sweep[128][0]
        assert shrink_penalty > grow_gain

    def test_paper_design_point_efficiency(self, sweep):
        """Perf-per-area at 64 B is within 15% of the sweep's best."""
        def efficiency(subq):
            seconds, area = sweep[subq]
            return 1.0 / (seconds * area)

        best = max(efficiency(q) for q in SUBQUEUE_BYTES)
        assert efficiency(64) > 0.85 * best


def test_render_ablation(sweep, benchmark):
    def render():
        base_t, base_a = sweep[64]
        rows = []
        for subq in SUBQUEUE_BYTES:
            seconds, area = sweep[subq]
            rows.append([subq, 3 * subq, seconds * 1e6, base_t / seconds,
                         area, area / base_a])
        text = format_table(
            ["sub-queue B", "SpVQ B", "SpMV us", "speedup vs 64 B",
             "unit mm^2", "area vs 64 B"],
            rows,
            title="Ablation: sparse vector queue sizing "
                  "(Table VIII design point: 64 B sub-queues)")
        print("\n" + text)
        write_result("ablation_queues", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
