"""Ablation: on-bank matrix format (COO vs CSR vs bitmap, §IV-C / §VIII).

The paper keeps COO for its <1 %-density HPC workloads and argues a
bitmap variant is the right second format for 10-50 %-density neural
network layers. The bench sweeps density and locates the crossover.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.analysis import format_table
from repro.core import run_spmv, time_spmv
from repro.formats import best_format
from repro.formats.generators import uniform_random

DENSITIES = (0.001, 0.01, 0.05, 0.2)
FORMATS = ("coo", "csr", "bitmap")


@pytest.fixture(scope="module")
def sweep(cfg1):
    table = {}
    for density in DENSITIES:
        n = max(400, int(round((4e5 / density) ** 0.5 / 4)))
        matrix = uniform_random(n, n, density=density, seed=7)
        x = np.random.default_rng(0).random(n)
        reference = matrix.matvec(x)
        row = {}
        for fmt in FORMATS:
            result = run_spmv(matrix, x, cfg1, matrix_format=fmt)
            np.testing.assert_allclose(result.y, reference)
            row[fmt] = (result.execution.stream_bytes_per_element,
                        time_spmv(result.execution, cfg1).seconds)
        table[density] = row
    return table


class TestFormatAblation:
    def test_results_format_independent(self, sweep):
        # asserted during the sweep; here: every cell was produced
        for density, row in sweep.items():
            assert set(row) == set(FORMATS)

    def test_bitmap_wins_at_nn_density(self, sweep):
        row = sweep[0.2]
        assert row["bitmap"][1] <= row["coo"][1]
        assert row["bitmap"][0] < row["coo"][0]  # fewer stream bytes

    def test_coo_wins_at_hpc_density(self, sweep):
        row = sweep[0.001]
        assert row["coo"][1] <= row["bitmap"][1]

    def test_stream_bytes_ordering(self, sweep):
        # CSR drops one index per element but pays amortised row
        # pointers, so it beats COO once rows hold several elements
        # (denser sweeps) and only ties it in the hyper-sparse case
        for density, row in sweep.items():
            if density >= 0.01:
                assert row["csr"][0] < row["coo"][0]
            else:
                assert row["csr"][0] <= row["coo"][0] * 1.05

    def test_best_format_rule_matches_measurements(self, sweep):
        for density, row in sweep.items():
            predicted = best_format(density)
            fastest = min(("coo", "bitmap"), key=lambda f: row[f][1])
            if predicted != fastest:
                # the rule is a footprint heuristic; allow near-ties
                ratio = row[predicted][1] / row[fastest][1]
                assert ratio < 1.1, (density, predicted, fastest)


def test_render_ablation(sweep, benchmark):
    def render():
        rows = []
        for density, row in sweep.items():
            rows.append([f"{density:.3f}",
                         row["coo"][0], row["csr"][0], row["bitmap"][0],
                         row["coo"][1] * 1e6, row["csr"][1] * 1e6,
                         row["bitmap"][1] * 1e6, best_format(density)])
        text = format_table(
            ["density", "coo B/el", "csr B/el", "bitmap B/el",
             "coo us", "csr us", "bitmap us", "rule picks"],
            rows, title="Ablation: on-bank matrix format vs density")
        print("\n" + text)
        write_result("ablation_format", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
