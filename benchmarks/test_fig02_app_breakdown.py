"""Figure 2: GPU execution-time breakdown of the Table II applications.

The paper's motivation figure: on the GPU, SpMV dominates BFS/PR, vector
operations dominate CC/SSSP, SpGEMM dominates TC, and SpTRSV is essential
in the preconditioned solvers. The bench reruns all seven applications on
the GPU cost model and checks those dominance claims.
"""

import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.apps import (GPUBackend, KERNEL_CLASSES, bfs,
                        connected_components, pagerank, pbicgstab, pcg,
                        sssp, triangle_count)
from repro.analysis import format_breakdown


@pytest.fixture(scope="module")
def breakdowns():
    # larger graph scales than the kernel benches: the breakdown contrast
    # (SpMV- vs vector-dominance) only emerges past launch-bound sizes
    traverse = bench_matrix("amazon0312", scale=0.25)
    graph = bench_matrix("wiki-Vote", scale=1.0)
    tc_graph = bench_matrix("ca-CondMat", scale=0.6)
    spd = bench_matrix("2cubes_sphere", scale=0.012)
    b = bench_vector(spd.shape[0])
    out = {}
    out["BFS"] = bfs(traverse, 0, GPUBackend(graphblast=True))
    out["CC"] = connected_components(graph, GPUBackend(graphblast=True))
    out["PR"] = pagerank(traverse, GPUBackend(graphblast=True))
    out["SSSP"] = sssp(graph, 0, GPUBackend(graphblast=True))
    out["TC"] = triangle_count(tc_graph, GPUBackend(graphblast=True))
    out["P-BCGS"] = pbicgstab(spd, b, GPUBackend(), tol=1e-9)
    out["P-CG"] = pcg(spd, b, GPUBackend(), tol=1e-9)
    return {name: r.breakdown for name, r in out.items()}


def _share(breakdown, kind):
    total = sum(breakdown.values())
    return breakdown.get(kind, 0.0) / total if total else 0.0


class TestFigure2Claims:
    def test_spmv_dominates_bfs_and_pr(self, breakdowns):
        assert _share(breakdowns["BFS"], "spmv") > 0.4
        assert _share(breakdowns["PR"], "spmv") > 0.4

    def test_vector_heavy_in_cc_and_sssp(self, breakdowns):
        # paper: vector operations are the primary bottleneck for CC/SSSP
        assert _share(breakdowns["CC"], "vector") > 0.5
        assert _share(breakdowns["SSSP"], "vector") > 0.5
        # ... and clearly heavier than in the traversal apps
        assert (_share(breakdowns["CC"], "vector")
                > _share(breakdowns["BFS"], "vector"))

    def test_spgemm_dominates_tc(self, breakdowns):
        assert _share(breakdowns["TC"], "spgemm") > 0.4

    def test_sptrsv_essential_in_solvers(self, breakdowns):
        assert _share(breakdowns["P-CG"], "sptrsv") > 0.25
        assert _share(breakdowns["P-BCGS"], "sptrsv") > 0.25

    def test_every_app_has_nonzero_total(self, breakdowns):
        for name, breakdown in breakdowns.items():
            assert sum(breakdown.values()) > 0, name


def test_render_figure2(breakdowns, benchmark):
    def render():
        text = format_breakdown(
            breakdowns, classes=KERNEL_CLASSES,
            title="Figure 2: GPU execution-time breakdown per application")
        print("\n" + text)
        write_result("fig02_app_breakdown", text)

    benchmark.pedantic(render, rounds=1, iterations=1)


def test_benchmark_gpu_pagerank(benchmark):
    graph = bench_matrix("wiki-Vote", scale=0.1)
    benchmark.pedantic(
        lambda: pagerank(graph, GPUBackend(graphblast=True), iterations=5),
        rounds=3, iterations=1)
