"""SpMM amortisation benchmark: modelled cycles per rhs column vs k.

Prices the Fig. 8 SpMV suite as SpMM workloads for rhs-block widths
k in {1, 2, 4, 8, 16} and writes ``benchmarks/results/BENCH_spmm.json``
for the CI perf-trend gate.

What lands in the dump:

* ``cycles`` — modelled schedule length per matrix per width, plus the
  suite aggregate and the aggregate *per rhs column* (the amortisation
  curve). The matrix stream and lockstep padding are re-streamed once
  per round regardless of k, and one dense column is staged per beat of
  block width, so cycles/rhs must fall strictly as k grows.
* ``speedups.amortisation_16v1`` / ``amortisation_4v1`` — aggregate
  cycles-per-rhs ratios against k=1 (i.e. against plain SpMV). These
  are the gated metrics: both sides come from the same DRAM model, so
  the ratios are machine-independent.
* ``times`` — host wall-clock per width for the plan+widen+price
  pipeline. Informational: the plan is built once at k=1 and reused
  verbatim for every wider block, and this records that the widening
  itself stays cheap.

Hard in-test gates: the k=1 cycles must be bitwise the ``time_spmv``
cycles of the same plan (the SpMM tier collapses to SpMV, not to an
approximation of it), and the per-rhs aggregate must be strictly
decreasing across the sweep.
"""

from __future__ import annotations

import json
import time

from conftest import BENCH_SCALE, RESULTS_DIR, SPMV_MATRICES, bench_matrix
from repro.config import default_system
from repro.core import plan_spmv, time_spmm, time_spmv
from repro.core.spmm import as_spmm_execution

#: rhs-block widths swept; 16 spans four fp64 beat-blocks.
RHS_WIDTHS = (1, 2, 4, 8, 16)


def test_spmm_amortisation_benchmark():
    config = default_system()
    bench = {"scale": BENCH_SCALE, "cycles": {}, "times": {},
             "speedups": {}}

    executions = {}
    spmv_cycles = {}
    for name in SPMV_MATRICES:
        matrix = bench_matrix(name)
        _, _, execution = plan_spmv(matrix, config, validate=False)
        executions[name] = execution
        spmv_cycles[name] = time_spmv(execution, config).cycles

    per_rhs = {}
    for k in RHS_WIDTHS:
        total_cycles = 0
        start = time.perf_counter()
        for name in SPMV_MATRICES:
            widened = as_spmm_execution(executions[name], k)
            report = time_spmm(widened, config)
            bench["cycles"][f"{name}_k{k}"] = report.cycles
            total_cycles += report.cycles
            if k == 1:
                # k=1 is the SpMV contract, bitwise — gate it per matrix.
                assert report.cycles == spmv_cycles[name], name
        bench["times"][f"widen_price_k{k}_s"] = (
            time.perf_counter() - start)
        bench["cycles"][f"suite_k{k}"] = total_cycles
        bench["cycles"][f"suite_per_rhs_k{k}"] = total_cycles / k
        per_rhs[k] = total_cycles / k

    for k in RHS_WIDTHS[1:]:
        bench["speedups"][f"amortisation_{k}v1"] = per_rhs[1] / per_rhs[k]

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_spmm.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    # The amortisation curve must be strictly decreasing: every extra
    # rhs column rides a matrix stream that is only paid once per round.
    widths = list(RHS_WIDTHS)
    for a, b in zip(widths, widths[1:]):
        assert per_rhs[b] < per_rhs[a], per_rhs
    if BENCH_SCALE >= 0.02:
        assert bench["speedups"]["amortisation_16v1"] >= 1.2, \
            bench["speedups"]
