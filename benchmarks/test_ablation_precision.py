"""Ablation: value-format sensitivity of pSyncPIM SpMV (§V, §VII-B).

Narrow formats shrink COO elements and widen tiles (the 1 KB bound covers
more indices), cutting matrix traffic and replication simultaneously.
"""

import numpy as np
import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.analysis import format_table
from repro.core import run_spmv, time_spmv

PRECISIONS = ("fp64", "fp32", "int16", "int8")


@pytest.fixture(scope="module")
def results(cfg1):
    matrix = bench_matrix("soc-sign-epinions", scale=0.1)
    x = np.round(bench_vector(matrix.shape[1]) * 4)
    table = {}
    for precision in PRECISIONS:
        res = run_spmv(matrix, x, cfg1, precision=precision)
        table[precision] = (res, time_spmv(res.execution, cfg1).seconds)
    return table


class TestPrecisionAblation:
    def test_all_formats_compute_identically(self, results):
        reference = results["fp64"][0].y
        for precision, (res, _) in results.items():
            np.testing.assert_allclose(res.y, reference, rtol=1e-9)

    def test_time_monotone_in_element_width(self, results):
        times = [results[p][1] for p in PRECISIONS]
        assert times == sorted(times, reverse=True)

    def test_int8_tiles_are_wider(self, results):
        fp64_tiles = len(results["fp64"][0].plan.tiles)
        int8_tiles = len(results["int8"][0].plan.tiles)
        assert int8_tiles < fp64_tiles

    def test_int8_substantially_faster(self, results):
        assert results["fp64"][1] / results["int8"][1] > 1.6


def test_render_ablation(results, benchmark):
    def render():
        rows = []
        for precision in PRECISIONS:
            res, seconds = results[precision]
            rows.append([precision, len(res.plan.tiles),
                         res.execution.input_bytes / 1024,
                         res.execution.matrix_bytes / 1024,
                         seconds * 1e6])
        text = format_table(
            ["format", "tiles", "repl KB", "matrix KB", "time (us)"],
            rows,
            title="Ablation: value format (soc-sign-epinions stand-in)")
        print("\n" + text)
        write_result("ablation_precision", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
