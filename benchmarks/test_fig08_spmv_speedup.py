"""Figure 8: SpMV speedup over the RTX 3080 GPU.

Systems compared, as in the paper: pSyncPIM (1x), its per-bank execution
mode, SpaceA, and the 3x pSyncPIM configuration whose external bandwidth
matches the GPU. Paper headline numbers: pSyncPIM 1.96x GPU, 6.26x its
per-bank mode, 0.56x SpaceA; the 3x configuration reaches 4.43x GPU.

The INT8-format matrices (soc-sign-epinions, Stanford, webbase-1M) run
with the narrow value format on pSyncPIM only — SpaceA and the GPU stay at
FP64/FP32 (§VII-B).
"""

import pytest

from conftest import (BENCH_SCALE, INT8_MATRICES, SPMV_MATRICES,
                      bench_matrix, bench_vector, write_result)
from repro.analysis import format_table, geomean
from repro.baselines import GPUModel, SpaceAModel
from repro.core import run_spmv, time_spmv
from repro.sweep import SweepJob, run_sweep


@pytest.fixture(scope="module")
def results(sweep_workers):
    """Fig. 8 job grid via the sweep runner: three pSyncPIM pricings per
    matrix, parallelised over workers with plan/trace/schedule caching."""
    gpu = GPUModel()
    spacea = SpaceAModel()
    jobs = []
    for name in SPMV_MATRICES + INT8_MATRICES:
        precision = "int8" if name in INT8_MATRICES else "fp64"
        common = dict(kernel="spmv", matrix=name, scale=BENCH_SCALE,
                      precision=precision)
        jobs.append(SweepJob(label=f"{name}/pim", **common))
        jobs.append(SweepJob(label=f"{name}/pb", mode="pb", **common))
        jobs.append(SweepJob(label=f"{name}/pim3x", num_cubes=3, **common))
    sweep = run_sweep(jobs, workers=sweep_workers)
    table = {}
    for name in SPMV_MATRICES + INT8_MATRICES:
        extras = sweep.record(f"{name}/pim").extras
        table[name] = {
            "gpu": gpu.spmv_seconds(extras["rows"], extras["cols"],
                                    extras["nnz"]),
            "pim": sweep.report(f"{name}/pim").seconds,
            "pb": sweep.report(f"{name}/pb").seconds,
            "spacea": spacea.spmv_seconds(extras["nnz"]),
            "pim3x": sweep.report(f"{name}/pim3x").seconds,
        }
    return table


def _speedups(results, system):
    return [row["gpu"] / row[system] for row in results.values()]


class TestFigure8Claims:
    def test_pim_beats_gpu_on_average(self, results):
        assert geomean(_speedups(results, "pim")) > 1.0

    def test_pim_beats_per_bank_mode(self, results):
        for name, row in results.items():
            assert row["pb"] > row["pim"], name
        ratio = geomean([row["pb"] / row["pim"]
                         for row in results.values()])
        assert 3.0 < ratio < 12.0  # paper: 6.26x

    def test_spacea_beats_pim_on_fp64(self, results):
        fp64_rows = {k: v for k, v in results.items()
                     if k not in INT8_MATRICES}
        ratio = geomean([row["spacea"] / row["pim"]
                         for row in fp64_rows.values()])
        assert 0.3 < ratio < 1.0  # paper: pSyncPIM = 0.56x SpaceA

    def test_int8_format_faster_than_fp64_on_pim(self, cfg1):
        """Narrow formats shrink tiles and traffic on pSyncPIM
        (the soc-sign-epinions / Stanford observation, §VII-B)."""
        matrix = bench_matrix(INT8_MATRICES[0])
        x = bench_vector(matrix.shape[1])
        t8 = time_spmv(run_spmv(matrix, x, cfg1,
                                precision="int8").execution, cfg1).seconds
        t64 = time_spmv(run_spmv(matrix, x, cfg1,
                                 precision="fp64").execution, cfg1).seconds
        assert t8 < t64

    def test_3x_configuration_scales(self, results):
        gain = geomean([row["pim"] / row["pim3x"]
                        for row in results.values()])
        assert 1.2 < gain < 3.0  # paper: 2.26x, sub-linear

    def test_3x_beats_gpu_strongly(self, results):
        assert geomean(_speedups(results, "pim3x")) > 1.5  # paper: 4.43x


def test_render_figure8(results, benchmark):
    def render():
        rows = []
        for name, row in results.items():
            rows.append([name,
                         row["gpu"] / row["pim"],
                         row["gpu"] / row["pb"],
                         row["gpu"] / row["spacea"],
                         row["gpu"] / row["pim3x"]])
        rows.append(["geomean",
                     geomean(_speedups(results, "pim")),
                     geomean(_speedups(results, "pb")),
                     geomean(_speedups(results, "spacea")),
                     geomean(_speedups(results, "pim3x"))])
        text = format_table(
            ["matrix", "pSyncPIM", "per-bank", "SpaceA", "pSyncPIM 3x"],
            rows,
            title="Figure 8: SpMV speedup over RTX 3080 (paper geomeans: "
                  "pSyncPIM 1.96, per-bank 1.96/6.26, 3x 4.43)")
        print("\n" + text)
        write_result("fig08_spmv_speedup", text)

    benchmark.pedantic(render, rounds=1, iterations=1)


def test_benchmark_spmv_plan(benchmark, cfg1):
    """Micro-benchmark: plan + execute one SpMV end to end (fast tier)."""
    matrix = bench_matrix("cant")
    x = bench_vector(matrix.shape[1])
    benchmark(lambda: run_spmv(matrix, x, cfg1))
