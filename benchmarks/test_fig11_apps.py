"""Figures 11 & 12: end-to-end application speedup and breakdown.

Figure 11: pSyncPIM outperforms the GPU by 51.6x (geomean) on the graph
applications and 2.2x on the preconditioned solvers. Figure 12 compares
the per-kernel time shares between the two systems. Both figures come out
of the same runs, so one bench regenerates them together.
"""

import numpy as np
import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.apps import (GPUBackend, KERNEL_CLASSES, PIMBackend, bfs,
                        connected_components, pagerank, pbicgstab, pcg,
                        sssp, triangle_count)
from repro.analysis import format_breakdown, format_table, geomean

GRAPH_APPS = ("BFS", "CC", "PR", "SSSP", "TC")
SOLVER_APPS = ("P-BCGS", "P-CG")


@pytest.fixture(scope="module")
def runs():
    traverse = bench_matrix("amazon0312", scale=0.25)
    graph = bench_matrix("wiki-Vote", scale=1.0)
    tc_graph = bench_matrix("ca-CondMat", scale=0.6)
    spd = bench_matrix("2cubes_sphere", scale=0.012)
    b = bench_vector(spd.shape[0])

    def on(backend_factory):
        backend = backend_factory
        return {
            "BFS": bfs(traverse, 0, backend_factory()),
            "CC": connected_components(graph, backend_factory()),
            "PR": pagerank(traverse, backend_factory()),
            "SSSP": sssp(graph, 0, backend_factory()),
            "TC": triangle_count(tc_graph, backend_factory()),
            "P-BCGS": pbicgstab(spd, b, backend_factory(), tol=1e-9),
            "P-CG": pcg(spd, b, backend_factory(), tol=1e-9),
        }

    gpu = on(lambda: GPUBackend(graphblast=True))
    pim = on(lambda: PIMBackend())
    return gpu, pim


class TestFigure11Claims:
    def test_same_answers_on_both_systems(self, runs):
        gpu, pim = runs
        for app in GRAPH_APPS:
            if app == "TC":
                assert gpu[app].value == pim[app].value
            else:
                np.testing.assert_allclose(gpu[app].value, pim[app].value)
        for app in SOLVER_APPS:
            np.testing.assert_allclose(gpu[app].value.x, pim[app].value.x,
                                       rtol=1e-8)

    def test_pim_wins_every_graph_app(self, runs):
        gpu, pim = runs
        for app in GRAPH_APPS:
            assert pim[app].total_seconds < gpu[app].total_seconds, app

    def test_graph_geomean_band(self, runs):
        gpu, pim = runs
        speedups = [gpu[a].total_seconds / pim[a].total_seconds
                    for a in GRAPH_APPS]
        # paper: 51.6x at full scale (GraphBLAST overheads grow with
        # problem size); at bench scale the gap is smaller but decisive
        assert geomean(speedups) > 2.0

    def test_solver_speedup_band(self, runs):
        gpu, pim = runs
        speedups = [gpu[a].total_seconds / pim[a].total_seconds
                    for a in SOLVER_APPS]
        assert 1.0 < geomean(speedups) < 20.0  # paper: 2.2x

    def test_cc_sssp_vector_gains(self, runs):
        """CC/SSSP gain comes from vector ops (the §VII-E observation)."""
        gpu, pim = runs
        for app in ("CC", "SSSP"):
            gain = (gpu[app].breakdown["vector"]
                    / pim[app].breakdown["vector"])
            assert gain > 3.0, app


class TestFigure12Claims:
    def test_pim_shifts_solver_share_toward_sptrsv(self, runs):
        gpu, pim = runs
        for app in SOLVER_APPS:
            gpu_total = gpu[app].total_seconds
            pim_total = pim[app].total_seconds
            assert (pim[app].breakdown["sptrsv"] / pim_total
                    > 0.3), app
            assert gpu[app].breakdown["sptrsv"] / gpu_total > 0.3, app

    def test_spgemm_share_grows_on_pim_tc(self, runs):
        """SpGEMM stays on the host accelerator, so once SpMV/vector get
        fast the SpGEMM share of TC grows (the Fig. 13 setup)."""
        gpu, pim = runs
        gpu_share = gpu["TC"].breakdown["spgemm"] / gpu["TC"].total_seconds
        pim_share = pim["TC"].breakdown["spgemm"] / pim["TC"].total_seconds
        assert pim_share > gpu_share


def test_render_figures_11_and_12(runs, benchmark):
    def render():
        gpu, pim = runs
        rows = []
        for app in GRAPH_APPS + SOLVER_APPS:
            rows.append([app, gpu[app].total_seconds * 1e6,
                         pim[app].total_seconds * 1e6,
                         gpu[app].total_seconds / pim[app].total_seconds])
        rows.append(["geomean graphs", "", "",
                     geomean([gpu[a].total_seconds / pim[a].total_seconds
                              for a in GRAPH_APPS])])
        rows.append(["geomean solvers", "", "",
                     geomean([gpu[a].total_seconds / pim[a].total_seconds
                              for a in SOLVER_APPS])])
        fig11 = format_table(
            ["application", "GPU (us)", "pSyncPIM (us)", "speedup"],
            rows,
            title="Figure 11: application speedup over RTX 3080 "
                  "(paper: graphs 51.6x, solvers 2.2x)")
        print("\n" + fig11)
        write_result("fig11_apps", fig11)

        both = {}
        for app in GRAPH_APPS + SOLVER_APPS:
            both[f"{app}/GPU"] = gpu[app].breakdown
            both[f"{app}/PIM"] = pim[app].breakdown
        fig12 = format_breakdown(
            both, classes=KERNEL_CLASSES,
            title="Figure 12: kernel-time breakdown, GPU vs pSyncPIM")
        print("\n" + fig12)
        write_result("fig12_breakdown", fig12)

    benchmark.pedantic(render, rounds=1, iterations=1)


def test_benchmark_pim_pagerank(benchmark):
    graph = bench_matrix("wiki-Vote", scale=0.3)
    benchmark.pedantic(
        lambda: pagerank(graph, PIMBackend(), iterations=5),
        rounds=3, iterations=1)
