"""Figure 10: dense BLAS throughput, per-bank PIM vs pSyncPIM.

The paper sweeps five dense kernels at INT8 and FP64 and reports a 9.6x
average speedup of all-bank over per-bank execution; the higher
arithmetic-intensity format (INT8) achieves higher operation throughput in
both modes. Throughput here is GOPS = elements x ops / modelled seconds.
"""

import pytest

from conftest import write_result
from repro.analysis import format_table, geomean
from repro.core import time_dense_kernel

#: kernel -> (reads per 32 B group, writes per group, ops per element)
KERNELS = {
    "DCOPY": (1, 1, 0),
    "DSCAL": (1, 1, 1),
    "DAXPY": (2, 1, 2),
    "DDOT": (2, 0, 2),
    "DNRM2": (1, 0, 2),
}

N_ELEMENTS = 1 << 20


@pytest.fixture(scope="module")
def results(cfg1):
    table = {}
    for kernel, (reads, writes, ops) in KERNELS.items():
        for precision in ("int8", "fp64"):
            ab = time_dense_kernel(N_ELEMENTS, reads, writes, cfg1,
                                   precision=precision, mode="ab")
            pb = time_dense_kernel(N_ELEMENTS, reads, writes, cfg1,
                                   precision=precision, mode="pb")
            gops = (N_ELEMENTS * max(ops, 1)) / 1e9
            table[(kernel, precision)] = {
                "ab_gops": gops / ab.seconds,
                "pb_gops": gops / pb.seconds,
                "speedup": pb.seconds / ab.seconds,
            }
    return table


class TestFigure10Claims:
    def test_all_bank_always_faster(self, results):
        for key, row in results.items():
            assert row["speedup"] > 1.0, key

    def test_average_speedup_band(self, results):
        mean = geomean([row["speedup"] for row in results.values()])
        assert 4.0 < mean < 16.0  # paper: 9.6x average

    def test_int8_outperforms_fp64(self, results):
        for kernel in KERNELS:
            assert (results[(kernel, "int8")]["ab_gops"]
                    > results[(kernel, "fp64")]["ab_gops"]), kernel

    def test_throughput_positive_and_bounded(self, results, cfg1):
        for (kernel, precision), row in results.items():
            peak = cfg1.peak_throughput(precision) / 1e9
            assert 0 < row["ab_gops"] < 10 * peak, (kernel, precision)


def test_render_figure10(results, benchmark):
    def render():
        rows = []
        for (kernel, precision), row in sorted(results.items()):
            rows.append([f"{kernel}/{precision}", row["ab_gops"],
                         row["pb_gops"], row["speedup"]])
        rows.append(["geomean speedup", "", "",
                     geomean([r["speedup"] for r in results.values()])])
        text = format_table(
            ["kernel", "pSyncPIM GOPS", "per-bank GOPS", "AB/PB"],
            rows,
            title="Figure 10: dense BLAS throughput (paper: 9.6x average "
                  "all-bank speedup)")
        print("\n" + text)
        write_result("fig10_dense_blas", text)

    benchmark.pedantic(render, rounds=1, iterations=1)


def test_benchmark_dense_kernel(benchmark, cfg1):
    benchmark(lambda: time_dense_kernel(N_ELEMENTS, 2, 1, cfg1))
