"""Fuzzing throughput microbenchmark: batched vs per-job execution.

Times the fuzz corpus two ways — one :class:`repro.pim.BatchEngine`
launch per template block (jobs x banks arrays, every job advanced per
broadcast beat) against the per-job lane-engine loop — asserts each
job's final architectural state stays bitwise identical, and writes the
measurements to ``benchmarks/results/BENCH_fuzz.json`` for the CI
perf-smoke trend gate.

Two numbers matter:

* ``speedups.execution`` — pure engine throughput (drive + snapshot)
  aggregated across several program templates. This is what batching
  accelerates and what the gate pins; single templates vary widely
  (merge-heavy programs batch worse than dense ones), so the aggregate
  is the stable metric.
* ``speedups.end_to_end`` — the full :func:`repro.check.fuzz_batch`
  pipeline including the per-block leader oracle run and per-job
  verification. Recorded for context, not gated: verification
  deliberately re-runs every job solo, which bounds the end-to-end win.

Fuzz programs are fixed-size (seeded ISA templates, not matrices), so
``PSYNCPIM_SCALE`` only sizes the corpus, not the speedup itself.
"""

from __future__ import annotations

import json
import time

from conftest import BENCH_SCALE, RESULTS_DIR
from repro.check.fuzz import (build_case, fuzz_batch, generate_case,
                              run_batch_group, run_single, vary_case,
                              _first_diff)

#: Template leaders: a mix of dense/reduce-heavy and queue/merge-heavy
#: programs so the aggregate reflects the corpus, not one lucky kernel.
TEMPLATE_SEEDS = (11, 29, 62, 101)

#: Jobs per template block (leader + data variants).
BLOCK_JOBS = 32


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fuzz_batch_microbenchmark():
    bench = {"scale": BENCH_SCALE, "times": {}, "speedups": {}}
    total_perjob = total_batch = 0.0

    for seed in TEMPLATE_SEEDS:
        leader = generate_case(seed)
        cases = [leader] + [vary_case(leader, 50_000 + seed * 100 + i)
                            for i in range(BLOCK_JOBS - 1)]
        builts = [build_case(case) for case in cases]

        t_perjob, solo_snaps = _best_of(
            lambda: [run_single(case, built=built)[0]
                     for case, built in zip(cases, builts)])
        t_batch, (batch_snaps, _) = _best_of(
            lambda: run_batch_group(cases, builts=builts))

        for job, (solo, snap) in enumerate(zip(solo_snaps, batch_snaps)):
            diff = _first_diff(solo, snap, f"seed{seed}/job{job}")
            assert diff is None, \
                f"batched execution diverged from per-job runs: {diff}"

        bench["times"][f"template{seed}_perjob_s"] = t_perjob
        bench["times"][f"template{seed}_batch_s"] = t_batch
        bench["speedups"][f"template{seed}"] = t_perjob / t_batch
        total_perjob += t_perjob
        total_batch += t_batch

    bench["times"]["execution_perjob_s"] = total_perjob
    bench["times"]["execution_batch_s"] = total_batch
    bench["speedups"]["execution"] = total_perjob / total_batch
    jobs = len(TEMPLATE_SEEDS) * BLOCK_JOBS
    bench["jobs"] = jobs
    bench["jobs_per_second_batched"] = jobs / total_batch

    # --- end-to-end pipeline, verification included (informational) ---
    seeds = range(0, max(50, int(2000 * BENCH_SCALE)))
    t_off, verdict_off = _best_of(
        lambda: fuzz_batch(seeds, batch="off"), repeats=1)
    t_jobs, verdict_jobs = _best_of(
        lambda: fuzz_batch(seeds, batch="jobs"), repeats=1)
    assert verdict_off == verdict_jobs == []
    bench["times"]["end_to_end_off_s"] = t_off
    bench["times"]["end_to_end_jobs_s"] = t_jobs
    bench["speedups"]["end_to_end"] = t_off / t_jobs
    bench["seeds_per_second_end_to_end"] = len(seeds) / t_jobs

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_fuzz.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    # Batched execution must never lose to the per-job loop; at default
    # scale and above the aggregate must clear the 5x target.
    assert bench["speedups"]["execution"] > 1.0, bench
    if BENCH_SCALE >= 0.05:
        assert bench["speedups"]["execution"] >= 5.0, bench
