"""Attribution overhead microbenchmark: pricing with vs without collector.

The cycle-attribution engine rides the scheduler as a passive observer
(``price_trace(..., collector=...)``), so its cost is pure overhead on
top of schedule pricing. This bench prices the Fig. 8 SpMV suite's
all-bank traces twice — plain and with an :class:`AttributionCollector`
attached — and writes ``benchmarks/results/BENCH_attrib.json`` for the
CI perf-trend gate.

* ``times`` — min-of-N suite pricing wall-clock for both variants plus
  the derived ``overhead_pct``. The two variants are timed *interleaved*
  (plain/attrib alternating within each repetition) and min-of-N is
  taken per variant, so CPU frequency drift on shared runners hits both
  sides equally and cannot fake a regression. The <5% gate only applies
  at CI scale (``PSYNCPIM_SCALE >= 0.02``).
* ``speedups.pricing_vs_attrib`` — plain over collector time (a ratio of
  two measurements from the same machine and run, so it transfers across
  CI hardware; 1.0 means free, lower means costlier attribution).

The bench also emits the run's full attribution bundle
(``ATTRIB_run.json``) and a self-contained HTML report
(``ATTRIB_report.html``); CI uploads the HTML as an artifact and diffs
the bundle against the committed ``baselines/ATTRIB_scale0.02.json``
with ``psyncpim diff`` to triage modelled-cycle drift per category.
"""

from __future__ import annotations

import json
import time

from conftest import BENCH_SCALE, RESULTS_DIR, SPMV_MATRICES, bench_matrix
from repro.config import default_system
from repro.core import plan_spmv, price_trace, spmv_ab_trace
from repro.dram import TimingParams
from repro.obs.attrib import AttributionCollector, attribute_spmv
from repro.obs.report import build_run_report, render_html, save_reports

#: min-of-N repetitions per timing variant (shields the <5% gate from
#: one-off scheduler hiccups on shared CI runners).
REPS = 5


def _suite_traces(config):
    traces = []
    for name in SPMV_MATRICES:
        matrix = bench_matrix(name)
        _, _, execution = plan_spmv(matrix, config, validate=False)
        traces.append((name, execution, spmv_ab_trace(execution, config)))
    return traces


def _price_suite(traces, config, with_collector):
    timing = TimingParams()
    start = time.perf_counter()
    for _, _, trace in traces:
        collector = (AttributionCollector(
            trfc=timing.trfc,
            mode_switch_cycles=timing.mode_switch_cycles)
            if with_collector else None)
        price_trace(trace, config, collector=collector)
    return time.perf_counter() - start


def test_attrib_overhead_benchmark():
    config = default_system()
    traces = _suite_traces(config)

    # Interleaved min-of-N: frequency drift hits both variants alike.
    plain_s = attrib_s = float("inf")
    for _ in range(REPS):
        plain_s = min(plain_s, _price_suite(traces, config, False))
        attrib_s = min(attrib_s, _price_suite(traces, config, True))
    overhead = attrib_s / plain_s - 1.0

    bench = {
        "scale": BENCH_SCALE,
        "times": {
            "pricing_plain_s": plain_s,
            "pricing_attrib_s": attrib_s,
            "overhead_pct": 100.0 * overhead,
        },
        "speedups": {
            # Ratio of two same-machine measurements: machine-independent.
            "pricing_vs_attrib": plain_s / attrib_s,
        },
    }

    # Side product: the suite's attribution bundle + HTML report for the
    # CI artifact upload and the psyncpim-diff drift triage step.
    reports = {}
    for name, execution, _ in traces:
        attribution, perf = attribute_spmv(execution, config)
        reports[f"spmv/{name}"] = build_run_report(
            attribution, perf, label=f"spmv/{name}", kind="spmv",
            matrix=name, strategy="paper", config=config,
            alu_operations=2 * execution.total_elements)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_attrib.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")
    save_reports(RESULTS_DIR / "ATTRIB_run.json", reports)
    (RESULTS_DIR / "ATTRIB_report.html").write_text(
        render_html(reports), encoding="utf-8")

    for report in reports.values():
        report.check()
    # Attribution must stay a rounding error on top of schedule pricing.
    if BENCH_SCALE >= 0.02:
        assert overhead < 0.05, (
            f"attribution overhead {100.0 * overhead:.1f}% >= 5% "
            f"(plain {plain_s:.3f}s vs attrib {attrib_s:.3f}s)")
