"""Engine microbenchmark: vectorized lane engine vs the scalar oracle.

Times the two hot loops this optimisation targets — functional SpMV /
SpTRSV execution (per-beat PU interpretation) and DRAM trace pricing
(per-command issue) — under both implementations at ``PSYNCPIM_SCALE``,
asserts the results stay bitwise identical, and writes the measurements
to ``benchmarks/results/BENCH_engine.json`` for the CI perf-smoke gate.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import BENCH_SCALE, RESULTS_DIR, bench_matrix, bench_vector
from repro import obs
from repro.config import default_system
from repro.core import (price_trace, run_spmv, run_sptrsv, spmv_ab_trace,
                        time_spmv)
from repro.dram import expand_trace
from repro.formats.generators import uniform_random, unit_lower_from

CFG = default_system()


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_engine_microbenchmark():
    matrix = bench_matrix("facebook")
    x = bench_vector(matrix.shape[1], seed=1)
    low = unit_lower_from(
        uniform_random(max(64, int(1200 * BENCH_SCALE * 4)),
                       max(64, int(1200 * BENCH_SCALE * 4)),
                       0.02, seed=2), seed=3)
    b = bench_vector(low.shape[0], seed=2)

    bench = {"scale": BENCH_SCALE, "times": {}, "speedups": {}}

    # --- functional SpMV: the per-beat interpreter hot loop -----------
    t_scalar, r_scalar = _best_of(
        lambda: run_spmv(matrix, x, CFG, fidelity="functional",
                         engine="scalar"))
    t_lane, r_lane = _best_of(
        lambda: run_spmv(matrix, x, CFG, fidelity="functional",
                         engine="lane"))
    assert np.array_equal(r_scalar.y, r_lane.y), \
        "lane engine diverged from the scalar oracle on SpMV"
    bench["times"]["spmv_scalar_s"] = t_scalar
    bench["times"]["spmv_lane_s"] = t_lane
    bench["speedups"]["spmv"] = t_scalar / t_lane

    # --- functional SpTRSV --------------------------------------------
    t_scalar, r_scalar = _best_of(
        lambda: run_sptrsv(low, b, CFG, fidelity="functional",
                           engine="scalar"), repeats=2)
    t_lane, r_lane = _best_of(
        lambda: run_sptrsv(low, b, CFG, fidelity="functional",
                           engine="lane"), repeats=2)
    assert np.array_equal(r_scalar.x, r_lane.x), \
        "lane engine diverged from the scalar oracle on SpTRSV"
    bench["times"]["sptrsv_scalar_s"] = t_scalar
    bench["times"]["sptrsv_lane_s"] = t_lane
    bench["speedups"]["sptrsv"] = t_scalar / t_lane

    # --- trace pricing: run-length batching vs per-command issue ------
    execution = run_spmv(matrix, x, CFG).execution
    trace = spmv_ab_trace(execution, CFG)
    expanded = list(expand_trace(trace))
    t_percmd, p_percmd = _best_of(lambda: price_trace(expanded, CFG))
    t_batched, p_batched = _best_of(lambda: price_trace(trace, CFG))
    assert p_batched.cycles == p_percmd.cycles
    assert p_batched.counts == p_percmd.counts
    bench["times"]["pricing_percommand_s"] = t_percmd
    bench["times"]["pricing_batched_s"] = t_batched
    bench["speedups"]["pricing"] = t_percmd / t_batched

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_engine.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    # The lane engine must never lose to the scalar oracle; at default
    # scale and above the SpMV hot loop must clear the 5x target.
    assert bench["speedups"]["spmv"] > 1.0, bench
    assert bench["speedups"]["sptrsv"] > 1.0, bench
    assert bench["speedups"]["pricing"] > 1.0, bench
    if BENCH_SCALE >= 0.05:
        assert bench["speedups"]["spmv"] >= 5.0, bench


def test_obs_overhead_guard():
    """Disabled observability must cost < 2% of an instrumented workload.

    Wall-clock A/B timings of the full workload are too noisy for a CI
    gate, so the guard is built from two stable measurements: the per-call
    cost of a disabled instrumentation site (one module-global boolean
    test) times the number of recording calls an obs-on run actually
    performs, compared against the obs-off workload runtime. The obs-on
    run also proves enabling recording never changes modelled numbers, and
    exports the Chrome trace CI uploads as an artifact.
    """
    matrix = bench_matrix("facebook")
    x = bench_vector(matrix.shape[1], seed=1)

    def workload():
        result = run_spmv(matrix, x, CFG)
        report = time_spmv(result.execution, CFG, with_energy=True)
        return result.y, report

    obs.reset()
    obs.disable()
    t_off, (y_off, report_off) = _best_of(workload)

    obs.enable()
    try:
        t_on, (y_on, report_on) = _best_of(workload)
        update_count = obs.recorder().update_count
        obs.export(RESULTS_DIR / "obs")
    finally:
        obs.reset()
        obs.disable()
    assert np.array_equal(y_off, y_on), \
        "enabling observability changed SpMV results"
    assert report_off.cycles == report_on.cycles
    assert report_off.counts == report_on.counts
    assert report_off.energy.total_pj == report_on.energy.total_pj
    assert update_count > 0

    # Per-call price of a disabled site, measured on the no-op fast path.
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        obs.add_counter("guard", 1.0)
    per_call = (time.perf_counter() - start) / calls
    assert not obs.recorder().counters  # the no-op path really no-ops

    overhead = per_call * update_count
    ratio = overhead / t_off
    bench = {
        "scale": BENCH_SCALE,
        "workload_off_s": t_off,
        "workload_on_s": t_on,
        "recording_calls": update_count,
        "disabled_call_ns": per_call * 1e9,
        "estimated_disabled_overhead_s": overhead,
        "estimated_disabled_overhead_pct": 100.0 * ratio,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_obs.json"
    out.write_text(json.dumps(bench, indent=2) + "\n", encoding="utf-8")
    assert ratio < 0.02, bench
