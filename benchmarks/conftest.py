"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes the
rendered text to ``benchmarks/results/<name>.txt`` (alongside asserting the
qualitative claims — who wins, in which direction). Matrix sizes are scaled
by ``PSYNCPIM_SCALE`` (or the legacy ``REPRO_BENCH_SCALE``; default 0.05:
minutes, laptop-friendly); paper-scale runs set it to 1.0, CI shrinks it
further without touching code.

The figure drivers execute their job grids through :mod:`repro.sweep`, so
suite-wide runs spread over ``PSYNCPIM_WORKERS`` worker processes and
reuse cached partition plans / traces / schedules across parameter sweeps
(cache root: ``PSYNCPIM_CACHE_DIR`` or ``~/.cache/psyncpim``).

All benchmarks carry the ``slow`` marker: the tier-1 CI job deselects them
with ``-m "not slow"`` while the benchmark smoke job runs them.
"""

from __future__ import annotations

import functools
from pathlib import Path

import numpy as np
import pytest

from repro.config import default_system
from repro.formats import generate
from repro.sweep import resolve_bench_scale, resolve_workers

#: Fraction of the published matrix dimension used by the benches
#: (PSYNCPIM_SCALE > REPRO_BENCH_SCALE > 0.05).
BENCH_SCALE = resolve_bench_scale()

#: Worker processes for sweep-driven benches (PSYNCPIM_WORKERS or auto).
SWEEP_WORKERS = resolve_workers()

RESULTS_DIR = Path(__file__).parent / "results"

#: Matrix subsets per experiment (kept small enough for CI; the full
#: Table IX lists are in repro.formats.matrices_for).
SPMV_MATRICES = ("bcsstk32", "cant", "consph", "crankseg_2", "ct20stif",
                 "pdb1HYS", "pwtk", "shipsec1", "xenon2", "lhr71", "ohne2")
INT8_MATRICES = ("soc-sign-epinions", "Stanford", "webbase-1M")
SPTRSV_MATRICES = ("2cubes_sphere", "offshore", "parabolic_fem",
                   "poisson3Da", "rma10")
GRAPH_MATRICES = ("wiki-Vote", "facebook", "ca-CondMat")
PCG_MATRICES = ("2cubes_sphere", "offshore", "parabolic_fem")


def pytest_collection_modifyitems(config, items):
    """Every figure/table benchmark counts as slow (tier-1 deselects)."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@functools.lru_cache(maxsize=64)
def bench_matrix(name: str, scale: float = None):
    """Deterministic, cached synthetic stand-in at bench scale."""
    return generate(name, scale=BENCH_SCALE if scale is None else scale)


def bench_vector(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).random(n)


def write_result(name: str, text: str) -> Path:
    """Persist a rendered figure/table for inspection."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def sweep_workers():
    """Worker count the sweep-driven benches fan out over."""
    return SWEEP_WORKERS


@pytest.fixture(scope="session")
def cfg1():
    return default_system(1)


@pytest.fixture(scope="session")
def cfg3():
    return default_system(3)
