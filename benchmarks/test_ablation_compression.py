"""Ablation: the Fig. 6 matrix compression on/off.

Compression removes all-zero columns per row block before the column cut,
shrinking input replication. The effect is largest on hyper-sparse
matrices (graphs), smallest on dense-banded FEM blocks.
"""

import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.analysis import format_table
from repro.core import run_spmv, time_spmv

MATRICES = ("p2p-Gnutella31", "webbase-1M", "cant", "pwtk")


@pytest.fixture(scope="module")
def results(cfg1):
    table = {}
    for name in MATRICES:
        matrix = bench_matrix(name, scale=0.1)
        x = bench_vector(matrix.shape[1])
        rows = {}
        for compress in (True, False):
            execution = run_spmv(matrix, x, cfg1,
                                 compress=compress).execution
            rows[compress] = (execution.input_bytes,
                              time_spmv(execution, cfg1).seconds)
        table[name] = rows
    return table


class TestCompressionAblation:
    def test_compression_never_increases_replication(self, results):
        for name, rows in results.items():
            assert rows[True][0] <= rows[False][0], name

    def test_compression_never_slows_down_much(self, results):
        # FEM blocks are nearly dense column-wise: compression buys them
        # little and can reshape tiles slightly for the worse, but must
        # never cost more than a small factor
        for name, rows in results.items():
            assert rows[True][1] <= rows[False][1] * 1.25, name

    def test_sparse_matrices_gain_most(self, results):
        sparse_gain = (results["p2p-Gnutella31"][False][0]
                       / results["p2p-Gnutella31"][True][0])
        fem_gain = (results["cant"][False][0]
                    / results["cant"][True][0])
        assert sparse_gain > fem_gain


def test_render_ablation(results, benchmark):
    def render():
        rows = []
        for name, data in results.items():
            rows.append([name,
                         data[True][0] / 1024, data[False][0] / 1024,
                         data[True][1] * 1e6, data[False][1] * 1e6,
                         data[False][1] / data[True][1]])
        text = format_table(
            ["matrix", "repl KB (on)", "repl KB (off)", "time us (on)",
             "time us (off)", "speedup"],
            rows, title="Ablation: Fig. 6 matrix compression on/off")
        print("\n" + text)
        write_result("ablation_compression", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
