"""Table X: area comparison against HBM-PIM and SpaceA."""

import pytest

from conftest import write_result
from repro.analysis import TABLE_X, format_table, table_x_model, unit_area


class TestTable10Claims:
    def test_model_matches_paper(self):
        row = table_x_model()
        assert row["total_area_mm2"] == pytest.approx(68.99, abs=0.1)
        assert row["pe_area_mm2"] == pytest.approx(30.94, abs=0.1)

    def test_psyncpim_smaller_than_hbm_pim(self):
        assert (TABLE_X["pSyncPIM"]["total_area"]
                < TABLE_X["Samsung HBM-PIM"]["total_area"])

    def test_pe_dominated_by_valu_and_state(self):
        breakdown = unit_area()
        assert breakdown.valu > breakdown.control
        assert breakdown.registers + breakdown.queues > 0.2


def test_render_table10(benchmark):
    def render():
        rows = []
        for system, row in TABLE_X.items():
            rows.append([system, row["baseline"], row["total_area"],
                         row["stacks"], row["pe_area"],
                         row["capacity_gb"]])
        model = table_x_model()
        rows.append(["pSyncPIM (model)", "HBM",
                     model["total_area_mm2"], "8 PIM",
                     model["pe_area_mm2"], 4])
        text = format_table(
            ["system", "baseline", "total mm^2", "stacks", "PE mm^2",
             "capacity GB"],
            rows, title="Table X: area comparison")
        print("\n" + text)
        write_result("table10_area", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
