"""Figure 3: memory commands for SpMV, per-bank vs all-bank.

The paper reports a 2.74x average command blow-up when the host must drive
each bank individually. The bench regenerates the per-matrix ratios and
asserts the direction (per-bank always needs more commands) plus a sane
average band.
"""

import pytest

from conftest import (SPMV_MATRICES, bench_matrix, bench_vector,
                      write_result)
from repro.analysis import format_table, geomean
from repro.core import run_spmv, time_spmv


def _command_ratio(name, cfg):
    matrix = bench_matrix(name)
    x = bench_vector(matrix.shape[1])
    execution = run_spmv(matrix, x, cfg).execution
    ab = time_spmv(execution, cfg, mode="ab")
    pb = time_spmv(execution, cfg, mode="pb")
    return ab.commands, pb.commands


@pytest.fixture(scope="module")
def ratios(cfg1):
    out = {}
    for name in SPMV_MATRICES:
        ab, pb = _command_ratio(name, cfg1)
        out[name] = (ab, pb, pb / ab)
    return out


def test_per_bank_always_needs_more_commands(ratios):
    for name, (ab, pb, ratio) in ratios.items():
        assert ratio > 1.0, f"{name}: PB should need more commands"


def test_average_ratio_band(ratios):
    mean = geomean([r for _, _, r in ratios.values()])
    # paper: 2.74x average; the synthetic suite lands in the same regime
    assert 1.5 < mean < 12.0


def test_render_figure3(ratios, benchmark):
    def render():
        rows = [[name, ab, pb, ratio]
                for name, (ab, pb, ratio) in ratios.items()]
        rows.append(["geomean", "", "",
                     geomean([r for _, _, r in ratios.values()])])
        text = format_table(
            ["matrix", "all-bank cmds", "per-bank cmds", "PB/AB"],
            rows,
            title="Figure 3: SpMV memory commands, per-bank vs all-bank "
                  "(paper average: 2.74x)")
        print("\n" + text)
        write_result("fig03_command_counts", text)

    benchmark.pedantic(render, rounds=1, iterations=1)


def test_benchmark_ab_scheduling(benchmark, cfg1):
    """pytest-benchmark hook: price one AB SpMV trace."""
    matrix = bench_matrix(SPMV_MATRICES[0])
    x = bench_vector(matrix.shape[1])
    execution = run_spmv(matrix, x, cfg1).execution
    benchmark(lambda: time_spmv(execution, cfg1, mode="ab"))
