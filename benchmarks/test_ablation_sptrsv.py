"""Ablations on the SpTRSV design choices (§VI).

Two sweeps: the recursive-block leaf size (the paper fixes it to the
memory-row capacity) and the host-side level reordering (§VI-D).
"""

import numpy as np
import pytest

from conftest import bench_matrix, bench_vector, write_result
from repro.analysis import format_table
from repro.core import ildu, run_sptrsv, time_sptrsv

LEAVES = (32, 64, 128, 256)


@pytest.fixture(scope="module")
def factors():
    matrix = bench_matrix("poisson3Da", scale=0.3)
    return ildu(matrix), bench_vector(matrix.shape[0])


@pytest.fixture(scope="module")
def leaf_sweep(factors, cfg1):
    f, b = factors
    table = {}
    for leaf in LEAVES:
        result = run_sptrsv(f.lower, b, cfg1, leaf_size=leaf)
        table[leaf] = (result, time_sptrsv(result.execution, cfg1).seconds)
    return table


class TestLeafSizeAblation:
    def test_all_leaf_sizes_solve_correctly(self, factors, leaf_sweep):
        f, b = factors
        for leaf, (result, _) in leaf_sweep.items():
            residual = f.lower.matvec(result.x) - b
            assert np.abs(residual).max() < 1e-8, leaf

    def test_smaller_leaves_mean_more_levels(self, leaf_sweep):
        levels = [leaf_sweep[leaf][0].execution.num_levels
                  for leaf in LEAVES]
        assert levels == sorted(levels, reverse=True)

    def test_row_capacity_leaf_is_competitive(self, leaf_sweep):
        """The paper's choice (128 rows at FP64) should be near-optimal."""
        times = {leaf: t for leaf, (_, t) in leaf_sweep.items()}
        assert times[128] <= 1.5 * min(times.values())


class TestReorderingAblation:
    def test_reordering_never_hurts_level_count(self, factors, cfg1):
        f, b = factors
        with_r = run_sptrsv(f.lower, b, cfg1, reorder=True)
        without = run_sptrsv(f.lower, b, cfg1, reorder=False)
        assert with_r.execution.num_levels <= without.execution.num_levels
        np.testing.assert_allclose(with_r.x, without.x, rtol=1e-9)

    def test_reordering_speeds_up_or_ties(self, factors, cfg1):
        f, b = factors
        with_r = run_sptrsv(f.lower, b, cfg1, reorder=True)
        without = run_sptrsv(f.lower, b, cfg1, reorder=False)
        t_with = time_sptrsv(with_r.execution, cfg1).seconds
        t_without = time_sptrsv(without.execution, cfg1).seconds
        assert t_with <= 1.1 * t_without


def test_render_ablation(leaf_sweep, benchmark):
    def render():
        rows = [[leaf, r.execution.num_levels,
                 len(r.execution.update_elements), t * 1e6]
                for leaf, (r, t) in leaf_sweep.items()]
        text = format_table(
            ["leaf size", "levels", "update SpMVs", "time (us)"],
            rows, title="Ablation: SpTRSV recursive-block leaf size")
        print("\n" + text)
        write_result("ablation_sptrsv_leaf", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
