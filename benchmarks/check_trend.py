#!/usr/bin/env python
"""Perf-trend gate: compare fresh BENCH_*.json against committed baselines.

The perf microbenchmarks (``test_perf_engine.py``, ``test_perf_plan.py``,
``test_perf_fuzz.py``, ``test_perf_channels.py``,
``test_perf_partition.py``, ``test_perf_attrib.py``,
``test_perf_spmm.py``) each write a
``benchmarks/results/BENCH_*.json``
with a ``speedups`` section. Those speedups are *ratios* between two
implementations measured on the same machine in the same run, so they
transfer across hardware in a way absolute times never do — that is what
this gate pins.

Usage (CI perf-smoke runs the first form after the perf benches)::

    python benchmarks/check_trend.py            # gate: fail on regression
    python benchmarks/check_trend.py --update   # re-baseline from fresh

A pinned metric regresses when the fresh speedup drops more than
``TOLERANCE`` (30%) below its committed baseline. Scale-mismatched or
missing files skip with a warning instead of failing: gating a 0.02-scale
baseline against a 1.0-scale run would compare different workloads.

Re-baselining (after a deliberate perf change)::

    PSYNCPIM_SCALE=0.02 python -m pytest benchmarks/test_perf_engine.py \
        benchmarks/test_perf_plan.py benchmarks/test_perf_fuzz.py \
        benchmarks/test_perf_channels.py benchmarks/test_perf_partition.py
    python benchmarks/check_trend.py --update
    git add benchmarks/results/baselines/

Baselines are committed at scale 0.02 because that is what CI perf-smoke
runs; regenerate at the same scale or the gate will skip.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_DIR = RESULTS_DIR / "baselines"

#: Fractional drop below baseline that counts as a regression.
TOLERANCE = 0.30

#: speedups.* keys gated per BENCH file. Only ratios that past PRs
#: established as stable wins are pinned; noisy or informational metrics
#: (e.g. fuzz end_to_end, per-template speedups) stay unpinned.
PINNED = {
    "BENCH_engine.json": ("spmv", "sptrsv", "pricing"),
    "BENCH_plan.json": ("partition_compressed", "partition_raw",
                        "distribute_paper", "distribute_balanced",
                        "level_schedule", "combined"),
    "BENCH_fuzz.json": ("execution",),
    "BENCH_channels.json": ("channels_16v1", "channels_4v1"),
    "BENCH_spmm.json": ("amortisation_16v1", "amortisation_4v1"),
    "BENCH_partition.json": ("auto_vs_paper",),
    # plain-pricing over pricing-with-collector: ~1.0 when attribution
    # observation stays free; a drop means the collector got expensive.
    "BENCH_attrib.json": ("pricing_vs_attrib",),
}


def _load(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None


def update_baselines() -> int:
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    copied = 0
    for name in PINNED:
        fresh = RESULTS_DIR / name
        if fresh.exists():
            shutil.copyfile(fresh, BASELINE_DIR / name)
            print(f"baseline updated: {name}")
            copied += 1
        else:
            print(f"warning: no fresh {name}; baseline left untouched")
    if not copied:
        print("error: nothing to baseline — run the perf benches first")
        return 1
    return 0


def check_trend() -> int:
    regressions, checked = [], 0
    for name, keys in PINNED.items():
        fresh = _load(RESULTS_DIR / name)
        base = _load(BASELINE_DIR / name)
        if fresh is None:
            print(f"skip {name}: no fresh results (bench not run)")
            continue
        if base is None:
            print(f"skip {name}: no committed baseline "
                  f"(run with --update to create one)")
            continue
        if fresh.get("scale") != base.get("scale"):
            print(f"skip {name}: scale mismatch (fresh "
                  f"{fresh.get('scale')} vs baseline {base.get('scale')})"
                  f" — different workloads, ratios not comparable")
            continue
        for key in keys:
            have = fresh.get("speedups", {}).get(key)
            want = base.get("speedups", {}).get(key)
            if have is None or want is None:
                print(f"skip {name}:{key}: metric missing")
                continue
            floor = want * (1.0 - TOLERANCE)
            checked += 1
            verdict = "ok" if have >= floor else "REGRESSION"
            print(f"{verdict:>10}  {name}:{key}  fresh {have:.2f}x  "
                  f"baseline {want:.2f}x  floor {floor:.2f}x")
            if have < floor:
                regressions.append(f"{name}:{key}")
    if regressions:
        print(f"\nperf trend gate FAILED: {len(regressions)} metric(s) "
              f"regressed >{TOLERANCE:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nperf trend gate passed: {checked} pinned metric(s) "
          f"within {TOLERANCE:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="copy fresh BENCH files into baselines/")
    args = parser.parse_args(argv)
    return update_baselines() if args.update else check_trend()


if __name__ == "__main__":
    sys.exit(main())
