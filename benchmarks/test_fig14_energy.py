"""Figure 14: SpMV energy, per-bank PIM vs pSyncPIM.

The paper reports 2.67x average energy efficiency of all-bank over
per-bank execution — mostly background energy over the much longer
per-bank schedule — and a peak power below the 5 W HBM2 budget.
"""

import pytest

from conftest import SPMV_MATRICES, bench_matrix, bench_vector, write_result
from repro.analysis import format_table, geomean
from repro.core import run_spmv, time_spmv
from repro.dram import TimingParams


@pytest.fixture(scope="module")
def results(cfg1):
    table = {}
    for name in SPMV_MATRICES[:8]:
        matrix = bench_matrix(name)
        x = bench_vector(matrix.shape[1])
        execution = run_spmv(matrix, x, cfg1).execution
        ab = time_spmv(execution, cfg1, mode="ab", with_energy=True)
        pb = time_spmv(execution, cfg1, mode="pb", with_energy=True)
        table[name] = (ab, pb)
    return table


class TestFigure14Claims:
    def test_per_bank_always_costs_more_energy(self, results):
        for name, (ab, pb) in results.items():
            assert pb.energy.total_joules > ab.energy.total_joules, name

    def test_average_ratio_band(self, results):
        mean = geomean([pb.energy.total_joules / ab.energy.total_joules
                        for ab, pb in results.values()])
        assert 1.3 < mean < 5.0  # paper: 2.67x

    def test_power_budget(self, results):
        timing = TimingParams()
        for name, (ab, _) in results.items():
            watts = ab.energy.average_power_watts(ab.cycles, timing)
            assert watts < 6.0, name  # paper: at most 5.0 W

    def test_background_drives_the_gap(self, results):
        for name, (ab, pb) in results.items():
            extra_bg = pb.energy.background_pj - ab.energy.background_pj
            total_gap = pb.energy.total_pj - ab.energy.total_pj
            assert extra_bg > 0.3 * total_gap, name


def test_render_figure14(results, benchmark):
    def render():
        timing = TimingParams()
        rows = []
        for name, (ab, pb) in results.items():
            rows.append([name, ab.energy.total_joules * 1e6,
                         pb.energy.total_joules * 1e6,
                         pb.energy.total_joules / ab.energy.total_joules,
                         ab.energy.average_power_watts(ab.cycles, timing)])
        rows.append(["geomean", "", "",
                     geomean([pb.energy.total_joules
                              / ab.energy.total_joules
                              for ab, pb in results.values()]), ""])
        text = format_table(
            ["matrix", "AB energy (uJ)", "PB energy (uJ)", "PB/AB",
             "AB power (W)"],
            rows,
            title="Figure 14: SpMV energy, per-bank vs pSyncPIM "
                  "(paper: 2.67x, <=5.0 W)")
        print("\n" + text)
        write_result("fig14_energy", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
