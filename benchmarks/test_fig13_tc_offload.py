"""Figure 13: Triangle Count — SpGEMM accelerator alone vs with pSyncPIM.

The accelerator-only configuration must run TC's SpMV kernels as
non-square SpGEMMs, which its inner-product datapath handles poorly;
offloading them to pSyncPIM gives the paper's 2.0x overall TC speedup.
"""

import pytest

from conftest import GRAPH_MATRICES, bench_matrix, write_result
from repro.analysis import format_table, geomean
from repro.apps import PIMBackend, triangle_count


@pytest.fixture(scope="module")
def results():
    table = {}
    for name in GRAPH_MATRICES:
        graph = bench_matrix(name, scale=0.5)
        with_pim = triangle_count(graph, PIMBackend(offload_spmv=True))
        accel_only = triangle_count(graph, PIMBackend(offload_spmv=False))
        assert with_pim.value == accel_only.value  # same triangles
        table[name] = (accel_only.total_seconds, with_pim.total_seconds)
    return table


class TestFigure13Claims:
    def test_offload_always_helps(self, results):
        for name, (accel, offload) in results.items():
            assert offload < accel, name

    def test_speedup_band(self, results):
        mean = geomean([accel / offload
                        for accel, offload in results.values()])
        assert 1.2 < mean < 8.0  # paper: 2.0x

    def test_spmv_cost_is_the_difference(self, results):
        graph = bench_matrix(GRAPH_MATRICES[0], scale=0.5)
        a = triangle_count(graph, PIMBackend(offload_spmv=False))
        b = triangle_count(graph, PIMBackend(offload_spmv=True))
        assert a.breakdown["spgemm"] == pytest.approx(
            b.breakdown["spgemm"])
        assert a.breakdown["spmv"] > b.breakdown["spmv"]


def test_render_figure13(results, benchmark):
    def render():
        rows = [[name, accel * 1e6, offload * 1e6, accel / offload]
                for name, (accel, offload) in results.items()]
        rows.append(["geomean", "", "",
                     geomean([a / o for a, o in results.values()])])
        text = format_table(
            ["graph", "accel-only (us)", "accel+pSyncPIM (us)", "speedup"],
            rows,
            title="Figure 13: TC with the SpGEMM accelerator, alone vs "
                  "offloading SpMV to pSyncPIM (paper: 2.0x)")
        print("\n" + text)
        write_result("fig13_tc_offload", text)

    benchmark.pedantic(render, rounds=1, iterations=1)
