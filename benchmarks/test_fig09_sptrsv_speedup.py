"""Figure 9: SpTRSV speedup over cuSPARSE, lower and upper solves.

The paper reports a 3.53x geometric-mean speedup across its
double-precision linear-system matrices, with parabolic_fem as the one
case the GPU wins (hyper-sparse near-diagonal blocks). The bench runs the
full ILDU pipeline per matrix and compares both triangular factors.
"""

import pytest

from conftest import (BENCH_SCALE, SPTRSV_MATRICES, bench_matrix,
                      bench_vector, write_result)
from repro.analysis import format_table, geomean
from repro.baselines import GPUModel
from repro.core import ildu, run_sptrsv
from repro.sweep import SweepJob, run_sweep


@pytest.fixture(scope="module")
def results(sweep_workers):
    """Fig. 9 via the sweep runner: both ILDU factors of every matrix,
    with the factorisation and solve artifacts shared through the cache."""
    gpu = GPUModel()
    jobs = [SweepJob(kernel="sptrsv", matrix=name, scale=BENCH_SCALE,
                     lower=lower, label=f"{name}/{label}")
            for name in SPTRSV_MATRICES
            for label, lower in (("lower", True), ("upper", False))]
    sweep = run_sweep(jobs, workers=sweep_workers)
    table = {}
    for name in SPTRSV_MATRICES:
        row = {}
        for label in ("lower", "upper"):
            record = sweep.record(f"{name}/{label}")
            extras = record.extras
            gpu_s = gpu.sptrsv_seconds(extras["dimension"], extras["nnz"],
                                       extras["levels"])
            row[label] = (record.report.seconds, gpu_s, extras["levels"])
            # correctness gate: the solve really solved
            assert extras["residual"] < 1e-8, name
        table[name] = row
    return table


class TestFigure9Claims:
    def test_pim_wins_geomean_lower(self, results):
        speedups = [row["lower"][1] / row["lower"][0]
                    for row in results.values()]
        assert geomean(speedups) > 1.2  # paper: 3.53x overall

    def test_pim_wins_geomean_upper(self, results):
        speedups = [row["upper"][1] / row["upper"][0]
                    for row in results.values()]
        assert geomean(speedups) > 1.2

    def test_upper_and_lower_cost_similarly_on_pim(self, results):
        for name, row in results.items():
            ratio = row["upper"][0] / row["lower"][0]
            assert 0.3 < ratio < 3.0, name

    def test_level_counts_match_between_factors(self, results):
        # L and U of an SPD ILDU factorisation share dependency depth
        for name, row in results.items():
            assert abs(row["lower"][2] - row["upper"][2]) <= 2, name


def test_render_figure9(results, benchmark):
    def render():
        rows = []
        for name, row in results.items():
            rows.append([name, row["lower"][2],
                         row["lower"][1] / row["lower"][0],
                         row["upper"][1] / row["upper"][0]])
        rows.append(["geomean", "",
                     geomean([r["lower"][1] / r["lower"][0]
                              for r in results.values()]),
                     geomean([r["upper"][1] / r["upper"][0]
                              for r in results.values()])])
        text = format_table(
            ["matrix", "levels", "lower speedup", "upper speedup"],
            rows,
            title="Figure 9: SpTRSV speedup over cuSPARSE "
                  "(paper geomean: 3.53x)")
        print("\n" + text)
        write_result("fig09_sptrsv_speedup", text)

    benchmark.pedantic(render, rounds=1, iterations=1)


def test_benchmark_sptrsv_solve(benchmark, cfg1):
    matrix = bench_matrix("poisson3Da")
    factors = ildu(matrix)
    b = bench_vector(matrix.shape[0])
    benchmark(lambda: run_sptrsv(factors.lower, b, cfg1))
