#!/usr/bin/env python
"""Preconditioned linear solves on pSyncPIM (P-CG and P-BiCGStab).

The paper's second application family: iterative solvers whose SpTRSV
preconditioner steps dominate the GPU (Fig. 2) and map well onto pSyncPIM
(§VI). This example builds an SPD operator in the style of the offshore /
2cubes_sphere electromagnetics problems, factorises it with ILDU on the
host, and solves on both backends — showing the preconditioner's effect
on iteration counts and where the time goes.

Run:  python examples/linear_solver.py
"""

import numpy as np

from repro.analysis import format_breakdown, format_table
from repro.apps import (GPUBackend, KERNEL_CLASSES, PIMBackend, pbicgstab,
                        pcg)
from repro.core import ildu, level_schedule
from repro.formats import generate


def main() -> None:
    matrix = generate("2cubes_sphere", scale=0.015)
    n = matrix.shape[0]
    rng = np.random.default_rng(7)
    x_true = rng.random(n)
    b = matrix.matvec(x_true)
    print(f"operator: {n}x{n} SPD, nnz={matrix.nnz} "
          f"(2cubes_sphere stand-in)")

    # Host-side ILDU preprocessing (§VI-D): unit triangular factors and an
    # inverted diagonal so no division reaches the PIM units.
    factors = ildu(matrix)
    levels = len(level_schedule(factors.lower))
    print(f"ILDU factors: {factors.lower.nnz} + {factors.upper.nnz} "
          f"entries, {levels} dependency levels\n")

    rows = []
    breakdowns = {}
    for label, solver in (("P-CG", pcg), ("P-BCGS", pbicgstab)):
        gpu_result = solver(matrix, b, GPUBackend(), factors=factors,
                            tol=1e-10)
        pim_result = solver(matrix, b, PIMBackend(), factors=factors,
                            tol=1e-10)
        outcome = pim_result.value
        error = np.linalg.norm(outcome.x - x_true) / np.linalg.norm(x_true)
        rows.append([label, pim_result.iterations, f"{error:.2e}",
                     gpu_result.total_seconds * 1e6,
                     pim_result.total_seconds * 1e6,
                     gpu_result.total_seconds / pim_result.total_seconds])
        breakdowns[f"{label}/GPU"] = gpu_result.breakdown
        breakdowns[f"{label}/PIM"] = pim_result.breakdown

    print(format_table(
        ["solver", "iterations", "rel. error", "GPU (us)",
         "pSyncPIM (us)", "speedup"],
        rows, title="Preconditioned solvers (cf. paper Fig. 11)"))
    print()
    print(format_breakdown(breakdowns, classes=KERNEL_CLASSES,
                           title="Where the time goes (cf. Fig. 12): "
                                 "SpTRSV dominates both systems"))


if __name__ == "__main__":
    main()
