#!/usr/bin/env python
"""Graph analytics on pSyncPIM vs the GPU baseline.

Runs the paper's four SpMV-centric graph applications (BFS, Connected
Components, PageRank, SSSP) on a synthetic social graph, on both execution
backends, and prints the Figure 11/12-style comparison: total time,
speedup, and where each system spends it.

Run:  python examples/graph_analytics.py
"""

from repro.analysis import format_breakdown, format_table
from repro.apps import (GPUBackend, KERNEL_CLASSES, PIMBackend, bfs,
                        connected_components, pagerank, sssp)
from repro.formats import generate


def main() -> None:
    graph = generate("wiki-Vote", scale=0.6)
    print(f"graph: {graph.shape[0]} vertices, {graph.nnz} edges "
          f"(wiki-Vote stand-in)\n")

    apps = {
        "BFS": lambda backend: bfs(graph, 0, backend),
        "CC": lambda backend: connected_components(graph, backend),
        "PR": lambda backend: pagerank(graph, backend),
        "SSSP": lambda backend: sssp(graph, 0, backend),
    }

    rows = []
    breakdowns = {}
    for name, run in apps.items():
        gpu_result = run(GPUBackend(graphblast=True))
        pim_result = run(PIMBackend())
        rows.append([name, gpu_result.iterations,
                     gpu_result.total_seconds * 1e6,
                     pim_result.total_seconds * 1e6,
                     gpu_result.total_seconds / pim_result.total_seconds])
        breakdowns[f"{name}/GPU"] = gpu_result.breakdown
        breakdowns[f"{name}/PIM"] = pim_result.breakdown

    print(format_table(
        ["app", "iterations", "GPU (us)", "pSyncPIM (us)", "speedup"],
        rows, title="End-to-end graph analytics (cf. paper Fig. 11)"))
    print()
    print(format_breakdown(breakdowns, classes=KERNEL_CLASSES,
                           title="Kernel-time breakdown (cf. Fig. 12)"))

    # Sanity: a quick structural fact from the BFS run.
    levels = bfs(graph, 0, PIMBackend()).value
    reachable = int((levels >= 0).sum())
    print(f"\nBFS from vertex 0 reaches {reachable}/{graph.shape[0]} "
          f"vertices, max depth {int(levels.max())}")


if __name__ == "__main__":
    main()
