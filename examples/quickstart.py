#!/usr/bin/env python
"""Quickstart: run SpMV and SpTRSV on the pSyncPIM model.

Walks the primary API surface in five minutes:

1. build a sparse matrix (a Table IX synthetic stand-in),
2. execute SpMV through the full partition/distribute/lock-step plan,
3. price the execution on the HBM2 timing model (all-bank vs per-bank),
4. factor the matrix with ILDU and run a PIM triangular solve,
5. compare against the RTX 3080 baseline model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PSyncPIM
from repro.baselines import GPUModel
from repro.core import time_spmv
from repro.formats import generate


def main() -> None:
    # 1. A matrix from the paper's evaluation suite (synthetic stand-in,
    #    scaled down so this demo runs in seconds).
    matrix = generate("poisson3Da", scale=0.4)
    print(f"matrix: {matrix.shape[0]}x{matrix.shape[1]}, "
          f"nnz={matrix.nnz}, density={matrix.density:.2e}")

    # 2. SpMV on a 1-cube pSyncPIM (256 processing units).
    pim = PSyncPIM()
    x = np.random.default_rng(0).random(matrix.shape[1])
    result = pim.spmv(matrix, x)
    assert np.allclose(result.y, matrix.matvec(x))
    ex = result.execution
    print(f"\nSpMV plan: {len(result.plan.tiles)} tiles over "
          f"{ex.banks_used}/{ex.num_banks} banks, "
          f"{ex.num_rounds} lock-step round(s), "
          f"imbalance {ex.imbalance:.2f}")

    # 3. Price it under HBM2 timing: all-bank vs the per-bank baseline.
    ab = pim.time_spmv(result, with_energy=True)
    pb = time_spmv(ex, pim.config, mode="pb")
    print(f"all-bank: {ab.seconds * 1e6:8.2f} us "
          f"({ab.commands} commands, {ab.energy.total_joules * 1e6:.1f} uJ)")
    print(f"per-bank: {pb.seconds * 1e6:8.2f} us "
          f"({pb.commands} commands) -> "
          f"{pb.seconds / ab.seconds:.1f}x slower")

    # 4. ILDU factorisation + a PIM triangular solve (the SpTRSV kernel).
    factors = pim.factorize(matrix)
    b = matrix.matvec(x)
    solve = pim.sptrsv(factors.lower, b, lower=True)
    solve_report = pim.time_sptrsv(solve)
    print(f"\nSpTRSV: {solve.execution.num_levels} dependency levels, "
          f"{solve_report.seconds * 1e6:.2f} us on pSyncPIM")

    # 5. The GPU baseline for the same kernels.
    gpu = GPUModel()
    gpu_spmv = gpu.spmv_seconds(*matrix.shape, matrix.nnz)
    print(f"\nRTX 3080 SpMV estimate: {gpu_spmv * 1e6:.2f} us -> "
          f"pSyncPIM speedup {gpu_spmv / ab.seconds:.2f}x")


if __name__ == "__main__":
    main()
