#!/usr/bin/env python
"""Programming pSyncPIM by hand: assembly, beats and predicated execution.

The paper's kernels are hand-written PIM assembly (§VII-A). This example
drops below the runtime API to show the machine itself:

1. write a kernel in pSyncPIM assembly and inspect its 32-bit encoding,
2. place data into bank regions and drive the lock-step engine with a
   broadcast transaction stream,
3. watch conditional exit in action — banks with less data retire early
   while the lock-step stream keeps flowing,
4. price the equivalent command schedule under HBM2 timing.

Run:  python examples/kernel_programming.py
"""

import numpy as np

from repro.dram import Command, CommandType, MemoryController
from repro.isa import Program, assemble
from repro.pim import AllBankEngine, Beat, Mode, padded_triples


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A sparse AXPY kernel in pSyncPIM assembly (cf. Table III SpAXPY).
    # ------------------------------------------------------------------
    source = """
    ; y[i] += alpha * x_sp[i]   (alpha pre-broadcast into SRF)
outer:
    SPMOV  SPVQ0, BANK          value=fp64        ; load a triple group
inner:
    SSPV   SPVQ1, SRF, SPVQ0    binary=mul        ; alpha * value
    SPVDV  BANK, SPVQ1          binary=add        ; y[idx] += product
    JUMP   inner order=0 count=4
    CEXIT  SPVQ0|SPVQ1                            ; retire when drained
    JUMP   outer order=1 count=2
    EXIT
"""
    program = assemble(source, name="spaxpy_demo")
    print(program.disassemble())
    words = program.encode_words()
    print("\nencoded control register image:")
    for slot, word in enumerate(words):
        print(f"  slot {slot:2d}: {word:#010x}")
    assert Program.decode_words(words) == program

    # ------------------------------------------------------------------
    # 2. Three banks with *uneven* sparse vectors — the pSyncPIM problem.
    # ------------------------------------------------------------------
    engine = AllBankEngine(num_banks=3)
    counts = [8, 5, 0]  # wildly different workloads per bank
    per_bank = []
    for bank, count in enumerate(counts):
        idx = np.arange(count) * 2  # even positions of this bank's chunk
        vals = np.full(count, float(bank + 1))
        per_bank.append(padded_triples(idx, idx, vals, total=8))
    engine.host_write_triples("xsp", per_bank)
    engine.host_write_dense("y", [np.zeros(16) for _ in range(3)])

    engine.switch_mode(Mode.AB)
    engine.load_program(program)
    for unit in engine.units:
        unit.registers.scalar = 2.0  # broadcast alpha
    engine.switch_mode(Mode.AB_PIM)

    def beats():
        for group in range(2):
            yield Beat("xsp", group)
            for _ in range(4):
                yield Beat("y", 0, write=True)

    consumed = engine.run(beats())
    engine.switch_mode(Mode.SB)

    # ------------------------------------------------------------------
    # 3. Conditional exit: every bank retired, each at its own time.
    # ------------------------------------------------------------------
    print(f"\nlock-step stream: {consumed} broadcast transactions")
    for bank, unit in enumerate(engine.units):
        print(f"  bank {bank}: {counts[bank]} elements, "
              f"nop transactions={unit.stats.nop_beats}, "
              f"exited={unit.exited}")
    for bank, chunk in enumerate(engine.host_read_dense("y")):
        expect = np.zeros(16)
        expect[np.arange(counts[bank]) * 2] = 2.0 * (bank + 1)
        assert np.allclose(chunk, expect), bank
    print("results verified against the reference on every bank")

    # ------------------------------------------------------------------
    # 4. The command schedule the host actually issues, priced on HBM2.
    # ------------------------------------------------------------------
    trace = [Command(CommandType.MODE),
             Command(CommandType.ACT_AB, row=0)]
    trace += [Command(CommandType.WR_AB, row=0, col=c) for c in range(2)]
    trace += [Command(CommandType.PRE_AB), Command(CommandType.MODE)]
    for group in range(2):
        trace.append(Command(CommandType.ACT_AB, row=1))
        trace.append(Command(CommandType.RD_AB, row=1, col=group))
        trace.append(Command(CommandType.PRE_AB))
        trace.append(Command(CommandType.ACT_AB, row=2))
        trace += [Command(CommandType.RD_AB, row=2, col=c)
                  for c in range(2)]
        trace += [Command(CommandType.WR_AB, row=2, col=c)
                  for c in range(2)]
        trace.append(Command(CommandType.PRE_AB))
    trace.append(Command(CommandType.MODE))
    report = MemoryController(enable_refresh=False).run(trace)
    print(f"\nhand-built schedule: {report.command_total} commands, "
          f"{report.total_cycles} DRAM cycles "
          f"({report.total_cycles} ns at 1 GHz)")


if __name__ == "__main__":
    main()
