"""SpaceA baseline: the asynchronous standalone PIM accelerator [47].

SpaceA attaches a processing unit per bank inside an HMC-style stack,
with *independent* per-bank memory controllers, remote bank accesses over
the logic-layer network and a bank-level CAM that exploits input-vector
reuse. Its advantages over pSyncPIM (paper §VII-B, where pSyncPIM reaches
0.56x SpaceA) are architectural, not algorithmic:

* no lock-step padding — each unit streams exactly its own elements, and
  SpaceA's partitioner balances nnz across banks,
* no host staging — input elements are fetched from remote banks through
  the network (with CAM reuse), and partials accumulate in-memory,
* no mode switching or host command-bus bottleneck.

The model therefore prices SpaceA as balanced per-bank streaming with a
small per-element overhead for network/CAM effects, always in FP64 (SpaceA
supports only one value format — the reason pSyncPIM wins on the INT8
matrices, §VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class SpaceAConfig:
    """SpaceA model parameters (HMC-based, paper Table X: 8 PIM stacks)."""

    name: str = "SpaceA"
    num_banks: int = 256
    clock_hz: float = 1e9
    #: Per-bank streaming rate. SpaceA sits in an HMC, whose vault-level
    #: bandwidth (~10 GB/s per vault, shared by the vault's banks) is far
    #: below an HBM2 bank's 8 B/cycle; the effective per-bank rate lands
    #: around 2.5 B/cycle.
    bank_bytes_per_cycle: float = 2.5
    #: COO element footprint — SpaceA stores FP64 only.
    element_bytes: int = 16
    #: Multiplier over pure streaming for remote-access network latency
    #: and CAM misses on the input vector.
    overhead_factor: float = 1.6
    #: Residual imbalance of SpaceA's nnz-balancing partitioner.
    residual_imbalance: float = 1.1

    def validate(self) -> "SpaceAConfig":
        if self.overhead_factor < 1.0 or self.residual_imbalance < 1.0:
            raise ConfigError("overheads cannot be below 1.0")
        return self


class SpaceAModel:
    """SpMV time estimates for the SpaceA baseline."""

    def __init__(self, config: SpaceAConfig = SpaceAConfig()) -> None:
        self.config = config.validate()

    def spmv_seconds(self, nnz: int) -> float:
        """Balanced asynchronous streaming of nnz FP64 elements."""
        cfg = self.config
        per_bank = nnz / cfg.num_banks * cfg.residual_imbalance
        cycles_per_element = (cfg.element_bytes / cfg.bank_bytes_per_cycle
                              * cfg.overhead_factor)
        return per_bank * cycles_per_element / cfg.clock_hz
