"""InnerSP-style SpGEMM accelerator model [4] (used for Fig. 13).

The paper attaches a locality-aware inner-product SpGEMM accelerator to
the host for the Triangle Count workload (§VII-E). Two operating points
matter for Fig. 13:

* **SpGEMM proper** — the accelerator's design point: inner products with
  on-chip merging, roughly bandwidth-bound on the operand streams.
* **SpMV treated as non-square SpGEMM** — the accelerator-only fallback:
  a dense n-vector masquerading as an n x 1 sparse matrix defeats the
  row-merging datapath (tiny inner products, no reuse), which the paper
  calls "inefficient". The model charges a configurable inefficiency
  multiplier for this path; offloading SpMV to pSyncPIM removes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class SpGEMMAcceleratorConfig:
    """InnerSP model parameters."""

    name: str = "InnerSP"
    memory_bandwidth: float = 256e9   # shares the host's HBM interface
    efficiency: float = 0.6           # streaming inner-product pipelines
    mac_rate: float = 256e9           # multiply-accumulates per second
    #: Cost multiplier when an SpMV is forced through the SpGEMM datapath.
    spmv_inefficiency: float = 25.0
    setup_s: float = 2e-6

    def validate(self) -> "SpGEMMAcceleratorConfig":
        if self.spmv_inefficiency < 1.0:
            raise ConfigError("SpMV-as-SpGEMM cannot be cheaper than SpMV")
        if not 0 < self.efficiency <= 1:
            raise ConfigError("efficiency must be in (0, 1]")
        return self


class SpGEMMAcceleratorModel:
    """Time estimates for the SpGEMM accelerator."""

    def __init__(self,
                 config: SpGEMMAcceleratorConfig = SpGEMMAcceleratorConfig()
                 ) -> None:
        self.config = config.validate()

    def spgemm_seconds(self, flops: float, nnz_inputs: int,
                       nnz_output: int) -> float:
        """A @ B on the accelerator: traffic/compute roofline."""
        cfg = self.config
        traffic = (nnz_inputs + nnz_output) * 12.0
        stream = traffic / (cfg.memory_bandwidth * cfg.efficiency)
        compute = (flops / 2.0) / cfg.mac_rate
        return cfg.setup_s + max(stream, compute)

    def spmv_as_spgemm_seconds(self, n_rows: int, nnz: int) -> float:
        """SpMV forced through the SpGEMM datapath (accelerator-only TC)."""
        cfg = self.config
        traffic = nnz * 12.0 + n_rows * 8.0
        base = traffic / (cfg.memory_bandwidth * cfg.efficiency)
        return cfg.setup_s + base * cfg.spmv_inefficiency
