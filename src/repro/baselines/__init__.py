"""Baseline cost models: RTX 3080 GPU, SpaceA, the SpGEMM accelerator.

The per-bank (PB) PIM baseline is not a separate model — it is the same
pSyncPIM hardware driven with single-bank commands, priced by
``repro.core.timing.time_spmv(..., mode="pb")``.
"""

from .gpu import GPUConfig, GPUModel
from .spacea import SpaceAConfig, SpaceAModel
from .spgemm_accel import SpGEMMAcceleratorConfig, SpGEMMAcceleratorModel

__all__ = ["GPUConfig", "GPUModel", "SpaceAConfig", "SpaceAModel",
           "SpGEMMAcceleratorConfig", "SpGEMMAcceleratorModel"]
