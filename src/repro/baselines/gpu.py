"""Analytic RTX 3080 baseline (cuSPARSE / GraphBLAST cost model).

The paper measures wall-clock GPU time with CUDA 11.8, cuSPARSE and
GraphBLAST (§VII-A). Without the hardware, this module reproduces the
*behavioural shape* of those measurements with a calibrated roofline:

* memory-bound kernels move a modelled byte count at a fraction of the
  760 GB/s HBM bandwidth (irregular access keeps cuSPARSE SpMV far from
  peak),
* every kernel pays a launch/driver overhead, which dominates the many
  small kernels the Table IX suite produces — the effect that makes PIM
  attractive on these workloads in the first place,
* cuSPARSE SpTRSV is level-scheduled: one kernel (and sync) per dependency
  level (§III-C: "bound to the memory bandwidth, incurring low GPU usage"),
* GraphBLAST's templated functors multiply vector-op cost (the §VII-E
  observation behind the CC/SSSP results).

Calibration constants are collected in :class:`GPUConfig` and recorded in
EXPERIMENTS.md; they were chosen from public RTX 3080 characteristics and
published cuSPARSE throughput ranges, then held fixed across all
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import element_size
from ..errors import ConfigError


@dataclass(frozen=True)
class GPUConfig:
    """RTX 3080 model parameters."""

    name: str = "GeForce RTX 3080"
    memory_bandwidth: float = 760e9     # bytes/s
    l2_bytes: int = 5 * (1 << 20)       # 5 MB L2
    fp32_flops: float = 29.8e12
    fp64_flops: float = 0.47e12         # 1:64 of FP32 on GA102
    #: Driver + launch latency charged once per kernel.
    kernel_launch_s: float = 10e-6
    #: Fraction of peak bandwidth an irregular SpMV sustains.
    spmv_efficiency: float = 0.28
    #: Fraction of peak bandwidth a coalesced streaming kernel sustains.
    stream_efficiency: float = 0.75
    #: Fraction of peak bandwidth the serialised SpTRSV sustains.
    sptrsv_efficiency: float = 0.12
    #: Per-level cost of cuSPARSE's level-sync solve (launch + sync).
    level_sync_s: float = 6e-6
    #: GraphBLAST functor/templating multiplier on vector kernels (§VII-E).
    graphblast_overhead: float = 3.5
    #: Fraction of x gathered from DRAM when x spills the L2 cache.
    gather_miss_fraction: float = 0.5

    def validate(self) -> "GPUConfig":
        if not 0 < self.spmv_efficiency <= 1:
            raise ConfigError("spmv_efficiency must be in (0, 1]")
        if not 0 < self.stream_efficiency <= 1:
            raise ConfigError("stream_efficiency must be in (0, 1]")
        return self


class GPUModel:
    """Kernel-level time estimates for the RTX 3080 baseline."""

    def __init__(self, config: GPUConfig = GPUConfig()) -> None:
        self.config = config.validate()

    # ------------------------------------------------------------------
    def _stream_time(self, nbytes: float, efficiency: float) -> float:
        return nbytes / (self.config.memory_bandwidth * efficiency)

    # ------------------------------------------------------------------
    def spmv_seconds(self, n_rows: int, n_cols: int, nnz: int,
                     precision: str = "fp64") -> float:
        """cuSPARSE CSR SpMV: matrix stream + row pointers + x gather + y.

        cuSPARSE runs FP32/FP64; narrower operand formats do not speed the
        GPU up (the paper exploits them only on pSyncPIM, §VII-B).
        """
        vb = max(element_size(precision), 4)  # cuSPARSE floor: fp32
        matrix_bytes = nnz * (4 + vb) + (n_rows + 1) * 4
        x_bytes = n_cols * vb
        if x_bytes <= self.config.l2_bytes:
            gather_bytes = x_bytes  # one compulsory pass through L2
        else:
            gather_bytes = nnz * vb * self.config.gather_miss_fraction
        y_bytes = n_rows * vb
        total = matrix_bytes + gather_bytes + y_bytes
        return (self.config.kernel_launch_s
                + self._stream_time(total, self.config.spmv_efficiency))

    def sptrsv_seconds(self, n: int, nnz: int, num_levels: int,
                       precision: str = "fp64") -> float:
        """cuSPARSE csrsv2: one level-synchronised launch per level."""
        vb = max(element_size(precision), 4)
        traffic = nnz * (4 + vb) + 2 * n * vb + (n + 1) * 4
        return (self.config.kernel_launch_s
                + num_levels * self.config.level_sync_s
                + self._stream_time(traffic, self.config.sptrsv_efficiency))

    def dense_vector_seconds(self, n: int, streams: int = 2,
                             precision: str = "fp64",
                             graphblast: bool = False) -> float:
        """Element-wise vector kernel moving *streams* n-vectors."""
        vb = max(element_size(precision), 4)
        time = (self.config.kernel_launch_s
                + self._stream_time(n * vb * streams,
                                    self.config.stream_efficiency))
        if graphblast:
            time *= self.config.graphblast_overhead
        return time

    def reduction_seconds(self, n: int, precision: str = "fp64",
                          graphblast: bool = False) -> float:
        """Dot/norm-style reduction: two passes (partial + final)."""
        vb = max(element_size(precision), 4)
        time = (2 * self.config.kernel_launch_s
                + self._stream_time(2 * n * vb,
                                    self.config.stream_efficiency))
        if graphblast:
            time *= self.config.graphblast_overhead
        return time

    def dgemv_seconds(self, m: int, n: int,
                      precision: str = "fp64") -> float:
        """Dense GEMV: one matrix pass, bandwidth bound."""
        vb = max(element_size(precision), 4)
        nbytes = m * n * vb + (m + n) * vb
        return (self.config.kernel_launch_s
                + self._stream_time(nbytes, self.config.stream_efficiency))

    def spgemm_seconds(self, flops: float, nnz_inputs: int,
                       nnz_output: int, precision: str = "fp64") -> float:
        """cuSPARSE SpGEMM: hash-based, traffic + compute roofline."""
        vb = max(element_size(precision), 4)
        traffic = (nnz_inputs + nnz_output) * (4 + vb) * 2.0
        compute = flops / self.config.fp64_flops
        return (3 * self.config.kernel_launch_s  # symbolic+numeric+compact
                + max(self._stream_time(traffic, self.config.spmv_efficiency),
                      compute))
