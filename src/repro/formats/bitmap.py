"""Bitmap sparse-matrix format (paper §IV-C and §VIII).

COO is the right on-bank format below ~1 % density; sparse *neural
network* layers sit at 10-50 % density, where per-element coordinates
waste capacity and bandwidth. The paper argues a bitmap representation —
one presence bit per position plus a dense array of the non-zero values in
scan order — is the better fit there, and that supporting both formats in
one PIM design costs only minor hardware.

:class:`BitmapMatrix` implements that representation (bits packed eight
per byte, row-major scan), plus the footprint model the format-selection
helper and the ablation benchmark use.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..config import element_size
from ..errors import FormatError
from .coo import COOMatrix


class BitmapMatrix:
    """Presence bitmap + packed non-zero values, row-major scan order."""

    __slots__ = ("shape", "bits", "values")

    def __init__(self, shape: Tuple[int, int], bits: np.ndarray,
                 values: np.ndarray, check: bool = True) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.bits = np.ascontiguousarray(bits, dtype=np.uint8)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        if check:
            self.validate()

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, matrix: COOMatrix) -> "BitmapMatrix":
        """Encode a COO matrix (values re-ordered to row-major scan)."""
        srt = matrix.sorted_rows()
        flat = srt.rows * matrix.shape[1] + srt.cols
        total = matrix.shape[0] * matrix.shape[1]
        mask = np.zeros(total, dtype=bool)
        mask[flat] = True
        return cls(matrix.shape, np.packbits(mask), srt.vals.copy(),
                   check=False)

    def to_coo(self) -> COOMatrix:
        """Decode back to COO (row-major element order)."""
        total = self.shape[0] * self.shape[1]
        mask = np.unpackbits(self.bits, count=total).astype(bool)
        flat = np.nonzero(mask)[0]
        return COOMatrix(self.shape, flat // self.shape[1],
                         flat % self.shape[1], self.values.copy(),
                         check=False)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def density(self) -> float:
        volume = self.shape[0] * self.shape[1]
        return self.nnz / volume if volume else 0.0

    def validate(self) -> "BitmapMatrix":
        total = self.shape[0] * self.shape[1]
        expected_bytes = (total + 7) // 8
        if self.bits.size != expected_bytes:
            raise FormatError(
                f"bitmap holds {self.bits.size} bytes; shape needs "
                f"{expected_bytes}")
        popcount = int(np.unpackbits(self.bits, count=total).sum())
        if popcount != self.values.size:
            raise FormatError(
                f"bitmap has {popcount} set bits but {self.values.size} "
                "values")
        return self

    # ------------------------------------------------------------------
    def footprint_bytes(self, precision: str = "fp64") -> int:
        """On-bank bytes: the bitmap plus the packed values."""
        return int(self.bits.size) + self.nnz * element_size(precision)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV through the bitmap decode path."""
        return self.to_coo().matvec(x)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitmapMatrix):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.bits, other.bits)
                and np.allclose(self.values, other.values))

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BitmapMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.3g})")


def coo_footprint_bytes(matrix: COOMatrix, precision: str = "fp64",
                        index_bytes: int = 2) -> int:
    """On-bank bytes of the COO layout (two tile-local indices + value)."""
    return matrix.nnz * (2 * index_bytes + element_size(precision))


def best_format(density: float, precision: str = "fp64",
                index_bytes: int = 2) -> str:
    """The paper's format rule: COO below the footprint crossover.

    Both formats store the values; they differ in metadata: COO pays
    ``2 * index_bytes`` per element, the bitmap pays one bit per matrix
    position. The bitmap wins once ``density > 1 / (16 * index_bytes)``
    (about 3 % with 16-bit tile-local indices) — comfortably below the
    10-50 % densities of sparse neural networks (§VIII) and comfortably
    above the <1 % HPC regime the paper targets with COO.
    """
    if not 0.0 <= density <= 1.0:
        raise FormatError("density must lie in [0, 1]")
    element_size(precision)  # validate the name
    crossover = 1.0 / (16 * index_bytes)
    return "bitmap" if density > crossover else "coo"
