"""Deterministic synthetic sparse-matrix generators.

The paper evaluates on 26 SuiteSparse/SNAP matrices (Table IX). Those files
are not redistributable inside this offline reproduction, so
:mod:`repro.formats.suite` regenerates pattern-class-matched stand-ins with
the generators below. Each generator is seeded and pure: the same arguments
always produce the same matrix.

Pattern classes covered (matching what drives pSyncPIM behaviour — nnz
distribution across rows/banks, bandwidth, and row dependency depth):

* ``stencil_2d`` / ``stencil_3d`` — FEM/PDE discretisations
  (parabolic_fem, poisson3Da, offshore, 2cubes_sphere, ...).
* ``banded_fem`` — structural-engineering stiffness matrices with dense
  diagonal blocks (bcsstk32, cant, consph, ct20stif, pwtk, shipsec1, ...).
* ``power_law_graph`` — social/web graphs with heavy-tailed degree
  distributions (amazon0312, email-Enron, wiki-Vote, Stanford, ...).
* ``rmat`` — Kronecker-style graphs with community structure
  (soc-sign-epinions, p2p-Gnutella31, webbase-1M, ...).
* ``uniform_random`` — unstructured sparsity (lhr71, ohne2, xenon2, ...).

Helper transforms build the operands the kernels need: SPD shifts for CG,
and incomplete-factor-shaped unit triangular matrices for SpTRSV.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _dedupe(shape: Tuple[int, int], rows: np.ndarray, cols: np.ndarray,
            vals: Optional[np.ndarray] = None) -> COOMatrix:
    """Drop duplicate coordinates (keeping the first occurrence)."""
    keys = rows.astype(np.int64) * shape[1] + cols
    _, first = np.unique(keys, return_index=True)
    first.sort()
    if vals is None:
        vals = np.ones(first.size)
    else:
        vals = vals[first]
    return COOMatrix(shape, rows[first], cols[first], vals, check=False)


# ----------------------------------------------------------------------
# PDE / FEM patterns
# ----------------------------------------------------------------------
def stencil_2d(nx: int, ny: Optional[int] = None) -> COOMatrix:
    """5-point Laplacian on an ``nx x ny`` grid — SPD, pentadiagonal.

    The classic model problem behind parabolic_fem-style matrices: four
    off-diagonal -1 couplings and a +4 diagonal.
    """
    ny = nx if ny is None else ny
    if nx <= 0 or ny <= 0:
        raise FormatError("grid dimensions must be positive")
    n = nx * ny
    idx = np.arange(n)
    ix, iy = idx % nx, idx // nx
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0)]
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        jx, jy = ix + dx, iy + dy
        ok = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
        rows.append(idx[ok])
        cols.append((jy * nx + jx)[ok])
        vals.append(np.full(ok.sum(), -1.0))
    return COOMatrix((n, n), np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals), check=False)


def stencil_3d(nx: int, ny: Optional[int] = None,
               nz: Optional[int] = None) -> COOMatrix:
    """7-point Laplacian on an ``nx x ny x nz`` grid — SPD.

    poisson3Da-style: +6 diagonal, six -1 neighbours.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) <= 0:
        raise FormatError("grid dimensions must be positive")
    n = nx * ny * nz
    idx = np.arange(n)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 6.0)]
    for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                       (0, 0, 1), (0, 0, -1)):
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        ok = ((jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
              & (jz >= 0) & (jz < nz))
        rows.append(idx[ok])
        cols.append(((jz * ny + jy) * nx + jx)[ok])
        vals.append(np.full(ok.sum(), -1.0))
    return COOMatrix((n, n), np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals), check=False)


def banded_fem(n: int, avg_row_nnz: float, bandwidth: Optional[int] = None,
               seed: int = 0) -> COOMatrix:
    """Symmetric banded matrix with clustered off-diagonals.

    Mimics assembled stiffness matrices (bcsstk32, cant, ...): every row has
    a diagonal entry plus ~``avg_row_nnz - 1`` couplings drawn near the
    diagonal, symmetrised. Values are drawn from N(0, 1) off-diagonal with a
    dominant positive diagonal, so the result is symmetric positive definite.
    """
    if n <= 0 or avg_row_nnz < 1:
        raise FormatError("need n > 0 and avg_row_nnz >= 1")
    rng = _rng(seed)
    if bandwidth is None:
        bandwidth = max(2, int(3 * avg_row_nnz))
    half = max(1, int((avg_row_nnz - 1) / 2))
    rows_list = []
    cols_list = []
    # Per-row couplings: offsets within the band, lower triangle only,
    # then symmetrised. Poisson-vary the count for realistic imbalance.
    counts = rng.poisson(half, size=n)
    total = int(counts.sum())
    row_idx = np.repeat(np.arange(n), counts)
    offsets = rng.integers(1, bandwidth + 1, size=total)
    col_idx = row_idx - offsets
    ok = col_idx >= 0
    rows_list.append(row_idx[ok])
    cols_list.append(col_idx[ok])
    low_rows = np.concatenate(rows_list)
    low_cols = np.concatenate(cols_list)
    lower = _dedupe((n, n), low_rows, low_cols)
    off_vals = rng.standard_normal(lower.nnz)
    rows = np.concatenate([lower.rows, lower.cols, np.arange(n)])
    cols = np.concatenate([lower.cols, lower.rows, np.arange(n)])
    # Diagonal dominance: row sums of |off-diagonals| plus a positive shift.
    abs_sum = np.zeros(n)
    np.add.at(abs_sum, lower.rows, np.abs(off_vals))
    np.add.at(abs_sum, lower.cols, np.abs(off_vals))
    diag = abs_sum + 1.0 + rng.random(n)
    vals = np.concatenate([off_vals, off_vals, diag])
    return COOMatrix((n, n), rows, cols, vals, check=False)


# ----------------------------------------------------------------------
# graph patterns
# ----------------------------------------------------------------------
def power_law_graph(n: int, avg_degree: float, seed: int = 0,
                    exponent: float = 2.1,
                    symmetric: bool = False) -> COOMatrix:
    """Directed graph adjacency with power-law out-degrees.

    Degrees follow a truncated zeta-like distribution with the given
    *exponent*; targets are chosen preferentially toward low indices, which
    reproduces the hub structure of social/web graphs without an O(E) Python
    loop. Edge values are 1.0. Self-loops are removed.
    """
    if n <= 1 or avg_degree <= 0:
        raise FormatError("need n > 1 and positive avg_degree")
    rng = _rng(seed)
    # Pareto-tailed degree sequence scaled to the requested mean.
    raw = (1.0 + rng.pareto(exponent - 1.0, size=n))
    degrees = np.maximum(1, np.round(raw * avg_degree / raw.mean()))
    degrees = np.minimum(degrees, n - 1).astype(np.int64)
    src = np.repeat(np.arange(n), degrees)
    # Preferential targets: squaring a uniform variate biases toward hubs
    # (low indices), yielding a heavy-tailed in-degree distribution too.
    dst = (rng.random(src.size) ** 2 * n).astype(np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return _dedupe((n, n), src, dst)


def rmat(n: int, nnz: int, seed: int = 0,
         probs: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)
         ) -> COOMatrix:
    """R-MAT (recursive matrix) Kronecker graph generator.

    *n* is rounded up to the next power of two internally and the matrix is
    truncated back, matching the standard Graph500 construction. Duplicate
    edges are dropped, so the returned nnz can be slightly below *nnz*.
    """
    if n <= 1 or nnz <= 0:
        raise FormatError("need n > 1 and nnz > 0")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise FormatError("R-MAT probabilities must sum to 1")
    rng = _rng(seed)
    levels = int(np.ceil(np.log2(n)))
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    for _ in range(levels):
        rows <<= 1
        cols <<= 1
        r = rng.random(nnz)
        right = (r >= a) & (r < a + b)          # quadrant b: col bit set
        lower = (r >= a + b) & (r < a + b + c)  # quadrant c: row bit set
        both = r >= a + b + c                   # quadrant d: both bits
        cols += right | both
        rows += lower | both
    keep = (rows < n) & (cols < n) & (rows != cols)
    return _dedupe((n, n), rows[keep], cols[keep])


def uniform_random(nrows: int, ncols: int, density: float,
                   seed: int = 0, values: str = "normal") -> COOMatrix:
    """Uniformly random sparse matrix of the requested density.

    *values* selects the value distribution: ``"normal"``, ``"uniform"`` (in
    (0, 1]) or ``"ones"``.
    """
    if nrows <= 0 or ncols <= 0:
        raise FormatError("matrix dimensions must be positive")
    if not 0.0 <= density <= 1.0:
        raise FormatError("density must lie in [0, 1]")
    rng = _rng(seed)
    target = int(round(nrows * ncols * density))
    # Oversample to survive dedup, then trim.
    sample = int(target * 1.1) + 16
    rows = rng.integers(0, nrows, size=sample)
    cols = rng.integers(0, ncols, size=sample)
    mat = _dedupe((nrows, ncols), rows, cols)
    if mat.nnz > target:
        mat = COOMatrix((nrows, ncols), mat.rows[:target], mat.cols[:target],
                        mat.vals[:target], check=False)
    if values == "normal":
        vals = rng.standard_normal(mat.nnz)
    elif values == "uniform":
        vals = rng.random(mat.nnz) + np.finfo(float).tiny
    elif values == "ones":
        vals = np.ones(mat.nnz)
    else:
        raise FormatError(f"unknown value distribution {values!r}")
    return COOMatrix(mat.shape, mat.rows, mat.cols, vals, check=False)


# ----------------------------------------------------------------------
# operand transforms
# ----------------------------------------------------------------------
def make_spd(matrix: COOMatrix, shift: float = 1.0) -> COOMatrix:
    """Symmetrise and diagonally dominate *matrix* so it becomes SPD.

    Builds ``(A + A.T)/2`` and then replaces the diagonal with the row sums
    of absolute off-diagonals plus *shift* — a standard construction for
    conjugate-gradient test operators.
    """
    if not matrix.is_square:
        raise FormatError("make_spd requires a square matrix")
    n = matrix.shape[0]
    at = matrix.transpose()
    rows = np.concatenate([matrix.rows, at.rows])
    cols = np.concatenate([matrix.cols, at.cols])
    vals = np.concatenate([matrix.vals, at.vals]) * 0.5
    keys = rows * n + cols
    order = np.argsort(keys, kind="stable")
    keys, rows, cols, vals = keys[order], rows[order], cols[order], vals[order]
    uniq, start = np.unique(keys, return_index=True)
    summed = np.add.reduceat(vals, start)
    rows, cols = uniq // n, uniq % n
    off = rows != cols
    rows, cols, summed = rows[off], cols[off], summed[off]
    dom = np.zeros(n)
    np.add.at(dom, rows, np.abs(summed))
    idx = np.arange(n)
    return COOMatrix((n, n), np.concatenate([rows, idx]),
                     np.concatenate([cols, idx]),
                     np.concatenate([summed, dom + shift]), check=False)


def unit_lower_from(matrix: COOMatrix, scale: float = 0.9,
                    seed: int = 0) -> COOMatrix:
    """Build a well-conditioned unit lower-triangular matrix shaped like *A*.

    Takes the strictly-lower structure of *matrix*, assigns values scaled so
    each row's off-diagonal magnitude stays below *scale* (keeping the solve
    numerically tame), and sets the diagonal to one. This is the shape an
    ILU(0) factor of *A* would have, which is what pSyncPIM's SpTRSV
    consumes (paper §VI).
    """
    if not matrix.is_square:
        raise FormatError("unit_lower_from requires a square matrix")
    n = matrix.shape[0]
    low = matrix.strictly_lower()
    rng = _rng(seed)
    raw = rng.random(low.nnz) + 0.1
    row_sum = np.zeros(n)
    np.add.at(row_sum, low.rows, raw)
    denom = np.maximum(row_sum[low.rows], 1e-12)
    vals = raw / denom * scale * np.sign(rng.standard_normal(low.nnz))
    idx = np.arange(n)
    return COOMatrix((n, n), np.concatenate([low.rows, idx]),
                     np.concatenate([low.cols, idx]),
                     np.concatenate([vals, np.ones(n)]), check=False)


def unit_upper_from(matrix: COOMatrix, scale: float = 0.9,
                    seed: int = 0) -> COOMatrix:
    """Upper-triangular counterpart of :func:`unit_lower_from`."""
    lower = unit_lower_from(matrix.transpose(), scale=scale, seed=seed)
    return lower.transpose()
