"""Coordinate-list (COO) sparse matrix container.

pSyncPIM stores matrices in COO because, for the <1% densities its HPC
workloads exhibit, coordinate tuples avoid CSR/CSC metadata indirection that
would force remote bank accesses (paper §IV-C). This module provides the COO
container every other subsystem builds on: validation, canonical ordering
(row-major for SpMV, column-major for the SpTRSV mapping of Fig. 7),
arithmetic used by golden references, and structural queries used by the
partitioners.

The container wraps three parallel numpy arrays (``rows``, ``cols``,
``vals``). It is deliberately *not* a scipy wrapper: the simulator needs
stable element order and explicit-zero semantics that scipy's ``coo_matrix``
does not guarantee, and the substrate must stand alone per the reproduction
brief. Conversions to/from scipy live in :mod:`repro.formats.conversions`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import FormatError


class COOMatrix:
    """A sparse matrix as parallel (row, col, value) coordinate arrays.

    Elements may appear in any order unless a canonical order has been
    requested via :meth:`sorted_rows` / :meth:`sorted_cols`. Duplicate
    coordinates are rejected at validation time because the PIM kernels
    assume each coordinate contributes exactly one multiply-accumulate.
    """

    __slots__ = ("shape", "rows", "cols", "vals")

    def __init__(self, shape: Tuple[int, int], rows: np.ndarray,
                 cols: np.ndarray, vals: np.ndarray,
                 check: bool = True) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.rows = np.ascontiguousarray(rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(cols, dtype=np.int64)
        self.vals = np.ascontiguousarray(vals, dtype=np.float64)
        if check:
            self.validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        zero = np.zeros(0)
        return cls(shape, zero, zero, zero, check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "COOMatrix":
        """Extract the non-zeros of a dense 2-D array.

        Entries with ``abs(value) <= tol`` are treated as structural zeros.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise FormatError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tol
        rows, cols = np.nonzero(mask)
        return cls(dense.shape, rows, cols, dense[mask])

    @classmethod
    def from_triplets(cls, shape: Tuple[int, int],
                      triplets) -> "COOMatrix":
        """Build from an iterable of ``(row, col, value)`` tuples."""
        items = list(triplets)
        if not items:
            return cls.empty(shape)
        rows, cols, vals = (np.asarray(seq) for seq in zip(*items))
        return cls(shape, rows, cols, vals)

    def copy(self) -> "COOMatrix":
        """A deep copy; mutating the copy never affects the original."""
        return COOMatrix(self.shape, self.rows.copy(), self.cols.copy(),
                         self.vals.copy(), check=False)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (possibly explicit-zero) entries."""
        return int(self.rows.size)

    @property
    def density(self) -> float:
        """nnz divided by the full matrix volume (0 for empty shapes)."""
        volume = self.shape[0] * self.shape[1]
        return self.nnz / volume if volume else 0.0

    @property
    def is_square(self) -> bool:
        return self.shape[0] == self.shape[1]

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.3g})")

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate stored entries in storage order."""
        for r, c, v in zip(self.rows, self.cols, self.vals):
            yield int(r), int(c), float(v)

    def __eq__(self, other: object) -> bool:
        """Structural and numerical equality under canonical row order."""
        if not isinstance(other, COOMatrix):
            return NotImplemented
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        a, b = self.sorted_rows(), other.sorted_rows()
        return (np.array_equal(a.rows, b.rows)
                and np.array_equal(a.cols, b.cols)
                and np.allclose(a.vals, b.vals))

    __hash__ = None  # mutable container

    # ------------------------------------------------------------------
    # validation and canonical orders
    # ------------------------------------------------------------------
    def validate(self) -> "COOMatrix":
        """Check array shapes, index bounds and duplicate coordinates."""
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise FormatError("rows/cols/vals must have identical length")
        if self.rows.ndim != 1:
            raise FormatError("coordinate arrays must be one-dimensional")
        if self.shape[0] < 0 or self.shape[1] < 0:
            raise FormatError(f"negative shape {self.shape}")
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise FormatError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise FormatError("column index out of range")
            keys = self.rows * self.shape[1] + self.cols
            if np.unique(keys).size != keys.size:
                raise FormatError("duplicate coordinates are not allowed")
        return self

    def sorted_rows(self) -> "COOMatrix":
        """Return a copy sorted row-major (row, then column) — SpMV order.

        Already-sorted matrices are returned as-is (no copy): planners call
        this on every entry and repeated sorts of canonical inputs were
        pure overhead. Callers must treat the result as read-only, which
        they already did for the copying path's arrays.
        """
        if self._is_sorted(self.rows, self.cols):
            return self
        order = np.lexsort((self.cols, self.rows))
        return COOMatrix(self.shape, self.rows[order], self.cols[order],
                         self.vals[order], check=False)

    def sorted_cols(self) -> "COOMatrix":
        """Return a copy sorted column-major — the Fig. 7 SpTRSV order.

        Like :meth:`sorted_rows`, returns ``self`` when already in order.
        """
        if self._is_sorted(self.cols, self.rows):
            return self
        order = np.lexsort((self.rows, self.cols))
        return COOMatrix(self.shape, self.rows[order], self.cols[order],
                         self.vals[order], check=False)

    @staticmethod
    def _is_sorted(major: np.ndarray, minor: np.ndarray) -> bool:
        """True when entries are already (major, minor) lexicographic."""
        if major.size < 2:
            return True
        dm = np.diff(major)
        if np.any(dm < 0):
            return False
        return not np.any((dm == 0) & (np.diff(minor) < 0))

    # ------------------------------------------------------------------
    # dense interop and reference arithmetic (golden models for tests)
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array."""
        out = np.zeros(self.shape)
        out[self.rows, self.cols] = self.vals
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` via scatter-add."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise FormatError(
                f"vector length {x.shape} does not match matrix {self.shape}")
        y = np.zeros(self.shape[0])
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Reference transposed SpMV ``y = A.T @ x``."""
        return self.transpose().matvec(x)

    def transpose(self) -> "COOMatrix":
        """Swap rows and columns."""
        return COOMatrix((self.shape[1], self.shape[0]), self.cols.copy(),
                         self.rows.copy(), self.vals.copy(), check=False)

    def scaled(self, alpha: float) -> "COOMatrix":
        """Return ``alpha * A`` with identical structure."""
        return COOMatrix(self.shape, self.rows.copy(), self.cols.copy(),
                         self.vals * float(alpha), check=False)

    # ------------------------------------------------------------------
    # structural queries used by the partitioners
    # ------------------------------------------------------------------
    def row_counts(self) -> np.ndarray:
        """nnz per matrix row, length ``shape[0]``."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(np.int64)

    def col_counts(self) -> np.ndarray:
        """nnz per matrix column, length ``shape[1]``."""
        return np.bincount(self.cols, minlength=self.shape[1]).astype(np.int64)

    def nonempty_cols(self) -> np.ndarray:
        """Sorted array of column indices that hold at least one non-zero."""
        return np.unique(self.cols)

    def select(self, mask: np.ndarray) -> "COOMatrix":
        """Keep only the entries where *mask* is true (same shape)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.rows.shape:
            raise FormatError("mask length must equal nnz")
        return COOMatrix(self.shape, self.rows[mask], self.cols[mask],
                         self.vals[mask], check=False)

    def submatrix(self, row_range: Tuple[int, int],
                  col_range: Tuple[int, int]) -> "COOMatrix":
        """Extract ``A[r0:r1, c0:c1]`` with re-based indices."""
        r0, r1 = row_range
        c0, c1 = col_range
        if not (0 <= r0 <= r1 <= self.shape[0]
                and 0 <= c0 <= c1 <= self.shape[1]):
            raise FormatError(f"invalid ranges {row_range} x {col_range} for "
                              f"shape {self.shape}")
        mask = ((self.rows >= r0) & (self.rows < r1)
                & (self.cols >= c0) & (self.cols < c1))
        return COOMatrix((r1 - r0, c1 - c0), self.rows[mask] - r0,
                         self.cols[mask] - c0, self.vals[mask], check=False)

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector (zeros where unstored)."""
        n = min(self.shape)
        diag = np.zeros(n)
        mask = self.rows == self.cols
        diag[self.rows[mask]] = self.vals[mask]
        return diag

    def strictly_lower(self) -> "COOMatrix":
        """Entries below the main diagonal (structure for L - I)."""
        return self.select(self.rows > self.cols)

    def strictly_upper(self) -> "COOMatrix":
        """Entries above the main diagonal (structure for U - I)."""
        return self.select(self.rows < self.cols)

    def lower_triangular(self, unit: bool = False) -> "COOMatrix":
        """The lower triangle including the diagonal.

        With ``unit=True`` the stored diagonal is replaced by ones, matching
        the unitriangular matrices pSyncPIM's SpTRSV operates on.
        """
        tri = self.select(self.rows >= self.cols)
        if unit:
            tri = _with_unit_diagonal(tri)
        return tri

    def upper_triangular(self, unit: bool = False) -> "COOMatrix":
        """The upper triangle including the diagonal (see lower variant)."""
        tri = self.select(self.rows <= self.cols)
        if unit:
            tri = _with_unit_diagonal(tri)
        return tri

    def is_lower_triangular(self) -> bool:
        """True when no entry lies above the main diagonal."""
        return bool(np.all(self.rows >= self.cols))

    def is_upper_triangular(self) -> bool:
        """True when no entry lies below the main diagonal."""
        return bool(np.all(self.rows <= self.cols))

    def has_full_diagonal(self) -> bool:
        """True when every diagonal position stores a non-zero value."""
        if not self.is_square:
            return False
        diag = self.diagonal()
        return bool(np.all(diag != 0.0))

    def with_diagonal(self, values: Optional[np.ndarray] = None) -> "COOMatrix":
        """Return a copy whose diagonal is replaced by *values* (default 1).

        Used to rebuild unitriangular factors from the stored ``L - I``
        representation (paper §VI-B keeps unit diagonals implicit).
        """
        if not self.is_square:
            raise FormatError("with_diagonal requires a square matrix")
        n = self.shape[0]
        if values is None:
            values = np.ones(n)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (n,):
            raise FormatError("diagonal length must match matrix order")
        off = self.select(self.rows != self.cols)
        idx = np.arange(n)
        rows = np.concatenate([off.rows, idx])
        cols = np.concatenate([off.cols, idx])
        vals = np.concatenate([off.vals, values])
        return COOMatrix(self.shape, rows, cols, vals, check=False)


def _with_unit_diagonal(tri: COOMatrix) -> COOMatrix:
    """Replace the diagonal of a triangular COO matrix with ones."""
    return tri.with_diagonal(np.ones(tri.shape[0]))
