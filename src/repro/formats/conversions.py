"""Conversions between repro containers and scipy.sparse.

scipy is only used at the edges — golden references in tests and convenience
for users who already hold scipy matrices. The simulator itself never depends
on scipy types.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import FormatError
from .coo import COOMatrix
from .csr import CSRMatrix


def coo_to_scipy(matrix: COOMatrix) -> sp.coo_matrix:
    """Convert to ``scipy.sparse.coo_matrix`` (copies the arrays)."""
    return sp.coo_matrix(
        (matrix.vals.copy(), (matrix.rows.copy(), matrix.cols.copy())),
        shape=matrix.shape)


def scipy_to_coo(matrix) -> COOMatrix:
    """Convert any scipy sparse matrix to :class:`COOMatrix`.

    Duplicate coordinates are summed first, matching scipy's implicit
    semantics, because :class:`COOMatrix` forbids duplicates.
    """
    if not sp.issparse(matrix):
        raise FormatError("scipy_to_coo expects a scipy sparse matrix")
    coo = matrix.tocoo()
    coo.sum_duplicates()
    return COOMatrix(coo.shape, coo.row.astype(np.int64),
                     coo.col.astype(np.int64), coo.data.astype(np.float64))


def csr_to_scipy(matrix: CSRMatrix) -> sp.csr_matrix:
    """Convert to ``scipy.sparse.csr_matrix`` (copies the arrays)."""
    return sp.csr_matrix(
        (matrix.data.copy(), matrix.indices.copy(), matrix.indptr.copy()),
        shape=matrix.shape)


def scipy_to_csr(matrix) -> CSRMatrix:
    """Convert any scipy sparse matrix to :class:`CSRMatrix`."""
    return CSRMatrix.from_coo(scipy_to_coo(matrix))
