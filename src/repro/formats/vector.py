"""Sparse vector container for the Level-1 Sparse BLAS kernels.

pSyncPIM's gather/scatter and SpAXPY/SpDOT kernels (Table III) operate on
sparse vectors stored, like matrices, as coordinate lists: an index array and
a value array. The container mirrors :class:`~repro.formats.coo.COOMatrix`
semantics — no duplicate indices, explicit zeros allowed, canonical ascending
order available on request.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError


class SparseVector:
    """A length-``n`` sparse vector as parallel (index, value) arrays."""

    __slots__ = ("length", "indices", "values")

    def __init__(self, length: int, indices: np.ndarray, values: np.ndarray,
                 check: bool = True) -> None:
        self.length = int(length)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        if check:
            self.validate()

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "SparseVector":
        """Gather the non-zeros of a dense vector (the GATHER kernel)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 1:
            raise FormatError("from_dense expects a 1-D array")
        idx = np.nonzero(np.abs(dense) > tol)[0]
        return cls(dense.size, idx, dense[idx], check=False)

    @classmethod
    def empty(cls, length: int) -> "SparseVector":
        return cls(length, np.zeros(0, dtype=np.int64), np.zeros(0),
                   check=False)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def density(self) -> float:
        return self.nnz / self.length if self.length else 0.0

    def validate(self) -> "SparseVector":
        """Check bounds, matching lengths and duplicate-free indices."""
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise FormatError("indices/values must be 1-D and equal length")
        if self.length < 0:
            raise FormatError("vector length must be non-negative")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.length:
                raise FormatError("sparse vector index out of range")
            if np.unique(self.indices).size != self.nnz:
                raise FormatError("duplicate indices are not allowed")
        return self

    def sorted(self) -> "SparseVector":
        """Copy with ascending indices (the order the SpVQs stream in)."""
        order = np.argsort(self.indices, kind="stable")
        return SparseVector(self.length, self.indices[order],
                            self.values[order], check=False)

    def to_dense(self) -> np.ndarray:
        """Scatter into a dense vector (the SCATTER kernel)."""
        out = np.zeros(self.length)
        out[self.indices] = self.values
        return out

    def dot_dense(self, dense: np.ndarray) -> float:
        """Reference SpDOT: ``x_sp . y_d``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape != (self.length,):
            raise FormatError("dense operand length mismatch")
        return float(np.dot(self.values, dense[self.indices]))

    def axpy_into(self, alpha: float, dense: np.ndarray) -> np.ndarray:
        """Reference SpAXPY: returns ``alpha * x_sp + y_d`` (new array)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape != (self.length,):
            raise FormatError("dense operand length mismatch")
        out = dense.copy()
        out[self.indices] += float(alpha) * self.values
        return out

    def scaled(self, alpha: float) -> "SparseVector":
        """Return ``alpha * x`` with the same sparsity structure."""
        return SparseVector(self.length, self.indices.copy(),
                            self.values * float(alpha), check=False)

    def __iter__(self):
        for i, v in zip(self.indices, self.values):
            yield int(i), float(v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        if self.length != other.length or self.nnz != other.nnz:
            return False
        a, b = self.sorted(), other.sorted()
        return (np.array_equal(a.indices, b.indices)
                and np.allclose(a.values, b.values))

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseVector(length={self.length}, nnz={self.nnz})"


def intersect(a: SparseVector, b: SparseVector
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Indices common to *a* and *b* plus the aligned value arrays.

    This is the host-side reference for the VALU index calculator's
    *intersection* mode (paper §IV-B): binary ops only fire where both
    operands are present.
    """
    if a.length != b.length:
        raise FormatError("sparse vectors must share a length")
    sa, sb = a.sorted(), b.sorted()
    common, ia, ib = np.intersect1d(sa.indices, sb.indices,
                                    return_indices=True)
    return common, sa.values[ia], sb.values[ib]


def union(a: SparseVector, b: SparseVector
          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Union of index sets with zero-filled missing values.

    The reference for the index calculator's *union* mode: where one side is
    absent, its value contributes the identity (zero) and the other side's
    value is copied through.
    """
    if a.length != b.length:
        raise FormatError("sparse vectors must share a length")
    merged = np.union1d(a.indices, b.indices)
    av = np.zeros(merged.size)
    bv = np.zeros(merged.size)
    av[np.searchsorted(merged, a.indices)] = a.values
    bv[np.searchsorted(merged, b.indices)] = b.values
    return merged, av, bv
