"""The Table IX evaluation suite as deterministic synthetic stand-ins.

The paper evaluates on 26 matrices from SuiteSparse and SNAP (Table IX).
This module records each matrix's published dimension, density and kernel
assignment, and regenerates a pattern-class-matched synthetic matrix for it
(see :mod:`repro.formats.generators` for why the classes preserve the
behaviour pSyncPIM is sensitive to).

Every entry supports a ``scale`` factor that shrinks the dimension while
preserving the *mean row population* (``density * n``), because per-bank
workload in pSyncPIM is governed by nonzeros per row/partition rather than by
absolute dimension; CI and the benchmark harness run at small scales, and
``scale=1.0`` reproduces paper-size operands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import FormatError
from . import generators as gen
from .coo import COOMatrix


@dataclass(frozen=True)
class MatrixSpec:
    """One Table IX row: published metadata plus our generator class."""

    name: str
    dimension: int
    density: float
    #: Kernel/application assignment from Table IX's last column.
    applications: Tuple[str, ...]
    #: Generator pattern class (see module docstring).
    kind: str
    seed: int

    @property
    def mean_row_nnz(self) -> float:
        """Average stored entries per row implied by the published density."""
        return self.density * self.dimension

    @property
    def nnz_estimate(self) -> int:
        """Approximate total nonzeros implied by the published density."""
        return int(round(self.density * self.dimension * self.dimension))


def _spec(name: str, dim: int, density: float, apps: str, kind: str,
          seed: int) -> MatrixSpec:
    return MatrixSpec(name, dim, density, tuple(apps.split()), kind, seed)


#: Table IX, in paper order. Application tags: ``spmv`` (Fig. 8), ``sptrsv``
#: (Fig. 9 and P-BiCGStab), ``pcg`` (P-CG), ``graphs`` (graph apps).
TABLE_IX: Dict[str, MatrixSpec] = {spec.name: spec for spec in (
    _spec("2cubes_sphere", 101492, 1.60e-5, "sptrsv pcg", "stencil3d", 11),
    _spec("amazon0312", 400727, 1.99e-5, "graphs", "powerlaw", 12),
    _spec("bcsstk32", 44609, 1.01e-3, "spmv", "fem", 13),
    _spec("ca-CondMat", 23133, 3.49e-4, "graphs", "powerlaw", 14),
    _spec("cant", 62451, 1.03e-3, "spmv", "fem", 15),
    _spec("consph", 83334, 8.66e-4, "spmv", "fem", 16),
    _spec("crankseg_2", 63838, 3.47e-3, "spmv", "fem", 17),
    _spec("ct20stif", 52329, 9.50e-4, "spmv", "fem", 18),
    _spec("email-Enron", 36692, 2.73e-4, "graphs", "powerlaw", 19),
    _spec("facebook", 4039, 5.41e-3, "graphs", "powerlaw", 20),
    _spec("lhr71", 70304, 3.02e-4, "spmv", "random", 21),
    _spec("offshore", 259789, 6.29e-5, "sptrsv pcg", "stencil3d", 22),
    _spec("ohne2", 181343, 2.09e-4, "spmv", "random", 23),
    _spec("p2p-Gnutella31", 62586, 3.62e-5, "graphs", "rmat", 24),
    _spec("parabolic_fem", 525825, 1.33e-5, "sptrsv pcg", "stencil2d", 25),
    _spec("pdb1HYS", 36417, 3.28e-3, "spmv", "fem", 26),
    _spec("poisson3Da", 13514, 1.93e-3, "sptrsv", "stencil3d", 27),
    _spec("pwtk", 217918, 2.43e-4, "spmv", "fem", 28),
    _spec("rma10", 46835, 1.06e-3, "spmv sptrsv", "fem", 29),
    _spec("roadNet-CA", 1971281, 1.42e-6, "graphs", "mesh", 30),
    _spec("shipsec1", 140874, 1.80e-4, "spmv", "fem", 31),
    _spec("soc-sign-epinions", 131828, 4.84e-5, "spmv", "rmat", 32),
    _spec("Stanford", 281903, 2.90e-5, "spmv graphs", "powerlaw", 33),
    _spec("webbase-1M", 1000005, 3.11e-6, "spmv", "rmat", 34),
    _spec("wiki-Vote", 8297, 1.51e-3, "graphs", "powerlaw", 35),
    _spec("xenon2", 157464, 1.56e-4, "spmv", "fem", 36),
)}


def suite_names() -> Tuple[str, ...]:
    """All 26 matrix names in Table IX order."""
    return tuple(TABLE_IX)


def matrix_spec(name: str) -> MatrixSpec:
    """Look up a Table IX entry; raises :class:`FormatError` if unknown."""
    try:
        return TABLE_IX[name]
    except KeyError:
        raise FormatError(f"unknown suite matrix {name!r}; see suite_names()"
                          ) from None


def matrices_for(tag: str) -> Tuple[str, ...]:
    """Names of matrices whose Table IX assignment includes *tag*."""
    if tag not in {"spmv", "sptrsv", "pcg", "graphs"}:
        raise FormatError(f"unknown application tag {tag!r}")
    return tuple(name for name, spec in TABLE_IX.items()
                 if tag in spec.applications)


def generate(name: str, scale: float = 1.0) -> COOMatrix:
    """Regenerate the synthetic stand-in for Table IX matrix *name*.

    ``scale`` shrinks the dimension (min 64 rows) while holding the mean row
    population constant; ``scale=1.0`` reproduces the published dimension.
    Matrices tagged ``sptrsv``/``pcg`` are made symmetric positive definite
    so the solvers they feed are well posed.
    """
    spec = matrix_spec(name)
    if scale <= 0:
        raise FormatError("scale must be positive")
    n = max(64, int(round(spec.dimension * scale)))
    mean_row = max(spec.mean_row_nnz, 1.0)
    matrix = _generate_kind(spec, n, mean_row)
    if "sptrsv" in spec.applications or "pcg" in spec.applications:
        matrix = gen.make_spd(matrix)
    return matrix


def _generate_kind(spec: MatrixSpec, n: int, mean_row: float) -> COOMatrix:
    if spec.kind == "stencil2d":
        side = max(8, int(round(math.sqrt(n))))
        return gen.stencil_2d(side, side)
    if spec.kind == "stencil3d":
        side = max(4, int(round(n ** (1.0 / 3.0))))
        return gen.stencil_3d(side, side, side)
    if spec.kind == "mesh":
        # Road networks: near-planar, uniform low degree, huge diameter —
        # structurally a jittered grid.
        side = max(8, int(round(math.sqrt(n))))
        grid = gen.stencil_2d(side, side)
        off = grid.select(grid.rows != grid.cols)
        return COOMatrix(grid.shape, off.rows, off.cols,
                         np.ones(off.nnz), check=False)
    if spec.kind == "fem":
        return gen.banded_fem(n, avg_row_nnz=mean_row, seed=spec.seed)
    if spec.kind == "powerlaw":
        return gen.power_law_graph(n, avg_degree=mean_row, seed=spec.seed)
    if spec.kind == "rmat":
        return gen.rmat(n, nnz=int(n * mean_row), seed=spec.seed)
    if spec.kind == "random":
        return gen.uniform_random(n, n, density=mean_row / n, seed=spec.seed)
    raise FormatError(f"unknown generator kind {spec.kind!r}")
