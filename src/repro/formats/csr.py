"""Compressed sparse row (CSR) container.

The paper argues COO is the right on-bank format for <1% density (§IV-C) but
notes pSyncPIM can support CSR/CSC with four extra index registers and an
integer adder. The host side of this reproduction also needs CSR for fast
row-sliced traversals (level scheduling, golden references), so a small,
self-contained CSR type lives here with lossless conversions to/from COO.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix


class CSRMatrix:
    """Row-compressed sparse matrix with int64 indices and float64 values."""

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(self, shape: Tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray,
                 check: bool = True) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        if check:
            self.validate()

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Convert from COO; duplicate coordinates are rejected upstream."""
        srt = coo.sorted_rows()
        indptr = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, srt.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.shape, indptr, srt.cols, srt.vals, check=False)

    def to_coo(self) -> COOMatrix:
        """Convert back to COO in row-major order."""
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64),
                         np.diff(self.indptr))
        return COOMatrix(self.shape, rows, self.indices.copy(),
                         self.data.copy(), check=False)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def validate(self) -> "CSRMatrix":
        """Check monotone indptr and in-range, per-row-sorted indices."""
        if self.indptr.size != self.shape[0] + 1:
            raise FormatError("indptr length must be nrows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise FormatError("indptr does not span the index array")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise FormatError("indices and data length mismatch")
        if self.nnz and (self.indices.min() < 0
                         or self.indices.max() >= self.shape[1]):
            raise FormatError("column index out of range")
        return self

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row *i* as views (no copies)."""
        if not 0 <= i < self.shape[0]:
            raise FormatError(f"row {i} out of range for shape {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_counts(self) -> np.ndarray:
        """nnz per row."""
        return np.diff(self.indptr)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference ``y = A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise FormatError("vector length does not match matrix shape")
        y = np.zeros(self.shape[0])
        contrib = self.data * x[self.indices]
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        np.add.at(y, rows, contrib)
        return y

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (small matrices / tests only)."""
        return self.to_coo().to_dense()
