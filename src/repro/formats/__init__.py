"""Sparse matrix/vector substrate: containers, I/O, generators, suite.

Public surface of :mod:`repro.formats`:

* :class:`COOMatrix`, :class:`CSRMatrix`, :class:`SparseVector` — containers.
* :func:`read_matrix_market` / :func:`write_matrix_market` — .mtx I/O.
* :mod:`repro.formats.generators` — synthetic pattern generators.
* Table IX registry: :data:`TABLE_IX`, :func:`suite_names`,
  :func:`matrix_spec`, :func:`matrices_for`, :func:`generate`.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .vector import SparseVector, intersect, union
from .bitmap import BitmapMatrix, best_format, coo_footprint_bytes
from .conversions import (coo_to_scipy, scipy_to_coo, csr_to_scipy,
                          scipy_to_csr)
from .matrix_market import (read_matrix_market, reads_matrix_market,
                            write_matrix_market, writes_matrix_market)
from .suite import (TABLE_IX, MatrixSpec, generate, matrices_for,
                    matrix_spec, suite_names)

__all__ = [
    "COOMatrix", "CSRMatrix", "SparseVector", "intersect", "union",
    "BitmapMatrix", "best_format", "coo_footprint_bytes",
    "coo_to_scipy", "scipy_to_coo", "csr_to_scipy", "scipy_to_csr",
    "read_matrix_market", "reads_matrix_market", "write_matrix_market",
    "writes_matrix_market",
    "TABLE_IX", "MatrixSpec", "generate", "matrices_for", "matrix_spec",
    "suite_names",
]
