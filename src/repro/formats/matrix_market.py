"""Matrix Market (.mtx) coordinate-format reader and writer.

The paper's Table IX matrices come from SuiteSparse/SNAP, which distribute
Matrix Market files. This module implements the coordinate subset of the
format (the only subset those collections use for sparse matrices):
``real`` / ``integer`` / ``pattern`` fields with ``general`` / ``symmetric``
/ ``skew-symmetric`` symmetry. Dense ``array`` files and ``complex`` fields
are out of scope and rejected explicitly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Tuple, Union

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRY = ("general", "symmetric", "skew-symmetric")


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    *source* may be a path or an open text stream. Symmetric and
    skew-symmetric files are expanded to full (general) storage, which is
    what every consumer in this package expects.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_matrix_market(handle)
    return _parse(source)


def reads_matrix_market(text: str) -> COOMatrix:
    """Parse Matrix Market *text* (convenience for tests and examples)."""
    return _parse(io.StringIO(text))


def write_matrix_market(matrix: COOMatrix,
                        target: Union[str, Path, TextIO],
                        comment: str = "") -> None:
    """Write *matrix* as a general real coordinate Matrix Market file."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as handle:
            write_matrix_market(matrix, handle, comment=comment)
            return
    target.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
    for line in comment.splitlines():
        target.write(f"% {line}\n")
    target.write(f"{matrix.shape[0]} {matrix.shape[1]} {matrix.nnz}\n")
    for r, c, v in zip(matrix.rows, matrix.cols, matrix.vals):
        target.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")


def writes_matrix_market(matrix: COOMatrix, comment: str = "") -> str:
    """Serialise *matrix* to a Matrix Market string."""
    buffer = io.StringIO()
    write_matrix_market(matrix, buffer, comment=comment)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _parse(stream: TextIO) -> COOMatrix:
    header = stream.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise FormatError("missing %%MatrixMarket header")
    tokens = header.split()
    if len(tokens) != 5 or tokens[1].lower() != "matrix":
        raise FormatError(f"malformed header: {header.strip()!r}")
    layout, field, symmetry = (t.lower() for t in tokens[2:5])
    if layout != "coordinate":
        raise FormatError(f"unsupported layout {layout!r} (only coordinate)")
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    size_line = _next_data_line(stream)
    if size_line is None:
        raise FormatError("missing size line")
    try:
        nrows, ncols, nnz = (int(t) for t in size_line.split())
    except ValueError:
        raise FormatError(f"malformed size line: {size_line!r}") from None

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for _ in range(nnz):
        line = _next_data_line(stream)
        if line is None:
            raise FormatError(f"file ends early: expected {nnz} entries, "
                              f"got {len(rows)}")
        parts = line.split()
        expected = 2 if field == "pattern" else 3
        if len(parts) < expected:
            raise FormatError(f"malformed entry line: {line!r}")
        r, c = int(parts[0]) - 1, int(parts[1]) - 1
        v = 1.0 if field == "pattern" else float(parts[2])
        rows.append(r)
        cols.append(c)
        vals.append(v)

    return _expand_symmetry((nrows, ncols), rows, cols, vals, symmetry)


def _next_data_line(stream: TextIO):
    """Next non-comment, non-blank line stripped of whitespace, or None."""
    for line in stream:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            return stripped
    return None


def _expand_symmetry(shape: Tuple[int, int], rows, cols, vals,
                     symmetry: str) -> COOMatrix:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if symmetry == "general":
        return COOMatrix(shape, rows, cols, vals)
    off = rows != cols
    sign = -1.0 if symmetry == "skew-symmetric" else 1.0
    rows_full = np.concatenate([rows, cols[off]])
    cols_full = np.concatenate([cols, rows[off]])
    vals_full = np.concatenate([vals, sign * vals[off]])
    return COOMatrix(shape, rows_full, cols_full, vals_full)
