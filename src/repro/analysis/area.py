"""Area model (paper §VII-F and Table X).

The paper derives the processing-unit area from Samsung HBM-PIM silicon
data: 0.967 mm^2 per unit, 32 units per die (30.94 mm^2), with banks and
TSVs occupying the remaining 38.05 mm^2, for 68.99 mm^2 total. The model
here decomposes the per-unit area into its Fig. 4 components — scaled so
the total matches the published figure — which lets the ablation benches
ask what a configuration change (more queues, wider datapath) would cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import ProcessingUnitConfig

#: Table X, as printed in the paper (mm^2).
TABLE_X = {
    "Samsung HBM-PIM": {"baseline": "HBM", "total_area": 84.4,
                        "stacks": "4 PIM + 4 HBM", "pe_area": 22.8,
                        "capacity_gb": 6},
    "SpaceA": {"baseline": "HMC", "total_area": 48.0, "stacks": "8 PIM",
               "pe_area": 2.333, "capacity_gb": 8},
    "pSyncPIM": {"baseline": "HBM", "total_area": 68.99, "stacks": "8 PIM",
                 "pe_area": 30.94, "capacity_gb": 4},
}

#: Component area densities calibrated so the default unit hits 0.967 mm^2.
#: Derived from the HBM-PIM FPU/SRAM density reports ([24], [10]).
_ALU_MM2_PER_BYTE = 0.0065        # VALU datapath per byte of width
_REGISTER_MM2_PER_BYTE = 0.0009  # dense/scalar/control registers
_QUEUE_MM2_PER_BYTE = 0.0004     # sparse vector queues (FIFO SRAM)
_CONTROL_OVERHEAD_MM2 = 0.1046      # sequencer, loop counters, index calc


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-unit and per-cube area figures in mm^2."""

    valu: float
    registers: float
    queues: float
    control: float
    units_per_die: int = 32
    non_pe_mm2: float = 38.05  # banks + TSV region (HBM-PIM report)

    @property
    def per_unit(self) -> float:
        return self.valu + self.registers + self.queues + self.control

    @property
    def pe_total(self) -> float:
        return self.per_unit * self.units_per_die

    @property
    def die_total(self) -> float:
        return self.pe_total + self.non_pe_mm2


def unit_area(config: ProcessingUnitConfig = ProcessingUnitConfig()
              ) -> AreaBreakdown:
    """Decomposed area of one processing unit for *config*."""
    register_bytes = (config.control_register_bytes
                      + config.scalar_register_bytes
                      + config.num_dense_registers
                      * config.dense_register_bytes)
    queue_bytes = config.num_sparse_queues * config.sparse_queue_bytes
    return AreaBreakdown(
        valu=config.datapath_bytes * 2 * _ALU_MM2_PER_BYTE,
        registers=register_bytes * _REGISTER_MM2_PER_BYTE,
        queues=queue_bytes * _QUEUE_MM2_PER_BYTE,
        control=_CONTROL_OVERHEAD_MM2,
    )


def table_x_model() -> Dict[str, float]:
    """The modelled pSyncPIM row of Table X (for the bench to print)."""
    breakdown = unit_area()
    return {
        "per_unit_mm2": breakdown.per_unit,
        "pe_area_mm2": breakdown.pe_total,
        "total_area_mm2": breakdown.die_total,
        "paper_per_unit_mm2": 0.967,
        "paper_pe_area_mm2": 30.94,
        "paper_total_area_mm2": 68.99,
    }
