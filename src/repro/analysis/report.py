"""Plain-text reporting helpers used by the benchmark harness.

The paper's figures are bar charts; the benches regenerate them as aligned
text tables (one row per matrix/application, one column per system) plus
the geometric means the paper quotes. Keeping the renderer here means the
benches stay pure data producers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Render an aligned text table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in text_rows), default=0))
              for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown(breakdowns: Dict[str, Dict[str, float]],
                     classes: Sequence[str],
                     title: Optional[str] = None) -> str:
    """Render per-item kernel-class percentage breakdowns (Figs. 2, 12)."""
    headers = ["item"] + [f"{c} %" for c in classes] + ["total (us)"]
    rows = []
    for item, ledger in breakdowns.items():
        total = sum(ledger.get(c, 0.0) for c in classes)
        shares = [100.0 * ledger.get(c, 0.0) / total if total else 0.0
                  for c in classes]
        rows.append([item] + shares + [total * 1e6])
    return format_table(headers, rows, title=title)


def normalised_series(times: Dict[str, float],
                      baseline: str) -> Dict[str, float]:
    """Speedups of every entry relative to *baseline* (paper convention:
    values above 1 mean faster than the baseline)."""
    base = times[baseline]
    return {name: base / value for name, value in times.items()}


# ----------------------------------------------------------------------
# sweep aggregation (repro.sweep produces these, the benches consume them)
# ----------------------------------------------------------------------
@dataclass
class JobRecord:
    """Outcome of one sweep job: its report plus execution bookkeeping.

    ``report`` is the kernel's :class:`repro.core.PerfReport` (``None`` for
    jobs that only materialise data, e.g. the Table IX suite kernel);
    ``extras`` carries kernel-specific side outputs such as matrix shapes,
    dependency-level counts or solve residuals.
    """

    label: str
    kernel: str
    matrix: str
    report: Optional[Any] = None
    #: Modelled kernel seconds (``report.seconds``; 0 without a report).
    seconds: float = 0.0
    #: Wall-clock seconds the worker spent producing this record.
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    worker: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)
    job: Any = None
    #: Exception summary (``"ValueError: ..."``) when the job failed;
    #: empty on success. Failed jobs carry no report.
    error: str = ""
    #: Full formatted traceback of the failure (empty on success).
    traceback: str = ""
    #: Observability payload recorded inside the worker while
    #: ``PSYNCPIM_OBS`` was on (``Recorder.delta_since`` dict); ``None``
    #: when observability was off.
    metrics: Optional[Dict[str, Any]] = None
    #: Cycle-attribution artifact (:class:`repro.obs.report.RunReport`)
    #: when the job ran with attribution on; ``None`` otherwise.
    attrib: Optional[Any] = None

    @property
    def cached(self) -> bool:
        """True when every pipeline stage came from the artifact cache."""
        return self.cache_misses == 0 and self.cache_hits > 0

    @property
    def failed(self) -> bool:
        return bool(self.error)


@dataclass
class SweepResult:
    """Aggregated outcome of one sweep run.

    Exposes the observability the sweep runner is built for: per-job
    modelled and wall times, cache hit/miss counters and how well the
    worker pool was utilised.
    """

    records: List[JobRecord]
    #: Wall-clock seconds of the whole sweep (submission to last result).
    wall_seconds: float
    workers: int = 1
    cache_enabled: bool = True
    cache_dir: str = ""
    #: Batch mode the sweep ran under (``"off"`` or ``"jobs"``; see
    #: :func:`repro.config.resolve_batch`).
    batch: str = "off"

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def labels(self) -> List[str]:
        return [record.label for record in self.records]

    def record(self, label: str) -> JobRecord:
        """Look one record up by label; raises ``KeyError`` if unknown."""
        for record in self.records:
            if record.label == label:
                return record
        raise KeyError(f"no sweep job labelled {label!r}; "
                       f"have {self.labels}")

    def report(self, label: str) -> Any:
        """The :class:`PerfReport` of the job labelled *label*."""
        return self.record(label).report

    # -- failure observability ----------------------------------------
    @property
    def failures(self) -> List[JobRecord]:
        """Records whose job raised (captured, not propagated)."""
        return [record for record in self.records if record.failed]

    @property
    def ok(self) -> bool:
        """True when no job failed."""
        return not self.failures

    def raise_failures(self) -> None:
        """Re-raise the first failure (with its worker traceback) if any."""
        from ..errors import ExecutionError
        failures = self.failures
        if failures:
            first = failures[0]
            raise ExecutionError(
                f"{len(failures)} sweep job(s) failed; first: "
                f"{first.label}: {first.error}\n{first.traceback}")

    # -- metric aggregation -------------------------------------------
    @staticmethod
    def _metric_key(record: JobRecord, name: str) -> str:
        """Failed jobs' partial metrics merge under a tagged name.

        A job that died mid-pipeline still recorded real work (plans
        built, traces priced) before the exception; dropping its payload
        would under-count the sweep, but summing it anonymously into the
        healthy totals would poison them. Tagging keeps both properties:
        everything captured survives, and the failure is attributable.
        """
        if record.failed:
            return f"failed[{record.label}].{name}"
        return name

    def merged_counters(self) -> Dict[str, float]:
        """Sum the per-job observability counters across all records.

        Only populated when the sweep ran with ``PSYNCPIM_OBS`` on; an
        empty dict otherwise. Failed jobs' partial counters are kept but
        namespaced ``failed[<label>].<name>`` (see :meth:`_metric_key`).
        """
        totals: Dict[str, float] = {}
        for record in self.records:
            if not record.metrics:
                continue
            for name, value in record.metrics.get("counters", {}).items():
                key = self._metric_key(record, name)
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def merged_gauges(self) -> Dict[str, float]:
        """Last-written value per gauge across the sweep's records.

        Records are walked in job order, so a gauge set by several jobs
        keeps the last healthy job's observation — matching how the
        parent recorder's merge treats gauges. Failed jobs' gauges are
        namespaced like :meth:`merged_counters`.
        """
        merged: Dict[str, float] = {}
        for record in self.records:
            if not record.metrics:
                continue
            for name, value in record.metrics.get("gauges", {}).items():
                merged[self._metric_key(record, name)] = float(value)
        return merged

    def merged_bank_counters(self) -> Dict[str, List[float]]:
        """Elementwise-summed per-bank counter arrays across all records.

        Arrays of different lengths (e.g. C=4 vs C=16 shard widths in one
        sweep) are summed over their common prefix with the longer tail
        preserved. Failed jobs' partial arrays are kept under the
        ``failed[<label>].`` namespace instead of being dropped.
        """
        merged: Dict[str, List[float]] = {}
        for record in self.records:
            if not record.metrics:
                continue
            payload = record.metrics.get("bank_counters", {})
            for name, values in payload.items():
                key = self._metric_key(record, name)
                values = [float(v) for v in values]
                have = merged.get(key)
                if have is None:
                    merged[key] = values
                    continue
                if len(values) > len(have):
                    have, values = values, have
                for i, v in enumerate(values):
                    have[i] += v
                merged[key] = have
        return merged

    # -- attribution ---------------------------------------------------
    def attrib_reports(self) -> Dict[str, Any]:
        """RunReports of jobs that ran with attribution on, by label."""
        return {record.label: record.attrib for record in self.records
                if record.attrib is not None}

    # -- cache observability ------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(record.cache_hits for record in self.records)

    @property
    def cache_misses(self) -> int:
        return sum(record.cache_misses for record in self.records)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def all_cached(self) -> bool:
        """True when every job was served entirely from the cache."""
        return bool(self.records) and all(record.cached
                                          for record in self.records)

    # -- worker observability -----------------------------------------
    @property
    def busy_seconds(self) -> float:
        """Total worker-occupied seconds across all jobs."""
        return sum(record.wall_seconds for record in self.records)

    @property
    def parallel_speedup(self) -> float:
        """Aggregate job time over sweep wall time (1.0 = serial pace)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.wall_seconds

    @property
    def jobs_per_second(self) -> float:
        """Sweep throughput against wall-clock (batch-mode headline)."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.records) / self.wall_seconds

    @property
    def worker_utilisation(self) -> float:
        """Fraction of the worker pool kept busy over the sweep."""
        if self.workers <= 0 or self.wall_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds
                   / (self.workers * self.wall_seconds))

    # -- rendering -----------------------------------------------------
    def summary_table(self, title: Optional[str] = None) -> str:
        """Per-job table plus the sweep-wide totals, as aligned text."""
        rows = []
        for record in self.records:
            model_us = (record.report.seconds * 1e6 if record.report
                        else float("nan"))
            rows.append([
                record.label,
                ("FAILED" if record.failed
                 else "-" if math.isnan(model_us) else f"{model_us:.2f}"),
                record.wall_seconds * 1e3,
                record.cache_hits,
                record.cache_misses,
                record.worker,
            ])
        table = format_table(
            ["job", "model (us)", "wall (ms)", "hits", "misses", "worker"],
            rows, title=title or "sweep results")
        cache = (self.cache_dir if self.cache_enabled
                 else "disabled (--no-cache)")
        footer = (
            f"jobs: {len(self.records)}  wall: {self.wall_seconds:.2f} s  "
            f"({self.jobs_per_second:.1f} jobs/s)  "
            f"workers: {self.workers}  batch: {self.batch}  "
            f"utilisation: {100.0 * self.worker_utilisation:.0f}%  "
            f"parallel speedup: {self.parallel_speedup:.2f}x\n"
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"(hit rate {100.0 * self.hit_rate:.0f}%) at {cache}")
        failures = self.failures
        if failures:
            footer += (f"\nfailures: {len(failures)} "
                       f"({', '.join(r.label for r in failures)})")
        return table + "\n" + footer
