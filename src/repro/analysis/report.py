"""Plain-text reporting helpers used by the benchmark harness.

The paper's figures are bar charts; the benches regenerate them as aligned
text tables (one row per matrix/application, one column per system) plus
the geometric means the paper quotes. Keeping the renderer here means the
benches stay pure data producers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Render an aligned text table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in text_rows), default=0))
              for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown(breakdowns: Dict[str, Dict[str, float]],
                     classes: Sequence[str],
                     title: Optional[str] = None) -> str:
    """Render per-item kernel-class percentage breakdowns (Figs. 2, 12)."""
    headers = ["item"] + [f"{c} %" for c in classes] + ["total (us)"]
    rows = []
    for item, ledger in breakdowns.items():
        total = sum(ledger.get(c, 0.0) for c in classes)
        shares = [100.0 * ledger.get(c, 0.0) / total if total else 0.0
                  for c in classes]
        rows.append([item] + shares + [total * 1e6])
    return format_table(headers, rows, title=title)


def normalised_series(times: Dict[str, float],
                      baseline: str) -> Dict[str, float]:
    """Speedups of every entry relative to *baseline* (paper convention:
    values above 1 mean faster than the baseline)."""
    base = times[baseline]
    return {name: base / value for name, value in times.items()}
