"""Analysis & reporting: area model, geomeans, table renderers."""

from .area import TABLE_X, AreaBreakdown, table_x_model, unit_area
from .report import (JobRecord, SweepResult, format_breakdown, format_table,
                     geomean, normalised_series)

__all__ = ["TABLE_X", "AreaBreakdown", "table_x_model", "unit_area",
           "JobRecord", "SweepResult", "format_breakdown", "format_table",
           "geomean", "normalised_series"]
