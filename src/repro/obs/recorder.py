"""The observability recorder: spans, counters, gauges, per-bank arrays.

One process-wide :class:`Recorder` accumulates everything the instrumented
layers emit:

* **spans** — nested host-side phase timings (``with span("partition")``),
  stamped with process/thread ids and nesting depth so the Chrome-trace
  exporter can reconstruct the flame graph;
* **counters** — monotonically accumulated totals (DRAM command mix,
  engine beats, cache hits);
* **gauges** — last-value observations (bank imbalance, utilisation);
* **bank counters** — elementwise-accumulated per-bank arrays (busy/idle
  beats per processing unit), the substrate of the per-bank utilisation
  tables.

The recorder itself never looks at the enable gate — gating lives in
:mod:`repro.obs` (the package front door) so that a disabled run pays only
one module-global boolean test per instrumentation site and allocates
nothing. Everything stored here is plain data (floats, numpy arrays,
dataclasses), so a recorder's contents can be snapshotted into a picklable
payload, shipped across a process boundary (sweep workers) and merged into
a parent recorder without loss.

Timestamps come from :func:`time.perf_counter_ns`, which on Linux is
``CLOCK_MONOTONIC`` — a machine-wide clock, so spans recorded in forked
sweep workers line up with the parent's timeline in the exported trace.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Environment variable enabling observability (``1``/``true``/``yes``/``on``).
OBS_ENV = "PSYNCPIM_OBS"

#: Environment variable overriding where exports land (default
#: ``./psyncpim-obs``).
OBS_DIR_ENV = "PSYNCPIM_OBS_DIR"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``PSYNCPIM_OBS`` asks for observability to be on."""
    env = os.environ if environ is None else environ
    return env.get(OBS_ENV, "").strip().lower() in _TRUTHY


@dataclass
class SpanEvent:
    """One completed span: a named phase with its wall-clock extent."""

    name: str
    cat: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "cat": self.cat,
                "start_ns": self.start_ns, "dur_ns": self.dur_ns,
                "pid": self.pid, "tid": self.tid, "depth": self.depth,
                "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanEvent":
        return cls(name=data["name"], cat=data["cat"],
                   start_ns=data["start_ns"], dur_ns=data["dur_ns"],
                   pid=data["pid"], tid=data["tid"], depth=data["depth"],
                   args=dict(data.get("args", {})))


class _Span:
    """Context manager recording one span into its recorder on exit.

    Re-entrant per instance is not supported (each ``span()`` call makes a
    fresh one); nesting different spans is the normal case and is tracked
    through a per-thread depth stack.
    """

    __slots__ = ("_recorder", "name", "cat", "args", "_start")

    def __init__(self, recorder: "Recorder", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        self._recorder._push_depth()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        depth = self._recorder._pop_depth()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._recorder._record_span(SpanEvent(
            name=self.name, cat=self.cat, start_ns=self._start,
            dur_ns=end - self._start, pid=os.getpid(),
            tid=threading.get_ident(), depth=depth, args=self.args))


class Mark:
    """A position in a recorder's streams, for delta extraction."""

    __slots__ = ("events_len", "samples_len", "counters", "gauges",
                 "bank_counters")

    def __init__(self, events_len: int, samples_len: int,
                 counters: Dict[str, float], gauges: Dict[str, float],
                 bank_counters: Dict[str, np.ndarray]) -> None:
        self.events_len = events_len
        self.samples_len = samples_len
        self.counters = counters
        self.gauges = gauges
        self.bank_counters = bank_counters


class Recorder:
    """Accumulates spans, counters, gauges and per-bank counter arrays."""

    def __init__(self) -> None:
        self.events: List[SpanEvent] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.bank_counters: Dict[str, np.ndarray] = {}
        #: Chrome counter-track samples: (ts_ns, name, value).
        self.samples: List[Tuple[int, str, float]] = []
        #: Number of recording calls served (overhead accounting).
        self.update_count = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span bookkeeping ----------------------------------------------
    def _push_depth(self) -> None:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1

    def _pop_depth(self) -> int:
        depth = getattr(self._local, "depth", 1) - 1
        self._local.depth = depth
        return depth

    def _record_span(self, event: SpanEvent) -> None:
        with self._lock:
            self.events.append(event)
            self.update_count += 1

    def span(self, name: str, cat: str = "host", **args: Any) -> _Span:
        """A context manager timing one named phase."""
        return _Span(self, name, cat, args)

    # -- scalar metrics -------------------------------------------------
    def add_counter(self, name: str, value: float = 1.0,
                    sample: bool = False) -> None:
        """Accumulate *value* onto counter *name*.

        ``sample=True`` additionally records a (timestamp, total) sample
        for the Chrome-trace counter track of *name*.
        """
        with self._lock:
            total = self.counters.get(name, 0.0) + value
            self.counters[name] = total
            self.update_count += 1
            if sample:
                self.samples.append((time.perf_counter_ns(), name, total))

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest observation of gauge *name*."""
        with self._lock:
            self.gauges[name] = float(value)
            self.update_count += 1

    def add_bank_counter(self, name: str, values: Sequence[float],
                         sample: bool = False) -> None:
        """Accumulate a per-bank array elementwise onto *name*.

        Arrays of different lengths (engines sized to their wave) are
        accumulated over the common prefix of a max-length buffer, so
        lane/bank ``i`` always aggregates into slot ``i``.
        """
        arr = np.asarray(values, dtype=np.float64)
        with self._lock:
            have = self.bank_counters.get(name)
            if have is None:
                self.bank_counters[name] = arr.copy()
            elif have.size >= arr.size:
                have[:arr.size] += arr
            else:
                grown = np.zeros(arr.size)
                grown[:have.size] = have
                grown += arr
                self.bank_counters[name] = grown
            self.update_count += 1
            if sample:
                total = self.bank_counters[name]
                self.samples.append((time.perf_counter_ns(),
                                     name, float(total.sum())))

    # -- cross-process payloads -----------------------------------------
    def mark(self) -> Mark:
        """Snapshot the current stream positions and totals."""
        with self._lock:
            return Mark(events_len=len(self.events),
                        samples_len=len(self.samples),
                        counters=dict(self.counters),
                        gauges=dict(self.gauges),
                        bank_counters={k: v.copy() for k, v
                                       in self.bank_counters.items()})

    def delta_since(self, mark: Mark) -> Dict[str, Any]:
        """Everything recorded after *mark*, as a picklable payload."""
        with self._lock:
            counters = {k: v - mark.counters.get(k, 0.0)
                        for k, v in self.counters.items()
                        if v != mark.counters.get(k, 0.0)}
            gauges = {k: v for k, v in self.gauges.items()
                      if mark.gauges.get(k) != v}
            banks: Dict[str, List[float]] = {}
            for name, arr in self.bank_counters.items():
                base = mark.bank_counters.get(name)
                if base is None:
                    banks[name] = arr.tolist()
                else:
                    delta = arr.copy()
                    delta[:base.size] -= base
                    if np.any(delta):
                        banks[name] = delta.tolist()
            return {
                "counters": counters,
                "gauges": gauges,
                "bank_counters": banks,
                "events": [e.to_dict()
                           for e in self.events[mark.events_len:]],
                "samples": list(self.samples[mark.samples_len:]),
            }

    def snapshot(self) -> Dict[str, Any]:
        """The whole recorder as a picklable/JSON-able payload."""
        return self.delta_since(Mark(0, 0, {}, {}, {}))

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold a payload (from :meth:`delta_since`) into this recorder."""
        if not payload:
            return
        for name, value in payload.get("counters", {}).items():
            self.add_counter(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, values in payload.get("bank_counters", {}).items():
            self.add_bank_counter(name, values)
        with self._lock:
            for data in payload.get("events", []):
                self.events.append(SpanEvent.from_dict(data))
            for ts, name, value in payload.get("samples", []):
                self.samples.append((int(ts), name, float(value)))

    def reset(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            self.events.clear()
            self.counters.clear()
            self.gauges.clear()
            self.bank_counters.clear()
            self.samples.clear()
            self.update_count = 0


__all__ = ["OBS_ENV", "OBS_DIR_ENV", "env_enabled", "Mark", "Recorder",
           "SpanEvent"]
