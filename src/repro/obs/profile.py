"""The human-readable profile report behind ``psyncpim profile``.

Renders one metrics dump (see :func:`repro.obs.export.metrics_dict`) into
the tables the paper's evaluation sections reason with:

* **per-phase** — where the host-side wall-clock went (planner phases,
  engine rounds, sweep jobs), with call counts, totals and self time;
* **per-bank** — busy vs idle beats per processing-unit lane, the
  bank-utilisation view behind Fig. 12's breakdown argument;
* **per-channel** — scheduled cycles and command mix per pseudo-channel
  when the run used channel-sharded execution, exposing the channel
  imbalance behind the max-over-channels critical path;
* **DRAM** — command mix, row-buffer hit/miss and the per-tag cycle
  attribution of the scheduled traces;
* **energy** — the pJ breakdown by source when energy pricing ran.

Rendering reuses :func:`repro.analysis.format_table` so profile output
lines up visually with every other report the toolkit prints.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..analysis.report import format_table

#: Show at most this many individual banks in the per-bank table; the
#: remainder is folded into aggregate rows (256 banks do not fit a screen).
MAX_BANK_ROWS = 16


def render_profile(metrics: Dict[str, Any],
                   max_banks: int = MAX_BANK_ROWS) -> str:
    """Render a full profile report from one metrics dump."""
    sections = [_render_spans(metrics.get("spans", {}))]
    banks = _render_banks(metrics.get("bank_counters", {}), max_banks)
    if banks:
        sections.append(banks)
    channels = _render_channels(metrics.get("bank_counters", {}))
    if channels:
        sections.append(channels)
    dram = _render_dram(metrics.get("counters", {}))
    if dram:
        sections.append(dram)
    energy = _render_energy(metrics.get("counters", {}))
    if energy:
        sections.append(energy)
    other = _render_counters(metrics.get("counters", {}),
                             metrics.get("gauges", {}))
    if other:
        sections.append(other)
    return "\n\n".join(section for section in sections if section)


# ----------------------------------------------------------------------
def _render_spans(spans: Dict[str, Dict[str, float]]) -> str:
    if not spans:
        return ("no spans recorded "
                "(run with PSYNCPIM_OBS=1 to collect phase timings)")
    total = sum(entry["self_s"] for entry in spans.values())
    rows: List[List[Any]] = []
    ordered = sorted(spans.items(), key=lambda kv: -kv[1]["total_s"])
    for name, entry in ordered:
        share = 100.0 * entry["self_s"] / total if total else 0.0
        rows.append([name, entry.get("cat", ""), int(entry["calls"]),
                     entry["total_s"] * 1e3, entry["self_s"] * 1e3,
                     entry["mean_s"] * 1e3, f"{share:.1f}"])
    return format_table(
        ["phase", "cat", "calls", "total (ms)", "self (ms)",
         "mean (ms)", "self %"], rows,
        title="per-phase timings")


def _render_banks(bank_counters: Dict[str, List[float]],
                  max_banks: int) -> str:
    busy = bank_counters.get("engine.bank_busy_beats")
    idle = bank_counters.get("engine.bank_idle_beats")
    if not busy:
        return ""
    idle = idle or [0.0] * len(busy)
    if len(idle) < len(busy):
        idle = list(idle) + [0.0] * (len(busy) - len(idle))
    pairs = list(zip(busy, idle))
    order = sorted(range(len(pairs)), key=lambda i: -pairs[i][0])
    rows: List[List[Any]] = []
    for bank in order[:max_banks]:
        b, i = pairs[bank]
        util = 100.0 * b / (b + i) if b + i else 0.0
        rows.append([f"bank {bank}", int(b), int(i), f"{util:.1f}"])
    if len(pairs) > max_banks:
        rest = order[max_banks:]
        b = sum(pairs[i][0] for i in rest)
        i = sum(pairs[i][1] for i in rest)
        util = 100.0 * b / (b + i) if b + i else 0.0
        rows.append([f"({len(rest)} more banks)", int(b), int(i),
                     f"{util:.1f}"])
    total_busy = sum(b for b, _ in pairs)
    total_all = sum(b + i for b, i in pairs)
    util = 100.0 * total_busy / total_all if total_all else 0.0
    nonzero = sum(1 for b, _ in pairs if b)
    title = (f"per-bank beats ({nonzero}/{len(pairs)} banks busy, "
             f"utilisation {util:.1f}%)")
    return format_table(["bank", "busy beats", "idle beats", "util %"],
                        rows, title=title)


def _render_channels(bank_counters: Dict[str, List[float]]) -> str:
    busy = bank_counters.get("channel.busy")
    if not busy:
        return ""

    def series(name: str) -> List[float]:
        values = bank_counters.get(name) or []
        return list(values) + [0.0] * (len(busy) - len(values))

    idle = series("channel.idle")
    commands = series("channel.commands")
    columns = series("channel.columns")
    refreshes = series("channel.refreshes")
    rows: List[List[Any]] = []
    for ch, b in enumerate(busy):
        i = idle[ch]
        util = 100.0 * b / (b + i) if b + i else 0.0
        rows.append([f"ch {ch}", int(b), int(i), f"{util:.1f}",
                     int(commands[ch]), int(columns[ch]),
                     int(refreshes[ch])])
    total_busy = sum(busy)
    total_all = total_busy + sum(idle)
    util = 100.0 * total_busy / total_all if total_all else 0.0
    active = sum(1 for b in busy if b)
    title = (f"per-channel schedule ({active}/{len(busy)} channels "
             f"active, busy share {util:.1f}%)")
    return format_table(["channel", "busy cyc", "idle cyc", "busy %",
                         "commands", "columns", "refreshes"], rows,
                        title=title)


def _render_dram(counters: Dict[str, float]) -> str:
    mix = {name[len("dram.cmd."):]: value
           for name, value in counters.items()
           if name.startswith("dram.cmd.") and value}
    if not mix:
        return ""
    total = sum(mix.values())
    rows = [[kind, int(count), f"{100.0 * count / total:.1f}"]
            for kind, count in sorted(mix.items(), key=lambda kv: -kv[1])]
    hits = counters.get("dram.row_hits", 0.0)
    misses = counters.get("dram.row_misses", 0.0)
    accesses = hits + misses
    locality = 100.0 * hits / accesses if accesses else 0.0
    title = (f"DRAM command mix ({int(total)} commands, "
             f"{int(counters.get('dram.cycles', 0))} cycles, "
             f"row-buffer hit rate {locality:.1f}%)")
    table = format_table(["command", "count", "share %"], rows,
                         title=title)
    tags = {name[len("dram.tag_cycles."):]: value
            for name, value in counters.items()
            if name.startswith("dram.tag_cycles.") and value}
    if tags:
        tag_total = sum(tags.values())
        tag_rows = [[tag, int(cycles),
                     f"{100.0 * cycles / tag_total:.1f}"]
                    for tag, cycles in sorted(tags.items(),
                                              key=lambda kv: -kv[1])]
        table += "\n\n" + format_table(
            ["tag", "cycles", "share %"], tag_rows,
            title="cycle attribution by command tag")
    return table


def _render_energy(counters: Dict[str, float]) -> str:
    energy = {name[len("energy."):-3]: value
              for name, value in counters.items()
              if name.startswith("energy.") and name.endswith("_pj")
              and value and name != "energy.total_pj"}
    if not energy:
        return ""
    total = sum(energy.values())
    rows = [[source, value * 1e-6, f"{100.0 * value / total:.1f}"]
            for source, value in sorted(energy.items(),
                                        key=lambda kv: -kv[1])]
    return format_table(["source", "energy (uJ)", "share %"], rows,
                        title=f"energy breakdown ({total * 1e-6:.2f} uJ)")


_SHOWN_PREFIXES = ("dram.cmd.", "dram.tag_cycles.", "energy.")


def _render_counters(counters: Dict[str, float],
                     gauges: Dict[str, float]) -> str:
    rows: List[List[Any]] = []
    for name in sorted(counters):
        if name.startswith(_SHOWN_PREFIXES):
            continue
        rows.append([name, counters[name]])
    for name in sorted(gauges):
        rows.append([f"{name} (gauge)", gauges[name]])
    if not rows:
        return ""
    return format_table(["metric", "value"], rows, title="other metrics")


__all__ = ["MAX_BANK_ROWS", "render_profile"]
