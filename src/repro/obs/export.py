"""Exporters: Chrome-trace JSON, flat metrics JSON and CSV.

The Chrome trace uses the Trace Event Format that both ``chrome://tracing``
and Perfetto load directly: spans become complete (``"ph": "X"``) events
with microsecond timestamps, counters become counter (``"ph": "C"``)
events forming one track per metric, and per-bank arrays become a single
multi-series counter track (one series per bank) so bank imbalance is
visible as diverging lines.

The metrics dump is deliberately flat — one JSON object with ``counters``,
``gauges``, ``bank_counters`` and per-span aggregates — so downstream
tooling (the ``psyncpim profile`` renderer, CI assertions, notebooks) never
has to re-walk the event stream.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .recorder import Recorder, SpanEvent

#: Cap on the number of series in one multi-bank Chrome counter track;
#: Perfetto renders a handful of lines well, 256 poorly.
MAX_BANK_SERIES = 32


# ----------------------------------------------------------------------
# span aggregation
# ----------------------------------------------------------------------
def span_summary(events: List[SpanEvent]) -> Dict[str, Dict[str, float]]:
    """Aggregate span events per name: calls, total/mean/max seconds.

    ``self_s`` subtracts the time spent in directly nested spans of the
    same thread, so a parent phase's own cost is separable from its
    children in the profile table.
    """
    summary: Dict[str, Dict[str, float]] = {}
    for event in sorted(events, key=lambda e: e.start_ns):
        entry = summary.setdefault(event.name, {
            "cat": event.cat, "calls": 0, "total_s": 0.0, "max_s": 0.0,
            "self_s": 0.0})
        seconds = event.dur_ns * 1e-9
        entry["calls"] += 1
        entry["total_s"] += seconds
        entry["max_s"] = max(entry["max_s"], seconds)
    # Self time: total minus the sum of children one level deeper whose
    # windows fall inside the span's window (same pid/tid).
    ordered = sorted(events, key=lambda e: (e.pid, e.tid, e.start_ns))
    for i, event in enumerate(ordered):
        end = event.start_ns + event.dur_ns
        nested = 0
        for other in ordered[i + 1:]:
            if (other.pid != event.pid or other.tid != event.tid
                    or other.start_ns >= end):
                break
            if other.depth == event.depth + 1:
                nested += other.dur_ns
        summary[event.name]["self_s"] += (event.dur_ns - nested) * 1e-9
    for entry in summary.values():
        entry["mean_s"] = entry["total_s"] / max(entry["calls"], 1)
    return summary


# ----------------------------------------------------------------------
# chrome trace
# ----------------------------------------------------------------------
def chrome_trace(recorder: Recorder) -> Dict[str, Any]:
    """The recorder's contents in Chrome Trace Event Format."""
    trace_events: List[Dict[str, Any]] = []
    for event in recorder.events:
        trace_events.append({
            "name": event.name,
            "cat": event.cat,
            "ph": "X",
            "ts": event.start_ns / 1000.0,      # microseconds
            "dur": event.dur_ns / 1000.0,
            "pid": event.pid,
            "tid": event.tid,
            "args": _jsonable(event.args),
        })
    for ts, name, value in recorder.samples:
        trace_events.append({
            "name": name,
            "ph": "C",
            "ts": ts / 1000.0,
            "pid": 0,
            "args": {"value": value},
        })
    # Per-bank totals as one multi-series counter event at the trace end,
    # so the bank-utilisation spread is inspectable inside the viewer.
    end_ts = max((e.start_ns + e.dur_ns for e in recorder.events),
                 default=0) / 1000.0
    for name, arr in recorder.bank_counters.items():
        # Per-channel arrays (channel.*) get their own series prefix so
        # channel tracks are distinguishable from per-bank tracks.
        prefix = "ch" if name.startswith("channel.") else "bank"
        series = {f"{prefix}{idx}": float(val)
                  for idx, val in enumerate(arr[:MAX_BANK_SERIES])}
        if arr.size > MAX_BANK_SERIES:
            series["rest"] = float(arr[MAX_BANK_SERIES:].sum())
        trace_events.append({"name": name, "ph": "C", "ts": end_ts,
                             "pid": 0, "args": series})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"producer": "psyncpim repro.obs"}}


def _jsonable(args: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


# ----------------------------------------------------------------------
# flat metrics
# ----------------------------------------------------------------------
def metrics_dict(recorder: Recorder) -> Dict[str, Any]:
    """Flat metrics: counters, gauges, bank arrays, span aggregates."""
    return {
        "counters": dict(recorder.counters),
        "gauges": dict(recorder.gauges),
        "bank_counters": {name: arr.tolist()
                          for name, arr in recorder.bank_counters.items()},
        "spans": span_summary(recorder.events),
    }


def metrics_rows(metrics: Dict[str, Any]) -> List[List[Any]]:
    """The metrics dump as flat (kind, name, value) rows for CSV."""
    rows: List[List[Any]] = []
    for name in sorted(metrics.get("counters", {})):
        rows.append(["counter", name, metrics["counters"][name]])
    for name in sorted(metrics.get("gauges", {})):
        rows.append(["gauge", name, metrics["gauges"][name]])
    for name in sorted(metrics.get("bank_counters", {})):
        values = metrics["bank_counters"][name]
        for bank, value in enumerate(values):
            rows.append(["bank_counter", f"{name}[{bank}]", value])
    for name in sorted(metrics.get("spans", {})):
        entry = metrics["spans"][name]
        rows.append(["span_calls", name, entry["calls"]])
        rows.append(["span_total_s", name, entry["total_s"]])
    return rows


# ----------------------------------------------------------------------
# file output
# ----------------------------------------------------------------------
def export_all(recorder: Recorder,
               directory: Union[str, Path]) -> Dict[str, Path]:
    """Write trace.json, metrics.json and metrics.csv under *directory*.

    Returns the written paths keyed by artifact name. The directory is
    created if needed; existing files are overwritten (a fresh run
    supersedes the previous one, like a profiler output directory).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths = {
        "trace": root / "trace.json",
        "metrics": root / "metrics.json",
        "csv": root / "metrics.csv",
    }
    paths["trace"].write_text(
        json.dumps(chrome_trace(recorder)) + "\n", encoding="utf-8")
    metrics = metrics_dict(recorder)
    paths["metrics"].write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    with paths["csv"].open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "value"])
        writer.writerows(metrics_rows(metrics))
    return paths


def load_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a metrics dump; *path* may be the file or its directory."""
    p = Path(path)
    if p.is_dir():
        p = p / "metrics.json"
    return json.loads(p.read_text(encoding="utf-8"))


def default_obs_dir(environ: Optional[Dict[str, Any]] = None) -> Path:
    """Where exports land: ``$PSYNCPIM_OBS_DIR`` or ``./psyncpim-obs``."""
    import os
    from .recorder import OBS_DIR_ENV
    env = os.environ if environ is None else environ
    raw = env.get(OBS_DIR_ENV)
    return Path(raw).expanduser() if raw else Path("psyncpim-obs")


__all__ = ["MAX_BANK_SERIES", "chrome_trace", "default_obs_dir",
           "export_all", "load_metrics", "metrics_dict", "metrics_rows",
           "span_summary"]
