"""``repro.obs`` — spans, counters and trace export for every layer.

The observability subsystem the evaluation sections lean on: host-side
phase spans (planning, engine rounds, sweep jobs), a counter/gauge
registry fed by the simulators (per-bank busy/idle beats, lane
predication/exit/exhaustion occupancy, DRAM command mix and row hit/miss,
energy breakdowns, sweep cache hits), and exporters producing a Chrome
``chrome://tracing``/Perfetto trace, a flat JSON/CSV metrics dump and the
``psyncpim profile`` report.

**Off by default, zero overhead when off.** Instrumentation sites call the
module-level helpers below; while disabled, :func:`span` returns a shared
no-op context manager and every counter helper returns after one boolean
test — nothing is allocated and no recorder state is touched, so the hot
paths (lane engine beats, closed-form DRAM pricing, sweep workers) are
regression-free. Enable with ``PSYNCPIM_OBS=1`` in the environment (the
CLI then exports automatically on exit) or programmatically::

    from repro import obs

    obs.enable()
    ... run kernels ...
    obs.export(obs.default_dir())        # trace.json + metrics.json + csv

Sweep workers inherit the environment gate; :mod:`repro.sweep.runner`
ships each job's recorded delta back in its :class:`JobRecord` and merges
worker payloads into the parent recorder, so one exported trace covers the
whole fan-out with true process/thread ids.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .export import (MAX_BANK_SERIES, chrome_trace, default_obs_dir,
                     export_all, load_metrics, metrics_dict, metrics_rows,
                     span_summary)
from .profile import render_profile
from .recorder import (OBS_DIR_ENV, OBS_ENV, Mark, Recorder, SpanEvent,
                       env_enabled)

#: The process-wide recorder every instrumented layer feeds.
_RECORDER = Recorder()

#: The one gate the hot paths test. Module-global so a disabled site costs
#: one attribute lookup and one branch.
_ENABLED = env_enabled()


class _NullSpan:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Whether observability is currently recording."""
    return _ENABLED


def enable() -> None:
    """Turn recording on (equivalent to ``PSYNCPIM_OBS=1``)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn recording off; already-recorded data is kept until reset()."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop everything recorded so far (the gate state is unchanged)."""
    _RECORDER.reset()


def recorder() -> Recorder:
    """The process-wide recorder (for snapshots, merges and exporters)."""
    return _RECORDER


# ----------------------------------------------------------------------
# recording helpers (no-ops while disabled)
# ----------------------------------------------------------------------
def span(name: str, cat: str = "host", **args: Any):
    """Time a named phase: ``with obs.span("partition"): ...``."""
    if not _ENABLED:
        return _NULL_SPAN
    return _RECORDER.span(name, cat=cat, **args)


def profiled(name: str, cat: str = "host"):
    """Decorator form of :func:`span` for whole functions."""
    def wrap(fn):
        import functools

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with _RECORDER.span(name, cat=cat):
                return fn(*args, **kwargs)
        return inner
    return wrap


def add_counter(name: str, value: float = 1.0,
                sample: bool = False) -> None:
    """Accumulate onto a counter (no-op while disabled)."""
    if _ENABLED:
        _RECORDER.add_counter(name, value, sample=sample)


def set_gauge(name: str, value: float) -> None:
    """Record a gauge observation (no-op while disabled)."""
    if _ENABLED:
        _RECORDER.set_gauge(name, value)


def add_bank_counter(name: str, values: Sequence[float],
                     sample: bool = False) -> None:
    """Accumulate a per-bank array (no-op while disabled)."""
    if _ENABLED:
        _RECORDER.add_bank_counter(name, values, sample=sample)


# ----------------------------------------------------------------------
# export conveniences
# ----------------------------------------------------------------------
def export(directory: Optional[Any] = None):
    """Write trace.json/metrics.json/metrics.csv; returns the paths."""
    return export_all(_RECORDER,
                      default_obs_dir() if directory is None else directory)


def default_dir():
    """Where :func:`export` writes by default (``PSYNCPIM_OBS_DIR``)."""
    return default_obs_dir()


# Imported last on purpose: the attribution engine reaches back into
# repro.dram, whose modules import this package for the span/counter
# helpers above — those must already be defined when the cycle closes.
from . import attrib, report  # noqa: E402
from .attrib import (ATTRIB_VERSION, CATEGORIES,  # noqa: E402
                     Attribution, AttributionCollector, CriticalPath,
                     attribute_spmm, attribute_spmv, attribute_sptrsv,
                     attribute_trace,
                     category_of, critical_path, phase_cycles,
                     spmv_useful_loads, sptrsv_useful_loads)
from .report import (REPORT_VERSION, BundleDiff,  # noqa: E402
                     DiffEntry, RunReport, build_run_report, diff_reports,
                     load_reports, render_bundle_summary, render_diff,
                     render_html, render_report, save_reports)

__all__ = [
    "ATTRIB_VERSION", "Attribution", "AttributionCollector",
    "BundleDiff", "CATEGORIES", "CriticalPath", "DiffEntry",
    "MAX_BANK_SERIES", "OBS_DIR_ENV", "OBS_ENV", "Mark", "Recorder",
    "REPORT_VERSION", "RunReport", "SpanEvent",
    "add_bank_counter", "add_counter", "attribute_spmm",
    "attribute_spmv", "attribute_sptrsv", "attribute_trace",
    "build_run_report",
    "category_of", "chrome_trace", "critical_path", "default_dir",
    "default_obs_dir", "diff_reports", "disable", "enable", "enabled",
    "env_enabled", "export", "export_all", "load_metrics", "load_reports",
    "metrics_dict", "metrics_rows", "phase_cycles", "profiled",
    "recorder", "render_bundle_summary", "render_diff", "render_html",
    "render_profile", "render_report", "reset", "save_reports",
    "set_gauge", "span", "span_summary", "spmv_useful_loads",
    "sptrsv_useful_loads",
]
