"""Cycle attribution: decompose every modelled cycle on every lane.

The scheduler (:mod:`repro.dram`) prices a command trace into one number
per channel; this module answers *where those cycles went*. Every device
cycle on every (channel, bank) lane is assigned to exactly one of the
:data:`CATEGORIES` — the taxonomy is **exclusive and exhaustive**, so the
per-lane category cycles sum bitwise to the schedule's ``total_cycles``
(and device-wide to ``lanes x total_cycles``). That hard invariant is what
makes category deltas between two runs trustworthy: a cycle cannot be
double-counted into two buckets or silently dropped from all of them.

Attribution is **post-hoc over the trace**: the
:class:`AttributionCollector` passively observes the controller's single
scheduling pass (``MemoryController.run(..., collector=...)``) and buckets
each entry's issue-to-issue delta. The scheduler's issue logic is never
consulted or altered — pricing with and without a collector is bitwise
identical, and the in-loop observation cost is one list append per trace
entry (gated below 5% of pricing time by
``benchmarks/test_perf_attrib.py``); the bucketing itself runs once in
:meth:`AttributionCollector.finalize`.

Exactness bookkeeping, per channel:

* every entry's delta ``last - previous_last`` is split into (1) stall
  debts left by earlier commands whose occupancy outlives their issue
  cycle (mode switches block both buses for ``mode_switch_cycles``;
  refresh blocks every bank for ``tRFC``), (2) cycles of silently
  inserted deferred refreshes (visible as jumps in the channel's
  refresh counter), and (3) the command's own category;
* all-bank scope (AB/MODE/REF commands) applies to every bank of the
  channel; single-bank scope applies to the addressed bank only, with the
  same cycles surfacing as ``idle`` on the channel's other banks;
* each lane additionally absorbs the channel's barrier tail
  (``total_cycles - channel_cycles``) as ``idle``.

Lock-step ``padding`` is split out of ``compute`` after the fact from the
execution record (a bank's useful share of the broadcast stream); the
split preserves the per-lane sum by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dram.commands import Command, CommandType
from ..errors import ExecutionError

#: Exclusive, exhaustive cycle categories, in reporting order.
CATEGORIES: Tuple[str, ...] = (
    "compute",   # AB-PIM broadcast beats doing useful element work
    "padding",   # lock-step share of the broadcast spent on shorter lanes
    "seam",      # SB<->AB<->AB-PIM mode switches + kernel programming
    "row",       # ACT/PRE row activates, precharges and their stalls
    "refresh",   # explicit and controller-inserted all-bank refresh
    "host",      # SB staging/merging and solved-value broadcast traffic
    "idle",      # barrier slack: channel tail + single-bank shadow idling
)
NCAT = len(CATEGORIES)
C_COMPUTE, C_PADDING, C_SEAM, C_ROW, C_REFRESH, C_HOST, C_IDLE = range(NCAT)

#: Column tags carrying host-side external traffic. Mirrors
#: ``repro.core.timing.HOST_TAGS`` — duplicated because ``core`` imports
#: ``repro.obs`` at module level, so the dependency must point this way.
HOST_COLUMN_TAGS = frozenset({"stage_x", "merge_y", "read_b", "broadcast"})

#: Bump when the taxonomy or bookkeeping changes (keys cached RunReports).
ATTRIB_VERSION = 1


def category_of(command: Command) -> int:
    """Exclusive category index of one command's bus/bank occupancy."""
    kind = command.kind
    if kind is CommandType.MODE:
        return C_SEAM
    if kind is CommandType.REF:
        return C_REFRESH
    if kind.is_row:
        return C_ROW
    tag = command.tag
    if tag in HOST_COLUMN_TAGS:
        return C_HOST
    if tag == "program":
        return C_SEAM
    return C_COMPUTE


# ----------------------------------------------------------------------
# the attribution result
# ----------------------------------------------------------------------
@dataclass
class Attribution:
    """Per-lane category cycles of one scheduled trace.

    ``lane_cycles[(channel, bank)]`` is a length-:data:`NCAT` vector in
    :data:`CATEGORIES` order; every vector sums to ``total_cycles``
    (checked by :meth:`check`). ``segment_cycles`` maps each timeline
    segment label to per-channel ``(start, end)`` scheduler cycles when
    the trace was synthesised with segments.
    """

    categories: Tuple[str, ...]
    channels: List[int]
    banks_per_channel: int
    total_cycles: int
    lane_cycles: Dict[Tuple[int, int], List[int]]
    #: Per-channel clock at the last issued command (the channel's own
    #: schedule length; ``total_cycles`` is the max over these).
    channel_clock: Dict[int, int] = field(default_factory=dict)
    segment_cycles: Optional[Dict[str, Dict[int, Tuple[int, int]]]] = None

    @property
    def num_lanes(self) -> int:
        return len(self.lane_cycles)

    def device_cycles(self) -> Dict[str, int]:
        """Category cycles summed over every lane (unit: lane-cycles)."""
        totals = [0] * NCAT
        for vec in self.lane_cycles.values():
            for i in range(NCAT):
                totals[i] += vec[i]
        return dict(zip(self.categories, totals))

    def channel_cycles(self, channel: int) -> Dict[str, int]:
        """Category cycles summed over one channel's banks."""
        totals = [0] * NCAT
        for (ch, _bank), vec in self.lane_cycles.items():
            if ch == channel:
                for i in range(NCAT):
                    totals[i] += vec[i]
        return dict(zip(self.categories, totals))

    def lane(self, channel: int, bank: int) -> Dict[str, int]:
        """One lane's category cycles as a name-keyed dict."""
        return dict(zip(self.categories,
                        self.lane_cycles[(channel, bank)]))

    def fractions(self) -> Dict[str, float]:
        """Device-wide category shares (sum to 1.0 on non-empty runs)."""
        device = self.device_cycles()
        whole = sum(device.values())
        if whole <= 0:
            return {name: 0.0 for name in self.categories}
        return {name: cycles / whole for name, cycles in device.items()}

    def check(self) -> None:
        """Raise unless every lane's categories sum to ``total_cycles``."""
        for (ch, bank), vec in self.lane_cycles.items():
            got = sum(vec)
            if got != self.total_cycles:
                raise ExecutionError(
                    f"attribution broke sum-to-total on lane "
                    f"(ch={ch}, bank={bank}): {got} != "
                    f"{self.total_cycles}")
            if any(v < 0 for v in vec):
                raise ExecutionError(
                    f"negative category cycles on lane "
                    f"(ch={ch}, bank={bank}): {vec}")


# ----------------------------------------------------------------------
# the collector
# ----------------------------------------------------------------------
class AttributionCollector:
    """Passive per-entry observer for ``MemoryController.run``.

    Construct with the run's timing constants, pass as
    ``collector=`` to :func:`repro.core.timing.price_trace` (or
    ``MemoryController.run`` directly), then :meth:`finalize` into an
    :class:`Attribution`. ``capture_entries=True`` additionally records
    the channel clock after every entry so segment timelines and the
    critical path can be reconstructed.
    """

    def __init__(self, trfc: int, mode_switch_cycles: int,
                 capture_entries: bool = False) -> None:
        self.trfc = trfc
        self.mode_switch_cycles = mode_switch_cycles
        self._now: Dict[int, int] = {}
        self._refs: Dict[int, int] = {}
        self._debt_seam: Dict[int, int] = {}
        self._debt_refresh: Dict[int, int] = {}
        #: Per-channel cycles of all-bank scope (apply to every lane).
        self._ab: Dict[int, List[int]] = {}
        #: Per-channel, per-bank cycles of single-bank scope.
        self._sb: Dict[int, Dict[int, List[int]]] = {}
        self._sb_sum: Dict[int, int] = {}
        self.entry_cycles: Optional[List[int]] = (
            [] if capture_entries else None)
        #: Raw issue outcomes in observation order; bucketed lazily so the
        #: scheduler's hot loop only pays one list append per entry.
        self._log: List[Tuple[Command, int, int, int]] = []

    def observe(self, command: Command, count: int, last: int,
                refreshes: int) -> None:
        """Record one issue outcome (bucketing is deferred to finalize)."""
        self._log.append((command, count, last, refreshes))

    def _bucket(self, command: Command, count: int, last: int,
                refreshes: int) -> None:
        """Bucket one trace entry's issue-to-issue cycle delta."""
        ch = command.channel
        delta = last - self._now.get(ch, 0)
        self._now[ch] = last
        ab = self._ab.get(ch)
        if ab is None:
            ab = self._ab[ch] = [0] * NCAT
        # (1) stall debts of earlier commands whose occupancy outlives
        # their issue cycle: a MODE switch holds both buses until
        # cycle + mode_switch_cycles, an explicit REF blocks every bank
        # for tRFC — the wait lands in this entry's gap.
        debt = self._debt_seam.get(ch, 0)
        if debt:
            part = debt if debt < delta else delta
            ab[C_SEAM] += part
            self._debt_seam[ch] = debt - part
            delta -= part
        debt = self._debt_refresh.get(ch, 0)
        if debt:
            part = debt if debt < delta else delta
            ab[C_REFRESH] += part
            self._debt_refresh[ch] = debt - part
            delta -= part
        # (2) deferred refreshes the scheduler inserted ahead of this
        # entry, visible as a jump in the channel's refresh counter.
        inserted = refreshes - self._refs.get(ch, 0)
        if inserted:
            self._refs[ch] = refreshes
            part = min(delta, inserted * self.trfc)
            ab[C_REFRESH] += part
            delta -= part
        # (3) the command's own category and scope.
        kind = command.kind
        cat = category_of(command)
        if kind is CommandType.MODE:
            self._debt_seam[ch] = (self._debt_seam.get(ch, 0)
                                   + count * self.mode_switch_cycles)
        elif kind is CommandType.REF:
            self._debt_refresh[ch] = (self._debt_refresh.get(ch, 0)
                                      + count * self.trfc)
        if kind.is_all_bank or kind is CommandType.MODE:
            ab[cat] += delta
        else:
            lanes = self._sb.get(ch)
            if lanes is None:
                lanes = self._sb[ch] = {}
            lane = lanes.get(command.bank)
            if lane is None:
                lane = lanes[command.bank] = [0] * NCAT
            lane[cat] += delta
            self._sb_sum[ch] = self._sb_sum.get(ch, 0) + delta
        if self.entry_cycles is not None:
            self.entry_cycles.append(last)

    def finalize(self, banks_per_channel: int,
                 useful_loads: Optional[
                     Dict[int, Tuple[Sequence[float], float]]] = None,
                 segments: Optional[Sequence] = None,
                 total_cycles: Optional[int] = None) -> Attribution:
        """Assemble the observed deltas into per-lane category vectors.

        ``total_cycles`` cross-checks the schedule the collector saw
        (defaults to the max over observed channel clocks).
        ``useful_loads`` maps channel -> (per-bank useful elements,
        lock-step stream length) and drives the padding split.
        ``segments`` are the trace's :class:`~repro.core.trace
        .TraceSegment` list when entry cycles were captured.
        """
        log, self._log = self._log, []
        for entry in log:
            self._bucket(*entry)
        observed = max(self._now.values()) if self._now else 0
        if total_cycles is None:
            total_cycles = observed
        elif total_cycles != observed:
            raise ExecutionError(
                f"collector saw a different schedule: observed "
                f"{observed} cycles, caller says {total_cycles}")
        channels = sorted(self._now) if self._now else [0]
        lane_cycles: Dict[Tuple[int, int], List[int]] = {}
        for ch in channels:
            ab = self._ab.get(ch, [0] * NCAT)
            now = self._now.get(ch, 0)
            sb_sum = self._sb_sum.get(ch, 0)
            lanes = self._sb.get(ch, {})
            tail = total_cycles - now
            for bank in range(banks_per_channel):
                vec = list(ab)
                own = lanes.get(bank)
                own_sum = 0
                if own:
                    own_sum = sum(own)
                    for i in range(NCAT):
                        vec[i] += own[i]
                # barrier tail + the shadow of other banks' SB traffic
                vec[C_IDLE] += tail + (sb_sum - own_sum)
                lane_cycles[(ch, bank)] = vec
        attribution = Attribution(
            categories=CATEGORIES, channels=channels,
            banks_per_channel=banks_per_channel,
            total_cycles=total_cycles, lane_cycles=lane_cycles,
            channel_clock=dict(self._now))
        if useful_loads:
            _split_padding(attribution, useful_loads)
        if segments is not None and self.entry_cycles is not None:
            attribution.segment_cycles = _segment_cycles(
                segments, self.entry_cycles)
        attribution.check()
        return attribution


def _split_padding(attribution: Attribution,
                   useful_loads: Dict[int, Tuple[Sequence[float], float]]
                   ) -> None:
    """Move each lane's lock-step waste from ``compute`` to ``padding``.

    A bank in the broadcast group streams the round maximum regardless of
    its own element count; its padding share is ``1 - own/lockstep`` of
    the compute cycles. The move preserves the lane sum exactly.
    """
    for ch, (loads, lockstep) in useful_loads.items():
        if lockstep <= 0:
            continue
        for bank in range(attribution.banks_per_channel):
            vec = attribution.lane_cycles.get((ch, bank))
            if vec is None:
                continue
            load = float(loads[bank]) if bank < len(loads) else 0.0
            waste = max(0.0, 1.0 - load / lockstep)
            pad = int(round(vec[C_COMPUTE] * waste))
            pad = min(max(pad, 0), vec[C_COMPUTE])
            vec[C_COMPUTE] -= pad
            vec[C_PADDING] += pad


def _segment_cycles(segments: Sequence, entry_cycles: List[int]
                    ) -> Dict[str, Dict[int, Tuple[int, int]]]:
    """Per-segment (start, end) scheduler cycles from the entry replay.

    Segments must tile each channel's entry stream in order (the
    ``*_segments`` synthesisers guarantee this), so a segment starts at
    the channel clock its predecessor left behind.
    """
    out: Dict[str, Dict[int, Tuple[int, int]]] = {}
    clock: Dict[int, int] = {}
    for seg in segments:
        if seg.end > len(entry_cycles):
            raise ExecutionError(
                f"segment {seg.label!r} spans entries the collector "
                f"never observed")
        start = clock.get(seg.channel, 0)
        end = entry_cycles[seg.end - 1]
        out.setdefault(seg.label, {})[seg.channel] = (start, end)
        clock[seg.channel] = end
    return out


# ----------------------------------------------------------------------
# critical path over segment groups
# ----------------------------------------------------------------------
@dataclass
class PathNode:
    """One dependency-spine step (an SpTRSV level or SpMV round)."""

    group: str
    #: Per-channel cycles spent inside this step.
    durations: Dict[int, int]
    #: The step's barrier duration: max over participating channels.
    duration: int
    critical_channel: int
    #: Per-channel slack against the critical channel.
    slack: Dict[int, int] = field(default_factory=dict)


@dataclass
class CriticalPath:
    """Longest chain of step dependencies under per-step barriers.

    For SpTRSV the steps are levels: level N+1's broadcast needs every
    channel's level-N results merged, so the barrier-accurate makespan is
    the sum over levels of the slowest channel's duration. The modelled
    schedule prices channels independently (no explicit barrier), so
    ``makespan >= modelled_cycles``; the gap plus per-level slack
    quantifies what lock-step level synchronisation would cost.
    """

    nodes: List[PathNode]
    makespan: int
    modelled_cycles: int

    @property
    def total_slack(self) -> int:
        return sum(sum(node.slack.values()) for node in self.nodes)

    def critical_nodes(self, top: int = 5) -> List[PathNode]:
        """The *top* longest steps on the path."""
        return sorted(self.nodes, key=lambda n: -n.duration)[:top]


def critical_path(attribution: Attribution) -> Optional[CriticalPath]:
    """Barrier-accurate path over the attribution's segment groups."""
    segs = attribution.segment_cycles
    if not segs:
        return None
    groups: Dict[str, Dict[int, int]] = {}
    for label, per_channel in segs.items():
        group = label.rsplit(".", 1)[0]
        slot = groups.setdefault(group, {})
        for ch, (start, end) in per_channel.items():
            slot[ch] = slot.get(ch, 0) + (end - start)
    nodes: List[PathNode] = []
    makespan = 0
    for group, durations in groups.items():
        duration = max(durations.values())
        critical = min(ch for ch, d in durations.items() if d == duration)
        slack = {ch: duration - d for ch, d in durations.items()}
        nodes.append(PathNode(group=group, durations=durations,
                              duration=duration,
                              critical_channel=critical, slack=slack))
        makespan += duration
    return CriticalPath(nodes=nodes, makespan=makespan,
                        modelled_cycles=attribution.total_cycles)


def phase_cycles(attribution: Attribution) -> Dict[str, int]:
    """Barrier cycles per phase suffix (stage/seam/kernel/merge/...).

    Sums, over every segment group, the slowest channel's time inside
    each phase — the per-phase view of the critical path.
    """
    segs = attribution.segment_cycles
    if not segs:
        return {}
    out: Dict[str, int] = {}
    for label, per_channel in segs.items():
        phase = label.rsplit(".", 1)[-1]
        worst = max(end - start for start, end in per_channel.values())
        out[phase] = out.get(phase, 0) + worst
    return out


# ----------------------------------------------------------------------
# high-level builders (lazy core imports: core imports repro.obs)
# ----------------------------------------------------------------------
def attribute_trace(trace, config, segments=None, useful_loads=None,
                    timing=None, channels=None, precision: str = "fp64",
                    alu_operations: int = 0, with_energy: bool = False):
    """Price *trace* once and attribute it; returns ``(Attribution,
    PerfReport)``.

    The collector rides the controller's scheduling pass, so this costs
    one pricing plus O(entries) bookkeeping.
    """
    from ..core.timing import price_trace
    from ..dram import TimingParams
    if timing is None:
        timing = TimingParams()
    collector = AttributionCollector(
        trfc=timing.trfc, mode_switch_cycles=timing.mode_switch_cycles,
        capture_entries=segments is not None)
    perf = price_trace(trace, config, timing=timing,
                       with_energy=with_energy,
                       alu_operations=alu_operations, precision=precision,
                       channels=channels, collector=collector)
    attribution = collector.finalize(
        banks_per_channel=config.memory.banks_per_channel,
        useful_loads=useful_loads, segments=segments,
        total_cycles=perf.cycles)
    return attribution, perf


def attribute_spmv(execution, config, mode: str = "ab", params=None,
                   timing=None, with_energy: bool = False):
    """Attribute one SpMV execution; returns ``(Attribution, PerfReport)``."""
    from ..core.trace import (TraceParams, spmv_ab_segments,
                              spmv_channels_segments, spmv_pb_segments)
    if params is None:
        params = TraceParams()
    if execution.num_channels is not None:
        seg = spmv_channels_segments(execution, config, params, mode=mode)
    elif mode == "ab":
        seg = spmv_ab_segments(execution, config, params)
    else:
        seg = spmv_pb_segments(execution, config, params)
    return attribute_trace(
        seg.trace, config, segments=seg.segments,
        useful_loads=spmv_useful_loads(execution, mode), timing=timing,
        channels=execution.num_channels, precision=execution.precision,
        alu_operations=2 * execution.total_elements,
        with_energy=with_energy)


def attribute_spmm(execution, config, mode: str = "ab", params=None,
                   timing=None, with_energy: bool = False):
    """Attribute one SpMM execution; returns ``(Attribution, PerfReport)``.

    The layout is the SpMV layout, so the useful-load split carries over
    unchanged (both the useful and the lock-step streams scale by the
    right-hand-side width, leaving the compute/padding ratio intact);
    ALU work scales by ``num_rhs``. At width 1 the synthesised segments
    delegate to the SpMV synthesisers, making the attribution bitwise
    :func:`attribute_spmv`.
    """
    from ..core.trace import (TraceParams, spmm_ab_segments,
                              spmm_channels_segments, spmm_pb_segments)
    if params is None:
        params = TraceParams()
    if execution.num_channels is not None:
        seg = spmm_channels_segments(execution, config, params, mode=mode)
    elif mode == "ab":
        seg = spmm_ab_segments(execution, config, params)
    else:
        seg = spmm_pb_segments(execution, config, params)
    num_rhs = getattr(execution, "num_rhs", 1)
    return attribute_trace(
        seg.trace, config, segments=seg.segments,
        useful_loads=spmv_useful_loads(execution, mode), timing=timing,
        channels=execution.num_channels, precision=execution.precision,
        alu_operations=2 * execution.total_elements * num_rhs,
        with_energy=with_energy)


def attribute_sptrsv(execution, config, params=None, timing=None,
                     with_energy: bool = False):
    """Attribute one SpTRSV execution; returns ``(Attribution,
    PerfReport)``."""
    from ..core.trace import (TraceParams, sptrsv_ab_segments,
                              sptrsv_channels_segments)
    if params is None:
        params = TraceParams()
    if execution.num_channels is not None:
        seg = sptrsv_channels_segments(execution, config, params)
    else:
        seg = sptrsv_ab_segments(execution, config, params)
    return attribute_trace(
        seg.trace, config, segments=seg.segments,
        useful_loads=sptrsv_useful_loads(execution), timing=timing,
        channels=execution.num_channels, precision=execution.precision,
        alu_operations=2 * execution.total_elements,
        with_energy=with_energy)


def spmv_useful_loads(execution, mode: str = "ab"
                      ) -> Optional[Dict[int, Tuple[List[float], float]]]:
    """Per-channel (per-bank useful elements, lock-step stream length).

    PB mode has no lock-step padding (each bank streams only its own
    elements), so it returns ``None`` and the split is skipped.
    """
    if mode != "ab":
        return None
    from ..core.trace import _representative_channel_loads
    if execution.num_channels is not None:
        out: Dict[int, Tuple[List[float], float]] = {}
        for ch, sub in enumerate(execution.channel_execs):
            if sub.total_elements == 0:
                continue
            out[ch] = ([float(v) for v in sub.per_bank_elements],
                       float(sub.lockstep_elements))
        return out
    loads = _representative_channel_loads(
        execution, execution.banks_per_channel)
    return {0: (loads, float(execution.lockstep_elements))}


def sptrsv_useful_loads(execution
                        ) -> Optional[Dict[int, Tuple[List[float], float]]]:
    """Per-channel useful loads of an SpTRSV (leaf levels + updates).

    The execution record tracks leaf-level loads per level but not per
    bank, so the leaf share is spread uniformly; the recursive update
    SpMVs contribute their exact per-bank loads.
    """
    from ..core.trace import _representative_channel_loads

    def shard(sub, banks: int) -> Tuple[List[float], float]:
        lockstep = float(sum(sub.level_batches))
        uniform = sum(sub.level_elements) / max(1, sub.num_banks)
        per_bank = [float(uniform)] * banks
        for upd in sub.update_execs:
            loads = _representative_channel_loads(upd, banks)
            lockstep += float(upd.lockstep_elements)
            per_bank = [p + u for p, u in zip(per_bank, loads)]
        return per_bank, lockstep

    banks = execution.banks_per_channel
    if execution.num_channels is not None:
        return {ch: shard(sub, banks)
                for ch, sub in enumerate(execution.channel_execs)}
    return {0: shard(execution, banks)}
