"""RunReport: the picklable/JSON cycle-attribution artifact, plus diffing.

A :class:`RunReport` freezes one run's attribution — per-lane category
cycles, per-channel clocks, the phase timeline and critical path, command
mix and a roofline-style utilization summary — into a self-describing
record that pickles into the :class:`~repro.sweep.cache.ArtifactCache`
and round-trips through stable JSON for committed CI baselines.

Bundles are plain ``{label: RunReport}`` dicts; :func:`save_reports` /
:func:`load_reports` persist them (``.json`` for humans and version
control, anything else pickled). :func:`diff_reports` compares two
bundles label-by-label and attributes the cycle delta per category and
per matrix — the ``psyncpim diff`` verb renders it so a perf-trend
failure reads "row +18% on wiki-Vote", not "6.46x became 5.9x".
"""

from __future__ import annotations

import html as _html
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .attrib import (ATTRIB_VERSION, CATEGORIES, Attribution, CriticalPath,
                     critical_path, phase_cycles)

#: Bump when RunReport's serialised layout changes.
REPORT_VERSION = 1

#: Stable category colours for the HTML stacked bars.
_COLOURS = {
    "compute": "#2e7d32", "padding": "#9ccc65", "seam": "#8e24aa",
    "row": "#ef6c00", "refresh": "#fdd835", "host": "#1e88e5",
    "idle": "#b0bec5",
}


@dataclass
class RunReport:
    """One run's complete cycle attribution, ready to persist and diff."""

    label: str
    kind: str = "trace"            # "spmv" | "sptrsv" | "dense" | "trace"
    matrix: str = ""
    mode: str = "ab"
    channels: Optional[int] = None
    strategy: str = ""
    precision: str = "fp64"
    total_cycles: int = 0
    seconds: float = 0.0
    commands: int = 0
    categories: Tuple[str, ...] = CATEGORIES
    #: (channel, bank) lane ids, aligned with :attr:`lane_cycles` rows.
    lanes: List[Tuple[int, int]] = field(default_factory=list)
    lane_cycles: List[List[int]] = field(default_factory=list)
    channel_clock: Dict[int, int] = field(default_factory=dict)
    tag_cycles: Dict[str, int] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    utilization: Dict[str, float] = field(default_factory=dict)
    #: Barrier cycles per phase suffix (stage/seam/kernel/merge/...).
    phases: Dict[str, int] = field(default_factory=dict)
    #: Critical-path summary (see :func:`_path_to_dict`); ``None`` when
    #: the trace carried no segments.
    critical_path: Optional[Dict[str, Any]] = None
    energy_pj: Optional[float] = None
    attrib_version: int = ATTRIB_VERSION
    version: int = REPORT_VERSION

    # -- views ---------------------------------------------------------
    @property
    def num_lanes(self) -> int:
        return len(self.lanes)

    def device_cycles(self) -> Dict[str, int]:
        """Category cycles summed over every lane (unit: lane-cycles)."""
        totals = [0] * len(self.categories)
        for vec in self.lane_cycles:
            for i, v in enumerate(vec):
                totals[i] += v
        return dict(zip(self.categories, totals))

    def mean_cycles(self) -> Dict[str, float]:
        """Per-lane mean category cycles (comparable across lane counts)."""
        lanes = max(1, self.num_lanes)
        return {name: cycles / lanes
                for name, cycles in self.device_cycles().items()}

    def fractions(self) -> Dict[str, float]:
        device = self.device_cycles()
        whole = sum(device.values())
        if whole <= 0:
            return {name: 0.0 for name in self.categories}
        return {name: v / whole for name, v in device.items()}

    def check(self) -> None:
        """Re-assert the sum-to-total invariant on the frozen record."""
        for (ch, bank), vec in zip(self.lanes, self.lane_cycles):
            if sum(vec) != self.total_cycles:
                from ..errors import ExecutionError
                raise ExecutionError(
                    f"report {self.label!r} lane (ch={ch}, bank={bank}) "
                    f"sums to {sum(vec)}, not {self.total_cycles}")

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-stable dict (tuple lanes become lists, int keys strings)."""
        return {
            "version": self.version,
            "attrib_version": self.attrib_version,
            "label": self.label, "kind": self.kind,
            "matrix": self.matrix, "mode": self.mode,
            "channels": self.channels, "strategy": self.strategy,
            "precision": self.precision,
            "total_cycles": self.total_cycles, "seconds": self.seconds,
            "commands": self.commands,
            "categories": list(self.categories),
            "lanes": [list(lane) for lane in self.lanes],
            "lane_cycles": [list(vec) for vec in self.lane_cycles],
            "channel_clock": {str(ch): c
                              for ch, c in self.channel_clock.items()},
            "tag_cycles": dict(self.tag_cycles),
            "counts": dict(self.counts),
            "utilization": dict(self.utilization),
            "phases": dict(self.phases),
            "critical_path": self.critical_path,
            "energy_pj": self.energy_pj,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        return cls(
            label=data["label"], kind=data.get("kind", "trace"),
            matrix=data.get("matrix", ""), mode=data.get("mode", "ab"),
            channels=data.get("channels"),
            strategy=data.get("strategy", ""),
            precision=data.get("precision", "fp64"),
            total_cycles=int(data["total_cycles"]),
            seconds=float(data.get("seconds", 0.0)),
            commands=int(data.get("commands", 0)),
            categories=tuple(data.get("categories", CATEGORIES)),
            lanes=[tuple(lane) for lane in data.get("lanes", [])],
            lane_cycles=[[int(v) for v in vec]
                         for vec in data.get("lane_cycles", [])],
            channel_clock={int(ch): int(c) for ch, c
                           in data.get("channel_clock", {}).items()},
            tag_cycles={k: int(v)
                        for k, v in data.get("tag_cycles", {}).items()},
            counts={k: int(v) for k, v in data.get("counts", {}).items()},
            utilization={k: float(v) for k, v
                         in data.get("utilization", {}).items()},
            phases={k: int(v) for k, v in data.get("phases", {}).items()},
            critical_path=data.get("critical_path"),
            energy_pj=data.get("energy_pj"),
            attrib_version=int(data.get("attrib_version", ATTRIB_VERSION)),
            version=int(data.get("version", REPORT_VERSION)),
        )


def _path_to_dict(path: Optional[CriticalPath]) -> Optional[Dict[str, Any]]:
    """JSON-stable form of a critical path (int keys become strings)."""
    if path is None:
        return None
    return {
        "makespan": path.makespan,
        "modelled_cycles": path.modelled_cycles,
        "total_slack": path.total_slack,
        "nodes": [{
            "group": node.group,
            "duration": node.duration,
            "critical_channel": node.critical_channel,
            "durations": {str(ch): d for ch, d in node.durations.items()},
            "slack": {str(ch): s for ch, s in node.slack.items()},
        } for node in path.nodes],
    }


def build_run_report(attribution: Attribution, perf, *, label: str,
                     kind: str = "trace", matrix: str = "",
                     mode: str = "ab", channels: Optional[int] = None,
                     strategy: str = "", precision: str = "fp64",
                     config=None, alu_operations: int = 0) -> RunReport:
    """Freeze one ``(Attribution, PerfReport)`` pair into a RunReport.

    *config* and *alu_operations*, when given, extend the utilization
    summary with the roofline view (achieved vs peak ALU throughput,
    achieved vs peak external bandwidth).
    """
    lanes = sorted(attribution.lane_cycles)
    utilization: Dict[str, float] = {}
    cycles = perf.cycles
    acts = sum(n for k, n in perf.counts.items()
               if k.name in ("ACT", "ACT_AB"))
    columns = perf.column_commands
    if cycles > 0:
        utilization["bus_utilisation"] = min(1.0, columns / cycles)
    if acts > 0:
        utilization["row_buffer_locality"] = columns / acts
    for name, share in attribution.fractions().items():
        utilization[f"{name}_fraction"] = share
    if config is not None and perf.seconds > 0 and alu_operations:
        achieved = alu_operations / perf.seconds
        peak = config.peak_throughput(precision)
        utilization["achieved_gops"] = achieved / 1e9
        utilization["peak_gops"] = peak / 1e9
        if peak > 0:
            utilization["compute_efficiency"] = achieved / peak
    path = critical_path(attribution)
    report = RunReport(
        label=label, kind=kind, matrix=matrix, mode=mode,
        channels=channels, strategy=strategy, precision=precision,
        total_cycles=perf.cycles, seconds=perf.seconds,
        commands=perf.commands,
        categories=attribution.categories,
        lanes=lanes,
        lane_cycles=[list(attribution.lane_cycles[lane])
                     for lane in lanes],
        channel_clock=dict(attribution.channel_clock),
        tag_cycles=dict(perf.tag_cycles),
        counts={k.name: n for k, n in perf.counts.items() if n},
        utilization=utilization,
        phases=phase_cycles(attribution),
        critical_path=_path_to_dict(path),
        energy_pj=(perf.energy.total_pj if perf.energy is not None
                   else None),
    )
    report.check()
    return report


# ----------------------------------------------------------------------
# persistence (bundles are {label: RunReport})
# ----------------------------------------------------------------------
def save_reports(path: Union[str, Path],
                 reports: Dict[str, RunReport]) -> Path:
    """Persist a bundle: ``.json`` stable text, anything else pickled."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".json":
        payload = {"version": REPORT_VERSION,
                   "reports": {label: report.to_dict()
                               for label, report in sorted(reports.items())}}
        path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                        + "\n")
    else:
        with open(path, "wb") as fh:
            pickle.dump({"version": REPORT_VERSION, "reports": reports},
                        fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_reports(path: Union[str, Path]) -> Dict[str, RunReport]:
    """Load a bundle saved by :func:`save_reports`.

    Raises :class:`~repro.errors.ExecutionError` (a ``ReproError``, so
    the CLI renders it as ``error: ...``) on missing or malformed files.
    """
    from ..errors import ExecutionError
    path = Path(path)
    try:
        if path.suffix == ".json":
            payload = json.loads(path.read_text())
            return {label: RunReport.from_dict(data)
                    for label, data in payload["reports"].items()}
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        return dict(payload["reports"])
    except FileNotFoundError:
        raise ExecutionError(f"no report bundle at {path} (save one with "
                             f"`psyncpim attrib --out` or `sweep "
                             f"--attrib-out`)")
    except (json.JSONDecodeError, pickle.UnpicklingError, KeyError,
            TypeError) as exc:
        raise ExecutionError(
            f"{path} is not a report bundle: {type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def render_report(report: RunReport, max_lanes: int = 6) -> str:
    """Aligned-text tables: categories, channels, lanes, phases, path."""
    from ..analysis.report import format_table
    parts: List[str] = []
    head = (f"{report.label}: {report.total_cycles} cycles "
            f"({report.seconds * 1e6:.2f} us), {report.commands} commands, "
            f"{report.num_lanes} lanes")
    parts.append(head)

    device = report.device_cycles()
    fractions = report.fractions()
    mean = report.mean_cycles()
    parts.append(format_table(
        ["category", "cycles/lane", "share %"],
        [[name, f"{mean[name]:.0f}", f"{100 * fractions[name]:.1f}"]
         for name in report.categories],
        title="cycle attribution (per-lane mean; lanes sum bitwise to "
              "total)"))

    if len(report.channel_clock) > 1:
        rows = []
        for ch in sorted(report.channel_clock):
            clock = report.channel_clock[ch]
            rows.append([ch, clock, report.total_cycles - clock])
        parts.append(format_table(["channel", "cycles", "slack"],
                                  rows, title="channel clocks"))

    if report.lanes:
        order = sorted(range(len(report.lanes)),
                       key=lambda i: -(report.lane_cycles[i][0]
                                       + report.lane_cycles[i][1]))
        rows = []
        for i in order[:max_lanes]:
            ch, bank = report.lanes[i]
            vec = dict(zip(report.categories, report.lane_cycles[i]))
            rows.append([f"{ch}:{bank}", vec["compute"], vec["padding"],
                         vec["host"], vec["idle"]])
        parts.append(format_table(
            ["lane", "compute", "padding", "host", "idle"], rows,
            title=f"busiest lanes (top {min(max_lanes, len(rows))})"))

    if report.phases:
        whole = sum(report.phases.values())
        parts.append(format_table(
            ["phase", "cycles", "share %"],
            [[name, cycles, f"{100 * cycles / whole:.1f}" if whole else "0"]
             for name, cycles in sorted(report.phases.items(),
                                        key=lambda kv: -kv[1])],
            title="phase timeline (barrier cycles per phase)"))

    if report.critical_path:
        path = report.critical_path
        nodes = sorted(path["nodes"], key=lambda n: -n["duration"])[:5]
        parts.append(format_table(
            ["step", "cycles", "critical ch", "slack"],
            [[n["group"], n["duration"], n["critical_channel"],
              sum(n["slack"].values())] for n in nodes],
            title=(f"critical path: makespan {path['makespan']} vs "
                   f"modelled {path['modelled_cycles']} "
                   f"(slack {path['total_slack']})")))

    util = report.utilization
    if util:
        keys = [k for k in ("bus_utilisation", "row_buffer_locality",
                            "achieved_gops", "peak_gops",
                            "compute_efficiency") if k in util]
        if keys:
            parts.append("utilization: " + "  ".join(
                f"{k}={util[k]:.3f}" for k in keys))
    return "\n\n".join(parts)


def render_bundle_summary(reports: Dict[str, RunReport]) -> str:
    """One row per report: cycles plus the dominant categories."""
    from ..analysis.report import format_table
    rows = []
    for label in sorted(reports):
        report = reports[label]
        fr = report.fractions()
        top = sorted(fr.items(), key=lambda kv: -kv[1])[:3]
        rows.append([label, report.total_cycles,
                     " ".join(f"{n}:{100 * v:.0f}%" for n, v in top)])
    return format_table(["run", "cycles", "top categories"], rows,
                        title="attribution summary")


# ----------------------------------------------------------------------
# HTML rendering (self-contained single file)
# ----------------------------------------------------------------------
def render_html(reports: Dict[str, RunReport],
                title: str = "psyncpim cycle attribution") -> str:
    """A dependency-free HTML report: stacked bars + per-run tables."""
    esc = _html.escape
    out: List[str] = []
    out.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    out.append(f"<title>{esc(title)}</title><style>")
    out.append(
        "body{font-family:system-ui,sans-serif;margin:2em;color:#222}"
        "table{border-collapse:collapse;margin:0.6em 0}"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}"
        "th{background:#f0f0f0}td:first-child,th:first-child"
        "{text-align:left}.bar{display:flex;height:22px;width:640px;"
        "border:1px solid #999;margin:4px 0}.bar div{height:100%}"
        ".legend span{display:inline-block;margin-right:1em}"
        ".legend i{display:inline-block;width:10px;height:10px;"
        "margin-right:4px}h2{margin-top:1.6em;border-bottom:1px solid "
        "#ddd}")
    out.append("</style></head><body>")
    out.append(f"<h1>{esc(title)}</h1>")
    out.append("<p class='legend'>" + "".join(
        f"<span><i style='background:{_COLOURS[name]}'></i>{name}</span>"
        for name in CATEGORIES) + "</p>")
    for label in sorted(reports):
        report = reports[label]
        out.append(f"<h2>{esc(label)}</h2>")
        out.append(
            f"<p>{report.total_cycles} cycles "
            f"({report.seconds * 1e6:.2f} &micro;s), "
            f"{report.commands} commands, {report.num_lanes} lanes, "
            f"matrix <b>{esc(report.matrix) or '-'}</b>, mode "
            f"{esc(report.mode)}, channels "
            f"{report.channels if report.channels else 'rep'}</p>")
        fractions = report.fractions()
        out.append("<div class='bar'>" + "".join(
            f"<div style='width:{100 * fractions[name]:.2f}%;"
            f"background:{_COLOURS[name]}' title='{name}: "
            f"{100 * fractions[name]:.1f}%'></div>"
            for name in report.categories if fractions[name] > 0)
            + "</div>")
        mean = report.mean_cycles()
        out.append("<table><tr><th>category</th>"
                   + "".join(f"<th>{n}</th>" for n in report.categories)
                   + "</tr><tr><td>cycles/lane</td>"
                   + "".join(f"<td>{mean[n]:.0f}</td>"
                             for n in report.categories)
                   + "</tr><tr><td>share</td>"
                   + "".join(f"<td>{100 * fractions[n]:.1f}%</td>"
                             for n in report.categories)
                   + "</tr></table>")
        if report.phases:
            out.append("<table><tr><th>phase</th><th>cycles</th></tr>"
                       + "".join(
                           f"<tr><td>{esc(k)}</td><td>{v}</td></tr>"
                           for k, v in sorted(report.phases.items(),
                                              key=lambda kv: -kv[1]))
                       + "</table>")
        if report.critical_path:
            path = report.critical_path
            out.append(
                f"<p>critical path: makespan <b>{path['makespan']}</b> "
                f"vs modelled {path['modelled_cycles']} (slack "
                f"{path['total_slack']})</p>")
    out.append("</body></html>")
    return "".join(out)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
@dataclass
class DiffEntry:
    """Cycle delta of one label present in both bundles."""

    label: str
    base_cycles: int
    new_cycles: int
    #: Per-lane mean category deltas (new - base), in cycles.
    category_delta: Dict[str, float]

    @property
    def delta(self) -> int:
        return self.new_cycles - self.base_cycles

    @property
    def ratio(self) -> float:
        return (self.new_cycles / self.base_cycles
                if self.base_cycles else float("inf"))

    @property
    def dominant_category(self) -> str:
        if not self.category_delta:
            return "-"
        return max(self.category_delta,
                   key=lambda name: abs(self.category_delta[name]))


@dataclass
class BundleDiff:
    """Label-by-label comparison of two RunReport bundles."""

    entries: List[DiffEntry]
    only_base: List[str]
    only_new: List[str]

    @property
    def total_base(self) -> int:
        return sum(e.base_cycles for e in self.entries)

    @property
    def total_new(self) -> int:
        return sum(e.new_cycles for e in self.entries)

    @property
    def total_delta(self) -> int:
        return self.total_new - self.total_base

    def category_delta(self) -> Dict[str, float]:
        """Summed per-lane-mean category deltas across all entries."""
        totals: Dict[str, float] = {}
        for entry in self.entries:
            for name, d in entry.category_delta.items():
                totals[name] = totals.get(name, 0.0) + d
        return totals

    @property
    def dominant_category(self) -> str:
        """The category whose cycle movement explains most of the delta."""
        totals = self.category_delta()
        if not totals:
            return "-"
        return max(totals, key=lambda name: abs(totals[name]))

    def regressions(self, top: int = 5) -> List[DiffEntry]:
        """Labels whose cycles grew the most, worst first."""
        worse = [e for e in self.entries if e.delta > 0]
        return sorted(worse, key=lambda e: -e.delta)[:top]

    def improvements(self, top: int = 5) -> List[DiffEntry]:
        better = [e for e in self.entries if e.delta < 0]
        return sorted(better, key=lambda e: e.delta)[:top]


def diff_reports(base: Dict[str, RunReport],
                 new: Dict[str, RunReport]) -> BundleDiff:
    """Compare two bundles; category deltas are per-lane means so runs
    with different lane counts (e.g. C=1 vs C=4) stay comparable."""
    entries: List[DiffEntry] = []
    for label in sorted(set(base) & set(new)):
        b, n = base[label], new[label]
        b_mean, n_mean = b.mean_cycles(), n.mean_cycles()
        names = sorted(set(b_mean) | set(n_mean))
        entries.append(DiffEntry(
            label=label, base_cycles=b.total_cycles,
            new_cycles=n.total_cycles,
            category_delta={name: n_mean.get(name, 0.0)
                            - b_mean.get(name, 0.0) for name in names}))
    return BundleDiff(entries=entries,
                      only_base=sorted(set(base) - set(new)),
                      only_new=sorted(set(new) - set(base)))


def render_diff(diff: BundleDiff, top: int = 5) -> str:
    """The ``psyncpim diff`` transcript."""
    from ..analysis.report import format_table
    parts: List[str] = []
    if not diff.entries:
        lines = ["no common labels to diff"]
        if diff.only_base:
            lines.append("only in base: " + ", ".join(diff.only_base))
        if diff.only_new:
            lines.append("only in new: " + ", ".join(diff.only_new))
        return "\n".join(lines)
    base, new = diff.total_base, diff.total_new
    pct = 100.0 * diff.total_delta / base if base else 0.0
    parts.append(f"run diff: {len(diff.entries)} run(s), total modelled "
                 f"cycles {base} -> {new} ({pct:+.1f}%)")
    totals = diff.category_delta()
    whole = sum(abs(v) for v in totals.values())
    parts.append(format_table(
        ["category", "delta cycles/lane", "share of movement %"],
        [[name, f"{totals[name]:+.0f}",
          f"{100 * abs(totals[name]) / whole:.1f}" if whole else "0"]
         for name in sorted(totals, key=lambda n: -abs(totals[n]))],
        title=f"dominant changed category: {diff.dominant_category}"))
    regressions = diff.regressions(top)
    if regressions:
        parts.append(format_table(
            ["run", "base", "new", "delta", "ratio", "dominant category"],
            [[e.label, e.base_cycles, e.new_cycles, f"{e.delta:+d}",
              f"{e.ratio:.3f}x", e.dominant_category]
             for e in regressions],
            title=f"top regressions (of {len(diff.entries)})"))
    improvements = diff.improvements(top)
    if improvements:
        parts.append(format_table(
            ["run", "base", "new", "delta", "ratio", "dominant category"],
            [[e.label, e.base_cycles, e.new_cycles, f"{e.delta:+d}",
              f"{e.ratio:.3f}x", e.dominant_category]
             for e in improvements],
            title="top improvements"))
    for name, labels in (("only in base", diff.only_base),
                         ("only in new", diff.only_new)):
        if labels:
            parts.append(f"{name}: " + ", ".join(labels))
    return "\n\n".join(parts)
