"""The pSyncPIM host runtime: the library's main entry point.

:class:`PSyncPIM` bundles configuration, kernel execution and performance
modelling behind one object, the way a host-side runtime library would wrap
the device:

>>> from repro import PSyncPIM
>>> pim = PSyncPIM()
>>> result = pim.spmv(matrix, x)           # executes the full plan
>>> report = pim.time_spmv(result)         # prices it on the DRAM model

Functional-fidelity execution (instruction-accurate processing units) is a
constructor switch; the default fast tier runs the identical data plan with
vectorised numpy (see DESIGN.md §5 on the two tiers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SystemConfig, default_system
from ..errors import ExecutionError
from ..formats import COOMatrix
from .spmm import SpmmResult, run_spmm
from .spmv import SpmvResult, run_spmv
from .sptrsv import ILDUFactors, SpTrsvResult, ildu, run_sptrsv
from .timing import (PerfReport, time_dense_kernel, time_spmm, time_spmv,
                     time_sptrsv)
from .trace import TraceParams


class PSyncPIM:
    """A configured pSyncPIM system: execution plus performance modelling."""

    def __init__(self, num_cubes: int = 1, precision: str = "fp64",
                 fidelity: str = "fast",
                 engine_banks: Optional[int] = None,
                 trace_params: Optional[TraceParams] = None,
                 config: Optional[SystemConfig] = None,
                 channels: Optional[int] = None,
                 strategy: Optional[str] = None) -> None:
        if fidelity not in ("fast", "functional"):
            raise ExecutionError(f"unknown fidelity {fidelity!r}")
        self.config = config or default_system(num_cubes)
        self.precision = precision
        self.fidelity = fidelity
        self.engine_banks = engine_banks
        self.trace_params = trace_params or TraceParams()
        #: Channel-sharded execution width (None = legacy representative
        #: channel; explicit arg > PSYNCPIM_CHANNELS > default).
        self.channels = channels
        #: Partitioning strategy (None resolves to PSYNCPIM_STRATEGY >
        #: "paper"; "auto" tunes per matrix — repro.core.strategies).
        self.strategy = strategy

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def spmv(self, matrix: COOMatrix, x: np.ndarray,
             multiply: str = "mul", accumulate: str = "add",
             y0: Optional[np.ndarray] = None,
             compress: bool = True, policy: str = "paper",
             precision: Optional[str] = None,
             matrix_format: str = "coo") -> SpmvResult:
        """Sparse matrix-vector multiply (semiring-generalised)."""
        return run_spmv(matrix, x, self.config,
                        precision=precision or self.precision,
                        compress=compress, policy=policy,
                        fidelity=self.fidelity, multiply=multiply,
                        accumulate=accumulate, y0=y0,
                        engine_banks=self.engine_banks,
                        matrix_format=matrix_format,
                        channels=self.channels,
                        strategy=self.strategy)

    def spmm(self, matrix: COOMatrix, x: np.ndarray,
             multiply: str = "mul", accumulate: str = "add",
             y0: Optional[np.ndarray] = None,
             compress: bool = True, policy: str = "paper",
             precision: Optional[str] = None,
             matrix_format: str = "coo") -> SpmmResult:
        """Sparse matrix times a dense block of k right-hand sides.

        *x* has shape ``(n, k)`` (a 1-D vector runs as ``k = 1``, which
        is bitwise :meth:`spmv`); one plan stays resident across all k
        columns.
        """
        return run_spmm(matrix, x, self.config,
                        precision=precision or self.precision,
                        compress=compress, policy=policy,
                        fidelity=self.fidelity, multiply=multiply,
                        accumulate=accumulate, y0=y0,
                        engine_banks=self.engine_banks,
                        matrix_format=matrix_format,
                        channels=self.channels,
                        strategy=self.strategy)

    def sptrsv(self, triangular: COOMatrix, b: np.ndarray,
               lower: bool = True, reorder: bool = True,
               precision: Optional[str] = None) -> SpTrsvResult:
        """Unit triangular solve via the recursive block algorithm."""
        return run_sptrsv(triangular, b, self.config, lower=lower,
                          precision=precision or self.precision,
                          fidelity=self.fidelity, reorder=reorder,
                          engine_banks=self.engine_banks,
                          channels=self.channels,
                          strategy=self.strategy)

    def factorize(self, matrix: COOMatrix) -> ILDUFactors:
        """Host-side ILDU preprocessing (§VI-D)."""
        return ildu(matrix)

    def precondition(self, factors: ILDUFactors,
                     r: np.ndarray) -> np.ndarray:
        """Apply M^-1 = U^-1 D^-1 L^-1 with PIM triangular solves."""
        y = self.sptrsv(factors.lower, r, lower=True).x
        y = y * factors.diag_inv
        return self.sptrsv(factors.upper, y, lower=False).x

    # ------------------------------------------------------------------
    # performance modelling
    # ------------------------------------------------------------------
    def time_spmv(self, result: SpmvResult, mode: str = "ab",
                  with_energy: bool = False) -> PerfReport:
        """Price an executed SpMV in all-bank or per-bank mode."""
        return time_spmv(result.execution, self.config, mode=mode,
                         params=self.trace_params, with_energy=with_energy)

    def time_spmm(self, result: SpmmResult, mode: str = "ab",
                  with_energy: bool = False) -> PerfReport:
        """Price an executed SpMM in all-bank or per-bank mode."""
        return time_spmm(result.execution, self.config, mode=mode,
                         params=self.trace_params, with_energy=with_energy)

    def time_sptrsv(self, result: SpTrsvResult,
                    with_energy: bool = False) -> PerfReport:
        """Price an executed triangular solve."""
        return time_sptrsv(result.execution, self.config,
                           params=self.trace_params,
                           with_energy=with_energy)

    def time_vector_kernel(self, elements: int, reads_per_group: int = 2,
                           writes_per_group: int = 1, mode: str = "ab",
                           ops_per_element: int = 1,
                           with_energy: bool = False) -> PerfReport:
        """Price a dense streaming BLAS-1 kernel of *elements* length."""
        return time_dense_kernel(elements, reads_per_group,
                                 writes_per_group, self.config,
                                 precision=self.precision, mode=mode,
                                 ops_per_element=ops_per_element,
                                 with_energy=with_energy,
                                 params=self.trace_params)

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def sweep(self, matrices, kernel: str = "spmv",
              scale: Optional[float] = None,
              workers: Optional[int] = None, mode: str = "ab",
              use_cache: bool = True, cache_dir: Optional[str] = None,
              with_energy: bool = False, **job_overrides):
        """Run a batch of (matrix, kernel) jobs in parallel with caching.

        *matrices* is an iterable of Table IX names (or prebuilt
        :class:`repro.sweep.SweepJob` instances, taken as-is). Jobs
        inherit this runtime's precision and cube count; ``scale``
        defaults to the benchmark scale from the environment
        (``PSYNCPIM_SCALE``). Returns a
        :class:`repro.analysis.SweepResult` with per-job reports, cache
        hit/miss counters and worker utilisation.

        Jobs are priced on :func:`repro.config.default_system` (or the
        GDDR6 platform via ``platform="gddr6"``) for this runtime's cube
        count; a fully custom ``SystemConfig`` does not transfer to the
        worker processes.
        """
        from ..sweep import SweepJob, resolve_bench_scale, run_sweep
        if scale is None:
            scale = resolve_bench_scale()
        job_overrides.setdefault("channels", self.channels)
        job_overrides.setdefault("strategy", self.strategy)
        jobs = []
        for entry in matrices:
            if isinstance(entry, SweepJob):
                jobs.append(entry)
                continue
            jobs.append(SweepJob(kernel=kernel, matrix=entry, scale=scale,
                                 precision=self.precision,
                                 num_cubes=self.config.num_cubes,
                                 mode=mode, with_energy=with_energy,
                                 **job_overrides))
        return run_sweep(jobs, workers=workers, cache_dir=cache_dir,
                         use_cache=use_cache)

    # ------------------------------------------------------------------
    def backend(self, **kwargs):
        """A :class:`repro.apps.PIMBackend` bound to this configuration."""
        from ..apps import PIMBackend
        return PIMBackend(config=self.config, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PSyncPIM(cubes={self.config.num_cubes}, "
                f"units={self.config.total_units}, "
                f"precision={self.precision!r}, fidelity={self.fidelity!r})")
