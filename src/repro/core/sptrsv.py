"""SpTRSV on pSyncPIM: ILDU, recursive blocks, levels (paper §VI).

The pipeline mirrors the paper exactly:

1. **Host preprocessing** — :func:`ildu` factors A ≈ L·D·U with *unit*
   triangular L and U and stores D as its inverse, so no division ever runs
   on the PIM units (§VI-D). :func:`level_schedule` computes dependency
   levels; :func:`reorder_by_levels` optionally permutes rows so each level
   is contiguous and maximally wide.
2. **Recursive block algorithm** (§VI-A, Eqs. 1-3) — the triangular matrix
   splits into L0 / M / L1 until diagonal blocks fit the memory-row bound;
   the flattened plan alternates leaf solves with SpMV updates.
3. **Leaf execution** (§VI-C, Algorithm 3) — within a leaf, columns are
   batched into independent levels. Per level the host reads the solved
   values (SB), broadcasts them (AB), and the banks run the scalar-multiply
   kernel ``b[r] -= x[c] * v`` — the same tile kernel as SpMV with a
   ``sub`` accumulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..config import SystemConfig, resolve_channels, resolve_planner
from ..errors import ConfigError, ExecutionError, MappingError, SolverError
from ..formats import COOMatrix, CSRMatrix
from ..kernels import Tile, run_tile_round
from ..pim import make_engine
from .. import obs
from .partition import tile_capacity
from .planner import concat_ranges

# ----------------------------------------------------------------------
# host preprocessing: ILDU factorisation
# ----------------------------------------------------------------------


@dataclass
class ILDUFactors:
    """A ≈ L D U with unit triangular factors and D stored inverted.

    ``lower``/``upper`` omit their unit diagonals *logically* — they store
    it explicitly (value 1.0) for convenience, but the memory mapping drops
    it (the paper stores L* = L - I, §VI-B).
    """

    lower: COOMatrix
    diag_inv: np.ndarray
    upper: COOMatrix

    @property
    def n(self) -> int:
        return self.lower.shape[0]

    def apply(self, b: np.ndarray) -> np.ndarray:
        """Reference preconditioner application x = U^-1 D^-1 L^-1 b."""
        y = solve_unit_triangular_reference(self.lower, b, lower=True)
        y = y * self.diag_inv
        return solve_unit_triangular_reference(self.upper, y, lower=False)


@obs.profiled("sptrsv.ildu", cat="planner")
def ildu(matrix: COOMatrix) -> ILDUFactors:
    """Incomplete LDU decomposition on the pattern of *matrix* (ILU(0)).

    Standard IKJ ILU(0) restricted to A's sparsity pattern, then the U
    factor's diagonal is split off as D (stored as 1/D) and both triangular
    factors are normalised to unit diagonals.
    """
    if not matrix.is_square:
        raise SolverError("ILDU needs a square matrix")
    n = matrix.shape[0]
    csr = CSRMatrix.from_coo(matrix)
    if np.any(matrix.diagonal() == 0.0):
        raise SolverError("ILDU needs a full diagonal")

    # Working rows as dicts (pattern-restricted updates), built from the
    # CSR arrays in one split pass instead of per-row slicing.
    all_idx = csr.indices.tolist()
    all_val = csr.data.tolist()
    bounds = csr.indptr.tolist()
    rows = [dict(zip(all_idx[bounds[i]:bounds[i + 1]],
                     all_val[bounds[i]:bounds[i + 1]]))
            for i in range(n)]

    diag = np.zeros(n)
    for i in range(n):
        row = rows[i]
        for k in sorted(c for c in row if c < i):
            lik = row[k] / diag[k]
            row[k] = lik
            for j, ukj in rows[k].items():
                if j > k and j in row:
                    row[j] -= lik * ukj
        if i not in row or row[i] == 0.0:
            raise SolverError(f"zero pivot at row {i} during ILDU")
        diag[i] = row[i]

    # Assemble both factors with array masks over the flattened rows
    # instead of per-element Python appends.
    counts = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
    all_i = np.repeat(np.arange(n, dtype=np.int64), counts)
    if all_i.size:
        all_j = np.concatenate([
            np.fromiter(r.keys(), dtype=np.int64, count=len(r))
            for r in rows])
        all_v = np.concatenate([
            np.fromiter(r.values(), dtype=np.float64, count=len(r))
            for r in rows])
    else:
        all_j = np.zeros(0, dtype=np.int64)
        all_v = np.zeros(0)
    low = all_j < all_i
    up = all_j > all_i
    eye = np.arange(n)
    lower = COOMatrix((n, n), np.concatenate([all_i[low], eye]),
                      np.concatenate([all_j[low], eye]),
                      np.concatenate([all_v[low], np.ones(n)]),
                      check=False)
    upper = COOMatrix((n, n), np.concatenate([all_i[up], eye]),
                      np.concatenate([all_j[up], eye]),
                      np.concatenate([all_v[up] / diag[all_i[up]],
                                      np.ones(n)]),  # unit-normalise U
                      check=False)
    return ILDUFactors(lower=lower, diag_inv=1.0 / diag, upper=upper)


def solve_unit_triangular_reference(tri: COOMatrix, b: np.ndarray,
                                    lower: bool = True) -> np.ndarray:
    """Golden sequential solve (Algorithm 1) used for validation."""
    n = tri.shape[0]
    b = np.asarray(b, dtype=np.float64)
    x = b.copy()
    csr = CSRMatrix.from_coo(tri)
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        idx, val = csr.row(i)
        mask = (idx < i) if lower else (idx > i)
        x[i] = x[i] - float(np.dot(val[mask], x[idx[mask]]))
    return x


# ----------------------------------------------------------------------
# level scheduling and row reordering
# ----------------------------------------------------------------------
def _flip(tri: COOMatrix) -> COOMatrix:
    """Map index i -> n-1-i on both axes (upper <-> lower conversion)."""
    n = tri.shape[0]
    return COOMatrix(tri.shape, n - 1 - tri.rows, n - 1 - tri.cols,
                     tri.vals.copy(), check=False)


def level_schedule(tri: COOMatrix, lower: bool = True,
                   planner: Optional[str] = None) -> List[np.ndarray]:
    """Group rows into dependency levels (host row-reordering support).

    Row i's level is 1 + max level of the rows it depends on; rows in one
    level are mutually independent and can be solved in a single all-bank
    batch. Upper solves are scheduled on the flipped (lower) matrix and
    mapped back.

    ``planner`` selects the implementation: the ``"scalar"`` per-row loop
    or the default ``"fast"`` frontier sweep over CSC (one numpy
    relaxation pass per dependency level). Both return identical levels.
    """
    n = tri.shape[0]
    if not lower:
        flipped_levels = level_schedule(_flip(tri), lower=True,
                                        planner=planner)
        return [np.sort(n - 1 - lvl) for lvl in flipped_levels]
    if resolve_planner(planner) == "fast":
        depth = _level_depths_fast(n, tri.rows, tri.cols)
    else:
        depth = _level_depths_scalar(n, tri)
    return _levels_from_depths(depth)


def _level_depths_scalar(n: int, tri: COOMatrix) -> np.ndarray:
    """Oracle: O(n) per-row loop over CSR, longest dependency path."""
    depth = np.zeros(n, dtype=np.int64)
    csr = CSRMatrix.from_coo(tri)
    for i in range(n):
        idx, _ = csr.row(i)
        deps = idx[idx < i]
        if deps.size:
            depth[i] = depth[deps].max() + 1
    return depth


def _level_depths_fast(n: int, rows: np.ndarray,
                       cols: np.ndarray) -> np.ndarray:
    """Frontier sweep: peel rows whose dependencies are all resolved.

    A row enters the frontier exactly when its last strictly-lower
    dependency resolves, i.e. at level ``1 + max(dep levels)`` — the same
    longest-path depth the scalar loop computes row by row.
    """
    depth = np.zeros(n, dtype=np.int64)
    if n == 0:
        return depth
    # CSC of the strictly-lower dependency edges: column c -> the rows
    # depending on it. Edges are packed as (col << shift) | row so one
    # in-place value sort groups them by column — much cheaper than an
    # argsort, and the within-column row order is irrelevant to depths.
    shift = max(1, (n - 1).bit_length())
    keys = (cols << shift) | rows
    keys = keys[rows > cols]
    keys.sort()
    erows = keys & ((1 << shift) - 1)
    ecols = keys >> shift
    indegree = np.bincount(erows, minlength=n)
    col_ptr = np.append(0, np.cumsum(np.bincount(ecols, minlength=n)))
    frontier = np.flatnonzero(indegree == 0)
    level = 0
    while frontier.size:
        depth[frontier] = level
        targets = erows[concat_ranges(col_ptr[frontier],
                                      col_ptr[frontier + 1])]
        if targets.size == 0:
            break
        # Per-level work stays O(edges relaxed), not O(n): decrement in
        # place and re-examine only the rows that were just touched.
        np.subtract.at(indegree, targets, 1)
        frontier = np.unique(targets[indegree[targets] == 0])
        level += 1
    return depth


def _levels_from_depths(depth: np.ndarray) -> List[np.ndarray]:
    """Split row indices into per-depth levels, ascending within each.

    Packs (depth, row) into one integer per row so a plain value sort
    replaces the stable argsort while producing the identical ascending
    row order inside every level.
    """
    n = depth.size
    if n == 0:
        return []
    shift = max(1, (n - 1).bit_length())
    keys = (depth << shift) | np.arange(n, dtype=np.int64)
    keys.sort()
    order = keys & ((1 << shift) - 1)
    bounds = np.cumsum(np.bincount(depth))
    return np.split(order, bounds[:-1])


def reorder_by_levels(tri: COOMatrix, lower: bool = True,
                      planner: Optional[str] = None,
                      ) -> Tuple[np.ndarray, COOMatrix]:
    """Permute rows/cols so dependency levels are contiguous (§VI-D).

    Returns ``(perm, reordered)`` where ``reordered = P A P^T`` with
    ``perm[new] = old``. Sorting by level depth preserves triangularity
    because an edge always points from a shallower to a deeper row.
    """
    if not lower:
        n = tri.shape[0]
        perm_flipped, reordered_flipped = reorder_by_levels(
            _flip(tri), lower=True, planner=planner)
        perm = (n - 1 - perm_flipped)[::-1].copy()
        reordered = _flip(reordered_flipped)
        if not reordered.is_upper_triangular():
            raise MappingError("level reordering broke upper-triangularity")
        return perm, reordered
    levels = level_schedule(tri, lower=True, planner=planner)
    perm = (np.concatenate(levels) if levels
            else np.zeros(0, dtype=np.int64))
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    reordered = COOMatrix(tri.shape, inverse[tri.rows], inverse[tri.cols],
                          tri.vals.copy(), check=False)
    if not reordered.is_lower_triangular():
        raise MappingError("level reordering broke lower-triangularity")
    return perm, reordered


# ----------------------------------------------------------------------
# recursive block plan (Eqs. 1-3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveStep:
    """One step of the flattened recursive block plan."""

    kind: str                       # "leaf" or "update"
    row_range: Tuple[int, int]
    col_range: Tuple[int, int]      # == row_range for leaves


def recursive_plan(n: int, leaf_size: int) -> List[SolveStep]:
    """Flatten the L0 / M / L1 recursion into an ordered step list."""
    if leaf_size <= 0:
        raise MappingError("leaf size must be positive")
    steps: List[SolveStep] = []

    def recurse(lo: int, hi: int) -> None:
        if hi - lo <= leaf_size:
            steps.append(SolveStep("leaf", (lo, hi), (lo, hi)))
            return
        mid = lo + (hi - lo) // 2
        recurse(lo, mid)
        steps.append(SolveStep("update", (mid, hi), (lo, mid)))
        recurse(mid, hi)

    if n > 0:
        recurse(0, n)
    return steps


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass
class SpTrsvExecution:
    """Cost-model inputs for one triangular solve."""

    precision: str
    num_banks: int
    n: int
    leaf_size: int
    #: Per-level lock-step element counts (max per bank), leaf phases only.
    level_batches: List[int] = field(default_factory=list)
    #: Per-level total elements (for bandwidth/energy accounting).
    level_elements: List[int] = field(default_factory=list)
    #: Per-level number of columns solved (broadcast payload sizes).
    level_widths: List[int] = field(default_factory=list)
    #: Element totals of the SpMV update steps between leaves.
    update_elements: List[int] = field(default_factory=list)
    #: Rounds needed by each update step's SpMV.
    update_batches: List[int] = field(default_factory=list)
    #: Full execution records of the update SpMVs (trace synthesis).
    update_execs: List[object] = field(default_factory=list)
    #: Channel-sharded solves carry the shard width here; ``None`` selects
    #: the legacy representative-channel model.
    num_channels: Optional[int] = None
    banks_per_channel: int = 16
    #: One per-channel sub-execution per shard (empty when unsharded).
    channel_execs: List["SpTrsvExecution"] = field(default_factory=list)

    @property
    def num_levels(self) -> int:
        return len(self.level_batches)

    @property
    def total_elements(self) -> int:
        return int(sum(self.level_elements) + sum(self.update_elements))


@dataclass
class SpTrsvResult:
    x: np.ndarray
    execution: SpTrsvExecution


def run_sptrsv(tri: COOMatrix, b: np.ndarray, config: SystemConfig,
               lower: bool = True, precision: str = "fp64",
               fidelity: str = "fast", reorder: bool = True,
               leaf_size: Optional[int] = None,
               engine_banks: Optional[int] = None,
               engine: Optional[str] = None,
               planner: Optional[str] = None,
               channels: Optional[int] = None,
               strategy: Optional[str] = None) -> SpTrsvResult:
    """Solve ``T x = b`` for unit triangular T on the pSyncPIM model.

    Upper solves are run as lower solves on the reversed ordering
    (rows/cols mapped through ``n-1-i``), which is how the hardware reuses
    one kernel for L and U (Table III lists both under SpTRSV).

    ``planner`` selects the host-side scheduling implementation (level
    computation, leaf level formation); results and execution records are
    bitwise identical either way (see :mod:`repro.core.planner`).

    ``channels`` selects the execution model (explicit arg >
    ``PSYNCPIM_CHANNELS`` > default): ``None`` is the legacy
    representative-channel layout over ``config.total_units`` banks; an
    integer ``C`` shards every leaf level's row ranges and every update
    SpMV over ``C`` explicitly modelled channels. Fast-tier numerics are
    bitwise identical for any ``C`` (the host-side scatter order does not
    depend on the bank split).

    ``strategy`` selects the partitioning scheme for the update SpMVs
    (explicit arg > ``PSYNCPIM_STRATEGY`` > ``"paper"``; see
    :mod:`repro.core.strategies`). The default (``"paper"``) path is
    bitwise unchanged; alternative strategies regroup the per-row
    accumulation and may differ in the last floating-point bits.
    """
    b = np.asarray(b, dtype=np.float64)
    n = tri.shape[0]
    channels = resolve_channels(channels)
    if channels is not None:
        available = config.memory.num_pseudo_channels
        if channels > available:
            raise ConfigError(
                f"channels={channels} exceeds the platform's "
                f"{available} pseudo-channels")
    if b.shape != (n,):
        raise ExecutionError("right-hand side length mismatch")
    if not tri.is_square:
        raise ExecutionError("triangular solve needs a square matrix")
    if lower and not tri.is_lower_triangular():
        raise ExecutionError("matrix is not lower triangular")
    if not lower and not tri.is_upper_triangular():
        raise ExecutionError("matrix is not upper triangular")

    if not lower:
        flipped = COOMatrix(tri.shape, n - 1 - tri.rows, n - 1 - tri.cols,
                            tri.vals.copy(), check=False)
        result = run_sptrsv(flipped, b[::-1].copy(), config, lower=True,
                            precision=precision, fidelity=fidelity,
                            reorder=reorder, leaf_size=leaf_size,
                            engine_banks=engine_banks, engine=engine,
                            planner=planner, channels=channels,
                            strategy=strategy)
        result.x = result.x[::-1].copy()
        return result

    planner_name = resolve_planner(planner)
    perm = None
    work = tri
    rhs = b.copy()
    if reorder:
        with obs.span("sptrsv.level_schedule", cat="planner", n=n,
                      nnz=tri.nnz):
            perm, work = reorder_by_levels(tri, lower=True,
                                           planner=planner_name)
        rhs = b[perm].copy()

    leaf = leaf_size or tile_capacity(config, precision)
    plan = recursive_plan(n, leaf)
    bpc = config.memory.banks_per_channel
    if channels is None:
        execution = SpTrsvExecution(precision=precision,
                                    num_banks=config.total_units,
                                    n=n, leaf_size=leaf)
    else:
        # Channels are per-cube: the lane array spans C * bpc units and
        # num_cubes stays a symmetric multiplier in the energy model.
        execution = SpTrsvExecution(
            precision=precision, num_banks=channels * bpc, n=n,
            leaf_size=leaf, num_channels=channels, banks_per_channel=bpc,
            channel_execs=[
                SpTrsvExecution(precision=precision, num_banks=bpc,
                                n=n, leaf_size=leaf)
                for _ in range(channels)])
    strict = work.strictly_lower()
    if planner_name == "fast":
        # Column-major order gives every leaf block's elements as one
        # contiguous (column, row)-sorted slice range.
        solve_leaf = _solve_leaf_fast
        leaf_source = strict.sorted_cols()
    else:
        solve_leaf = _solve_leaf_scalar
        leaf_source = CSRMatrix.from_coo(strict.transpose())  # col access

    with obs.span("sptrsv.solve", cat="kernel", n=n, steps=len(plan),
                  fidelity=fidelity):
        for step in plan:
            if step.kind == "update":
                _apply_update(strict, rhs, step, config, precision,
                              fidelity, engine_banks, execution, engine,
                              planner_name, channels, strategy)
            else:
                solve_leaf(leaf_source, rhs, step, config, precision,
                           fidelity, engine_banks, execution, engine)
    if obs.enabled():
        obs.set_gauge("sptrsv.levels", execution.num_levels)
        obs.add_counter("sptrsv.solves", 1)

    x = rhs
    if perm is not None:
        unpermuted = np.empty_like(x)
        unpermuted[perm] = x
        x = unpermuted
    return SpTrsvResult(x=x, execution=execution)


def _apply_update(strict: COOMatrix, rhs: np.ndarray, step: SolveStep,
                  config, precision, fidelity, engine_banks,
                  execution: SpTrsvExecution,
                  engine: Optional[str] = None,
                  planner: Optional[str] = None,
                  channels: Optional[int] = None,
                  strategy: Optional[str] = None) -> None:
    """b1 -= M @ x0 (Eq. 3's SpMV between the two recursive solves)."""
    from .spmv import run_spmv  # local import: spmv <-> sptrsv layering
    r0, r1 = step.row_range
    c0, c1 = step.col_range
    block = strict.submatrix(step.row_range, step.col_range)
    if block.nnz == 0:
        return
    result = run_spmv(block, rhs[c0:c1], config, precision=precision,
                      fidelity=fidelity, accumulate="sub",
                      y0=rhs[r0:r1], engine_banks=engine_banks,
                      engine=engine, planner=planner, channels=channels,
                      strategy=strategy)
    rhs[r0:r1] = result.y
    execution.update_elements.append(block.nnz)
    execution.update_batches.append(result.execution.num_rounds)
    execution.update_execs.append(result.execution)
    # Thread each channel's share of the update into its sub-execution;
    # shards the LPT pass left empty skip the update entirely (an idle
    # channel issues no commands for it).
    for sub, sub_exec in zip(execution.channel_execs,
                             result.execution.channel_execs):
        if sub_exec.total_elements == 0:
            continue
        sub.update_elements.append(sub_exec.total_elements)
        sub.update_batches.append(sub_exec.num_rounds)
        sub.update_execs.append(sub_exec)


def _solve_leaf_scalar(csr_cols: CSRMatrix, rhs: np.ndarray,
                       step: SolveStep, config, precision, fidelity,
                       engine_banks, execution: SpTrsvExecution,
                       engine: Optional[str] = None) -> None:
    """Algorithm 3 with level batching inside one diagonal block (oracle:
    per-column loops over a column-access CSR)."""
    lo, hi = step.row_range
    width = hi - lo
    # Level schedule restricted to the block: depth over in-block deps.
    depth = np.zeros(width, dtype=np.int64)
    block_cols: List[Tuple[np.ndarray, np.ndarray]] = []
    for local_col in range(width):
        idx, val = csr_cols.row(lo + local_col)
        mask = (idx >= lo) & (idx < hi)
        block_cols.append((idx[mask] - lo, val[mask]))
    for local_col in range(width):
        rows_below, _ = block_cols[local_col]
        if rows_below.size:
            np.maximum.at(depth, rows_below, depth[local_col] + 1)

    num_levels = int(depth.max()) + 1 if width else 0
    for level in range(num_levels):
        cols = np.nonzero(depth == level)[0]
        rows_list, cols_list, vals_list = [], [], []
        for local_index, col in enumerate(cols):
            rows_below, vals_below = block_cols[col]
            rows_list.append(rows_below)
            cols_list.append(np.full(rows_below.size, local_index,
                                     dtype=np.int64))
            vals_list.append(vals_below)
        rows = np.concatenate(rows_list) if rows_list else np.zeros(
            0, dtype=np.int64)
        lcols = np.concatenate(cols_list) if cols_list else np.zeros(
            0, dtype=np.int64)
        vals = np.concatenate(vals_list) if vals_list else np.zeros(0)
        _run_leaf_level(cols, rows, lcols, vals, rhs, lo, width, config,
                        precision, fidelity, engine_banks, execution,
                        engine)


def _solve_leaf_fast(col_sorted: COOMatrix, rhs: np.ndarray,
                     step: SolveStep, config, precision, fidelity,
                     engine_banks, execution: SpTrsvExecution,
                     engine: Optional[str] = None) -> None:
    """Fast leaf scheduler over the column-sorted strict matrix.

    The block's elements are one column-range slice (rows filtered to the
    block), already in the oracle's (column, row) emission order; depth
    comes from the same frontier sweep as :func:`level_schedule` and each
    level's elements are gathered with ``concat_ranges`` instead of
    per-column concatenation. All per-level arrays — and therefore the
    float accumulation order of the rhs updates — match the scalar oracle
    exactly.
    """
    lo, hi = step.row_range
    width = hi - lo
    if width == 0:
        return
    c0 = np.searchsorted(col_sorted.cols, lo, side="left")
    c1 = np.searchsorted(col_sorted.cols, hi, side="left")
    erows = col_sorted.rows[c0:c1]
    # strict lower: every element's row exceeds its column >= lo already
    keep = erows < hi
    erows = erows[keep] - lo
    ecols = col_sorted.cols[c0:c1][keep] - lo
    evals = col_sorted.vals[c0:c1][keep]

    depth = _level_depths_fast(width, erows, ecols)
    col_ptr = np.searchsorted(ecols, np.arange(width + 1))
    num_levels = int(depth.max()) + 1 if width else 0
    level_order = np.argsort(depth, kind="stable")
    level_bounds = np.append(0, np.cumsum(np.bincount(depth)))
    for level in range(num_levels):
        cols = level_order[level_bounds[level]:level_bounds[level + 1]]
        starts, ends = col_ptr[cols], col_ptr[cols + 1]
        gather = concat_ranges(starts, ends)
        rows = erows[gather]
        vals = evals[gather]
        lcols = np.repeat(np.arange(cols.size, dtype=np.int64),
                          ends - starts)
        _run_leaf_level(cols, rows, lcols, vals, rhs, lo, width, config,
                        precision, fidelity, engine_banks, execution,
                        engine)


def _run_leaf_level(cols, rows, lcols, vals, rhs, lo, width, config,
                    precision, fidelity, engine_banks,
                    execution: SpTrsvExecution,
                    engine: Optional[str] = None) -> None:
    """Execute one leaf level (shared by both planners)."""
    # The columns of this level are solved: x = b (unit diagonal).
    scales = rhs[lo + cols]
    per_bank: List[tuple] = []
    if rows.size:
        # Row-contiguous shares over the laid-out units: all of
        # config.total_units in the legacy model, C * banks_per_channel
        # (channel-major: unit c*bpc+b is channel c, bank b) when sharded.
        per_bank = _split_rows(rows, lcols, vals, execution.num_banks)
        batch = max(chunk[0].size for chunk in per_bank)
        execution.level_batches.append(int(batch))
        if fidelity == "fast":
            # scatter-subtract: a row can receive updates from several
            # columns of the same level, so duplicates must accumulate
            np.subtract.at(rhs, lo + rows, vals * scales[lcols])
        else:
            _leaf_level_functional(per_bank, scales, rhs, lo, width,
                                   precision, engine_banks, engine)
    else:
        execution.level_batches.append(0)
    execution.level_elements.append(int(rows.size))
    execution.level_widths.append(int(cols.size))
    # Per-channel accounting: every channel walks the level schedule in
    # lock step (the solved values must reach all channels before the next
    # level — the broadcast seam the trace prices), so each sub-execution
    # records the level even when its share of elements is empty.
    bpc = execution.banks_per_channel
    for ch, sub in enumerate(execution.channel_execs):
        chunks = per_bank[ch * bpc:(ch + 1) * bpc]
        sub.level_batches.append(
            max((chunk[0].size for chunk in chunks), default=0))
        sub.level_elements.append(
            int(sum(chunk[0].size for chunk in chunks)))
        sub.level_widths.append(int(cols.size))


def _split_rows(rows, cols, vals, num_banks):
    """Fig. 7: cut the level's elements into row-contiguous bank shares."""
    order = np.argsort(rows, kind="stable")
    rows, cols, vals = rows[order], cols[order], vals[order]
    share = max(1, math.ceil(rows.size / num_banks))
    chunks = []
    for b in range(0, rows.size, share):
        chunks.append((rows[b:b + share], cols[b:b + share],
                       vals[b:b + share]))
    return chunks


def _leaf_level_functional(per_bank, scales, rhs, lo, width, precision,
                           engine_banks,
                           engine_name: Optional[str] = None) -> None:
    """Run one level on the instruction-accurate engine."""
    width_banks = min(len(per_bank), engine_banks or len(per_bank))
    waves = [per_bank[i:i + width_banks]
             for i in range(0, len(per_bank), width_banks)]
    for wave in waves:
        engine = make_engine(num_banks=len(wave), precision=precision,
                             engine=engine_name)
        tiles = [Tile(rows, cols, vals, scales, width)
                 for rows, cols, vals in wave]
        result = run_tile_round(engine, tiles, accumulate="sub")
        for (rows, _, _), partial in zip(wave, result.y_per_bank):
            touched = np.unique(rows)
            rhs[lo + touched] += partial[touched]
