"""pSyncPIM core: partitioning, distribution, SpMV/SpMM/SpTRSV
execution, trace synthesis and timing."""

from .partition import (PartitionPlan, SubMatrix, partition, reassemble,
                        tile_capacity)
from .planner import Planner, make_planner
from .distribution import (Assignment, ChannelAssignment,
                           accumulation_traffic_bytes, distribute,
                           replication_traffic_bytes, shard_channels)
from .spmv import (SpmvExecution, SpmvResult, element_bytes, plan_spmv,
                   run_spmv)
from .spmm import (SpmmExecution, SpmmResult, as_spmm_execution, plan_spmm,
                   run_spmm)
from .strategies import (AutoStrategy, PartitionStrategy, TuneResult,
                         estimate_cycles, make_strategy, register_strategy,
                         strategy_names, tune_strategy)
from .sptrsv import (ILDUFactors, SpTrsvExecution, SpTrsvResult, ildu,
                     level_schedule, recursive_plan, reorder_by_levels,
                     run_sptrsv, solve_unit_triangular_reference)
from .trace import (TraceParams, dense_stream_trace, rhs_block_width,
                    spmm_ab_trace, spmm_channels_trace, spmm_pb_trace,
                    spmv_ab_trace, spmv_channels_trace, spmv_pb_trace,
                    sptrsv_ab_trace, sptrsv_channels_trace)
from .timing import (PerfReport, price_trace, time_dense_kernel, time_spmm,
                     time_spmv, time_sptrsv)
from .runtime import PSyncPIM

__all__ = [
    "PartitionPlan", "SubMatrix", "partition", "reassemble",
    "tile_capacity", "Planner", "make_planner",
    "Assignment", "ChannelAssignment", "accumulation_traffic_bytes",
    "distribute", "replication_traffic_bytes", "shard_channels",
    "SpmvExecution", "SpmvResult", "element_bytes", "plan_spmv",
    "run_spmv", "SpmmExecution", "SpmmResult", "as_spmm_execution",
    "plan_spmm", "run_spmm", "AutoStrategy", "PartitionStrategy",
    "TuneResult", "estimate_cycles", "make_strategy", "register_strategy",
    "strategy_names", "tune_strategy", "ILDUFactors",
    "SpTrsvExecution", "SpTrsvResult", "ildu", "level_schedule",
    "recursive_plan", "reorder_by_levels", "run_sptrsv",
    "solve_unit_triangular_reference", "TraceParams",
    "dense_stream_trace", "rhs_block_width", "spmm_ab_trace",
    "spmm_channels_trace", "spmm_pb_trace", "spmv_ab_trace",
    "spmv_channels_trace", "spmv_pb_trace", "sptrsv_ab_trace",
    "sptrsv_channels_trace", "PerfReport", "price_trace",
    "time_dense_kernel", "time_spmm", "time_spmv", "time_sptrsv",
]
