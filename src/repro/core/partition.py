"""Sub-matrix partitioning and compression for bank-parallel SpMV (§V).

The sparse matrix is cut row-wise into blocks whose output tiles fit one
memory row, then — the paper's *matrix compression*, Fig. 6 — all-zero
columns are removed per row block before cutting column-wise, so each input
segment replicates only columns that actually feed the block. The column
dimension of every tile is likewise bounded by the memory row, giving the
1 KB x 1 KB sub-matrix constraint of §V.

The output is a list of :class:`SubMatrix` descriptors with *tile-local*
indices plus the metadata the host needs to stage inputs (which global
columns to replicate) and merge outputs (which global rows to accumulate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import SystemConfig, element_size
from ..errors import MappingError
from ..formats import COOMatrix


@dataclass
class SubMatrix:
    """One tile: local COO plus its global row/column footprint.

    ``global_cols[local_col]`` maps tile-local column indices back to matrix
    columns; rows map back as ``row_range[0] + local_row``.
    """

    row_range: Tuple[int, int]
    global_cols: np.ndarray
    rows: np.ndarray   # tile-local
    cols: np.ndarray   # tile-local
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def x_length(self) -> int:
        """Input-segment length the host must replicate into the bank."""
        return int(self.global_cols.size)

    @property
    def y_length(self) -> int:
        """Output-tile length (rows of the row block)."""
        return self.row_range[1] - self.row_range[0]

    @property
    def touched_rows(self) -> int:
        """Rows that actually receive a partial — the host merges only
        these (Fig. 6: "accumulates only non-zero outputs")."""
        return int(np.unique(self.rows).size)

    def x_segment(self, x: np.ndarray) -> np.ndarray:
        """Gather this tile's input values from the global vector."""
        return np.asarray(x, dtype=np.float64)[self.global_cols]

    def validate(self) -> "SubMatrix":
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= self.y_length:
                raise MappingError("tile-local row out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.x_length:
                raise MappingError("tile-local col out of range")
        return self


@dataclass
class PartitionPlan:
    """All tiles of a matrix plus the parameters that produced them."""

    shape: Tuple[int, int]
    tiles: List[SubMatrix]
    tile_rows: int
    tile_cols: int
    compressed: bool

    @property
    def total_nnz(self) -> int:
        return sum(tile.nnz for tile in self.tiles)

    @property
    def replicated_input_elements(self) -> int:
        """Input elements the host stages across all tiles (Fig. 6 metric).

        Compression shrinks exactly this: without it, every tile would
        replicate its full column range.
        """
        return sum(tile.x_length for tile in self.tiles)

    @property
    def output_partial_elements(self) -> int:
        """Output elements the host accumulates across all tiles."""
        return sum(tile.y_length for tile in self.tiles)


def tile_capacity(config: SystemConfig, precision: str) -> int:
    """Max rows/cols of a tile: one memory row of elements (§V)."""
    return config.submatrix_limit_bytes // element_size(precision)


def partition(matrix: COOMatrix, config: SystemConfig,
              precision: str = "fp64", compress: bool = True,
              tile_rows: int = None, tile_cols: int = None) -> PartitionPlan:
    """Cut *matrix* into 1 KB-bounded tiles (optionally compressed).

    ``compress=False`` reproduces the naive distribution the paper's Fig. 6
    improves on: column ranges are kept whole, so input replication covers
    all-zero columns too. The ablation benchmark flips this switch.
    """
    capacity = tile_capacity(config, precision)
    tile_rows = capacity if tile_rows is None else tile_rows
    tile_cols = capacity if tile_cols is None else tile_cols
    if tile_rows <= 0 or tile_cols <= 0:
        raise MappingError("tile dimensions must be positive")
    if tile_rows > capacity or tile_cols > capacity:
        raise MappingError(
            f"tiles of {tile_rows}x{tile_cols} exceed the one-memory-row "
            f"constraint ({capacity} elements at {precision})")

    nrows, ncols = matrix.shape
    tiles: List[SubMatrix] = []
    srt = matrix.sorted_rows()
    block_starts = np.searchsorted(
        srt.rows, np.arange(0, nrows, tile_rows), side="left")
    block_bounds = np.append(block_starts, srt.nnz)

    for block_index in range(len(block_starts)):
        lo_el = block_bounds[block_index]
        hi_el = block_bounds[block_index + 1]
        row_lo = block_index * tile_rows
        row_hi = min(row_lo + tile_rows, nrows)
        if lo_el == hi_el:
            continue  # empty row block: no tiles at all
        rows = srt.rows[lo_el:hi_el] - row_lo
        cols = srt.cols[lo_el:hi_el]
        vals = srt.vals[lo_el:hi_el]
        tiles.extend(_cut_columns(rows, cols, vals, (row_lo, row_hi),
                                  ncols, tile_cols, compress))
    plan = PartitionPlan(shape=matrix.shape, tiles=tiles,
                         tile_rows=tile_rows, tile_cols=tile_cols,
                         compressed=compress)
    _check_plan(plan, matrix)
    return plan


def _cut_columns(rows, cols, vals, row_range, ncols, tile_cols,
                 compress) -> List[SubMatrix]:
    """Column-cut one row block, compacting all-zero columns first."""
    tiles = []
    if compress:
        # Fig. 6: remove all-zero columns, then cut the *compacted* axis.
        kept, local = np.unique(cols, return_inverse=True)
        num_segments = math.ceil(kept.size / tile_cols)
        for seg in range(num_segments):
            seg_lo = seg * tile_cols
            seg_hi = min(seg_lo + tile_cols, kept.size)
            mask = (local >= seg_lo) & (local < seg_hi)
            if not mask.any():
                continue
            tiles.append(SubMatrix(
                row_range=row_range,
                global_cols=kept[seg_lo:seg_hi],
                rows=rows[mask],
                cols=local[mask] - seg_lo,
                vals=vals[mask]).validate())
    else:
        num_segments = math.ceil(ncols / tile_cols)
        for seg in range(num_segments):
            seg_lo = seg * tile_cols
            seg_hi = min(seg_lo + tile_cols, ncols)
            mask = (cols >= seg_lo) & (cols < seg_hi)
            if not mask.any():
                continue
            tiles.append(SubMatrix(
                row_range=row_range,
                global_cols=np.arange(seg_lo, seg_hi),
                rows=rows[mask],
                cols=cols[mask] - seg_lo,
                vals=vals[mask]).validate())
    return tiles


def _check_plan(plan: PartitionPlan, matrix: COOMatrix) -> None:
    if plan.total_nnz != matrix.nnz:
        raise MappingError(
            f"partition lost elements: {plan.total_nnz} != {matrix.nnz}")


def reassemble(plan: PartitionPlan) -> COOMatrix:
    """Rebuild the global matrix from a plan (round-trip validation)."""
    rows = []
    cols = []
    vals = []
    for tile in plan.tiles:
        rows.append(tile.rows + tile.row_range[0])
        cols.append(tile.global_cols[tile.cols])
        vals.append(tile.vals)
    if not rows:
        return COOMatrix.empty(plan.shape)
    return COOMatrix(plan.shape, np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals))
