"""Sub-matrix partitioning and compression for bank-parallel SpMV (§V).

The sparse matrix is cut row-wise into blocks whose output tiles fit one
memory row, then — the paper's *matrix compression*, Fig. 6 — all-zero
columns are removed per row block before cutting column-wise, so each input
segment replicates only columns that actually feed the block. The column
dimension of every tile is likewise bounded by the memory row, giving the
1 KB x 1 KB sub-matrix constraint of §V.

The output is a list of :class:`SubMatrix` descriptors with *tile-local*
indices plus the metadata the host needs to stage inputs (which global
columns to replicate) and merge outputs (which global rows to accumulate).

Two planners produce bitwise-identical plans (see :mod:`repro.core.planner`):
the ``"scalar"`` oracle cuts each row block segment-by-segment with boolean
masks; the default ``"fast"`` planner sorts all nonzeros once by a
(row-block, column-segment) composite key, derives every block's kept-column
set from a single global ``np.unique`` pass and emits all tiles from
contiguous slices of the sorted arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Tuple

import numpy as np

from ..config import SystemConfig, element_size, resolve_planner
from ..errors import MappingError
from ..formats import COOMatrix


@dataclass
class SubMatrix:
    """One tile: local COO plus its global row/column footprint.

    ``global_cols[local_col]`` maps tile-local column indices back to matrix
    columns; rows map back as ``row_range[0] + local_row``.
    """

    row_range: Tuple[int, int]
    global_cols: np.ndarray
    rows: np.ndarray   # tile-local
    cols: np.ndarray   # tile-local
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def x_length(self) -> int:
        """Input-segment length the host must replicate into the bank."""
        return int(self.global_cols.size)

    @property
    def y_length(self) -> int:
        """Output-tile length (rows of the row block)."""
        return self.row_range[1] - self.row_range[0]

    @cached_property
    def touched_rows(self) -> int:
        """Rows that actually receive a partial — the host merges only
        these (Fig. 6: "accumulates only non-zero outputs").

        Cached: traffic and imbalance accounting query it repeatedly and
        the underlying ``np.unique`` is O(nnz log nnz) per call.
        """
        return int(np.unique(self.rows).size)

    def x_segment(self, x: np.ndarray) -> np.ndarray:
        """Gather this tile's input values from the global vector."""
        return np.asarray(x, dtype=np.float64)[self.global_cols]

    def validate(self) -> "SubMatrix":
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= self.y_length:
                raise MappingError("tile-local row out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.x_length:
                raise MappingError("tile-local col out of range")
        return self


@dataclass
class PartitionPlan:
    """All tiles of a matrix plus the parameters that produced them.

    Per-tile statistics are exposed as memoized plan-level arrays
    (:attr:`tile_nnz`, :attr:`tile_x_lengths`, :attr:`tile_touched_rows`)
    so traffic accounting reads them once instead of re-deriving them
    tile-by-tile on every query.
    """

    shape: Tuple[int, int]
    tiles: List[SubMatrix]
    tile_rows: int
    tile_cols: int
    compressed: bool

    @cached_property
    def tile_nnz(self) -> np.ndarray:
        """Element count of each tile, in tile order."""
        return np.fromiter((t.rows.size for t in self.tiles),
                           dtype=np.int64, count=len(self.tiles))

    @cached_property
    def tile_x_lengths(self) -> np.ndarray:
        """Input-segment length of each tile, in tile order."""
        return np.fromiter((t.global_cols.size for t in self.tiles),
                           dtype=np.int64, count=len(self.tiles))

    @cached_property
    def tile_touched_rows(self) -> np.ndarray:
        """Touched-row count of each tile, in tile order."""
        return np.fromiter((t.touched_rows for t in self.tiles),
                           dtype=np.int64, count=len(self.tiles))

    @cached_property
    def total_nnz(self) -> int:
        return int(self.tile_nnz.sum())

    @cached_property
    def replicated_input_elements(self) -> int:
        """Input elements the host stages across all tiles (Fig. 6 metric).

        Compression shrinks exactly this: without it, every tile would
        replicate its full column range.
        """
        return int(self.tile_x_lengths.sum())

    @cached_property
    def output_partial_elements(self) -> int:
        """Output elements the host accumulates across all tiles."""
        return sum(tile.y_length for tile in self.tiles)


def tile_capacity(config: SystemConfig, precision: str) -> int:
    """Max rows/cols of a tile: one memory row of elements (§V)."""
    return config.submatrix_limit_bytes // element_size(precision)


def partition(matrix: COOMatrix, config: SystemConfig,
              precision: str = "fp64", compress: bool = True,
              tile_rows: int = None, tile_cols: int = None,
              planner: Optional[str] = None,
              validate: bool = True) -> PartitionPlan:
    """Cut *matrix* into 1 KB-bounded tiles (optionally compressed).

    ``compress=False`` reproduces the naive distribution the paper's Fig. 6
    improves on: column ranges are kept whole, so input replication covers
    all-zero columns too. The ablation benchmark flips this switch.

    ``planner`` selects the implementation (``"fast"``/``"scalar"``, see
    :mod:`repro.core.planner`); both emit bitwise-identical plans.
    ``validate=False`` skips the O(nnz) plan self-checks — the sweep hot
    path disables them, tests keep them on.
    """
    capacity = tile_capacity(config, precision)
    tile_rows = capacity if tile_rows is None else tile_rows
    tile_cols = capacity if tile_cols is None else tile_cols
    if tile_rows <= 0 or tile_cols <= 0:
        raise MappingError("tile dimensions must be positive")
    if tile_rows > capacity or tile_cols > capacity:
        raise MappingError(
            f"tiles of {tile_rows}x{tile_cols} exceed the one-memory-row "
            f"constraint ({capacity} elements at {precision})")

    cut = (_partition_fast if resolve_planner(planner) == "fast"
           else _partition_scalar)
    tiles = cut(matrix.sorted_rows(), matrix.shape, tile_rows, tile_cols,
                compress)
    plan = PartitionPlan(shape=matrix.shape, tiles=tiles,
                         tile_rows=tile_rows, tile_cols=tile_cols,
                         compressed=compress)
    if validate:
        _check_plan(plan, matrix)
    return plan


# ----------------------------------------------------------------------
# scalar oracle: per-block, per-segment mask scans
# ----------------------------------------------------------------------
def _partition_scalar(srt: COOMatrix, shape, tile_rows, tile_cols,
                      compress) -> List[SubMatrix]:
    nrows, ncols = shape
    tiles: List[SubMatrix] = []
    block_starts = np.searchsorted(
        srt.rows, np.arange(0, nrows, tile_rows), side="left")
    block_bounds = np.append(block_starts, srt.nnz)

    for block_index in range(len(block_starts)):
        lo_el = block_bounds[block_index]
        hi_el = block_bounds[block_index + 1]
        row_lo = block_index * tile_rows
        row_hi = min(row_lo + tile_rows, nrows)
        if lo_el == hi_el:
            continue  # empty row block: no tiles at all
        rows = srt.rows[lo_el:hi_el] - row_lo
        cols = srt.cols[lo_el:hi_el]
        vals = srt.vals[lo_el:hi_el]
        tiles.extend(_cut_columns(rows, cols, vals, (row_lo, row_hi),
                                  ncols, tile_cols, compress))
    return tiles


def _cut_columns(rows, cols, vals, row_range, ncols, tile_cols,
                 compress) -> List[SubMatrix]:
    """Column-cut one row block, compacting all-zero columns first."""
    tiles = []
    if compress:
        # Fig. 6: remove all-zero columns, then cut the *compacted* axis.
        kept, local = np.unique(cols, return_inverse=True)
        num_segments = math.ceil(kept.size / tile_cols)
        for seg in range(num_segments):
            seg_lo = seg * tile_cols
            seg_hi = min(seg_lo + tile_cols, kept.size)
            mask = (local >= seg_lo) & (local < seg_hi)
            if not mask.any():
                continue
            tiles.append(SubMatrix(
                row_range=row_range,
                global_cols=kept[seg_lo:seg_hi],
                rows=rows[mask],
                cols=local[mask] - seg_lo,
                vals=vals[mask]))
    else:
        num_segments = math.ceil(ncols / tile_cols)
        for seg in range(num_segments):
            seg_lo = seg * tile_cols
            seg_hi = min(seg_lo + tile_cols, ncols)
            mask = (cols >= seg_lo) & (cols < seg_hi)
            if not mask.any():
                continue
            tiles.append(SubMatrix(
                row_range=row_range,
                global_cols=np.arange(seg_lo, seg_hi),
                rows=rows[mask],
                cols=cols[mask] - seg_lo,
                vals=vals[mask]))
    return tiles


# ----------------------------------------------------------------------
# fast planner: one global composite-key sort, sliced tile emission
# ----------------------------------------------------------------------
def _partition_fast(srt: COOMatrix, shape, tile_rows, tile_cols,
                    compress) -> List[SubMatrix]:
    """Array-native partitioning, bitwise identical to the scalar oracle.

    *srt* arrives row-major sorted, i.e. already ordered by
    (row-block, row, col). One pass derives each element's column segment
    — for the compressed path via a single global ``np.unique`` over
    (block, column) composite keys that yields every block's kept-column
    set and each element's compacted column rank at once — then a stable
    argsort by (block, segment) makes every tile a contiguous slice while
    preserving the oracle's (row, col) element order inside it.
    """
    nnz = srt.nnz
    if nnz == 0:
        return []
    nrows, ncols = shape
    rows, cols, vals = srt.rows, srt.cols, srt.vals
    block = rows // tile_rows

    if compress:
        # Global kept-column pass: unique (block, col) keys, sorted, give
        # per-block kept columns; the inverse map gives each element's
        # index into that global key list.
        keys, key_of = np.unique(block * ncols + cols, return_inverse=True)
        key_block = keys // ncols
        kept_cols = keys % ncols
        # Rank of each element's column within its block's kept set.
        block_key_start = np.searchsorted(key_block, block, side="left")
        local = key_of - block_key_start
        seg = local // tile_cols
        local_col = local - seg * tile_cols
    else:
        seg = cols // tile_cols
        local_col = cols - seg * tile_cols

    # Stable sort by (block, segment): groups become contiguous while the
    # incoming (row, col) order inside each group survives. Stability is
    # bought by appending each element's position to the key — unique keys
    # let the faster non-stable sort produce the stable permutation.
    seg_capacity = math.ceil(max(ncols, 1) / tile_cols) + 1
    composite = block * seg_capacity + seg
    if int(composite.max()) < (2 ** 63 - 1 - nnz) // nnz:
        order = np.argsort(composite * nnz
                           + np.arange(nnz, dtype=np.int64))
    else:  # giant key space: fall back to the stable sort
        order = np.argsort(composite, kind="stable")
    sorted_composite = composite[order]
    group_starts = np.flatnonzero(
        np.concatenate(([True], sorted_composite[1:]
                        != sorted_composite[:-1])))
    group_keys = sorted_composite[group_starts]
    group_bounds = np.append(group_starts, nnz)

    local_rows = (rows - block * tile_rows)[order]
    local_cols = local_col[order]
    tile_vals = vals[order]

    # Per-group metadata, computed as arrays before the emission loop.
    g_block = group_keys // seg_capacity
    g_seg = group_keys - g_block * seg_capacity
    row_los = g_block * tile_rows
    row_his = np.minimum(row_los + tile_rows, nrows)
    if compress:
        block_key_bounds = np.searchsorted(
            key_block, np.arange(key_block[-1] + 2 if keys.size else 1))
        col_los = block_key_bounds[g_block] + g_seg * tile_cols
        col_his = np.minimum(col_los + tile_cols,
                             block_key_bounds[g_block + 1])
    else:
        col_los = g_seg * tile_cols
        col_his = np.minimum(col_los + tile_cols, ncols)

    if not compress:
        # Every block shares the same raw column segments; materialise
        # each segment's index range once instead of per tile.
        col_base = np.arange(ncols, dtype=np.int64)

    tiles: List[SubMatrix] = []
    for g in range(group_keys.size):
        lo_el, hi_el = group_bounds[g], group_bounds[g + 1]
        if compress:
            global_cols = kept_cols[col_los[g]:col_his[g]]
        else:
            global_cols = col_base[col_los[g]:col_his[g]]
        tiles.append(SubMatrix(
            row_range=(int(row_los[g]), int(row_his[g])),
            global_cols=global_cols,
            rows=local_rows[lo_el:hi_el],
            cols=local_cols[lo_el:hi_el],
            vals=tile_vals[lo_el:hi_el]))
    return tiles


# ----------------------------------------------------------------------
# plan validation and round-trip
# ----------------------------------------------------------------------
def _check_plan(plan: PartitionPlan, matrix: COOMatrix) -> None:
    """O(nnz) array-level self-check: conservation + local index bounds."""
    if plan.total_nnz != matrix.nnz:
        raise MappingError(
            f"partition lost elements: {plan.total_nnz} != {matrix.nnz}")
    if not plan.tiles:
        return
    # Vectorized bound check over all tiles at once (every tile emitted by
    # a planner is non-empty, so reduceat groups are never zero-length).
    starts = np.concatenate(([0], np.cumsum(plan.tile_nnz)[:-1]))
    all_rows = np.concatenate([t.rows for t in plan.tiles])
    all_cols = np.concatenate([t.cols for t in plan.tiles])
    y_lengths = np.fromiter((t.y_length for t in plan.tiles),
                            dtype=np.int64, count=len(plan.tiles))
    if (np.any(np.minimum.reduceat(all_rows, starts) < 0)
            or np.any(np.maximum.reduceat(all_rows, starts) >= y_lengths)):
        raise MappingError("tile-local row out of range")
    if (np.any(np.minimum.reduceat(all_cols, starts) < 0)
            or np.any(np.maximum.reduceat(all_cols, starts)
                      >= plan.tile_x_lengths)):
        raise MappingError("tile-local col out of range")


def reassemble(plan: PartitionPlan) -> COOMatrix:
    """Rebuild the global matrix from a plan (round-trip validation)."""
    rows = []
    cols = []
    vals = []
    for tile in plan.tiles:
        rows.append(tile.rows + tile.row_range[0])
        cols.append(tile.global_cols[tile.cols])
        vals.append(tile.vals)
    if not rows:
        return COOMatrix.empty(plan.shape)
    return COOMatrix(plan.shape, np.concatenate(rows), np.concatenate(cols),
                     np.concatenate(vals))
