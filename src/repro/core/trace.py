"""Command-trace synthesis: execution records -> DRAM command streams.

The functional tier establishes *what* a kernel does; this module expands
its execution record into the memory-command stream one *representative
pseudo-channel* sees, which the :mod:`repro.dram` scheduler then prices
under full JEDEC timing. One channel suffices because pSyncPIM drives all
channels with symmetric broadcast streams — total time is the max over
channels and the workload is laid out channel-symmetrically; host staging
traffic is divided by the channel count for the same reason.

Layout conventions (documented, not load-bearing for functional results):
matrix streams occupy rows from 0 upward, the staged input segment lives in
one reserved row, the output tile in another, and kernel programs in a
third — matching §V's rule that vector tiles may not span memory rows.

The locality parameters of :class:`TraceParams` encode how many 32 B column
accesses a batch of gathers/scatters costs: tiles are stored column-sorted
(the Fig. 7 order), so consecutive gathers hit neighbouring words of the
open input row, while scatter read-modify-writes cluster by output window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional

from ..config import SystemConfig, element_size
from ..dram import Command, CommandRun, CommandType, TraceEntry
from ..errors import MappingError
from .spmv import SpmvExecution, element_bytes
from .sptrsv import SpTrsvExecution

#: Reserved rows of the per-bank layout used by the synthesised traces.
PROGRAM_ROW = 16000
INPUT_ROW = 16100
OUTPUT_ROW = 16200

#: One 32 B data beat per column command.
BEAT_BYTES = 32


@dataclass(frozen=True)
class TraceParams:
    """Cost knobs of the synthesised schedules (calibration constants)."""

    #: Consecutive gathers served per 32 B read of the open input row.
    #: Tiles are row-sorted and compression packs each tile's live columns
    #: densely (Fig. 6), so neighbouring gathers usually share words of the
    #: open row.
    gather_locality: float = 4.0
    #: Queue batches processed per row-switch phase. The three 192 B SpVQs
    #: triple-buffer element loads, and the PU keeps streaming a matrix row
    #: while earlier batches gather/accumulate, so one row visit feeds
    #: several queue batches before the input row must be re-opened.
    queue_phases: int = 6
    #: Instructions written when programming a kernel (<=32).
    program_instructions: int = 12
    #: PB mode drives one bank at a time with single-bank commands.
    per_bank_banks: int = 16
    #: Bytes per SpVQ sub-queue (64 B in Table VIII); the hardware-sizing
    #: ablation sweeps this to trade queue SRAM area against row-switch
    #: amortisation.
    subqueue_bytes: int = 64


def _beats(nbytes: float) -> int:
    """Column commands needed to move *nbytes*."""
    return max(1, math.ceil(nbytes / BEAT_BYTES)) if nbytes > 0 else 0


class _RowCursor:
    """Tracks the open row of the lock-step bank group, emitting ACT/PRE."""

    def __init__(self, all_bank: bool, bank: int = 0,
                 channel: int = 0) -> None:
        self._open: Optional[int] = None
        self._all_bank = all_bank
        self._bank = bank
        self._channel = channel

    def open_row(self, row: int) -> Iterator[Command]:
        if self._open == row:
            return
        if self._open is not None:
            yield Command(CommandType.PRE_AB if self._all_bank
                          else CommandType.PRE, bank=self._bank,
                          channel=self._channel)
        self._open = row
        yield Command(CommandType.ACT_AB if self._all_bank
                      else CommandType.ACT, bank=self._bank, row=row,
                      channel=self._channel)

    def close(self) -> Iterator[Command]:
        if self._open is not None:
            yield Command(CommandType.PRE_AB if self._all_bank
                          else CommandType.PRE, bank=self._bank,
                          channel=self._channel)
            self._open = None


def _column(all_bank: bool, write: bool, row: int, col: int = 0,
            bank: int = 0, tag: str = None, channel: int = 0) -> Command:
    if all_bank:
        kind = CommandType.WR_AB if write else CommandType.RD_AB
    else:
        kind = CommandType.WR if write else CommandType.RD
    return Command(kind, bank=bank, row=row, col=col % 64, tag=tag,
                   channel=channel)


def _column_run(all_bank: bool, write: bool, row: int, count: int,
                col: int = 0, bank: int = 0,
                tag: str = None, channel: int = 0) -> List[TraceEntry]:
    """*count* consecutive column beats as one run (closed-form pricing).

    The scheduler never reads ``col`` when computing issue cycles, so the
    run carries its first beat's column as representative; cycles, counters
    and tag attributions match the per-command expansion exactly.
    """
    if count <= 0:
        return []
    command = _column(all_bank, write, row, col, bank=bank, tag=tag,
                      channel=channel)
    return [command] if count == 1 else [CommandRun(command, count)]


# ----------------------------------------------------------------------
# timeline segments
# ----------------------------------------------------------------------
class TraceSegment(NamedTuple):
    """Half-open entry-index range ``[start, end)`` of one timeline phase.

    Labels are dotted ``<group>.<phase>`` pairs — ``r3.kernel`` (SpMV round
    3's AB-PIM phase), ``L7.broadcast`` (SpTRSV level 7's solved-value
    broadcast), ``U1.r0.stage`` (an update SpMV's staging) — so consumers
    can aggregate per group (critical path over rounds/levels) or per
    phase suffix (stage/seam/kernel/merge timeline decomposition).
    """

    label: str
    channel: int
    start: int
    end: int


class SegmentedTrace(NamedTuple):
    """A command trace plus the labelled phase segments that tile it.

    Segments cover every entry exactly once and appear in trace order, so
    replaying the trace while sampling the per-channel clock at segment
    boundaries reconstructs the full phase timeline (``repro.obs.attrib``
    does exactly this).
    """

    trace: List[TraceEntry]
    segments: List[TraceSegment]


class _SegmentBuilder:
    """Accumulates trace entries under labelled, index-aligned segments."""

    def __init__(self) -> None:
        self.trace: List[TraceEntry] = []
        self.segments: List[TraceSegment] = []

    def add(self, label: str, channel: int,
            entries: List[TraceEntry]) -> None:
        start = len(self.trace)
        self.trace.extend(entries)
        if len(self.trace) > start:
            self.segments.append(
                TraceSegment(label, channel, start, len(self.trace)))

    def splice(self, sub: SegmentedTrace) -> None:
        """Append another segmented trace, re-basing its entry indices."""
        base = len(self.trace)
        self.trace.extend(sub.trace)
        self.segments.extend(
            TraceSegment(s.label, s.channel, s.start + base, s.end + base)
            for s in sub.segments)

    def done(self) -> SegmentedTrace:
        return SegmentedTrace(self.trace, self.segments)


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------
def mode_switch(channel: int = 0) -> List[Command]:
    return [Command(CommandType.MODE, channel=channel)]


def program_load(params: TraceParams, channel: int = 0) -> List[TraceEntry]:
    """AB-mode write of the kernel into the control registers."""
    trace: List[TraceEntry] = [Command(CommandType.ACT_AB, row=PROGRAM_ROW,
                                       channel=channel)]
    words = _beats(params.program_instructions * 4)
    trace += _column_run(True, True, PROGRAM_ROW, words, tag="program",
                         channel=channel)
    trace.append(Command(CommandType.PRE_AB, channel=channel))
    return trace


def host_stage(bytes_per_bank: float, write: bool, row: int,
               tag: str, channel: int = 0,
               banks: int = 16) -> List[TraceEntry]:
    """SB-mode host traffic: stage/collect one region on a channel's banks."""
    trace: List[TraceEntry] = []
    beats = _beats(bytes_per_bank)
    if beats == 0:
        return trace
    for bank in range(banks):
        trace.append(Command(CommandType.ACT, bank=bank, row=row,
                             channel=channel))
        trace += _column_run(False, write, row, beats, bank=bank, tag=tag,
                             channel=channel)
        trace.append(Command(CommandType.PRE, bank=bank, channel=channel))
    return trace


def _kernel_batches(batches: int, batch_elems: int, eb: float,
                    params: TraceParams, all_bank: bool,
                    bank: int = 0, y_bytes: int = 1024,
                    channel: int = 0, rhs: int = 1) -> List[TraceEntry]:
    """The AB-PIM (or PB) phase schedule for one tile stream.

    Per queue batch: stream the COO elements from the matrix rows, then
    gather x[col] values from the (re-opened) input row. Output follows
    Algorithm 2's accumulate-into-DRF0-then-write scheme: elements are
    row-sorted, so the 32 B output window advances monotonically and is
    flushed (read-modify-write on the output row) only when it moves —
    amortising output row visits over many batches.

    *rhs* widens each gather to an rhs-block of dense columns (SpMM):
    the matrix stream is paid once per block while every element gathers
    ``rhs`` input values; callers pass ``y_bytes`` pre-scaled by the
    block width. ``rhs=1`` is bitwise the SpMV schedule.
    """
    trace: List[TraceEntry] = []
    cursor = _RowCursor(all_bank, bank=bank, channel=channel)
    mat_bytes_done = 0
    gather_beats = max(1, round(batch_elems / params.gather_locality)) * rhs
    y_beats_total = _beats(y_bytes)
    flush_debt = 0.0
    flush_per_batch = y_beats_total / max(batches, 1)
    flushed = 0
    for _ in range(batches):
        # phase 1: stream the COO batch from the matrix rows, one run per
        # 1024 B matrix row (the row switch bounds each homogeneous run)
        beats_left = _beats(batch_elems * eb)
        while beats_left:
            mat_row = mat_bytes_done // 1024
            room = (1024 - mat_bytes_done % 1024) // BEAT_BYTES
            n = min(beats_left, room)
            trace += cursor.open_row(mat_row)
            trace += _column_run(all_bank, False, mat_row, n,
                                 col=(mat_bytes_done % 1024) // BEAT_BYTES,
                                 bank=bank, tag="matrix", channel=channel)
            mat_bytes_done += n * BEAT_BYTES
            beats_left -= n
        # phase 2: gather x[col] from the open input row
        trace += cursor.open_row(INPUT_ROW)
        trace += _column_run(all_bank, False, INPUT_ROW, gather_beats,
                             bank=bank, tag="gather", channel=channel)
        # phase 3: flush output windows that advanced past this batch
        flush_debt += flush_per_batch
        if flush_debt >= 1.0:
            trace += cursor.open_row(OUTPUT_ROW)
            while flush_debt >= 1.0 and flushed < y_beats_total:
                trace.append(_column(all_bank, False, OUTPUT_ROW, flushed,
                                     bank=bank, tag="scatter",
                                     channel=channel))
                trace.append(_column(all_bank, True, OUTPUT_ROW, flushed,
                                     bank=bank, tag="scatter",
                                     channel=channel))
                flush_debt -= 1.0
                flushed += 1
    # final window flush
    if flushed < y_beats_total:
        trace += cursor.open_row(OUTPUT_ROW)
        while flushed < y_beats_total:
            trace.append(_column(all_bank, False, OUTPUT_ROW, flushed,
                                 bank=bank, tag="scatter", channel=channel))
            trace.append(_column(all_bank, True, OUTPUT_ROW, flushed,
                                 bank=bank, tag="scatter", channel=channel))
            flushed += 1
    trace += cursor.close()
    return trace


# ----------------------------------------------------------------------
# SpMV traces
# ----------------------------------------------------------------------
def spmv_ab_segments(execution: SpmvExecution, config: SystemConfig,
                     params: TraceParams = TraceParams(),
                     channel: int = 0,
                     banks: Optional[int] = None,
                     prefix: str = "") -> SegmentedTrace:
    """All-bank SpMV schedule with its per-round phase segments.

    Per round: ``r<N>.stage`` (SB host staging), ``r<N>.seam`` (mode
    switches + kernel programming), ``r<N>.kernel`` (the AB-PIM phase)
    and ``r<N>.merge`` (the exit switch + host merge). *prefix* namespaces
    the labels when the SpMV is embedded in a larger schedule (SpTRSV
    updates).
    """
    banks = banks if banks is not None else execution.banks_per_channel
    vb = element_size(execution.precision)
    eb = execution.stream_bytes_per_element
    rf_batch = _queue_batch(execution.precision, params.subqueue_bytes)
    out = _SegmentBuilder()
    for r, round_elems in enumerate(execution.round_batches):
        # host stages this round's input segments (SB mode, external bus)
        out.add(f"{prefix}r{r}.stage", channel,
                host_stage(execution.round_x_lengths[r] * vb, write=True,
                           row=INPUT_ROW, tag="stage_x", channel=channel,
                           banks=banks))
        # SB -> AB: program; AB -> AB-PIM: execute
        out.add(f"{prefix}r{r}.seam", channel,
                mode_switch(channel) + program_load(params, channel=channel)
                + mode_switch(channel))
        phase = rf_batch * params.queue_phases
        batches = max(1, math.ceil(round_elems / phase))
        out.add(f"{prefix}r{r}.kernel", channel,
                _kernel_batches(batches, phase, eb, params,
                                all_bank=True,
                                y_bytes=execution.round_y_lengths[r] * vb,
                                channel=channel))
        # AB-PIM -> SB, then the host merges the round's output partials
        out.add(f"{prefix}r{r}.merge", channel,
                mode_switch(channel)
                + host_stage(execution.round_y_lengths[r] * vb, write=False,
                             row=OUTPUT_ROW, tag="merge_y", channel=channel,
                             banks=banks))
    return out.done()


def spmv_ab_trace(execution: SpmvExecution, config: SystemConfig,
                  params: TraceParams = TraceParams(),
                  channel: int = 0,
                  banks: Optional[int] = None) -> List[TraceEntry]:
    """All-bank pSyncPIM schedule of one SpMV on one channel.

    *channel* stamps every command so channel-sharded executions can
    concatenate per-channel streams into one trace; the default 0 is the
    representative-channel model. *banks* (the channel width the host
    staging fans over) defaults to the execution record's
    ``banks_per_channel``.
    """
    return spmv_ab_segments(execution, config, params, channel=channel,
                            banks=banks).trace


def spmv_pb_segments(execution: SpmvExecution, config: SystemConfig,
                     params: TraceParams = TraceParams(),
                     channel: int = 0,
                     banks: Optional[int] = None,
                     prefix: str = "") -> SegmentedTrace:
    """Per-bank SpMV schedule with per-round phase segments.

    The kernel segment covers every bank's single-bank arm (each bank's
    mode switch + stream); stage/merge match the AB labels so the two
    modes diff phase-by-phase.
    """
    banks = banks if banks is not None else execution.banks_per_channel
    vb = element_size(execution.precision)
    eb = execution.stream_bytes_per_element
    rf_batch = _queue_batch(execution.precision, params.subqueue_bytes)
    per_bank = _representative_channel_loads(execution, banks)
    rounds = max(1, execution.num_rounds)
    out = _SegmentBuilder()
    for r in range(rounds):
        out.add(f"{prefix}r{r}.stage", channel,
                host_stage(execution.round_x_lengths[r] * vb, write=True,
                           row=INPUT_ROW, tag="stage_x", channel=channel,
                           banks=banks))
        arms: List[TraceEntry] = []
        for bank, elements in enumerate(per_bank):
            share = elements / rounds
            if share <= 0:
                continue
            arms += mode_switch(channel)  # per-bank kernel arm
            phase = rf_batch * params.queue_phases
            batches = max(1, math.ceil(share / phase))
            arms += _kernel_batches(
                batches, phase, eb, params, all_bank=False, bank=bank,
                y_bytes=execution.round_y_lengths[r] * vb, channel=channel)
        out.add(f"{prefix}r{r}.kernel", channel, arms)
        out.add(f"{prefix}r{r}.merge", channel,
                mode_switch(channel)
                + host_stage(execution.round_y_lengths[r] * vb, write=False,
                             row=OUTPUT_ROW, tag="merge_y", channel=channel,
                             banks=banks))
    return out.done()


def spmv_pb_trace(execution: SpmvExecution, config: SystemConfig,
                  params: TraceParams = TraceParams(),
                  channel: int = 0,
                  banks: Optional[int] = None) -> List[TraceEntry]:
    """Per-bank schedule: the host drives each bank's kernel separately.

    Staging traffic is identical to AB mode; the kernel phase is replayed
    per bank with single-bank commands, each bank streaming only its own
    elements (no lock-step padding — PB's one advantage). *banks*
    defaults to the execution record's ``banks_per_channel``.
    """
    return spmv_pb_segments(execution, config, params, channel=channel,
                            banks=banks).trace


def spmv_channels_trace(execution: SpmvExecution, config: SystemConfig,
                        params: TraceParams = TraceParams(),
                        mode: str = "ab") -> List[TraceEntry]:
    """Concatenated per-channel streams of a channel-sharded SpMV.

    Each shard's sub-execution is synthesised with its channel id stamped
    on every command; the scheduler routes them to independent per-channel
    clocks, so total time is the max over channels, not the sum. Shards
    with no elements emit nothing (an idle channel issues no commands).
    """
    return spmv_channels_segments(execution, config, params,
                                  mode=mode).trace


def spmv_channels_segments(execution: SpmvExecution, config: SystemConfig,
                           params: TraceParams = TraceParams(),
                           mode: str = "ab") -> SegmentedTrace:
    """Segmented form of :func:`spmv_channels_trace` (same trace)."""
    if not execution.channel_execs:
        raise MappingError(
            "spmv_channels_trace needs a channel-sharded execution "
            "(plan_spmv(..., channels=C))")
    synth = spmv_ab_segments if mode == "ab" else spmv_pb_segments
    out = _SegmentBuilder()
    for ch, sub in enumerate(execution.channel_execs):
        if sub.total_elements == 0:
            continue
        out.splice(synth(sub, config, params, channel=ch,
                         banks=execution.banks_per_channel))
    return out.done()


# ----------------------------------------------------------------------
# SpMM traces: one resident plan, k right-hand sides in rhs-blocks
# ----------------------------------------------------------------------
def rhs_block_width(precision: str) -> int:
    """Dense columns one 32 B output window serves per output word.

    The accumulate-into-DRF0 window holds one output word per block
    column, so an rhs-block is at most ``BEAT_BYTES / value_bytes``
    columns wide (4 for fp64, 8 for fp32); wider workloads re-stream the
    matrix once per block.
    """
    return max(1, BEAT_BYTES // element_size(precision))


def _rhs_blocks(num_rhs: int, precision: str) -> List[int]:
    """Split *num_rhs* columns into per-block widths."""
    block = rhs_block_width(precision)
    return [min(block, num_rhs - at)
            for at in range(0, num_rhs, block)]


def spmm_ab_segments(execution: SpmvExecution, config: SystemConfig,
                     params: TraceParams = TraceParams(),
                     channel: int = 0,
                     banks: Optional[int] = None,
                     prefix: str = "") -> SegmentedTrace:
    """All-bank SpMM schedule with per-round, per-rhs-block segments.

    Per round: ``r<N>.stage`` stages all ``k`` input columns,
    ``r<N>.seam`` programs the kernel ONCE (the amortised cost), then
    one ``r<N>.b<J>.kernel`` segment per rhs-block streams the resident
    matrix against that block's columns, and ``r<N>.merge`` collects all
    ``k`` output columns. With ``num_rhs == 1`` this *is*
    :func:`spmv_ab_segments` — same trace, same labels.
    """
    num_rhs = getattr(execution, "num_rhs", 1)
    if num_rhs == 1:
        return spmv_ab_segments(execution, config, params,
                                channel=channel, banks=banks,
                                prefix=prefix)
    banks = banks if banks is not None else execution.banks_per_channel
    vb = element_size(execution.precision)
    eb = execution.stream_bytes_per_element
    rf_batch = _queue_batch(execution.precision, params.subqueue_bytes)
    blocks = _rhs_blocks(num_rhs, execution.precision)
    out = _SegmentBuilder()
    for r, round_elems in enumerate(execution.round_batches):
        # host stages every column of this round's input segments
        out.add(f"{prefix}r{r}.stage", channel,
                host_stage(execution.round_x_lengths[r] * vb * num_rhs,
                           write=True, row=INPUT_ROW, tag="stage_x",
                           channel=channel, banks=banks))
        # SB -> AB: program once; the block loop re-enters AB-PIM freely
        out.add(f"{prefix}r{r}.seam", channel,
                mode_switch(channel) + program_load(params, channel=channel)
                + mode_switch(channel))
        phase = rf_batch * params.queue_phases
        batches = max(1, math.ceil(round_elems / phase))
        for j, width in enumerate(blocks):
            out.add(f"{prefix}r{r}.b{j}.kernel", channel,
                    _kernel_batches(
                        batches, phase, eb, params, all_bank=True,
                        y_bytes=execution.round_y_lengths[r] * vb * width,
                        channel=channel, rhs=width))
        # AB-PIM -> SB, then the host merges every output column
        out.add(f"{prefix}r{r}.merge", channel,
                mode_switch(channel)
                + host_stage(execution.round_y_lengths[r] * vb * num_rhs,
                             write=False, row=OUTPUT_ROW, tag="merge_y",
                             channel=channel, banks=banks))
    return out.done()


def spmm_ab_trace(execution: SpmvExecution, config: SystemConfig,
                  params: TraceParams = TraceParams(),
                  channel: int = 0,
                  banks: Optional[int] = None) -> List[TraceEntry]:
    """All-bank pSyncPIM schedule of one SpMM on one channel."""
    return spmm_ab_segments(execution, config, params, channel=channel,
                            banks=banks).trace


def spmm_pb_segments(execution: SpmvExecution, config: SystemConfig,
                     params: TraceParams = TraceParams(),
                     channel: int = 0,
                     banks: Optional[int] = None,
                     prefix: str = "") -> SegmentedTrace:
    """Per-bank SpMM schedule with per-round, per-rhs-block segments.

    Each ``r<N>.b<J>.kernel`` segment replays every bank's single-bank
    arm against one rhs-block; stage/merge carry all ``k`` columns. With
    ``num_rhs == 1`` this *is* :func:`spmv_pb_segments`.
    """
    num_rhs = getattr(execution, "num_rhs", 1)
    if num_rhs == 1:
        return spmv_pb_segments(execution, config, params,
                                channel=channel, banks=banks,
                                prefix=prefix)
    banks = banks if banks is not None else execution.banks_per_channel
    vb = element_size(execution.precision)
    eb = execution.stream_bytes_per_element
    rf_batch = _queue_batch(execution.precision, params.subqueue_bytes)
    per_bank = _representative_channel_loads(execution, banks)
    rounds = max(1, execution.num_rounds)
    blocks = _rhs_blocks(num_rhs, execution.precision)
    out = _SegmentBuilder()
    for r in range(rounds):
        out.add(f"{prefix}r{r}.stage", channel,
                host_stage(execution.round_x_lengths[r] * vb * num_rhs,
                           write=True, row=INPUT_ROW, tag="stage_x",
                           channel=channel, banks=banks))
        for j, width in enumerate(blocks):
            arms: List[TraceEntry] = []
            for bank, elements in enumerate(per_bank):
                share = elements / rounds
                if share <= 0:
                    continue
                arms += mode_switch(channel)  # per-bank kernel arm
                phase = rf_batch * params.queue_phases
                batches = max(1, math.ceil(share / phase))
                arms += _kernel_batches(
                    batches, phase, eb, params, all_bank=False, bank=bank,
                    y_bytes=execution.round_y_lengths[r] * vb * width,
                    channel=channel, rhs=width)
            out.add(f"{prefix}r{r}.b{j}.kernel", channel, arms)
        out.add(f"{prefix}r{r}.merge", channel,
                mode_switch(channel)
                + host_stage(execution.round_y_lengths[r] * vb * num_rhs,
                             write=False, row=OUTPUT_ROW, tag="merge_y",
                             channel=channel, banks=banks))
    return out.done()


def spmm_pb_trace(execution: SpmvExecution, config: SystemConfig,
                  params: TraceParams = TraceParams(),
                  channel: int = 0,
                  banks: Optional[int] = None) -> List[TraceEntry]:
    """Per-bank SpMM schedule (each bank streams each rhs-block)."""
    return spmm_pb_segments(execution, config, params, channel=channel,
                            banks=banks).trace


def spmm_channels_segments(execution: SpmvExecution, config: SystemConfig,
                           params: TraceParams = TraceParams(),
                           mode: str = "ab") -> SegmentedTrace:
    """Segmented per-channel streams of a channel-sharded SpMM."""
    if not execution.channel_execs:
        raise MappingError(
            "spmm_channels_trace needs a channel-sharded execution "
            "(plan_spmm(..., channels=C))")
    synth = spmm_ab_segments if mode == "ab" else spmm_pb_segments
    out = _SegmentBuilder()
    for ch, sub in enumerate(execution.channel_execs):
        if sub.total_elements == 0:
            continue
        out.splice(synth(sub, config, params, channel=ch,
                         banks=execution.banks_per_channel))
    return out.done()


def spmm_channels_trace(execution: SpmvExecution, config: SystemConfig,
                        params: TraceParams = TraceParams(),
                        mode: str = "ab") -> List[TraceEntry]:
    """Concatenated per-channel streams of a channel-sharded SpMM."""
    return spmm_channels_segments(execution, config, params,
                                  mode=mode).trace


def _representative_channel_loads(execution: SpmvExecution,
                                  banks: Optional[int] = None
                                  ) -> List[float]:
    """Per-bank element loads of the busiest channel-width chunk.

    The channel width comes from the execution record (or the caller's
    explicit *banks*), not a hardcoded 16, so PB traces chunk correctly
    under non-default channel geometry.
    """
    width = banks if banks is not None else execution.banks_per_channel
    loads = execution.per_bank_elements
    channels = max(1, loads.size // width)
    best, best_sum = None, -1
    for ch in range(channels):
        chunk = loads[ch * width:(ch + 1) * width]
        if chunk.sum() > best_sum:
            best, best_sum = chunk, chunk.sum()
    if best is None:
        raise MappingError("no banks in execution record")
    return [float(v) for v in best]


def _queue_batch(precision: str, subqueue_bytes: int = 64) -> int:
    """Elements per lock-step batch: the SpVQ capacity for the format
    (value sub-queue vs 16-bit index sub-queue, whichever binds)."""
    value_bytes = element_size(precision)
    return min(subqueue_bytes // value_bytes, subqueue_bytes // 2)


# ----------------------------------------------------------------------
# SpTRSV trace
# ----------------------------------------------------------------------
def sptrsv_ab_segments(execution: SpTrsvExecution, config: SystemConfig,
                       params: TraceParams = TraceParams(),
                       channel: int = 0,
                       host_channels: Optional[int] = None
                       ) -> SegmentedTrace:
    """Segmented §VI-C flow: per level ``L<N>.merge`` (SB read of solved
    values), ``L<N>.broadcast`` (mode switch + broadcast + programming) and
    ``L<N>.kernel`` (the AB-PIM level kernel with its exit switch); the
    recursive update SpMVs follow under ``U<K>.r<N>.*`` labels. The level
    chain is the dependency spine the critical-path analysis walks.
    """
    vb = element_size(execution.precision)
    eb = element_bytes(execution.precision)
    rf_batch = _queue_batch(execution.precision, params.subqueue_bytes)
    if host_channels is None:
        host_channels = config.memory.num_pseudo_channels
    num_channels = host_channels * config.num_cubes
    out = _SegmentBuilder()
    for level in range(execution.num_levels):
        width = execution.level_widths[level]
        batch_elems = execution.level_batches[level]
        # 1) SB mode: read the solved values of this level's columns
        out.add(f"L{level}.merge", channel,
                host_stage(max(1.0, width * vb / num_channels),
                           write=False, row=OUTPUT_ROW, tag="read_b",
                           channel=channel))
        # 2) AB mode: broadcast them + program the kernel
        bcast: List[TraceEntry] = list(mode_switch(channel))
        bcast.append(Command(CommandType.ACT_AB, row=INPUT_ROW,
                             channel=channel))
        bcast += _column_run(True, True, INPUT_ROW, _beats(width * vb),
                             tag="broadcast", channel=channel)
        bcast.append(Command(CommandType.PRE_AB, channel=channel))
        bcast += program_load(params, channel=channel)
        out.add(f"L{level}.broadcast", channel, bcast)
        # 3) AB-PIM: the scalar-multiply level kernel (Algorithm 3)
        kernel: List[TraceEntry] = list(mode_switch(channel))
        if batch_elems > 0:
            phase = rf_batch * params.queue_phases
            batches = max(1, math.ceil(batch_elems / phase))
            # a level updates at most one output row per element it holds
            y_bytes = min(min(execution.leaf_size, execution.n),
                          batch_elems) * vb
            kernel += _kernel_batches(batches, phase, eb, params,
                                      all_bank=True, y_bytes=y_bytes,
                                      channel=channel)
        kernel += mode_switch(channel)  # back to SB for the next level
        out.add(f"L{level}.kernel", channel, kernel)
    # the recursive off-diagonal updates are ordinary SpMVs
    for u, update in enumerate(execution.update_execs):
        out.splice(spmv_ab_segments(update, config, params, channel=channel,
                                    prefix=f"U{u}."))
    return out.done()


def sptrsv_ab_trace(execution: SpTrsvExecution, config: SystemConfig,
                    params: TraceParams = TraceParams(),
                    channel: int = 0,
                    host_channels: Optional[int] = None) -> List[TraceEntry]:
    """The §VI-C flow: per level, SB reads -> broadcast -> AB-PIM kernel.

    ``host_channels`` is how many channels share the host-side read of the
    solved values (the external bus serves them concurrently); the
    representative-channel default assumes every platform channel
    participates symmetrically.
    """
    return sptrsv_ab_segments(execution, config, params, channel=channel,
                              host_channels=host_channels).trace


def sptrsv_channels_trace(execution: SpTrsvExecution, config: SystemConfig,
                          params: TraceParams = TraceParams(),
                          ) -> List[TraceEntry]:
    """Concatenated per-channel streams of a channel-sharded SpTRSV.

    Every channel walks the same level schedule in lock step (the solved
    values must be broadcast device-wide before the next level — the
    explicit inter-channel reduction seam), so no shard is skipped: an
    idle channel still pays the broadcast and mode traffic of each level.
    """
    return sptrsv_channels_segments(execution, config, params).trace


def sptrsv_channels_segments(execution: SpTrsvExecution,
                             config: SystemConfig,
                             params: TraceParams = TraceParams(),
                             ) -> SegmentedTrace:
    """Segmented form of :func:`sptrsv_channels_trace` (same trace).

    Every channel emits the same ``L<N>.*`` labels, so each level's
    per-channel durations line up for barrier-accurate critical-path and
    slack analysis.
    """
    if not execution.channel_execs:
        raise MappingError(
            "sptrsv_channels_trace needs a channel-sharded execution "
            "(run_sptrsv(..., channels=C))")
    out = _SegmentBuilder()
    for ch, sub in enumerate(execution.channel_execs):
        out.splice(sptrsv_ab_segments(sub, config, params, channel=ch,
                                      host_channels=execution.num_channels))
    return out.done()


# ----------------------------------------------------------------------
# dense streaming trace (BLAS-1 / Fig. 10)
# ----------------------------------------------------------------------
def dense_stream_trace(elements_per_bank: int, reads_per_group: int,
                       writes_per_group: int, precision: str,
                       all_bank: bool = True,
                       active_banks: int = 16,
                       params: TraceParams = TraceParams()) -> List[TraceEntry]:
    """Streaming kernels: per 32 B group, fixed reads/writes per region.

    In AB mode one command stream drives all banks; in PB mode the stream
    repeats per bank on the shared buses.
    """
    vb = element_size(precision)
    groups = _beats(elements_per_bank * vb)
    trace: List[TraceEntry] = []
    banks = [0] if all_bank else list(range(active_banks))
    cursors = {bank: _RowCursor(all_bank, bank=bank) for bank in banks}
    # one arm/disarm sequence per kernel; in PB mode the controller
    # interleaves the banks' streams on the shared buses (it cannot
    # broadcast, but it can overlap different banks' latencies).
    trace += mode_switch()
    if all_bank:
        trace += program_load(params)
    bytes_done = 0
    for _ in range(groups):
        row = bytes_done // 1024
        col = (bytes_done % 1024) // BEAT_BYTES
        for bank in banks:
            trace += cursors[bank].open_row(row)
        # batch all reads before all writes (FR-FCFS-style grouping keeps
        # data-bus turnarounds to two per group instead of two per bank)
        for bank in banks:
            trace += _column_run(all_bank, False, row, reads_per_group,
                                 col=col, bank=bank, tag="stream")
        for bank in banks:
            trace += _column_run(all_bank, True, row, writes_per_group,
                                 col=col, bank=bank, tag="stream")
        bytes_done += BEAT_BYTES
    for bank in banks:
        trace += cursors[bank].close()
    trace += mode_switch()
    return trace
