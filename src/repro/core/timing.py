"""Pricing synthesised traces under the DRAM timing and energy models.

This is the glue between execution records (what a kernel did), trace
synthesis (the command stream it implies on one channel) and the
:mod:`repro.dram` scheduler (how many cycles/joules that stream costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import SystemConfig
from ..dram import (CommandType, EnergyReport, MemoryController,
                    TimingParams, TraceEntry, as_run)
from ..errors import ExecutionError
from .. import obs
from .spmv import SpmvExecution
from .sptrsv import SpTrsvExecution
from .trace import (TraceParams, dense_stream_trace, spmm_ab_trace,
                    spmm_channels_trace, spmm_pb_trace, spmv_ab_trace,
                    spmv_channels_trace, spmv_pb_trace, sptrsv_ab_trace,
                    sptrsv_channels_trace)

#: Tags marking host-side (external interface) column traffic.
HOST_TAGS = frozenset({"stage_x", "merge_y", "read_b", "broadcast"})


@dataclass
class PerfReport:
    """Cycles, commands and energy of one kernel on one channel."""

    cycles: int
    seconds: float
    commands: int
    row_commands: int
    column_commands: int
    counts: Dict[CommandType, int]
    tag_cycles: Dict[str, int]
    energy: Optional[EnergyReport] = None

    @property
    def host_cycles(self) -> int:
        """Cycles attributed to external staging/merging traffic."""
        return sum(cycles for tag, cycles in self.tag_cycles.items()
                   if tag in HOST_TAGS)

    @property
    def kernel_cycles(self) -> int:
        return self.cycles - self.host_cycles


def price_trace(trace: List[TraceEntry], config: SystemConfig,
                timing: TimingParams = TimingParams(),
                with_energy: bool = False, alu_operations: int = 0,
                precision: str = "fp64",
                enable_refresh: bool = True,
                channels: Optional[int] = None,
                collector=None) -> PerfReport:
    """Schedule *trace* under the platform's full channel hierarchy.

    ``channels=None`` is the representative-channel model: the trace
    covers one channel and energy is scaled by the platform channel count.
    ``channels=C`` marks a channel-sharded trace whose commands already
    carry explicit channel ids — the scheduler clocks each channel
    independently (total cycles = max over channels) and command energy is
    already per-channel-exact, so only the cube count multiplies it.

    ``collector`` is handed to :meth:`MemoryController.run` so cycle
    attribution (:mod:`repro.obs.attrib`) can observe the one scheduling
    pass; pricing itself is unaffected.
    """
    host_columns = sum(count for cmd, count in map(as_run, trace)
                       if cmd.kind.is_column and cmd.tag in HOST_TAGS)
    controller = MemoryController(
        timing=timing, num_channels=config.memory.num_pseudo_channels,
        banks_per_channel=config.memory.banks_per_channel,
        enable_refresh=enable_refresh)
    with obs.span("price_trace", cat="dram", entries=len(trace)):
        result = controller.run(trace, with_energy=with_energy,
                                host_column_traffic=host_columns,
                                collector=collector)
    if with_energy and result.energy is not None:
        # Representative model: the trace covers one channel and every
        # channel of the cube runs the same schedule, so command and
        # background energy scale by the channel count. Sharded model:
        # the trace already spans all modelled channels, so only the cube
        # count multiplies. ALU work is charged once for the whole system
        # (it is already a global operation count).
        if channels is None:
            scale = config.memory.num_pseudo_channels * config.num_cubes
        else:
            scale = config.num_cubes
        e = result.energy
        e.activation_pj *= scale
        e.read_pj *= scale
        e.write_pj *= scale
        e.external_pj *= scale
        e.refresh_pj *= scale
        e.background_pj *= scale
        if alu_operations:
            from ..dram import EnergyModel
            EnergyModel(timing=timing).add_alu(e, alu_operations,
                                               precision)
        if obs.enabled():
            for name, pj in e.as_dict().items():
                if pj:
                    obs.add_counter(f"energy.{name}", pj)
            obs.add_counter("energy.total_pj", e.total_pj)
    return PerfReport(cycles=result.total_cycles,
                      seconds=result.seconds(timing),
                      commands=result.command_total,
                      row_commands=result.row_commands,
                      column_commands=result.column_commands,
                      counts=result.counts,
                      tag_cycles=result.tag_cycles,
                      energy=result.energy)


def time_spmv(execution: SpmvExecution, config: SystemConfig,
              mode: str = "ab", params: TraceParams = TraceParams(),
              with_energy: bool = False) -> PerfReport:
    """Price one SpMV in all-bank (``"ab"``) or per-bank (``"pb"``) mode."""
    if mode not in ("ab", "pb"):
        raise ExecutionError(f"unknown PIM mode {mode!r}")
    if execution.num_channels is not None:
        trace = spmv_channels_trace(execution, config, params, mode=mode)
    elif mode == "ab":
        trace = spmv_ab_trace(execution, config, params)
    else:
        trace = spmv_pb_trace(execution, config, params)
    # one multiply + one accumulate per element, on every bank it touches
    alu_ops = 2 * execution.total_elements
    return price_trace(trace, config, with_energy=with_energy,
                       alu_operations=alu_ops,
                       precision=execution.precision,
                       channels=execution.num_channels)


def time_spmm(execution: SpmvExecution, config: SystemConfig,
              mode: str = "ab", params: TraceParams = TraceParams(),
              with_energy: bool = False) -> PerfReport:
    """Price one SpMM in all-bank (``"ab"``) or per-bank (``"pb"``) mode.

    The execution record carries the right-hand-side width (an
    :class:`~repro.core.spmm.SpmmExecution`); with ``num_rhs == 1`` the
    synthesised trace, and therefore the report, is bitwise
    :func:`time_spmv`.
    """
    if mode not in ("ab", "pb"):
        raise ExecutionError(f"unknown PIM mode {mode!r}")
    if execution.num_channels is not None:
        trace = spmm_channels_trace(execution, config, params, mode=mode)
    elif mode == "ab":
        trace = spmm_ab_trace(execution, config, params)
    else:
        trace = spmm_pb_trace(execution, config, params)
    # one multiply + one accumulate per element per right-hand side
    num_rhs = getattr(execution, "num_rhs", 1)
    alu_ops = 2 * execution.total_elements * num_rhs
    return price_trace(trace, config, with_energy=with_energy,
                       alu_operations=alu_ops,
                       precision=execution.precision,
                       channels=execution.num_channels)


def time_sptrsv(execution: SpTrsvExecution, config: SystemConfig,
                params: TraceParams = TraceParams(),
                with_energy: bool = False) -> PerfReport:
    """Price one triangular solve (leaf levels + recursive updates)."""
    if execution.num_channels is not None:
        trace = sptrsv_channels_trace(execution, config, params)
    else:
        trace = sptrsv_ab_trace(execution, config, params)
    alu_ops = 2 * execution.total_elements
    return price_trace(trace, config, with_energy=with_energy,
                       alu_operations=alu_ops,
                       precision=execution.precision,
                       channels=execution.num_channels)


def time_dense_kernel(elements: int, reads_per_group: int,
                      writes_per_group: int, config: SystemConfig,
                      precision: str = "fp64", mode: str = "ab",
                      ops_per_element: int = 1,
                      with_energy: bool = False,
                      params: TraceParams = TraceParams()) -> PerfReport:
    """Price a dense streaming kernel over *elements* total elements.

    The vector is spread over all banks; the representative channel streams
    ``elements / (16 * cubes)`` per bank-group in AB mode, or drives each
    of its 16 banks separately in PB mode.
    """
    per_bank = -(-elements // config.total_units)
    trace = dense_stream_trace(per_bank, reads_per_group, writes_per_group,
                               precision, all_bank=(mode == "ab"),
                               params=params)
    return price_trace(trace, config, with_energy=with_energy,
                       alu_operations=ops_per_element * elements,
                       precision=precision)
