"""Tile-to-bank distribution policies (§V and the Fig. 8 discussion).

After partitioning, tiles must be assigned to the processing units. Under
all-bank control the execution time of a *round* (one tile per bank running
in lock step) is set by the largest tile in it, and every tile a bank
receives costs input replication and output accumulation over the external
interface.

Two policies are provided:

* ``"paper"`` — tiles are placed in (row-block, column-block) order,
  one per bank, filling rounds sequentially. This is the paper's
  replication/accumulation-minimising placement: tiles of the same row
  block land on consecutive banks, and no tile is split or duplicated. Its
  known weakness is under-utilisation when a matrix yields fewer tiles than
  banks (the bcsstk32 observation in §VII-B: 101 of 256 banks used).
* ``"balanced"`` — greedy longest-processing-time assignment: rounds are
  built by sorting tiles by nnz and placing each into the currently
  lightest bank. Used by the ablation benchmark to quantify what evenness
  would buy.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import resolve_planner
from ..errors import MappingError
from .partition import PartitionPlan, SubMatrix
from .planner import stable_desc_order


@dataclass
class Assignment:
    """Tiles arranged into lock-step rounds: ``rounds[r][b]`` is bank *b*'s
    tile in round *r* (or None)."""

    num_banks: int
    rounds: List[List[Optional[SubMatrix]]]
    policy: str

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def banks_used(self) -> int:
        """Banks that received at least one tile (utilisation metric)."""
        used = set()
        for round_tiles in self.rounds:
            used.update(b for b, tile in enumerate(round_tiles)
                        if tile is not None)
        return len(used)

    def round_batch_elements(self, round_index: int) -> int:
        """nnz of the largest tile in a round — its lock-step length."""
        tiles = self.rounds[round_index]
        return max((tile.nnz for tile in tiles if tile is not None),
                   default=0)

    @property
    def critical_path_elements(self) -> int:
        """Sum over rounds of the per-round maxima: the lock-step cost."""
        return sum(self.round_batch_elements(r)
                   for r in range(self.num_rounds))

    @property
    def total_elements(self) -> int:
        return sum(tile.nnz for round_tiles in self.rounds
                   for tile in round_tiles if tile is not None)

    @property
    def imbalance(self) -> float:
        """critical path / ideal (total / banks); 1.0 is perfect balance."""
        ideal = self.total_elements / self.num_banks
        if ideal == 0:
            return 1.0
        return self.critical_path_elements / ideal

    def per_bank_elements(self) -> np.ndarray:
        """Total nnz each bank processes over all rounds."""
        loads = np.zeros(self.num_banks, dtype=np.int64)
        for round_tiles in self.rounds:
            for b, tile in enumerate(round_tiles):
                if tile is not None:
                    loads[b] += tile.nnz
        return loads


@dataclass
class ChannelAssignment:
    """Tiles sharded across pseudo-channels, one :class:`Assignment` each.

    Channels never interact mid-kernel (each pseudo-channel has its own
    command bus), so the shards are independent lock-step schedules; the
    device-level critical path is the *maximum* over shards, not the sum.
    """

    num_channels: int
    banks_per_channel: int
    shards: List[Assignment]
    policy: str

    @property
    def num_banks(self) -> int:
        return self.num_channels * self.banks_per_channel

    @property
    def num_rounds(self) -> int:
        return max(shard.num_rounds for shard in self.shards)

    @property
    def banks_used(self) -> int:
        return sum(shard.banks_used for shard in self.shards)

    @property
    def total_elements(self) -> int:
        return sum(shard.total_elements for shard in self.shards)

    @property
    def critical_path_elements(self) -> int:
        """Lock-step cost of the busiest channel (channels run in parallel)."""
        return max(shard.critical_path_elements for shard in self.shards)

    @property
    def imbalance(self) -> float:
        """busiest channel's critical path / ideal (total / banks)."""
        ideal = self.total_elements / self.num_banks
        if ideal == 0:
            return 1.0
        return self.critical_path_elements / ideal

    def per_bank_elements(self) -> np.ndarray:
        """Per-unit loads, channel-major: unit ``c * bpc + b``."""
        return np.concatenate(
            [shard.per_bank_elements() for shard in self.shards])


def split_oversized(tiles: Sequence[SubMatrix],
                    nnz_cap: int) -> List[SubMatrix]:
    """Split tiles whose element count exceeds *nnz_cap*.

    This is the workload-evenness half of the paper's distribution
    algorithm: the 1 KB constraint bounds a tile's *dimensions*, not its
    population, so hub rows produce heavy tiles that would set the
    lock-step critical path. Splitting a heavy tile duplicates its input
    segment (more replication traffic — the trade-off §V discusses) but
    spreads its elements over several banks. Elements stay row-sorted.
    """
    if nnz_cap <= 0:
        raise MappingError("nnz cap must be positive")
    out: List[SubMatrix] = []
    for tile in tiles:
        if tile.nnz <= nnz_cap:
            out.append(tile)
            continue
        pieces = -(-tile.nnz // nnz_cap)
        share = -(-tile.nnz // pieces)
        for piece in range(pieces):
            lo = piece * share
            hi = min(lo + share, tile.nnz)
            if lo >= hi:
                continue
            out.append(SubMatrix(row_range=tile.row_range,
                                 global_cols=tile.global_cols,
                                 rows=tile.rows[lo:hi],
                                 cols=tile.cols[lo:hi],
                                 vals=tile.vals[lo:hi]))
    return out


def distribute(plan: PartitionPlan, num_banks: int,
               policy: str = "paper",
               balance_slack: float = 0.6,
               planner: Optional[str] = None) -> Assignment:
    """Assign a partition plan's tiles to *num_banks* banks.

    Under the default policy, tiles heavier than ``balance_slack`` times
    the ideal per-bank share are first split (see :func:`split_oversized`),
    then placed round-robin in (row-block, column-block) order. Pass
    ``balance_slack=0`` to disable splitting (the naive-distribution
    ablation).

    ``planner`` selects the round-formation implementation (``"fast"``
    array bookkeeping vs the ``"scalar"`` per-tile oracle, see
    :mod:`repro.core.planner`); both produce identical assignments,
    including the greedy tie-break order.
    """
    assignment = _distribute_tiles(plan.tiles, num_banks, policy,
                                   balance_slack, planner,
                                   total_nnz=plan.total_nnz)
    _check(assignment.total_elements, plan.total_nnz)
    return assignment


def _distribute_tiles(tiles: Sequence[SubMatrix], num_banks: int,
                      policy: str, balance_slack: float,
                      planner: Optional[str],
                      total_nnz: Optional[int] = None) -> Assignment:
    """Round-formation core shared by :func:`distribute` (whole plan) and
    :func:`shard_channels` (one channel's tile shard)."""
    if num_banks <= 0:
        raise MappingError("need at least one bank")
    fast = resolve_planner(planner) == "fast"
    if total_nnz is None:
        total_nnz = int(_tile_nnz(tiles).sum()) if tiles else 0
    if policy == "paper":
        if balance_slack and total_nnz:
            cap = max(16, math.ceil(total_nnz / num_banks
                                    * balance_slack))
            tiles = split_oversized(tiles, cap)
        # Descending-size round packing: each lock-step round costs its
        # heaviest tile, so grouping similar-sized tiles makes the round
        # maxima telescope instead of every round paying for one straggler.
        if fast:
            order = stable_desc_order(_tile_nnz(tiles))
            tiles = [tiles[i] for i in order]
        else:
            tiles = sorted(tiles, key=lambda t: -t.nnz)
        rounds = _round_robin_fast(tiles, num_banks) if fast \
            else _round_robin(tiles, num_banks)
    elif policy == "naive":
        rounds = _round_robin_fast(tiles, num_banks) if fast \
            else _round_robin(tiles, num_banks)
    elif policy == "balanced":
        rounds = _balanced_fast(tiles, num_banks) if fast \
            else _balanced(tiles, num_banks)
    else:
        raise MappingError(f"unknown distribution policy {policy!r}")
    return Assignment(num_banks=num_banks, rounds=rounds, policy=policy)


def shard_channels(plan: PartitionPlan, num_channels: int,
                   banks_per_channel: int = 16,
                   policy: str = "paper",
                   balance_slack: float = 0.6,
                   planner: Optional[str] = None) -> ChannelAssignment:
    """Shard a partition plan across *num_channels* pseudo-channels.

    Two-level distribution: tiles are first assigned to channels by greedy
    LPT (stable descending-nnz order into the currently lightest channel —
    the same machinery as the ``"balanced"`` bank policy, lifted to channel
    granularity), then each channel's shard runs through the ordinary
    per-bank :func:`distribute` pass under *policy*.

    Under the paper policy, oversized tiles are pre-split against the
    *device-wide* cap (ideal share over all ``num_channels *
    banks_per_channel`` units) before channel selection, so a single hub
    tile cannot capsize one channel. Each channel keeps its tiles in
    original plan order, which makes ``num_channels=1`` collapse exactly to
    ``distribute(plan, banks_per_channel)`` — the single-channel bitwise
    anchor the differential tests pin.
    """
    if num_channels <= 0:
        raise MappingError("need at least one channel")
    if banks_per_channel <= 0:
        raise MappingError("need at least one bank per channel")
    tiles: Sequence[SubMatrix] = plan.tiles
    total_banks = num_channels * banks_per_channel
    if policy == "paper" and balance_slack and plan.total_nnz:
        cap = max(16, math.ceil(plan.total_nnz / total_banks
                                * balance_slack))
        tiles = split_oversized(tiles, cap)
    nnz = _tile_nnz(tiles)
    order = stable_desc_order(nnz)
    channel_of = np.zeros(len(tiles), dtype=np.int64)
    heap = [(0, c) for c in range(num_channels)]
    for index in order:
        load, channel = heapq.heappop(heap)
        channel_of[int(index)] = channel
        heapq.heappush(heap, (load + int(nnz[index]), channel))
    shards = []
    for channel in range(num_channels):
        shard_tiles = [tiles[i] for i in range(len(tiles))
                       if channel_of[i] == channel]
        shards.append(_distribute_tiles(shard_tiles, banks_per_channel,
                                        policy, balance_slack, planner))
    assignment = ChannelAssignment(num_channels=num_channels,
                                   banks_per_channel=banks_per_channel,
                                   shards=shards, policy=policy)
    _check(assignment.total_elements, plan.total_nnz)
    return assignment


def _tile_nnz(tiles: Sequence[SubMatrix]) -> np.ndarray:
    return np.fromiter((t.rows.size for t in tiles), dtype=np.int64,
                       count=len(tiles))


def _round_robin(tiles: Sequence[SubMatrix],
                 num_banks: int) -> List[List[Optional[SubMatrix]]]:
    rounds: List[List[Optional[SubMatrix]]] = []
    for index, tile in enumerate(tiles):
        round_index, bank = divmod(index, num_banks)
        if round_index == len(rounds):
            rounds.append([None] * num_banks)
        rounds[round_index][bank] = tile
    return rounds or [[None] * num_banks]


def _round_robin_fast(tiles: Sequence[SubMatrix],
                      num_banks: int) -> List[List[Optional[SubMatrix]]]:
    """Sliced round formation: one list op per round, not per tile."""
    rounds: List[List[Optional[SubMatrix]]] = []
    for start in range(0, len(tiles), num_banks):
        chunk = list(tiles[start:start + num_banks])
        chunk.extend([None] * (num_banks - len(chunk)))
        rounds.append(chunk)
    return rounds or [[None] * num_banks]


def _balanced(tiles: Sequence[SubMatrix],
              num_banks: int) -> List[List[Optional[SubMatrix]]]:
    order = sorted(range(len(tiles)), key=lambda i: -tiles[i].nnz)
    per_bank: List[List[SubMatrix]] = [[] for _ in range(num_banks)]
    loads = np.zeros(num_banks, dtype=np.int64)
    for index in order:
        bank = int(np.argmin(loads))
        per_bank[bank].append(tiles[index])
        loads[bank] += tiles[index].nnz
    depth = max((len(stack) for stack in per_bank), default=0)
    rounds = []
    for r in range(max(depth, 1)):
        rounds.append([stack[r] if r < len(stack) else None
                       for stack in per_bank])
    return rounds


def _balanced_fast(tiles: Sequence[SubMatrix],
                   num_banks: int) -> List[List[Optional[SubMatrix]]]:
    """Greedy LPT via argsort + a (load, bank) heap.

    Identical to the scalar oracle: the heap pops the lightest bank and,
    on ties, the lowest bank index — exactly ``np.argmin``'s first-minimum
    rule — so every tile lands on the same bank in the same slot.
    """
    nnz = _tile_nnz(tiles)
    order = stable_desc_order(nnz)
    per_bank: List[List[SubMatrix]] = [[] for _ in range(num_banks)]
    heap = [(0, b) for b in range(num_banks)]
    for index in order:
        load, bank = heapq.heappop(heap)
        per_bank[bank].append(tiles[index])
        heapq.heappush(heap, (load + int(nnz[index]), bank))
    depth = max((len(stack) for stack in per_bank), default=0)
    rounds = []
    for r in range(max(depth, 1)):
        rounds.append([stack[r] if r < len(stack) else None
                       for stack in per_bank])
    return rounds


def _check(placed: int, expected: int) -> None:
    if placed != expected:
        raise MappingError(
            f"distribution dropped elements: {placed} != {expected}")


def replication_traffic_bytes(assignment: Assignment,
                              value_bytes: int) -> int:
    """Host bytes written to stage every tile's input segment (per SpMV)."""
    return sum(tile.x_length * value_bytes
               for round_tiles in assignment.rounds
               for tile in round_tiles if tile is not None)


def accumulation_traffic_bytes(assignment: Assignment,
                               value_bytes: int) -> int:
    """Host bytes read back to merge every tile's output partial.

    Only rows a tile actually touched are read (Fig. 6's output-side
    compression).
    """
    return sum(tile.touched_rows * value_bytes
               for round_tiles in assignment.rounds
               for tile in round_tiles if tile is not None)
