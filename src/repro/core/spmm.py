"""End-to-end SpMM execution: one resident plan, k right-hand sides.

SpMM (``Y = A @ X`` with ``X`` a dense block of ``num_rhs`` columns)
reuses the SpMV layout verbatim: :func:`plan_spmm` delegates to
:func:`~repro.core.spmv.plan_spmv` and re-tags the execution record with
the right-hand-side width, so the partition, the bank distribution and
every round shape are bitwise those of the single-vector kernel. What
changes is amortisation: the program load and the resident matrix stream
are paid once per round while the input/output staging and the
gather/accumulate work scale with ``num_rhs`` (see
:func:`repro.core.trace.spmm_ab_segments`).

Both fidelities generalise the SpMV tiers column-wise:

* ``fast`` — the per-tile numpy update runs on ``(segment, k)`` blocks;
  each column sees exactly the SpMV float operations in the SpMV order,
  so column ``j`` of the result is bitwise ``run_spmv(A, X[:, j])``.
* ``functional`` — every round expands into ``banks x k`` engine lanes
  (:func:`repro.kernels.run_tile_block`) on the instruction-accurate
  engine; at ``k == 1`` the expansion is the identity and the tier is
  bitwise the SpMV functional tier.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import SystemConfig, resolve_rhs
from ..errors import ExecutionError
from ..formats import COOMatrix
from ..kernels import Tile, run_tile_block
from .. import obs
from ..pim import make_engine
from .distribution import Assignment
from .partition import PartitionPlan
from .spmv import (_ACCUM_UFUNC, _MERGE, _MULT_FUNC, AnyAssignment,
                   SpmvExecution, _lane_rounds, plan_spmv)


@dataclass
class SpmmExecution(SpmvExecution):
    """An SpMV execution record widened to ``num_rhs`` dense columns.

    Every inherited field keeps its SpMV meaning (the plan is shared);
    traffic fields stay *per right-hand side* — the trace synthesisers
    and :func:`~repro.core.timing.time_spmm` scale staging and compute
    by ``num_rhs`` where the hardware does.
    """

    num_rhs: int = 1


@dataclass
class SpmmResult:
    """SpMM output block plus its execution record."""

    y: np.ndarray
    execution: SpmmExecution
    plan: PartitionPlan
    assignment: AnyAssignment


def as_spmm_execution(execution: SpmvExecution,
                      num_rhs: int) -> SpmmExecution:
    """Re-tag an SpMV execution (and its channel shards) with a width."""
    if isinstance(execution, SpmmExecution) \
            and execution.num_rhs == num_rhs:
        return execution
    data = {f.name: getattr(execution, f.name)
            for f in dataclasses.fields(SpmvExecution)}
    data["channel_execs"] = [as_spmm_execution(sub, num_rhs)
                             for sub in execution.channel_execs]
    return SpmmExecution(num_rhs=num_rhs, **data)


def plan_spmm(matrix: COOMatrix, config: SystemConfig,
              num_rhs: Optional[int] = None, precision: str = "fp64",
              compress: bool = True, policy: str = "paper",
              matrix_format: str = "coo",
              plan: Optional[PartitionPlan] = None,
              assignment: Optional[AnyAssignment] = None,
              planner: Optional[str] = None, validate: bool = True,
              channels: Optional[int] = None,
              strategy: Optional[str] = None, tuner_cache=None,
              ) -> "tuple[PartitionPlan, AnyAssignment, SpmmExecution]":
    """Lay out one SpMM without executing it numerically.

    The layout *is* the SpMV layout — one partition, one distribution,
    resident across all ``num_rhs`` columns — so every
    :func:`~repro.core.spmv.plan_spmv` parameter keeps its meaning and
    cached SpMV plans/assignments may be injected unchanged. ``num_rhs``
    resolves through :func:`repro.config.resolve_rhs` (explicit arg >
    ``PSYNCPIM_RHS`` > 1).
    """
    num_rhs = resolve_rhs(num_rhs)
    plan, assignment, execution = plan_spmv(
        matrix, config, precision=precision, compress=compress,
        policy=policy, matrix_format=matrix_format, plan=plan,
        assignment=assignment, planner=planner, validate=validate,
        channels=channels, strategy=strategy, tuner_cache=tuner_cache)
    if obs.enabled():
        obs.set_gauge("spmm.num_rhs", num_rhs)
    return plan, assignment, as_spmm_execution(execution, num_rhs)


def run_spmm(matrix: COOMatrix, x: np.ndarray, config: SystemConfig,
             precision: str = "fp64", compress: bool = True,
             policy: str = "paper", fidelity: str = "fast",
             accumulate: str = "add", multiply: str = "mul",
             y0: Optional[np.ndarray] = None,
             engine_banks: Optional[int] = None,
             matrix_format: str = "coo",
             plan: Optional[PartitionPlan] = None,
             assignment: Optional[AnyAssignment] = None,
             engine: Optional[str] = None,
             planner: Optional[str] = None,
             validate: bool = True,
             channels: Optional[int] = None,
             strategy: Optional[str] = None,
             tuner_cache=None) -> SpmmResult:
    """Execute ``Y = accumulate(Y0, A (.) X)`` on the pSyncPIM model.

    *x* is the dense right-hand-side block of shape ``(n, k)`` (a 1-D
    vector is accepted as ``k = 1``); the result ``y`` has shape
    ``(m, k)`` and column ``j`` is bitwise
    ``run_spmv(matrix, x[:, j], ...)`` under the same plan. All other
    parameters mirror :func:`~repro.core.spmv.run_spmv`.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2 or x.shape[0] != matrix.shape[1] or x.shape[1] < 1:
        raise ExecutionError(
            f"SpMM block shape mismatch: expected "
            f"({matrix.shape[1]}, k), got {x.shape}")
    num_rhs = x.shape[1]
    plan, assignment, execution = plan_spmm(
        matrix, config, num_rhs=num_rhs, precision=precision,
        compress=compress, policy=policy, matrix_format=matrix_format,
        plan=plan, assignment=assignment, planner=planner,
        validate=validate, channels=channels, strategy=strategy,
        tuner_cache=tuner_cache)

    rounds = (assignment.rounds if isinstance(assignment, Assignment)
              else _lane_rounds(assignment))
    if fidelity == "fast":
        with obs.span("spmm.rounds", cat="kernel", fidelity=fidelity,
                      rounds=len(rounds), num_rhs=num_rhs):
            y = _fast_block_rounds(matrix, x, rounds, accumulate,
                                   multiply, y0)
    elif fidelity == "functional":
        with obs.span("spmm.rounds", cat="kernel", fidelity=fidelity,
                      rounds=len(rounds), num_rhs=num_rhs):
            y = _functional_block_rounds(matrix, x, rounds, precision,
                                         accumulate, multiply, y0,
                                         engine_banks, engine)
    else:
        raise ExecutionError(f"unknown fidelity {fidelity!r}")
    return SpmmResult(y=y, execution=execution, plan=plan,
                      assignment=assignment)


# ----------------------------------------------------------------------
# fast tier: the SpMV per-tile update, column-blocked
# ----------------------------------------------------------------------
def _fast_block_rounds(matrix, x, rounds: Sequence[list], accumulate,
                       multiply, y0) -> np.ndarray:
    try:
        acc = _ACCUM_UFUNC[accumulate]
        mul = _MULT_FUNC[multiply]
    except KeyError:
        raise ExecutionError(
            f"unsupported semiring ({multiply}, {accumulate})") from None
    shape = (matrix.shape[0], x.shape[1])
    if y0 is None:
        y = np.zeros(shape)
    else:
        y = np.asarray(y0, dtype=np.float64).copy()
        if y.ndim == 1:
            y = np.repeat(y[:, None], x.shape[1], axis=1)
        if y.shape != shape:
            raise ExecutionError(
                f"SpMM y0 shape mismatch: expected {shape}, "
                f"got {y.shape}")
    for round_tiles in rounds:
        for tile in round_tiles:
            if tile is None or tile.nnz == 0:
                continue
            # bank-local compute: per-column products against the staged
            # x block (row-slicing keeps the SpMV value order per column)
            seg = tile.x_segment(x)
            partial = mul(tile.vals[:, None],
                          seg[tile.cols]).astype(float)
            # host-side remote accumulation of the output partial
            acc.at(y, tile.rows + tile.row_range[0], partial)
    if accumulate == "lor":
        y = y.astype(bool).astype(float)
    return y


# ----------------------------------------------------------------------
# functional tier: banks x k lanes on the instruction-accurate engine
# ----------------------------------------------------------------------
def _functional_block_rounds(matrix, x, rounds: Sequence[list], precision,
                             accumulate, multiply, y0,
                             engine_banks: Optional[int],
                             engine_name: Optional[str] = None,
                             ) -> np.ndarray:
    num_rhs = x.shape[1]
    shape = (matrix.shape[0], num_rhs)
    if y0 is None:
        y = np.zeros(shape)
    else:
        y = np.asarray(y0, dtype=np.float64).copy()
        if y.ndim == 1:
            y = np.repeat(y[:, None], num_rhs, axis=1)
        if y.shape != shape:
            raise ExecutionError(
                f"SpMM y0 shape mismatch: expected {shape}, "
                f"got {y.shape}")
    try:
        y_init, merge = _MERGE[accumulate]
    except KeyError:
        raise ExecutionError(
            f"unsupported accumulate {accumulate!r}") from None
    for round_tiles in rounds:
        active = [(b, tile) for b, tile in enumerate(round_tiles)
                  if tile is not None and tile.nnz]
        if not active:
            continue
        # The wave width counts *tiles* (the engine runs width x k
        # lanes), so at k = 1 the waves — and the whole tier — reduce to
        # the SpMV functional path exactly.
        width = engine_banks or len(active)
        waves = [active[i:i + width] for i in range(0, len(active), width)]
        for wave in waves:
            eng = make_engine(num_banks=len(wave) * num_rhs,
                              precision=precision, engine=engine_name)
            tiles = [Tile(t.rows, t.cols, t.vals, t.x_segment(x),
                          t.y_length) for _, t in wave]
            result = run_tile_block(eng, tiles, num_rhs=num_rhs,
                                    accumulate=accumulate,
                                    multiply=multiply, y_init=y_init)
            for (bank, tile), partial in zip(wave, result.y_per_bank):
                touched = np.unique(tile.rows)
                merge.at(y, touched + tile.row_range[0], partial[touched])
    if accumulate == "lor":
        y = y.astype(bool).astype(float)
    return y
