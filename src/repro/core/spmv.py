"""End-to-end SpMV execution: partition -> distribute -> rounds -> merge.

Two fidelities share the same plan:

* ``functional`` — every round runs on the instruction-accurate all-bank
  engine (:mod:`repro.pim`); used by the test-suite and examples to prove
  the kernel/ISA path computes exactly A @ x.
* ``fast`` — every round is computed with vectorised numpy over the same
  tiles, exercising the identical plan (replication, local indices, host
  accumulation) at paper scale without interpreting instructions.

Both produce an :class:`SpmvExecution` record: the quantities the timing
and energy models consume (per-round lock-step batch counts, per-bank
loads, external traffic, utilisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..config import (SystemConfig, element_size, resolve_channels,
                      resolve_strategy)
from ..errors import ConfigError, ExecutionError
from ..formats import COOMatrix
from ..kernels import Tile, run_tile_round
from .. import obs
from ..pim import make_engine
from .distribution import (Assignment, ChannelAssignment,
                           accumulation_traffic_bytes, distribute,
                           replication_traffic_bytes, shard_channels)
from .partition import PartitionPlan, partition


@dataclass
class SpmvExecution:
    """Everything the performance model needs to cost one SpMV."""

    precision: str
    num_banks: int
    #: Lock-step element count per round (max tile nnz in the round).
    round_batches: List[int]
    #: Per-bank total elements over all rounds.
    per_bank_elements: np.ndarray
    #: Host -> bank staged input bytes (replication, Fig. 6 traffic).
    input_bytes: int
    #: Bank -> host partial-output bytes (remote accumulation).
    output_bytes: int
    #: Matrix stream bytes resident in banks (row/col/value triples).
    matrix_bytes: int
    banks_used: int
    imbalance: float
    policy: str
    compressed: bool
    #: On-bank matrix representation: "coo" (default), "csr" or "bitmap"
    #: (paper §IV-C / §VIII).
    matrix_format: str = "coo"
    #: Average bytes streamed from the bank per matrix element — set by
    #: the format (COO: 2x16-bit indices + value; CSR: one index + value
    #: + amortised row pointers; bitmap: value + presence bits).
    stream_bytes_per_element: float = 12.0
    #: Per-round x/y tile lengths of the *largest* tile (trace synthesis).
    round_x_lengths: List[int] = field(default_factory=list)
    round_y_lengths: List[int] = field(default_factory=list)
    #: Channel-sharded executions carry the shard width here; ``None``
    #: selects the legacy representative-channel model (work over
    #: ``config.total_units`` banks, one synthesised channel stream).
    num_channels: Optional[int] = None
    banks_per_channel: int = 16
    #: One per-channel sub-execution per shard (empty when unsharded).
    channel_execs: List["SpmvExecution"] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.round_batches)

    @property
    def lockstep_elements(self) -> int:
        return int(sum(self.round_batches))

    @property
    def total_elements(self) -> int:
        return int(self.per_bank_elements.sum())


#: A bank layout: whole-device :class:`Assignment` (legacy model) or a
#: per-channel sharded :class:`ChannelAssignment`.
AnyAssignment = Union[Assignment, ChannelAssignment]


@dataclass
class SpmvResult:
    """SpMV output plus its execution record."""

    y: np.ndarray
    execution: SpmvExecution
    plan: PartitionPlan
    assignment: AnyAssignment


#: COO element footprint: two 16-bit tile-local indices plus the value.
#: Tile dimensions are bounded by one memory row (§V), so local indices
#: always fit 16 bits; the -1 padding sentinel is 0xFFFF.
def element_bytes(precision: str) -> int:
    return 4 + element_size(precision)


def plan_spmv(matrix: COOMatrix, config: SystemConfig,
              precision: str = "fp64", compress: bool = True,
              policy: str = "paper", matrix_format: str = "coo",
              plan: Optional[PartitionPlan] = None,
              assignment: Optional[AnyAssignment] = None,
              planner: Optional[str] = None, validate: bool = True,
              channels: Optional[int] = None,
              strategy: Optional[str] = None, tuner_cache=None,
              ) -> "tuple[PartitionPlan, AnyAssignment, SpmvExecution]":
    """Lay out one SpMV without executing it numerically.

    Returns the partition plan, the bank assignment and the
    :class:`SpmvExecution` record the timing/energy models consume. This is
    the expensive, data-dependent half of :func:`run_spmv`; the sweep
    runner calls it directly (optionally injecting a cached *plan* /
    *assignment*) when only performance numbers are needed.

    ``planner`` selects the planning implementation (see
    :mod:`repro.core.planner`); ``validate=False`` skips the plan
    round-trip check in trusted hot paths such as the sweep runner.

    ``channels`` selects the execution model (explicit arg >
    ``PSYNCPIM_CHANNELS`` > default). ``None`` is the legacy
    representative-channel layout over ``config.total_units`` banks.
    An integer ``C`` shards tiles over ``C`` explicitly modelled
    pseudo-channels (:func:`repro.core.distribution.shard_channels`),
    each with its own per-bank distribution and trace stream.

    ``strategy`` selects the partitioning scheme (explicit arg >
    ``PSYNCPIM_STRATEGY`` > ``"paper"``; see
    :mod:`repro.core.strategies`). ``"auto"`` tunes per matrix with the
    analytic cost model, memoizing verdicts through *tuner_cache* (an
    :class:`repro.sweep.ArtifactCache`) when one is supplied. Ignored
    when a pre-built *plan* is injected.
    """
    channels = resolve_channels(channels)
    if plan is None:
        strategy = resolve_strategy(strategy)
        if strategy == "auto":
            from .strategies import tune_strategy
            with obs.span("plan.tune", cat="planner", nnz=matrix.nnz):
                tuned = tune_strategy(matrix, config, precision=precision,
                                      compress=compress, policy=policy,
                                      channels=channels, planner=planner,
                                      cache=tuner_cache)
            strategy = tuned.chosen
            if obs.enabled():
                obs.add_counter("spmv.tuned", 1)
        if strategy == "paper":
            with obs.span("plan.partition", cat="planner",
                          nnz=matrix.nnz, compress=compress):
                plan = partition(matrix, config, precision=precision,
                                 compress=compress, planner=planner,
                                 validate=validate)
        else:
            from .strategies import make_strategy
            with obs.span("plan.partition", cat="planner",
                          nnz=matrix.nnz, compress=compress,
                          strategy=strategy):
                plan = make_strategy(strategy).partition(
                    matrix, config, precision=precision,
                    compress=compress, planner=planner,
                    validate=validate)
    value_bytes = element_size(precision)
    stream_bpe = _stream_bytes_per_element(matrix_format, plan,
                                           value_bytes, matrix)

    if channels is None:
        num_banks = config.total_units
        if assignment is None:
            with obs.span("plan.distribute", cat="planner",
                          tiles=len(plan.tiles), policy=policy):
                assignment = distribute(plan, num_banks, policy=policy,
                                        planner=planner)
        execution = _assignment_execution(assignment, precision, policy,
                                          compress, matrix_format,
                                          stream_bpe)
        # The representative-channel model still needs the platform's
        # channel width (PB trace chunking); default geometry keeps the
        # historical 16.
        execution.banks_per_channel = config.memory.banks_per_channel
    else:
        available = config.memory.num_pseudo_channels
        if channels > available:
            raise ConfigError(
                f"channels={channels} exceeds the platform's "
                f"{available} pseudo-channels")
        bpc = config.memory.banks_per_channel
        if assignment is None:
            with obs.span("plan.shard", cat="planner",
                          tiles=len(plan.tiles), policy=policy,
                          channels=channels):
                assignment = shard_channels(plan, channels,
                                            banks_per_channel=bpc,
                                            policy=policy,
                                            planner=planner)
        elif not isinstance(assignment, ChannelAssignment):
            raise ConfigError(
                "channels= requires a ChannelAssignment layout")
        channel_execs = [
            _assignment_execution(shard, precision, policy, compress,
                                  matrix_format, stream_bpe)
            for shard in assignment.shards]
        execution = _compose_channel_execution(
            assignment, channel_execs, precision, policy, compress,
            matrix_format, stream_bpe)
    if obs.enabled():
        obs.set_gauge("spmv.banks_used", execution.banks_used)
        obs.set_gauge("spmv.imbalance", execution.imbalance)
        obs.set_gauge("spmv.rounds", execution.num_rounds)
        if channels is not None:
            obs.set_gauge("spmv.channels", channels)
        obs.add_counter("spmv.plans", 1)
    return plan, assignment, execution


def _assignment_execution(assignment: Assignment, precision: str,
                          policy: str, compress: bool, matrix_format: str,
                          stream_bpe: float) -> SpmvExecution:
    """Build the execution record for one bank-level assignment.

    Shared by the legacy whole-device layout and each channel shard;
    ``assignment.total_elements`` equals the plan nnz for the former, the
    shard nnz for the latter.
    """
    value_bytes = element_size(precision)
    return SpmvExecution(
        precision=precision,
        num_banks=assignment.num_banks,
        round_batches=[assignment.round_batch_elements(r)
                       for r in range(assignment.num_rounds)],
        per_bank_elements=assignment.per_bank_elements(),
        input_bytes=replication_traffic_bytes(assignment, value_bytes),
        output_bytes=accumulation_traffic_bytes(assignment, value_bytes),
        matrix_bytes=int(round(assignment.total_elements * stream_bpe)),
        banks_used=assignment.banks_used,
        imbalance=assignment.imbalance,
        policy=policy,
        compressed=compress,
        matrix_format=matrix_format,
        stream_bytes_per_element=stream_bpe,
        round_x_lengths=[
            max((t.x_length for t in round_tiles if t is not None),
                default=0) for round_tiles in assignment.rounds],
        round_y_lengths=[
            max((t.touched_rows for t in round_tiles if t is not None),
                default=0) for round_tiles in assignment.rounds],
    )


def _compose_channel_execution(assignment: ChannelAssignment,
                               channel_execs: List[SpmvExecution],
                               precision: str, policy: str, compress: bool,
                               matrix_format: str,
                               stream_bpe: float) -> SpmvExecution:
    """Device-level roll-up of per-channel executions.

    The round-shaped fields report the per-round *maximum* across channels
    (channels run in parallel on independent command buses); traffic and
    utilisation fields sum. Pricing never consumes the roll-up rounds —
    the per-channel traces are synthesised from ``channel_execs``.
    """
    rounds = assignment.num_rounds
    def round_max(field_name: str) -> List[int]:
        return [max((getattr(sub, field_name)[r]
                     for sub in channel_execs if r < sub.num_rounds),
                    default=0) for r in range(rounds)]
    return SpmvExecution(
        precision=precision,
        num_banks=assignment.num_banks,
        round_batches=round_max("round_batches"),
        per_bank_elements=np.concatenate(
            [sub.per_bank_elements for sub in channel_execs]),
        input_bytes=sum(sub.input_bytes for sub in channel_execs),
        output_bytes=sum(sub.output_bytes for sub in channel_execs),
        matrix_bytes=sum(sub.matrix_bytes for sub in channel_execs),
        banks_used=sum(sub.banks_used for sub in channel_execs),
        imbalance=assignment.imbalance,
        policy=policy,
        compressed=compress,
        matrix_format=matrix_format,
        stream_bytes_per_element=stream_bpe,
        round_x_lengths=round_max("round_x_lengths"),
        round_y_lengths=round_max("round_y_lengths"),
        num_channels=assignment.num_channels,
        banks_per_channel=assignment.banks_per_channel,
        channel_execs=channel_execs,
    )


def run_spmv(matrix: COOMatrix, x: np.ndarray, config: SystemConfig,
             precision: str = "fp64", compress: bool = True,
             policy: str = "paper", fidelity: str = "fast",
             accumulate: str = "add", multiply: str = "mul",
             y0: Optional[np.ndarray] = None,
             engine_banks: Optional[int] = None,
             matrix_format: str = "coo",
             plan: Optional[PartitionPlan] = None,
             assignment: Optional[AnyAssignment] = None,
             engine: Optional[str] = None,
             planner: Optional[str] = None,
             validate: bool = True,
             channels: Optional[int] = None,
             strategy: Optional[str] = None,
             tuner_cache=None) -> SpmvResult:
    """Execute ``y = accumulate(y0, A (.) x)`` on the pSyncPIM model.

    ``engine_banks`` caps the functional engine size (the plan itself is
    always laid out over the full ``config.total_units``); it exists because
    interpreting 256 units in Python is slow while the plan's semantics are
    bank-count independent per round.

    ``matrix_format`` selects the on-bank representation for the timing
    model — functional results are format-independent. ``"coo"`` is the
    paper's HPC default; ``"csr"`` models the §IV-C variant (four index
    registers + adder); ``"bitmap"`` the §VIII neural-network format.

    ``plan`` / ``assignment`` inject a previously computed layout (e.g.
    from the sweep artifact cache) and must have been produced by
    :func:`plan_spmv` for the same matrix, config and parameters.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.shape[1],):
        raise ExecutionError("SpMV vector length mismatch")
    plan, assignment, execution = plan_spmv(
        matrix, config, precision=precision, compress=compress,
        policy=policy, matrix_format=matrix_format, plan=plan,
        assignment=assignment, planner=planner, validate=validate,
        channels=channels, strategy=strategy, tuner_cache=tuner_cache)

    # Channel-sharded layouts execute as one big lane array of
    # (channel, bank) units; channels never interact mid-kernel, so the
    # flattened lane rounds are semantically a wider single round.
    rounds = (assignment.rounds if isinstance(assignment, Assignment)
              else _lane_rounds(assignment))
    if fidelity == "fast":
        with obs.span("spmv.rounds", cat="kernel", fidelity=fidelity,
                      rounds=len(rounds)):
            y = _fast_rounds(matrix, x, rounds, accumulate, multiply,
                             y0)
    elif fidelity == "functional":
        with obs.span("spmv.rounds", cat="kernel", fidelity=fidelity,
                      rounds=len(rounds)):
            y = _functional_rounds(matrix, x, rounds, precision,
                                   accumulate, multiply, y0, engine_banks,
                                   engine)
    else:
        raise ExecutionError(f"unknown fidelity {fidelity!r}")
    return SpmvResult(y=y, execution=execution, plan=plan,
                      assignment=assignment)


def _lane_rounds(assignment: ChannelAssignment) -> List[list]:
    """Flatten a channel-sharded layout into channel-major lane rounds.

    Round ``r`` concatenates every shard's round ``r`` (``None``-padded to
    ``banks_per_channel`` for exhausted shards): lane ``c * bpc + b`` is
    channel *c*, bank *b*. With one channel this is exactly the shard's
    own round list, which keeps the fast-tier accumulation order — and so
    the floating-point result — bitwise identical to the legacy path.
    """
    empty = [None] * assignment.banks_per_channel
    rounds = []
    for r in range(assignment.num_rounds):
        lanes: list = []
        for shard in assignment.shards:
            lanes.extend(shard.rounds[r] if r < shard.num_rounds
                         else empty)
        rounds.append(lanes)
    return rounds


def _stream_bytes_per_element(matrix_format: str, plan: PartitionPlan,
                              value_bytes: int, matrix) -> float:
    """Average on-bank bytes per streamed matrix element by format."""
    nnz = max(plan.total_nnz, 1)
    if matrix_format == "coo":
        return 4.0 + value_bytes          # two 16-bit tile-local indices
    if matrix_format == "csr":
        # 16-bit column index per element + one 16-bit row pointer per
        # tile row (the four-register variant of §IV-C)
        pointer_bytes = 2.0 * sum(tile.y_length for tile in plan.tiles)
        return 2.0 + value_bytes + pointer_bytes / nnz
    if matrix_format == "bitmap":
        # one presence bit per tile position + the packed values
        area_bits = float(sum(tile.y_length * tile.x_length
                              for tile in plan.tiles))
        return value_bytes + area_bits / 8.0 / nnz
    raise ExecutionError(f"unknown matrix format {matrix_format!r}")


# ----------------------------------------------------------------------
# fast tier: vectorised per-tile numpy over the identical plan
# ----------------------------------------------------------------------
_ACCUM_UFUNC = {"add": np.add, "sub": np.subtract, "min": np.minimum,
                "max": np.maximum, "lor": np.logical_or}
_MULT_FUNC = {"mul": np.multiply, "add": np.add,
              "land": lambda a, b: np.logical_and(a, b).astype(float),
              "second": lambda a, b: b}


def _fast_rounds(matrix, x, rounds: Sequence[list], accumulate, multiply,
                 y0) -> np.ndarray:
    try:
        acc = _ACCUM_UFUNC[accumulate]
        mul = _MULT_FUNC[multiply]
    except KeyError:
        raise ExecutionError(
            f"unsupported semiring ({multiply}, {accumulate})") from None
    y = (np.zeros(matrix.shape[0]) if y0 is None
         else np.asarray(y0, dtype=np.float64).copy())
    for round_tiles in rounds:
        for tile in round_tiles:
            if tile is None or tile.nnz == 0:
                continue
            # bank-local compute: products against the staged x segment
            seg = tile.x_segment(x)
            partial = mul(tile.vals, seg[tile.cols]).astype(float)
            # host-side remote accumulation of the output partial
            acc.at(y, tile.rows + tile.row_range[0], partial)
    if accumulate == "lor":
        y = y.astype(bool).astype(float)
    return y


# ----------------------------------------------------------------------
# functional tier: the instruction-accurate engine, round by round
# ----------------------------------------------------------------------
#: In-bank output tiles are seeded with the accumulate identity; the host
#: then merges only the rows a tile touched ("accumulates only non-zero
#: outputs", Fig. 6) with the matching merge operation. Note ``sub`` tiles
#: hold -(Mx) partials, so the host merge for them is addition.
_MERGE = {"add": (0.0, np.add), "sub": (0.0, np.add),
          "min": (float("inf"), np.minimum),
          "max": (float("-inf"), np.maximum),
          "lor": (0.0, np.maximum)}


def _functional_rounds(matrix, x, rounds: Sequence[list], precision,
                       accumulate, multiply, y0,
                       engine_banks: Optional[int],
                       engine_name: Optional[str] = None) -> np.ndarray:
    y = (np.zeros(matrix.shape[0]) if y0 is None
         else np.asarray(y0, dtype=np.float64).copy())
    try:
        y_init, merge = _MERGE[accumulate]
    except KeyError:
        raise ExecutionError(
            f"unsupported accumulate {accumulate!r}") from None
    for round_tiles in rounds:
        active = [(b, tile) for b, tile in enumerate(round_tiles)
                  if tile is not None and tile.nnz]
        if not active:
            continue
        width = engine_banks or len(active)
        # Run the round in engine-sized waves; semantics are identical
        # because banks never interact within a round.
        waves = [active[i:i + width] for i in range(0, len(active), width)]
        for wave in waves:
            engine = make_engine(num_banks=len(wave), precision=precision,
                                 engine=engine_name)
            tiles = [Tile(t.rows, t.cols, t.vals, t.x_segment(x),
                          t.y_length) for _, t in wave]
            result = run_tile_round(engine, tiles, accumulate=accumulate,
                                    multiply=multiply, y_init=y_init)
            for (bank, tile), partial in zip(wave, result.y_per_bank):
                touched = np.unique(tile.rows)
                merge.at(y, touched + tile.row_range[0], partial[touched])
    if accumulate == "lor":
        y = y.astype(bool).astype(float)
    return y
