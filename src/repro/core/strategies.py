"""Partitioning strategy library and the per-matrix auto-tuner.

SparseP (PAPERS.md) shows that on real PIM hardware the best sparse
partitioning — 1D vs 2D, equal-rows vs equal-nnz vs variable-sized — is
strongly matrix-dependent. This module generalises the paper's fixed
row-cut scheme (:func:`repro.core.partition.partition`) behind a
:class:`PartitionStrategy` registry (:func:`make_strategy`, mirroring
:func:`repro.core.planner.make_planner` / :func:`repro.pim.make_engine`):

* ``"paper"`` — the §V row-cut + Fig. 6 compression scheme, bitwise
  identical to the pre-registry planner and the default.
* ``"nnz-rows"`` — variable-height row blocks balanced by nnz (same block
  count as the paper cut, boundaries placed where the cumulative row nnz
  crosses equal shares), then the ordinary kept-column compression pass.
* ``"2d-grid"`` — fixed row x column tiling whose column-segment cuts run
  on the *global* column axis, decoupled from compression; all-zero
  columns are still compacted inside each tile.
* ``"nnz-2d"`` — 2D equal-nnz: nnz-balanced row blocks and nnz-balanced
  column segments over each block's kept-column axis.
* ``"auto"`` — :func:`tune_strategy` scores every registered strategy
  with an analytic cost model calibrated against :func:`price_trace`,
  confirms the winner against the paper scheme with one exact pricing,
  and memoizes the verdict by matrix digest.

All strategies are array-native in the fast-planner style and emit
ordinary :class:`SubMatrix` / :class:`PartitionPlan` objects, so bank and
channel distribution, the lane/batch engines, trace synthesis and the
three-oracle checkers run unchanged on any of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import (SystemConfig, resolve_channels, resolve_strategy)
from ..errors import ConfigError, MappingError
from ..formats import COOMatrix
from .partition import (PartitionPlan, SubMatrix, _check_plan, partition,
                        tile_capacity)
from .spmv import SpmvExecution
from .trace import TraceParams

#: Bump when the cost model, probe set or tuning protocol changes: the
#: tune cache keys (and therefore every memoized verdict) include it.
TUNER_VERSION = 2


# ----------------------------------------------------------------------
# the strategy registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionStrategy:
    """One partitioning scheme: a named, array-native tile cutter.

    ``cutter`` is ``None`` for the paper strategy, which delegates to
    :func:`repro.core.partition.partition` so the default path stays
    bitwise identical (including its scalar-oracle ``planner`` dispatch).
    """

    name: str
    description: str
    cutter: Optional[Callable] = field(default=None, compare=False)

    def partition(self, matrix: COOMatrix, config: SystemConfig,
                  precision: str = "fp64", compress: bool = True,
                  tile_rows: int = None, tile_cols: int = None,
                  planner: Optional[str] = None,
                  validate: bool = True) -> PartitionPlan:
        """Cut *matrix* into 1 KB-bounded tiles under this strategy.

        The signature matches :func:`repro.core.partition.partition`;
        ``planner`` only affects the paper strategy (the alternatives have
        a single array-native implementation and are differentially
        checked against the functional oracle instead).
        """
        if self.cutter is None:
            return partition(matrix, config, precision=precision,
                             compress=compress, tile_rows=tile_rows,
                             tile_cols=tile_cols, planner=planner,
                             validate=validate)
        capacity = tile_capacity(config, precision)
        tile_rows = capacity if tile_rows is None else tile_rows
        tile_cols = capacity if tile_cols is None else tile_cols
        if tile_rows <= 0 or tile_cols <= 0:
            raise MappingError("tile dimensions must be positive")
        if tile_rows > capacity or tile_cols > capacity:
            raise MappingError(
                f"tiles of {tile_rows}x{tile_cols} exceed the "
                f"one-memory-row constraint ({capacity} elements at "
                f"{precision})")
        tiles = self.cutter(matrix.sorted_rows(), matrix.shape, tile_rows,
                            tile_cols, compress)
        plan = PartitionPlan(shape=matrix.shape, tiles=tiles,
                             tile_rows=tile_rows, tile_cols=tile_cols,
                             compressed=compress)
        if validate:
            _check_plan(plan, matrix)
        return plan


@dataclass(frozen=True)
class AutoStrategy:
    """``"auto"``: tune per matrix, then partition with the winner.

    Tuning through :meth:`partition` uses the default tuning context
    (paper distribution policy, representative-channel model, AB-mode
    pricing) and the in-process memo; callers with a richer context —
    the sweep runner, which knows the job's policy/channels/mode and owns
    an :class:`ArtifactCache` — call :func:`tune_strategy` directly.
    """

    name: str = "auto"
    description: str = "cost-model auto-tuner picking per matrix"

    def partition(self, matrix: COOMatrix, config: SystemConfig,
                  precision: str = "fp64", compress: bool = True,
                  tile_rows: int = None, tile_cols: int = None,
                  planner: Optional[str] = None,
                  validate: bool = True) -> PartitionPlan:
        result = tune_strategy(matrix, config, precision=precision,
                               compress=compress, planner=planner)
        return make_strategy(result.chosen).partition(
            matrix, config, precision=precision, compress=compress,
            tile_rows=tile_rows, tile_cols=tile_cols, planner=planner,
            validate=validate)


_REGISTRY: Dict[str, PartitionStrategy] = {}


def register_strategy(strategy: PartitionStrategy) -> PartitionStrategy:
    """Add a concrete strategy to the registry (idempotent by name)."""
    _REGISTRY[strategy.name] = strategy
    return strategy


def strategy_names() -> Tuple[str, ...]:
    """Registered *concrete* strategies, registration order, paper first."""
    return tuple(_REGISTRY)


def make_strategy(strategy: Optional[str] = None):
    """Resolve a strategy name into its implementation.

    Mirrors :func:`repro.core.planner.make_planner`: explicit arg >
    ``PSYNCPIM_STRATEGY`` > ``"paper"``. ``"auto"`` returns the
    :class:`AutoStrategy` facade; unknown names raise
    :class:`ConfigError` via :func:`repro.config.resolve_strategy`.
    """
    name = resolve_strategy(strategy)
    if name == "auto":
        return AutoStrategy()
    try:
        return _REGISTRY[name]
    except KeyError:  # registered choices and registry out of sync
        raise ConfigError(f"strategy {name!r} has no registered "
                          f"implementation") from None


# ----------------------------------------------------------------------
# shared array-native machinery
# ----------------------------------------------------------------------
def _stable_order(keys: np.ndarray) -> np.ndarray:
    """Stable ascending argsort of integer *keys* (fast-planner trick:
    append each element's position so the non-stable sort is stable)."""
    nnz = keys.size
    if nnz == 0:
        return np.zeros(0, dtype=np.int64)
    if int(keys.max()) < (2 ** 63 - 1 - nnz) // nnz:
        return np.argsort(keys * nnz + np.arange(nnz, dtype=np.int64))
    return np.argsort(keys, kind="stable")


def _nnz_row_bounds(srt: COOMatrix, nrows: int,
                    tile_rows: int) -> np.ndarray:
    """Variable-height row-block boundaries balanced by nnz.

    Produces the same number of blocks as the paper's equal-height cut
    (``ceil(nrows / tile_rows)``) but places each boundary where the
    cumulative row nnz crosses an equal share, then re-splits any block
    that grew taller than ``tile_rows`` (the one-memory-row output
    constraint binds on *height*, not on population).
    """
    row_nnz = np.bincount(srt.rows, minlength=nrows)
    csum = np.cumsum(row_nnz)
    total = int(csum[-1])
    nblocks = max(1, math.ceil(nrows / tile_rows))
    targets = total * np.arange(1, nblocks) / nblocks
    cuts = np.searchsorted(csum, targets, side="left") + 1
    bounds = np.unique(np.concatenate(
        ([0], cuts, [nrows]))).astype(np.int64)
    capped = [0]
    for hi in bounds[1:]:
        lo = capped[-1]
        if hi - lo > tile_rows:
            capped.extend(range(lo + tile_rows, int(hi), tile_rows))
        capped.append(int(hi))
    return np.array(capped, dtype=np.int64)


def _equal_row_bounds(nrows: int, tile_rows: int) -> np.ndarray:
    """The paper's equal-height row-block boundaries as a bounds array."""
    bounds = np.arange(0, nrows, tile_rows, dtype=np.int64)
    return np.append(bounds, nrows)


def _rank_key_segments(key_block: np.ndarray,
                       tile_cols: int) -> np.ndarray:
    """Paper-style segments: kept-column rank // tile_cols, per block."""
    first = np.searchsorted(key_block, key_block, side="left")
    rank = np.arange(key_block.size, dtype=np.int64) - first
    return rank // tile_cols


def _equal_nnz_key_segments(key_block: np.ndarray, key_counts: np.ndarray,
                            tile_cols: int) -> np.ndarray:
    """nnz-balanced column segments over each block's kept columns.

    Keeps the paper's per-block segment count (``ceil(kept /
    tile_cols)``) but places boundaries by cumulative nnz, then re-splits
    any segment wider than ``tile_cols`` columns (a run of light columns
    can absorb more than one memory row's worth of the input vector).
    Returns a per-key value monotone within each block whose change
    points delimit the segments.
    """
    n = key_block.size
    blk_change = np.empty(n, dtype=bool)
    blk_change[0] = True
    blk_change[1:] = key_block[1:] != key_block[:-1]
    blk_first = np.flatnonzero(blk_change)
    blk_hi = np.append(blk_first[1:], n)
    blk_of = np.cumsum(blk_change) - 1
    nkeys = blk_hi - blk_first
    block_tot = np.add.reduceat(key_counts, blk_first)
    nsegs = -(-nkeys // tile_cols)
    cum = np.cumsum(key_counts)
    block_offset = np.concatenate(([0], cum[blk_hi - 1][:-1]))[blk_of]
    before = cum - key_counts - block_offset
    seg_a = np.minimum(before * nsegs[blk_of] // block_tot[blk_of],
                       nsegs[blk_of] - 1)
    run_change = np.empty(n, dtype=bool)
    run_change[0] = True
    run_change[1:] = blk_change[1:] | (seg_a[1:] != seg_a[:-1])
    run_first = np.flatnonzero(run_change)
    rank_in_run = (np.arange(n, dtype=np.int64)
                   - run_first[np.cumsum(run_change) - 1])
    seg_b = rank_in_run // tile_cols
    return seg_a * (int(seg_b.max()) + 1) + seg_b


def _cut_blocks_compressed(srt: COOMatrix, shape, row_bounds: np.ndarray,
                           tile_cols: int,
                           equal_nnz: bool) -> List[SubMatrix]:
    """Cut arbitrary row blocks, compact kept columns, cut the kept axis.

    Generalises ``_partition_fast``'s compressed path to variable-height
    row blocks (*row_bounds*) and pluggable column segmentation (rank- or
    nnz-based). One global ``np.unique`` over (block, column) keys yields
    every block's kept-column set and each element's compacted rank.
    """
    nnz = srt.nnz
    _, ncols = shape
    rows, cols, vals = srt.rows, srt.cols, srt.vals
    block = (np.searchsorted(row_bounds, rows, side="right")
             - 1).astype(np.int64)
    keys, key_of, key_counts = np.unique(block * ncols + cols,
                                         return_inverse=True,
                                         return_counts=True)
    key_block = keys // ncols
    kept_cols = keys % ncols
    key_seg = (_equal_nnz_key_segments(key_block, key_counts, tile_cols)
               if equal_nnz
               else _rank_key_segments(key_block, tile_cols))
    change = np.empty(keys.size, dtype=bool)
    change[0] = True
    change[1:] = ((key_block[1:] != key_block[:-1])
                  | (key_seg[1:] != key_seg[:-1]))
    group_first = np.flatnonzero(change)
    group_of_key = np.cumsum(change) - 1
    key_local = np.arange(keys.size, dtype=np.int64) \
        - group_first[group_of_key]

    order = _stable_order(group_of_key[key_of])
    sorted_group = group_of_key[key_of][order]
    el_first = np.flatnonzero(np.concatenate(
        ([True], sorted_group[1:] != sorted_group[:-1])))
    el_bounds = np.append(el_first, nnz)

    local_rows = (rows - row_bounds[block])[order]
    local_cols = key_local[key_of][order]
    tile_vals = vals[order]

    g_block = key_block[group_first]
    key_hi = np.append(group_first[1:], keys.size)
    row_los = row_bounds[g_block]
    row_his = row_bounds[g_block + 1]

    tiles: List[SubMatrix] = []
    for g in range(group_first.size):
        lo, hi = el_bounds[g], el_bounds[g + 1]
        tiles.append(SubMatrix(
            row_range=(int(row_los[g]), int(row_his[g])),
            global_cols=kept_cols[group_first[g]:key_hi[g]],
            rows=local_rows[lo:hi],
            cols=local_cols[lo:hi],
            vals=tile_vals[lo:hi]))
    return tiles


def _cut_blocks_raw(srt: COOMatrix, shape, row_bounds: np.ndarray,
                    tile_cols: int) -> List[SubMatrix]:
    """Uncompressed cut of arbitrary row blocks: whole column ranges."""
    nnz = srt.nnz
    _, ncols = shape
    rows, cols, vals = srt.rows, srt.cols, srt.vals
    block = (np.searchsorted(row_bounds, rows, side="right")
             - 1).astype(np.int64)
    seg = cols // tile_cols
    nsegs = -(-ncols // tile_cols)
    composite = block * nsegs + seg
    order = _stable_order(composite)
    sc = composite[order]
    first = np.flatnonzero(np.concatenate(([True], sc[1:] != sc[:-1])))
    el_bounds = np.append(first, nnz)
    gk = sc[first]
    g_block = gk // nsegs
    g_seg = gk - g_block * nsegs
    row_los = row_bounds[g_block]
    row_his = row_bounds[g_block + 1]
    col_los = g_seg * tile_cols
    col_his = np.minimum(col_los + tile_cols, ncols)
    local_rows = (rows - row_bounds[block])[order]
    local_cols = (cols - seg * tile_cols)[order]
    tile_vals = vals[order]
    col_base = np.arange(ncols, dtype=np.int64)
    tiles: List[SubMatrix] = []
    for g in range(gk.size):
        lo, hi = el_bounds[g], el_bounds[g + 1]
        tiles.append(SubMatrix(
            row_range=(int(row_los[g]), int(row_his[g])),
            global_cols=col_base[col_los[g]:col_his[g]],
            rows=local_rows[lo:hi],
            cols=local_cols[lo:hi],
            vals=tile_vals[lo:hi]))
    return tiles


# ----------------------------------------------------------------------
# the three non-paper cutters
# ----------------------------------------------------------------------
def _cut_nnz_rows(srt: COOMatrix, shape, tile_rows: int, tile_cols: int,
                  compress: bool) -> List[SubMatrix]:
    """Variable-height row blocks balanced by nnz, paper column cut."""
    if srt.nnz == 0:
        return []
    bounds = _nnz_row_bounds(srt, shape[0], tile_rows)
    if compress:
        return _cut_blocks_compressed(srt, shape, bounds, tile_cols,
                                      equal_nnz=False)
    return _cut_blocks_raw(srt, shape, bounds, tile_cols)


def _cut_2d_grid(srt: COOMatrix, shape, tile_rows: int, tile_cols: int,
                 compress: bool) -> List[SubMatrix]:
    """Fixed row x column grid; column cuts on the *global* axis.

    Unlike the paper scheme, the column-segment boundaries are decoupled
    from the kept-column compression pass: an element's segment depends
    only on its global column, so the grid is stable under fill-in and
    every tile's input segment is a window of the global vector.
    Compression still compacts all-zero columns inside each tile.
    """
    nnz = srt.nnz
    if nnz == 0:
        return []
    nrows, ncols = shape
    if not compress:
        return _cut_blocks_raw(srt, shape,
                               _equal_row_bounds(nrows, tile_rows),
                               tile_cols)
    rows, cols, vals = srt.rows, srt.cols, srt.vals
    block = rows // tile_rows
    seg = cols // tile_cols
    nsegs = -(-ncols // tile_cols)
    tile_id = block * nsegs + seg
    keys, key_of = np.unique(tile_id * ncols + cols, return_inverse=True)
    key_tile = keys // ncols
    kept_cols = keys % ncols
    tile_key_first = np.searchsorted(key_tile, key_tile, side="left")
    key_local = np.arange(keys.size, dtype=np.int64) - tile_key_first

    order = _stable_order(tile_id)
    st = tile_id[order]
    el_first = np.flatnonzero(np.concatenate(([True], st[1:] != st[:-1])))
    el_bounds = np.append(el_first, nnz)
    g_tile = st[el_first]
    key_lo = np.searchsorted(key_tile, g_tile, side="left")
    key_hi = np.searchsorted(key_tile, g_tile, side="right")
    g_block = g_tile // nsegs
    row_los = g_block * tile_rows
    row_his = np.minimum(row_los + tile_rows, nrows)
    local_rows = (rows - block * tile_rows)[order]
    local_cols = key_local[key_of][order]
    tile_vals = vals[order]
    tiles: List[SubMatrix] = []
    for g in range(g_tile.size):
        lo, hi = el_bounds[g], el_bounds[g + 1]
        tiles.append(SubMatrix(
            row_range=(int(row_los[g]), int(row_his[g])),
            global_cols=kept_cols[key_lo[g]:key_hi[g]],
            rows=local_rows[lo:hi],
            cols=local_cols[lo:hi],
            vals=tile_vals[lo:hi]))
    return tiles


def _cut_nnz_2d(srt: COOMatrix, shape, tile_rows: int, tile_cols: int,
                compress: bool) -> List[SubMatrix]:
    """2D equal-nnz: nnz-balanced row blocks and column segments."""
    if srt.nnz == 0:
        return []
    bounds = _nnz_row_bounds(srt, shape[0], tile_rows)
    if compress:
        return _cut_blocks_compressed(srt, shape, bounds, tile_cols,
                                      equal_nnz=True)
    return _cut_blocks_raw(srt, shape, bounds, tile_cols)


register_strategy(PartitionStrategy(
    "paper", "the paper's row-cut + Fig. 6 compression (default)"))
register_strategy(PartitionStrategy(
    "nnz-rows", "variable-height row blocks balanced by nnz",
    _cut_nnz_rows))
register_strategy(PartitionStrategy(
    "2d-grid", "row x column grid with global column cuts", _cut_2d_grid))
register_strategy(PartitionStrategy(
    "nnz-2d", "2D equal-nnz row and column cuts", _cut_nnz_2d))


# ----------------------------------------------------------------------
# the analytic cost model
# ----------------------------------------------------------------------
#: Synthetic probe executions the cost model is calibrated on: per probe,
#: (round lock-step batches, round x lengths, round y lengths). The set
#: spans the regimes that separate strategies — few large rounds, many
#: small rounds, skewed rounds — so the least-squares fit is conditioned
#: on every feature.
_PROBE_ROUNDS = (
    ([256], [128], [128]),
    ([1024, 768], [128, 96], [96, 64]),
    ([4096] * 3, [128] * 3, [128] * 3),
    ([512, 256, 128, 64], [64, 96, 128, 32], [32, 64, 128, 16]),
    ([8192], [128], [128]),
    ([64] * 8, [16] * 8, [16] * 8),
    ([2048, 32], [128, 8], [128, 8]),
    ([128, 128], [128, 64], [64, 128]),
)

#: Right-hand-side widths the SpMM probes are priced at (beyond the
#: plain SpMV width of 1): one within a single fp64 rhs block and one
#: spanning several, so the marginal-rhs feature column is conditioned
#: on both regimes.
_PROBE_RHS = (4, 16)

_CALIBRATION: Dict[str, np.ndarray] = {}
_TUNE_MEMO: Dict[str, "TuneResult"] = {}


def _features(execution: SpmvExecution) -> np.ndarray:
    """The cost-model features of one (sub-)execution.

    Lock-step elements capture the padding cost (each round streams its
    *maximum* tile nnz on every bank); the summed x/y lengths capture the
    per-round input-replication staging and output-merge traffic; the
    round count captures the fixed per-round overhead (mode switches,
    program load, row re-opens); the constant absorbs trace-level
    startup. The final term is the *marginal* right-hand-side traffic of
    an SpMM execution — every column past the first re-gathers the
    lock-step stream and re-stages/merges the x/y vectors while the
    program load and matrix residency are amortised — and is zero for
    plain SpMV records, keeping their estimates bitwise at width 1.
    """
    extra_rhs = getattr(execution, "num_rhs", 1) - 1
    return np.array([
        float(execution.lockstep_elements),
        float(sum(execution.round_x_lengths)),
        float(sum(execution.round_y_lengths)),
        float(execution.num_rounds),
        1.0,
        float(extra_rhs) * float(execution.lockstep_elements
                                 + sum(execution.round_x_lengths)
                                 + sum(execution.round_y_lengths)),
    ])


def _probe_execution(batches, xs, ys, precision: str) -> SpmvExecution:
    return SpmvExecution(
        precision=precision, num_banks=16, round_batches=list(batches),
        per_bank_elements=np.full(16, max(batches), dtype=np.int64),
        input_bytes=0, output_bytes=0, matrix_bytes=0, banks_used=16,
        imbalance=1.0, policy="paper", compressed=True,
        round_x_lengths=list(xs), round_y_lengths=list(ys))


def _calibration(config: SystemConfig, precision: str,
                 params: TraceParams) -> np.ndarray:
    """Least-squares weights fitting modelled cycles on the probe set.

    The probes run through the *real* pipeline — ``spmv_ab_trace`` (plus
    ``spmm_ab_trace`` at the :data:`_PROBE_RHS` widths, conditioning the
    marginal-rhs column) then ``price_trace`` — so the weights inherit
    the trace synthesis and JEDEC timing of the platform being tuned
    for; they are cached per (config, precision, trace params) for the
    process lifetime.
    """
    from ..sweep.cache import stable_digest
    key = stable_digest(TUNER_VERSION, config, precision, params)
    weights = _CALIBRATION.get(key)
    if weights is not None:
        return weights
    from .spmm import as_spmm_execution
    from .timing import price_trace
    from .trace import spmm_ab_trace, spmv_ab_trace
    feats, cycles = [], []
    for batches, xs, ys in _PROBE_ROUNDS:
        execution = _probe_execution(batches, xs, ys, precision)
        trace = spmv_ab_trace(execution, config, params)
        report = price_trace(trace, config, precision=precision)
        feats.append(_features(execution))
        cycles.append(float(report.cycles))
        for rhs in _PROBE_RHS:
            widened = as_spmm_execution(execution, rhs)
            trace = spmm_ab_trace(widened, config, params)
            report = price_trace(trace, config, precision=precision)
            feats.append(_features(widened))
            cycles.append(float(report.cycles))
    weights, *_ = np.linalg.lstsq(np.array(feats), np.array(cycles),
                                  rcond=None)
    _CALIBRATION[key] = weights
    return weights


def estimate_cycles(execution: SpmvExecution, config: SystemConfig,
                    params: Optional[TraceParams] = None) -> float:
    """Analytic modelled-cycle estimate of one SpMV execution.

    Channel-sharded executions score as the maximum over their per-channel
    sub-executions (channels run on independent command buses, so total
    time is the max, not the sum — matching the scheduler).
    """
    params = params if params is not None else TraceParams()
    weights = _calibration(config, execution.precision, params)
    if execution.channel_execs:
        return max((float(_features(sub) @ weights)
                    for sub in execution.channel_execs
                    if sub.total_elements), default=0.0)
    return float(_features(execution) @ weights)


# ----------------------------------------------------------------------
# the auto-tuner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TuneResult:
    """Verdict of one per-matrix tuning pass.

    ``scores`` holds the cost-model estimate for every registered
    strategy; ``cycles`` holds exactly priced cycles for the candidates
    the confirmation step priced (empty when the model already picked the
    paper scheme).
    """

    chosen: str
    scores: Dict[str, float]
    cycles: Dict[str, float]


def tune_strategy(matrix: COOMatrix, config: SystemConfig,
                  precision: str = "fp64", compress: bool = True,
                  policy: str = "paper", channels: Optional[int] = None,
                  mode: str = "ab",
                  params: Optional[TraceParams] = None,
                  planner: Optional[str] = None,
                  cache=None) -> TuneResult:
    """Pick the cheapest partitioning strategy for *matrix*.

    Every registered strategy is planned, distributed under the job's
    *policy*/*channels* layout and scored with the analytic cost model.
    The model's best *non-paper* candidate is then confirmed against the
    paper scheme with two exact pricings (trace synthesis + FCFS
    scheduling) and the cheaper one wins — so ``"auto"`` can never lose
    to ``"paper"`` on modelled cycles, by construction, while paying a
    bounded two extra pricings per matrix.

    *cache* is an optional :class:`repro.sweep.ArtifactCache`; without it
    verdicts memoize in-process. Both key on the matrix digest plus the
    full tuning context, so results are deterministic and cache-stable.
    """
    from ..sweep.cache import matrix_digest, stable_digest
    channels = resolve_channels(channels)
    params = params if params is not None else TraceParams()
    digest = stable_digest("strategy-tune", TUNER_VERSION,
                           matrix_digest(matrix), config, precision,
                           compress, policy, channels, mode, params,
                           tuple(strategy_names()))

    def compute() -> TuneResult:
        from .spmv import plan_spmv
        from .timing import time_spmv
        names = strategy_names()
        executions: Dict[str, SpmvExecution] = {}
        scores: Dict[str, float] = {}
        for name in names:
            plan = make_strategy(name).partition(
                matrix, config, precision=precision, compress=compress,
                planner=planner, validate=False)
            _, _, execution = plan_spmv(
                matrix, config, precision=precision, compress=compress,
                policy=policy, plan=plan, validate=False,
                channels=channels)
            executions[name] = execution
            scores[name] = estimate_cycles(execution, config, params)
        others = [n for n in names if n != "paper"]
        cycles: Dict[str, float] = {}
        chosen = "paper"
        if others:
            best = min(others, key=lambda n: (scores[n], names.index(n)))
            for name in ("paper", best):
                cycles[name] = float(time_spmv(executions[name], config,
                                               mode=mode,
                                               params=params).cycles)
            if cycles[best] < cycles["paper"]:
                chosen = best
        return TuneResult(chosen=chosen, scores=scores, cycles=cycles)

    if cache is not None:
        return cache.get_or_compute("tune", digest, compute)
    if digest not in _TUNE_MEMO:
        _TUNE_MEMO[digest] = compute()
    return _TUNE_MEMO[digest]


__all__ = ["PartitionStrategy", "AutoStrategy", "TuneResult",
           "make_strategy", "register_strategy", "strategy_names",
           "tune_strategy", "estimate_cycles", "TUNER_VERSION"]
