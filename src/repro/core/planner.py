"""Planner selection: the vectorized planning front-end vs its oracle.

The host-side planning tier — cutting a matrix into 1 KB tiles
(:func:`repro.core.partition.partition`), arranging tiles into lock-step
rounds (:func:`repro.core.distribution.distribute`) and computing SpTRSV
dependency levels (:func:`repro.core.sptrsv.level_schedule`) — ships two
implementations with bitwise-identical outputs, mirroring the
``AllBankEngine``/``LaneEngine`` split of the functional tier:

* ``"scalar"`` — the original per-segment / per-tile / per-row Python
  loops, kept as the readable reference oracle;
* ``"fast"`` — single-pass array pipelines (global lexsort + unique /
  searchsorted grouping, frontier sweeps, argsort bookkeeping), the
  default.

Selection follows the engine convention: the ``planner=`` argument of the
planning entry points, or the ``PSYNCPIM_PLANNER`` environment variable
(:func:`repro.config.resolve_planner`). :func:`make_planner` pins a choice
into a small façade so callers can hold one resolved planner across many
calls.

This module also hosts the array helpers the fast paths share; it imports
none of the planning modules at import time, so they can be loaded in any
order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import resolve_planner


# ----------------------------------------------------------------------
# shared array helpers for the fast paths
# ----------------------------------------------------------------------
def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[k], ends[k])`` index ranges into one array.

    The vectorized equivalent of ``np.concatenate([np.arange(s, e) ...])``
    used to gather multi-slice groups (per-column element runs, per-block
    key runs) without a Python loop.
    """
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = starts - np.concatenate(([0], np.cumsum(lens)[:-1]))
    return np.repeat(offsets, lens) + np.arange(total, dtype=np.int64)


def stable_desc_order(weights: np.ndarray) -> np.ndarray:
    """Indices sorting *weights* descending, ties in original order.

    Matches ``sorted(range(n), key=lambda i: -weights[i])`` exactly (both
    are stable), so the fast distribution paths preserve the scalar
    oracle's tie-break order.
    """
    return np.argsort(-np.asarray(weights, dtype=np.int64), kind="stable")


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Planner:
    """One resolved planning front-end bound to its implementation name.

    A thin façade over the module-level planning functions with the
    ``planner=`` choice pinned; produced by :func:`make_planner`.
    """

    name: str

    def partition(self, matrix, config, **kwargs):
        from .partition import partition
        from .. import obs
        with obs.span("plan.partition", cat="planner", impl=self.name):
            return partition(matrix, config, planner=self.name, **kwargs)

    def distribute(self, plan, num_banks, **kwargs):
        from .distribution import distribute
        from .. import obs
        with obs.span("plan.distribute", cat="planner", impl=self.name):
            return distribute(plan, num_banks, planner=self.name, **kwargs)

    def level_schedule(self, tri, **kwargs):
        from .sptrsv import level_schedule
        from .. import obs
        with obs.span("plan.level_schedule", cat="planner",
                      impl=self.name):
            return level_schedule(tri, planner=self.name, **kwargs)

    def reorder_by_levels(self, tri, **kwargs):
        from .sptrsv import reorder_by_levels
        from .. import obs
        with obs.span("plan.reorder_by_levels", cat="planner",
                      impl=self.name):
            return reorder_by_levels(tri, planner=self.name, **kwargs)

    def plan_spmv(self, matrix, config, **kwargs):
        from .spmv import plan_spmv
        from .. import obs
        with obs.span("plan.spmv", cat="planner", impl=self.name):
            return plan_spmv(matrix, config, planner=self.name, **kwargs)


def make_planner(planner: str = None) -> Planner:
    """Build the selected planning front-end (fast by default).

    *planner* overrides the ``PSYNCPIM_PLANNER`` environment variable;
    both planners expose the same interface and produce bitwise-identical
    plans, rounds and level schedules.
    """
    return Planner(resolve_planner(planner))


__all__ = ["Planner", "concat_ranges", "make_planner", "stable_desc_order"]
