"""A third, independently structured interpreter of the pSyncPIM ISA.

:class:`ReferenceEngine` re-states the semantics of Tables IV-VI as a
flat, dictionary-driven interpreter over plain numpy arrays. It is the
fuzzer's semantic oracle: deliberately organised nothing like
:mod:`repro.pim.unit` (no ProcessingUnit / RegisterFile / BankMemory
class hierarchy, no shared ALU module), so that a bug in the production
engines' shared structure cannot hide by also appearing here. Scalar
engine, lane engine and this reference must agree bitwise on every
register, queue, memory region and per-bank exit state.

Numerics follow DESIGN.md: all arithmetic in float64; numpy pairwise
summation for additive reductions; python ``min``/``max`` for scalar
reduction seeds. These choices are part of the specified semantics, so
the reference reproduces them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import ProcessingUnitConfig, element_size
from ..errors import CapacityError, ExecutionError
from ..isa import BInstruction, CInstruction, Opcode, Operand, Program
from ..pim.beat import Beat

_PAD = -1              # padding index of COO streams (paper §V)
_INDEX_BYTES = 2       # 16-bit row/col sub-queue elements


def needs_bank(ins: BInstruction) -> bool:
    """Table V/VI: does this instruction consume a memory transaction?"""
    op = ins.opcode
    if op in (Opcode.INDMOV, Opcode.SPFW, Opcode.GTHSCT, Opcode.SPVDV):
        return True
    if op in (Opcode.SSPV, Opcode.REDUCE, Opcode.SPVSPV):
        return False
    if op in (Opcode.DMOV, Opcode.SPMOV):
        return Operand.BANK in (ins.dst, ins.src0)
    return ins.src1 is Operand.BANK


def _binary(op, a, b):
    """Table VI binary operators, float64 semantics."""
    name = op.name
    if name == "ADD":
        return a + b
    if name == "SUB":
        return a - b
    if name == "MUL":
        return a * b
    if name == "MIN":
        return np.minimum(a, b)
    if name == "MAX":
        return np.maximum(a, b)
    if name == "LAND":
        return np.logical_and(a, b).astype(float)
    if name == "LOR":
        return np.logical_or(a, b).astype(float)
    if name == "FIRST":
        return a * np.ones_like(b) if hasattr(b, "shape") else a
    if name == "SECOND":
        return b
    raise ExecutionError(f"unsupported binary op {op}")


def _fold(op, values: np.ndarray, seed: float) -> float:
    """The Reduce instruction's horizontal fold."""
    if not values.size:
        return seed
    name = op.name
    if name == "ADD":
        return seed + float(np.sum(values))
    if name == "MUL":
        return seed * float(np.prod(values))
    if name == "MIN":
        return min(seed, float(np.min(values)))
    if name == "MAX":
        return max(seed, float(np.max(values)))
    if name == "LOR":
        return float(bool(seed) or bool(np.any(values)))
    if name == "LAND":
        return float(bool(seed) and bool(np.all(values)))
    raise ExecutionError(f"{name} is not reducible")


@dataclass
class _Bank:
    """Complete architectural state of one bank, as plain containers."""

    srf: float = 0.0
    drf: List[np.ndarray] = field(default_factory=list)
    queues: List[List[Tuple[int, int, float]]] = field(default_factory=list)
    dense: Dict[str, np.ndarray] = field(default_factory=dict)
    coo: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict)
    cursors: Dict[str, int] = field(default_factory=dict)
    pc: int = 0
    exited: bool = False
    exhausted_mask: int = 0
    load_targets_mask: int = 0
    loop_counters: Dict[int, int] = field(default_factory=dict)


class ReferenceEngine:
    """Flat interpreter over per-bank state dictionaries."""

    def __init__(self, num_banks: int,
                 config: ProcessingUnitConfig = ProcessingUnitConfig(),
                 precision: str = "fp64") -> None:
        if num_banks <= 0:
            raise ExecutionError("need at least one bank")
        value_bytes = element_size(precision)
        self.lanes = config.datapath_bytes // value_bytes
        self.queue_capacity = min(config.subqueue_bytes // value_bytes,
                                  config.subqueue_bytes // _INDEX_BYTES)
        self.group_size = min(self.lanes, self.queue_capacity)
        self.num_queues = config.num_sparse_queues
        self.num_dense = config.num_dense_registers
        self.instruction_slots = config.instruction_slots
        self.banks = [self._fresh_bank() for _ in range(num_banks)]
        self.program: Optional[Program] = None
        self._classified: Tuple[Tuple[bool, bool], ...] = ()

    def _fresh_bank(self) -> _Bank:
        bank = _Bank()
        bank.drf = [np.zeros(self.lanes) for _ in range(self.num_dense)]
        bank.queues = [[] for _ in range(self.num_queues)]
        return bank

    # ------------------------------------------------------------------
    # host interface
    # ------------------------------------------------------------------
    def write_dense(self, name: str, per_bank) -> None:
        for bank, data in zip(self.banks, per_bank):
            bank.dense[name] = np.array(data, dtype=np.float64)

    def write_triples(self, name: str, per_bank) -> None:
        for bank, (rows, cols, vals) in zip(self.banks, per_bank):
            bank.coo[name] = (np.array(rows, dtype=np.int64),
                              np.array(cols, dtype=np.int64),
                              np.array(vals, dtype=np.float64))

    def load_program(self, program: Program) -> None:
        if len(program) > self.instruction_slots:
            raise ExecutionError("program exceeds the control register")
        self.program = program
        self._classified = tuple(
            (isinstance(ins, CInstruction),
             False if isinstance(ins, CInstruction) else needs_bank(ins))
            for ins in program)
        for bank in self.banks:
            bank.pc = 0
            bank.exited = False
            bank.exhausted_mask = 0
            bank.load_targets_mask = 0
            bank.loop_counters = {}
            bank.srf = 0.0
            bank.drf = [np.zeros(self.lanes) for _ in range(self.num_dense)]
            bank.queues = [[] for _ in range(self.num_queues)]
            bank.cursors = {}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def all_exited(self) -> bool:
        return all(bank.exited for bank in self.banks)

    def run(self, beats) -> int:
        consumed = 0
        for beat in beats:
            if self.all_exited:
                break
            for bank in self.banks:
                self._consume(bank, beat)
            consumed += 1
        for bank in self.banks:
            self._flush(bank)
        return consumed

    def _consume(self, bank: _Bank, beat: Beat) -> None:
        program = self.program
        if program is None:
            raise ExecutionError("no program loaded")
        if bank.exited:
            return
        budget = 4 * len(program) + 8
        while budget:
            budget -= 1
            if bank.pc >= len(program):
                bank.exited = True
                return
            is_control, wants_beat = self._classified[bank.pc]
            ins = program[bank.pc]
            if is_control:
                self._control(bank, ins)
                if bank.exited:
                    return
                continue
            self._data(bank, ins, beat if wants_beat else None)
            bank.pc += 1
            if wants_beat:
                return
        raise ExecutionError(
            "program made no bank access within its step budget")

    def _flush(self, bank: _Bank) -> None:
        """Retire trailing control / register-only instructions."""
        program = self.program
        if program is None or bank.exited:
            return
        budget = 4 * len(program) + 8
        while budget and not bank.exited:
            budget -= 1
            if bank.pc >= len(program):
                bank.exited = True
                return
            is_control, wants_beat = self._classified[bank.pc]
            if is_control:
                self._control(bank, program[bank.pc])
                continue
            if wants_beat:
                return
            self._data(bank, program[bank.pc], None)
            bank.pc += 1

    # ------------------------------------------------------------------
    # control semantics (Table IV)
    # ------------------------------------------------------------------
    def _control(self, bank: _Bank, ins: CInstruction) -> None:
        op = ins.opcode
        if op is Opcode.NOP:
            bank.pc += 1
        elif op is Opcode.EXIT:
            bank.exited = True
        elif op is Opcode.CEXIT:
            watched = bank.load_targets_mask & ins.imm1
            if watched:
                done = (bank.exhausted_mask & watched) == watched
            else:
                done = bank.exhausted_mask != 0
            empty = all(not bank.queues[i]
                        for i in range(self.num_queues)
                        if ins.imm1 & (1 << i))
            if done and empty:
                bank.exited = True
            else:
                bank.pc += 1
        elif op is Opcode.JUMP:
            taken = bank.loop_counters.get(ins.order, 0) + 1
            if taken < ins.imm1:
                bank.loop_counters[ins.order] = taken
                bank.pc = ins.imm0
            else:
                bank.loop_counters[ins.order] = 0
                bank.pc += 1
        else:
            raise ExecutionError(f"unhandled control {op}")

    # ------------------------------------------------------------------
    # data semantics (Tables V-VI)
    # ------------------------------------------------------------------
    def _data(self, bank: _Bank, ins: BInstruction,
              beat: Optional[Beat]) -> None:
        op = ins.opcode
        if op is Opcode.DMOV:
            self._dmov(bank, ins, beat)
        elif op is Opcode.INDMOV:
            self._indmov(bank, ins, beat)
        elif op is Opcode.SPMOV:
            self._spmov(bank, ins, beat)
        elif op is Opcode.SPFW:
            self._spfw(bank, ins, beat)
        elif op is Opcode.GTHSCT:
            self._gthsct(bank, ins, beat)
        elif op is Opcode.SDV:
            self._sdv(bank, ins, beat)
        elif op is Opcode.SSPV:
            self._sspv(bank, ins)
        elif op is Opcode.REDUCE:
            self._reduce(bank, ins)
        elif op is Opcode.DVDV:
            self._dvdv(bank, ins, beat)
        elif op is Opcode.SPVDV:
            self._spvdv(bank, ins, beat)
        elif op is Opcode.SPVSPV:
            self._spvspv(bank, ins)
        else:
            raise ExecutionError(f"unhandled opcode {op}")

    # -- memory helpers --------------------------------------------------
    @staticmethod
    def _read(data: np.ndarray, start: int, count: int) -> np.ndarray:
        """Dense read; beyond-the-end lanes read as zero."""
        out = np.zeros(count)
        end = min(start + count, data.size)
        if start < end:
            out[:end - start] = data[start:end]
        return out

    @staticmethod
    def _write(data: np.ndarray, start: int, values: np.ndarray) -> None:
        """Dense write; beyond-the-end lanes are dropped."""
        end = min(start + values.size, data.size)
        if start < end:
            data[start:end] = values[:end - start]

    def _push(self, bank: _Bank, qi: int, row: int, col: int,
              value: float) -> bool:
        queue = bank.queues[qi]
        if len(queue) >= self.queue_capacity:
            return False
        queue.append((int(row), int(col), float(value)))
        return True

    # -- handlers --------------------------------------------------------
    def _dmov(self, bank: _Bank, ins: BInstruction,
              beat: Optional[Beat]) -> None:
        if ins.dst.is_dense_register and ins.src0 is Operand.BANK:
            data = bank.dense[beat.region]
            window = self._read(data, beat.index * self.lanes, self.lanes)
            bank.drf[ins.dst.dense_index] = window
        elif ins.dst is Operand.BANK and ins.src0.is_dense_register:
            self._write(bank.dense[beat.region], beat.index * self.lanes,
                        bank.drf[ins.src0.dense_index])
        elif ins.dst is Operand.SRF and ins.src0 is Operand.BANK:
            data = bank.dense[beat.region]
            bank.srf = (float(data[beat.index])
                        if 0 <= beat.index < data.size else 0.0)
        elif ins.dst is Operand.BANK and ins.src0 is Operand.SRF:
            self._write(bank.dense[beat.region], beat.index,
                        np.array([bank.srf]))
        elif ins.dst.is_dense_register and ins.src0.is_dense_register:
            bank.drf[ins.dst.dense_index] = (
                bank.drf[ins.src0.dense_index].copy())
        else:
            raise ExecutionError("illegal DMOV combination")

    def _indmov(self, bank: _Bank, ins: BInstruction,
                beat: Optional[Beat]) -> None:
        queue = bank.queues[ins.src1.queue_index]
        if not queue:
            return
        _, col, _ = queue[0]
        if col == _PAD:
            return
        data = bank.dense[beat.region]
        bank.srf = float(data[col]) if 0 <= col < data.size else 0.0

    def _spmov(self, bank: _Bank, ins: BInstruction,
               beat: Optional[Beat]) -> None:
        gs = self.group_size
        if ins.dst.is_sparse_queue and ins.src0 is Operand.BANK:
            qi = ins.dst.queue_index
            bit = 1 << qi
            bank.load_targets_mask |= bit
            if self.queue_capacity - len(bank.queues[qi]) < gs:
                return
            rows, cols, vals = bank.coo[beat.region]
            cursor = bank.cursors.get(beat.region, 0)
            if cursor % gs:
                raise ExecutionError("queue stream cursor misaligned")
            lo, hi = cursor, min(cursor + gs, rows.size)
            got = max(hi - lo, 0)
            bank.cursors[beat.region] = cursor + gs
            if got < gs:
                bank.exhausted_mask |= bit
            if cursor + got >= rows.size:
                bank.exhausted_mask |= bit
            for k in range(lo, hi):
                if rows[k] == _PAD:
                    bank.exhausted_mask |= bit
                    continue
                self._push(bank, qi, int(rows[k]), int(cols[k]),
                           float(vals[k]))
        elif ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            items = self._pop_up_to(bank, ins.src0.queue_index, gs)
            if items:
                self._store_triples(bank, beat.region, items)
        else:
            raise ExecutionError("SpMOV moves between a SpVQ and the bank")

    def _pop_up_to(self, bank: _Bank, qi: int, count: int):
        queue = bank.queues[qi]
        taken = queue[:count]
        del queue[:count]
        return taken

    def _store_triples(self, bank: _Bank, region: str, items) -> None:
        rows, cols, vals = bank.coo[region]
        cursor = bank.cursors.get(region, 0)
        hi = cursor + len(items)
        if hi > rows.size:
            raise CapacityError(
                f"triple region {region!r} overflow: writing "
                f"[{cursor}, {hi}) into {rows.size} slots")
        for k, (r, c, v) in enumerate(items):
            rows[cursor + k] = r
            cols[cursor + k] = c
            vals[cursor + k] = v
        bank.cursors[region] = hi

    def _spfw(self, bank: _Bank, ins: BInstruction,
              beat: Optional[Beat]) -> None:
        items = self._pop_up_to(bank, ins.src0.queue_index,
                                self.queue_capacity)
        if items:
            self._store_triples(bank, beat.region, items)

    def _gthsct(self, bank: _Bank, ins: BInstruction,
                beat: Optional[Beat]) -> None:
        gs = self.group_size
        ident = ins.idnt.value_as_float
        if ins.dst.is_sparse_queue and ins.src0 is Operand.BANK:
            data = bank.dense[beat.region]
            base = beat.index * gs
            window = self._read(data, base, gs)
            qi = ins.dst.queue_index
            bank.load_targets_mask |= 1 << qi
            for lane in range(gs):
                if window[lane] != ident:
                    self._push(bank, qi, base + lane, base + lane,
                               float(window[lane]))
            if base + gs >= data.size:
                bank.exhausted_mask |= 1 << qi
        elif ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            data = bank.dense[beat.region]
            for row, _, value in self._pop_up_to(
                    bank, ins.src0.queue_index, gs):
                if 0 <= row < data.size:
                    data[row] = value
        else:
            raise ExecutionError("GthSct transforms BANK <-> SpVQ")

    def _sdv(self, bank: _Bank, ins: BInstruction,
             beat: Optional[Beat]) -> None:
        if ins.src1 is Operand.BANK:
            operand = self._read(bank.dense[beat.region],
                                 beat.index * self.lanes, self.lanes)
        else:
            operand = bank.drf[ins.src1.dense_index]
        result = _binary(ins.binary, bank.srf, operand)
        out = np.zeros(self.lanes)
        arr = np.asarray(result, dtype=float)
        out[:arr.size] = arr
        bank.drf[ins.dst.dense_index] = out

    def _sspv(self, bank: _Bank, ins: BInstruction) -> None:
        src = bank.queues[ins.src1.queue_index]
        if not src:
            return
        row, col, value = src.pop(0)
        result = float(_binary(ins.binary, bank.srf, value))
        self._push(bank, ins.dst.queue_index, row, col, result)

    def _reduce(self, bank: _Bank, ins: BInstruction) -> None:
        if ins.src0.is_dense_register:
            values = bank.drf[ins.src0.dense_index]
        else:
            items = self._pop_up_to(bank, ins.src0.queue_index,
                                    self.group_size)
            values = np.array([v for _, _, v in items])
        bank.srf = _fold(ins.binary, values, bank.srf)

    def _dvdv(self, bank: _Bank, ins: BInstruction,
              beat: Optional[Beat]) -> None:
        left = bank.drf[ins.src0.dense_index]
        if ins.src1 is Operand.BANK:
            right = self._read(bank.dense[beat.region],
                               beat.index * self.lanes, self.lanes)
        else:
            right = bank.drf[ins.src1.dense_index]
        result = np.asarray(_binary(ins.binary, left, right), dtype=float)
        out = np.zeros(self.lanes)
        out[:result.size] = result
        bank.drf[ins.dst.dense_index] = out

    def _spvdv(self, bank: _Bank, ins: BInstruction,
               beat: Optional[Beat]) -> None:
        if ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            src = bank.queues[ins.src0.queue_index]
            if not src:
                return
            row, _, value = src.pop(0)
            data = bank.dense[beat.region]
            if 0 <= row < data.size:
                data[row] = float(_binary(ins.binary, data[row], value))
        elif ins.dst.is_sparse_queue and ins.src0.is_sparse_queue \
                and ins.src1 is Operand.BANK:
            src = bank.queues[ins.src0.queue_index]
            if not src:
                return
            row, col, value = src.pop(0)
            data = bank.dense[beat.region]
            gathered = (float(data[row])
                        if 0 <= row < data.size else 0.0)
            self._push(bank, ins.dst.queue_index, row, col,
                       float(_binary(ins.binary, value, gathered)))
        else:
            raise ExecutionError("illegal SpVDV form")

    def _spvspv(self, bank: _Bank, ins: BInstruction) -> None:
        qa = bank.queues[ins.src0.queue_index]
        qb = bank.queues[ins.src1.queue_index]
        out_qi = ins.dst.queue_index
        union = bool(ins.set_mode)
        ident = ins.idnt.value_as_float
        if not qa and not qb:
            return
        if not qa or not qb:
            a_empty = not qa
            empty_bit = 1 << (ins.src0.queue_index if a_empty
                              else ins.src1.queue_index)
            if not bank.exhausted_mask & empty_bit:
                return
            if union:
                row, col, value = (qb if a_empty else qa).pop(0)
                left, right = ((ident, value) if a_empty
                               else (value, ident))
                self._push(bank, out_qi, row, col,
                           float(_binary(ins.binary, left, right)))
            else:
                (qb if a_empty else qa).pop(0)
            return
        ra, ca, va = qa[0]
        rb, cb, vb = qb[0]
        if ra == rb:
            qa.pop(0)
            qb.pop(0)
            self._push(bank, out_qi, ra, ca,
                       float(_binary(ins.binary, va, vb)))
        elif ra < rb:
            qa.pop(0)
            if union:
                self._push(bank, out_qi, ra, ca,
                           float(_binary(ins.binary, va, ident)))
        else:
            qb.pop(0)
            if union:
                self._push(bank, out_qi, rb, cb,
                           float(_binary(ins.binary, ident, vb)))
