"""Golden-trace regression: exact snapshots of canonical workloads.

Each workload builds a small, fully deterministic kernel schedule and
records the complete command trace plus the scheduler's cycle counts and
energy counters. The snapshots live under ``tests/golden/`` and are
compared *exactly* in CI: any drift in trace synthesis, scheduling or
energy pricing fails the build until the change is either fixed or
consciously re-baselined with ``psyncpim check --update-golden``.

JSON floats round-trip exactly through ``repr`` (Python writes the
shortest representation that parses back to the same double), so exact
equality on the loaded record is bitwise equality on the numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig, default_system
from ..core import (dense_stream_trace, price_trace, run_spmm, run_spmv,
                    run_sptrsv, spmm_ab_trace, spmm_pb_trace,
                    spmv_ab_trace, spmv_pb_trace, sptrsv_ab_trace)
from ..core.timing import PerfReport
from ..dram import TraceEntry, as_run
from ..formats.generators import uniform_random, unit_lower_from

#: Bump when the record layout itself changes (forces a re-baseline).
#: v2 added the "attrib" section (cycle-attribution device totals).
RECORD_VERSION = 2


def default_golden_dir() -> Path:
    """``tests/golden`` of the source checkout this module lives in."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


# ----------------------------------------------------------------------
# canonical workloads
# ----------------------------------------------------------------------
def _spmv_parts(config: SystemConfig):
    matrix = uniform_random(48, 48, 0.08, seed=11)
    x = np.random.default_rng(12).random(48)
    execution = run_spmv(matrix, x, config, engine_banks=4).execution
    return matrix, execution


def _spmv(mode: str) -> Tuple[List[TraceEntry], PerfReport]:
    config = default_system()
    matrix, execution = _spmv_parts(config)
    trace = (spmv_ab_trace if mode == "ab"
             else spmv_pb_trace)(execution, config)
    report = price_trace(trace, config, with_energy=True,
                         alu_operations=2 * matrix.nnz,
                         precision=execution.precision)
    return trace, report


def _spmm_parts(config: SystemConfig):
    # The SpMV golden matrix with a 4-column dense rhs block: the plan
    # (and at k=1 the whole trace) is shared with the spmv workloads.
    matrix = uniform_random(48, 48, 0.08, seed=11)
    x = np.random.default_rng(12).random((48, 4))
    execution = run_spmm(matrix, x, config, engine_banks=4).execution
    return matrix, execution


def _spmm(mode: str) -> Tuple[List[TraceEntry], PerfReport]:
    config = default_system()
    matrix, execution = _spmm_parts(config)
    trace = (spmm_ab_trace if mode == "ab"
             else spmm_pb_trace)(execution, config)
    report = price_trace(trace, config, with_energy=True,
                         alu_operations=2 * matrix.nnz * execution.num_rhs,
                         precision=execution.precision)
    return trace, report


def _sptrsv() -> Tuple[List[TraceEntry], PerfReport]:
    config = default_system()
    tri = unit_lower_from(uniform_random(40, 40, 0.06, seed=7), seed=8)
    b = np.random.default_rng(9).random(40)
    execution = run_sptrsv(tri, b, config, engine_banks=4).execution
    trace = sptrsv_ab_trace(execution, config)
    report = price_trace(trace, config, with_energy=True,
                         alu_operations=2 * execution.total_elements,
                         precision=execution.precision)
    return trace, report


def _dense_stream() -> Tuple[List[TraceEntry], PerfReport]:
    config = default_system()
    trace = dense_stream_trace(elements_per_bank=256, reads_per_group=2,
                               writes_per_group=1, precision="fp32")
    report = price_trace(trace, config, with_energy=True,
                         alu_operations=256 * 16, precision="fp32")
    return trace, report


WORKLOADS: Dict[str, Callable[[], Tuple[List[TraceEntry], PerfReport]]] = {
    "spmv_ab": lambda: _spmv("ab"),
    "spmv_pb": lambda: _spmv("pb"),
    "spmm_ab": lambda: _spmm("ab"),
    "spmm_pb": lambda: _spmm("pb"),
    "sptrsv_ab": _sptrsv,
    "dense_stream_ab": _dense_stream,
}


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def _trace_rows(trace: List[TraceEntry]) -> List[list]:
    rows = []
    for entry in trace:
        command, count = as_run(entry)
        rows.append([command.kind.name, command.channel, command.bank,
                     command.row, command.col, command.min_gap,
                     command.tag, count])
    return rows


def build_record(name: str) -> dict:
    """Regenerate the snapshot for one workload (exact, deterministic)."""
    from ..obs.attrib import attribute_trace
    trace, report = WORKLOADS[name]()
    energy = report.energy.as_dict() if report.energy else {}
    attribution, _ = attribute_trace(trace, default_system())
    return {
        "version": RECORD_VERSION,
        "workload": name,
        "trace": _trace_rows(trace),
        "schedule": {
            "total_cycles": report.cycles,
            "commands": report.commands,
            "row_commands": report.row_commands,
            "column_commands": report.column_commands,
            "counts": {kind.name: n for kind, n in
                       sorted(report.counts.items(),
                              key=lambda kv: kv[0].name) if n},
            "tag_cycles": dict(sorted(report.tag_cycles.items())),
        },
        # Device-wide category totals of the cycle-attribution engine
        # (every lane sums bitwise to total_cycles; pinning the totals
        # here catches silent category drift, not just cycle drift).
        "attrib": {
            "total_cycles": attribution.total_cycles,
            "lanes": attribution.num_lanes,
            "device_cycles": dict(sorted(
                attribution.device_cycles().items())),
        },
        "energy_pj": {k: v for k, v in sorted(energy.items())},
    }


def golden_path(directory: Path, name: str) -> Path:
    return Path(directory) / f"{name}.json"


def _diff_records(name: str, expected: dict, actual: dict) -> List[str]:
    problems: List[str] = []
    for key in ("version", "schedule", "attrib", "energy_pj"):
        if expected.get(key) != actual.get(key):
            problems.append(
                f"{name}: {key} drifted: expected {expected.get(key)!r}"
                f" != actual {actual.get(key)!r}")
    old, new = expected.get("trace", []), actual.get("trace", [])
    if old != new:
        if len(old) != len(new):
            problems.append(f"{name}: trace length {len(old)} -> "
                            f"{len(new)}")
        for i, (a, b) in enumerate(zip(old, new)):
            if a != b:
                problems.append(
                    f"{name}: trace[{i}] expected {a!r} != actual {b!r}")
                break
    return problems


def compare_golden(directory: Optional[Path] = None,
                   names: Optional[List[str]] = None) -> List[str]:
    """Regenerate every workload and diff against its snapshot.

    Returns a list of human-readable mismatch descriptions; empty means
    every snapshot matches exactly.
    """
    directory = Path(directory) if directory else default_golden_dir()
    problems: List[str] = []
    for name in names or WORKLOADS:
        path = golden_path(directory, name)
        if not path.exists():
            problems.append(
                f"{name}: missing snapshot {path}; run "
                f"`psyncpim check --update-golden` and commit the result")
            continue
        expected = json.loads(path.read_text())
        actual = build_record(name)
        problems.extend(_diff_records(name, expected, actual))
    return problems


def update_golden(directory: Optional[Path] = None,
                  names: Optional[List[str]] = None) -> List[Path]:
    """Rewrite the snapshots; returns the paths written."""
    directory = Path(directory) if directory else default_golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names or WORKLOADS:
        path = golden_path(directory, name)
        record = build_record(name)
        path.write_text(json.dumps(record, indent=1, sort_keys=True)
                        + "\n")
        written.append(path)
    return written


def golden_traces() -> Dict[str, List[TraceEntry]]:
    """The live traces of every workload (for protocol checking)."""
    return {name: builder()[0] for name, builder in WORKLOADS.items()}
