"""Independent JEDEC protocol checker for DRAM command schedules.

This module re-derives the HBM2 legality rules straight from
:class:`~repro.dram.timing.TimingParams` and *checks* timed command
streams against them. It deliberately shares no code with the scheduler
(:mod:`repro.dram.channel` / :mod:`repro.dram.bank`): the scheduler
*constructs* the earliest legal cycle for each command, while the checker
only *verifies* a given ``(cycle, command)`` stream, holding its own
per-bank event history and evaluating every constraint as an independent
inequality. A bug in the scheduler's window bookkeeping therefore shows
up as a reported violation instead of silently mispricing the paper's
figures.

Checked rules (JEDEC HBM2 plus the model's documented extensions):

* bank-state legality — ACT only on a precharged bank, column commands
  only against the matching open row, PRE only on an open bank, REF only
  with every bank precharged;
* per-bank windows — tRCD, tRP, tRAS, tRC, tRTP, write recovery
  (``CWL + BL/2 + tWR``), burst occupancy, per-bank read<->write gaps;
* channel windows — tCCD_S/tCCD_L (broadcast columns always pay the long
  spacing), tRRD_S/tRRD_L, the four-activation window over single-bank
  ACTs (broadcast ACTs are excluded: all-bank mode staggers activation
  internally under a relaxed power budget, spaced by tRC per bank),
  data-bus read<->write turnaround, refresh blackout (tRFC);
* bus legality — one row command and one column command per cycle, mode
  switches occupying both buses for ``mode_switch_cycles``;
* stream legality — in-order non-decreasing issue cycles, per-command
  ``min_gap`` honoured, and the Fig. 1 SB/AB/AB-PIM mode protocol
  (broadcast data commands require a mode-switch history that can reach
  an all-bank mode).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..dram.commands import Command, CommandType, TraceEntry, as_run
from ..dram.timing import TimingParams
from ..errors import CheckError

_BANKS = 16
_BANKS_PER_GROUP = 4
_LONG_AGO = -(10 ** 9)

#: Fig. 1 mode-transition graph, re-stated here (not imported from the
#: engine) so the checker stays self-contained.
_MODE_EDGES = {
    "SB": ("AB",),
    "AB": ("AB_PIM", "SB"),
    "AB_PIM": ("SB", "AB"),
}
_PIM_MODES = frozenset({"AB", "AB_PIM"})


@dataclass(frozen=True)
class Violation:
    """One protocol rule broken by one command of the stream."""

    index: int            # position in the channel's command stream
    cycle: int            # cycle the command was issued at
    kind: CommandType
    channel: int
    bank: Optional[int]   # None for all-bank / channel-wide commands
    constraint: str       # e.g. "tFAW", "tRCD", "bank-state"
    earliest_legal: int   # first cycle the command would have been legal
    detail: str

    def __str__(self) -> str:
        where = ("all banks" if self.bank is None
                 else f"bank {self.bank}")
        return (f"cmd[{self.index}] {self.kind.name} ch{self.channel} "
                f"{where} @ {self.cycle}: {self.constraint} — "
                f"{self.detail} (earliest legal {self.earliest_legal})")


class _BankHistory:
    """Last-event timestamps of one bank (the checker's own bookkeeping)."""

    __slots__ = ("open_row", "t_act", "t_pre", "t_rd", "t_wr", "t_ref_end")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.t_act = _LONG_AGO
        self.t_pre = _LONG_AGO
        self.t_rd = _LONG_AGO
        self.t_wr = _LONG_AGO
        self.t_ref_end = 0


class ProtocolChecker:
    """Replays a timed command stream and records every rule violation.

    ``observe(cycle, command)`` consumes the stream in issue order;
    violations accumulate on :attr:`violations` (or raise
    :class:`~repro.errors.CheckError` immediately when ``strict``).
    """

    def __init__(self, timing: TimingParams, channel: int = 0,
                 strict: bool = False) -> None:
        self.timing = timing
        self.channel = channel
        self.strict = strict
        self.violations: List[Violation] = []
        self.commands_seen = 0
        t = timing
        # Derived constants, recomputed from the raw config fields so the
        # checker does not rely on the TimingParams convenience properties.
        self._trc = t.tras + t.trp
        self._rd_to_wr = t.cl + t.burst_cycles + 2 - t.cwl
        self._wr_to_rd = t.cwl + t.burst_cycles + t.twtr
        self._wr_to_pre = t.cwl + t.burst_cycles + t.twr
        self._banks = [_BankHistory() for _ in range(_BANKS)]
        self._row_bus_free = 0
        self._col_bus_free = 0
        self._prev_cycle = 0
        # column history: (cycle, group or None, was_write, all_bank)
        self._last_col: Optional[Tuple[int, Optional[int], bool, bool]] = None
        # ACT history: last ACT of any flavour, plus the four most recent
        # single-bank ACT cycles for the tFAW window.
        self._last_act: Optional[Tuple[int, Optional[int]]] = None
        self._faw: Deque[int] = deque(maxlen=4)
        # Fig. 1 mode protocol, tracked as the set of modes the stream
        # could be in (MODE commands do not name their target mode).
        self._modes = {"SB"}

    # ------------------------------------------------------------------
    def observe(self, cycle: int, command: Command) -> List[Violation]:
        """Check one command issued at *cycle*; return its violations."""
        index = self.commands_seen
        self.commands_seen += 1
        found: List[Violation] = []

        def flag(constraint: str, earliest: int, detail: str,
                 bank: Optional[int] = None) -> None:
            found.append(Violation(
                index=index, cycle=cycle, kind=command.kind,
                channel=self.channel, bank=bank, constraint=constraint,
                earliest_legal=earliest, detail=detail))

        if cycle < self._prev_cycle:
            flag("in-order", self._prev_cycle,
                 f"issued at {cycle} before predecessor "
                 f"at {self._prev_cycle}")
        need = self._prev_cycle + command.min_gap
        if command.min_gap and cycle < need:
            flag("min_gap", need,
                 f"min_gap {command.min_gap} after {self._prev_cycle}")

        kind = command.kind
        if kind is CommandType.MODE:
            self._check_mode(cycle, flag)
        elif kind is CommandType.REF:
            self._check_refresh(cycle, flag)
        elif kind in (CommandType.ACT, CommandType.ACT_AB):
            self._check_act(cycle, command, flag)
        elif kind in (CommandType.PRE, CommandType.PRE_AB):
            self._check_pre(cycle, command, flag)
        else:
            self._check_column(cycle, command, flag)

        self._prev_cycle = max(self._prev_cycle, cycle)
        self.violations.extend(found)
        if self.strict and found:
            raise CheckError(str(found[0]))
        return found

    # ------------------------------------------------------------------
    # per-kind rules
    # ------------------------------------------------------------------
    def _check_act(self, cycle: int, command: Command, flag) -> None:
        t = self.timing
        all_bank = command.kind is CommandType.ACT_AB
        if all_bank:
            self._require_mode(cycle, flag)
            targets = list(range(_BANKS))
        else:
            targets = [self._bank_index(command, flag)]
        if cycle < self._row_bus_free:
            flag("row-bus", self._row_bus_free, "row command bus busy")
        for b in targets:
            h = self._banks[b]
            bank = None if all_bank else b
            if h.open_row is not None:
                flag("bank-state", cycle,
                     f"ACT while row {h.open_row} is open", bank)
            if cycle < h.t_pre + t.trp:
                flag("tRP", h.t_pre + t.trp,
                     f"PRE at {h.t_pre}", bank)
            if cycle < h.t_act + self._trc:
                flag("tRC", h.t_act + self._trc,
                     f"previous ACT at {h.t_act}", bank)
            if cycle < h.t_ref_end:
                flag("tRFC", h.t_ref_end, "bank in refresh blackout", bank)
        if not all_bank:
            b = targets[0]
            if self._last_act is not None:
                last_cycle, last_group = self._last_act
                same = last_group == b // _BANKS_PER_GROUP
                spacing = t.trrd_l if same else t.trrd_s
                name = "tRRD_L" if same else "tRRD_S"
                if cycle < last_cycle + spacing:
                    flag(name, last_cycle + spacing,
                         f"ACT at {last_cycle} "
                         f"({'same' if same else 'other'} group)", b)
            if len(self._faw) == 4 and cycle < self._faw[0] + t.tfaw:
                flag("tFAW", self._faw[0] + t.tfaw,
                     f"fifth ACT inside the window opened at "
                     f"{self._faw[0]}", b)
        # effects
        for b in targets:
            h = self._banks[b]
            h.open_row = command.row
            h.t_act = cycle
        if all_bank:
            self._last_act = (cycle, None)
        else:
            self._last_act = (cycle, targets[0] // _BANKS_PER_GROUP)
            self._faw.append(cycle)
        self._row_bus_free = cycle + 1

    def _check_pre(self, cycle: int, command: Command, flag) -> None:
        t = self.timing
        all_bank = command.kind is CommandType.PRE_AB
        if all_bank:
            self._require_mode(cycle, flag)
            targets = [b for b in range(_BANKS)
                       if self._banks[b].open_row is not None]
            if not targets:
                flag("bank-state", cycle, "PRE_AB with no open banks")
        else:
            targets = [self._bank_index(command, flag)]
        if cycle < self._row_bus_free:
            flag("row-bus", self._row_bus_free, "row command bus busy")
        for b in targets:
            h = self._banks[b]
            bank = None if all_bank else b
            if h.open_row is None:
                flag("bank-state", cycle, "PRE on a precharged bank", bank)
                continue
            if cycle < h.t_act + t.tras:
                flag("tRAS", h.t_act + t.tras,
                     f"ACT at {h.t_act}", bank)
            if cycle < h.t_rd + t.trtp:
                flag("tRTP", h.t_rd + t.trtp, f"RD at {h.t_rd}", bank)
            if cycle < h.t_wr + self._wr_to_pre:
                flag("tWR", h.t_wr + self._wr_to_pre,
                     f"WR at {h.t_wr}", bank)
            if cycle < h.t_ref_end:
                flag("tRFC", h.t_ref_end, "bank in refresh blackout", bank)
        for b in targets:
            h = self._banks[b]
            h.open_row = None
            h.t_pre = cycle
        self._row_bus_free = cycle + 1

    def _check_column(self, cycle: int, command: Command, flag) -> None:
        t = self.timing
        kind = command.kind
        write = kind.is_write
        all_bank = kind.is_all_bank
        if all_bank:
            self._require_mode(cycle, flag)
            targets = list(range(_BANKS))
            group: Optional[int] = None
        else:
            targets = [self._bank_index(command, flag)]
            group = targets[0] // _BANKS_PER_GROUP
        if cycle < self._col_bus_free:
            flag("col-bus", self._col_bus_free, "column command bus busy")
        for b in targets:
            h = self._banks[b]
            bank = None if all_bank else b
            if h.open_row is None:
                flag("bank-state", cycle,
                     "column command to a precharged bank", bank)
                continue
            if h.open_row != command.row:
                flag("bank-state", cycle,
                     f"column targets row {command.row} but row "
                     f"{h.open_row} is open", bank)
            if cycle < h.t_act + t.trcd:
                flag("tRCD", h.t_act + t.trcd,
                     f"ACT at {h.t_act}", bank)
            same_dir = h.t_wr if write else h.t_rd
            if cycle < same_dir + t.burst_cycles:
                flag("burst", same_dir + t.burst_cycles,
                     f"previous burst at {same_dir}", bank)
            if write and cycle < h.t_rd + self._rd_to_wr:
                flag("rd->wr", h.t_rd + self._rd_to_wr,
                     f"RD at {h.t_rd}", bank)
            if not write and cycle < h.t_wr + self._wr_to_rd:
                flag("wr->rd", h.t_wr + self._wr_to_rd,
                     f"WR at {h.t_wr}", bank)
            if cycle < h.t_ref_end:
                flag("tRFC", h.t_ref_end, "bank in refresh blackout", bank)
        if self._last_col is not None:
            lc_cycle, lc_group, lc_write, lc_all = self._last_col
            same_group = (group is None or lc_all or lc_group == group)
            spacing = t.tccd_l if same_group else t.tccd_s
            name = "tCCD_L" if same_group else "tCCD_S"
            if cycle < lc_cycle + spacing:
                flag(name, lc_cycle + spacing,
                     f"column at {lc_cycle}")
            if write != lc_write:
                gap = self._rd_to_wr if write else self._wr_to_rd
                if cycle < lc_cycle + gap:
                    flag("turnaround", lc_cycle + gap,
                         f"{'RD' if write else 'WR'} at {lc_cycle}")
        for b in targets:
            h = self._banks[b]
            if write:
                h.t_wr = cycle
            else:
                h.t_rd = cycle
        self._last_col = (cycle, group, write, all_bank)
        self._col_bus_free = cycle + 1

    def _check_refresh(self, cycle: int, flag) -> None:
        t = self.timing
        if cycle < self._row_bus_free:
            flag("row-bus", self._row_bus_free, "row command bus busy")
        for b, h in enumerate(self._banks):
            if h.open_row is not None:
                flag("bank-state", cycle,
                     f"REF while row {h.open_row} is open", b)
            if cycle < h.t_pre + t.trp:
                flag("tRP", h.t_pre + t.trp, f"PRE at {h.t_pre}", b)
            if cycle < h.t_act + self._trc:
                flag("tRC", h.t_act + self._trc,
                     f"ACT at {h.t_act}", b)
            if cycle < h.t_ref_end:
                flag("tRFC", h.t_ref_end,
                     "previous refresh still in progress", b)
        for h in self._banks:
            h.t_ref_end = cycle + t.trfc
        self._row_bus_free = cycle + 1

    def _check_mode(self, cycle: int, flag) -> None:
        if cycle < self._row_bus_free or cycle < self._col_bus_free:
            flag("mode-bus", max(self._row_bus_free, self._col_bus_free),
                 "mode switch needs both command buses idle")
        done = cycle + self.timing.mode_switch_cycles
        self._row_bus_free = done
        self._col_bus_free = done
        self._modes = {m for mode in self._modes
                       for m in _MODE_EDGES[mode]}

    def _require_mode(self, cycle: int, flag) -> None:
        """Broadcast commands need a mode history reaching AB/AB-PIM."""
        reachable = self._modes & _PIM_MODES
        if not reachable:
            flag("mode-protocol", cycle,
                 "all-bank command while the Fig. 1 protocol is still "
                 "in SB mode (no mode switch issued)")
        else:
            self._modes = set(reachable)

    # ------------------------------------------------------------------
    def _bank_index(self, command: Command, flag) -> int:
        if not 0 <= command.bank < _BANKS:
            flag("bank-range", 0,
                 f"bank {command.bank} outside the channel", command.bank)
            return 0
        return command.bank


def check_timed(events: Iterable[Tuple[int, Command]],
                timing: TimingParams = TimingParams(),
                channel: int = 0,
                strict: bool = False) -> List[Violation]:
    """Check an explicit ``(cycle, command)`` stream for one channel."""
    checker = ProtocolChecker(timing, channel=channel, strict=strict)
    for cycle, command in events:
        checker.observe(cycle, command)
    return checker.violations


def check_trace(trace: Iterable[TraceEntry],
                timing: TimingParams = TimingParams(),
                enable_refresh: bool = True) -> List[Violation]:
    """Schedule *trace* and check the resulting timed stream.

    Convenience wrapper used by the CLI and tests: runs the real
    :class:`~repro.dram.MemoryController` with ``validate_protocol`` on
    and returns the violations the independent checker collected
    (including scheduler-inserted refreshes and run expansions).
    """
    from ..dram.controller import MemoryController
    controller = MemoryController(timing=timing,
                                  enable_refresh=enable_refresh,
                                  validate_protocol=True)
    result = controller.run(trace)
    return result.violations


def summarize(violations: List[Violation], limit: int = 10) -> str:
    """Human-readable digest of a violation list."""
    if not violations:
        return "protocol check passed: no violations"
    by_constraint: Dict[str, int] = {}
    for v in violations:
        by_constraint[v.constraint] = by_constraint.get(v.constraint, 0) + 1
    lines = [f"{len(violations)} protocol violation(s): "
             + ", ".join(f"{name} x{n}"
                         for name, n in sorted(by_constraint.items()))]
    lines += [f"  {v}" for v in violations[:limit]]
    if len(violations) > limit:
        lines.append(f"  ... and {len(violations) - limit} more")
    return "\n".join(lines)
