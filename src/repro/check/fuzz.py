"""Seeded ISA program fuzzer: three engines, one architectural state.

Generates random well-formed PIM kernels (both instruction formats,
predication, CEXIT loops, ``-1``-padded COO streams, queue back-pressure)
plus random inputs, runs them through the scalar engine, the vectorized
lane engine and the independent :mod:`repro.check.reference` interpreter,
and asserts bitwise-identical register files, queues, bank memory and
per-bank exit state. Every case is a pure function of its seed, so a
failure prints a one-line reproducer; :func:`shrink_case` then reduces a
failing case block-by-block before reporting.

Determinism is load-bearing: :class:`FuzzCase` fields plus the seed fully
determine the program, the beat stream and all input data. Shrinking
works by rebuilding a smaller case and re-checking the predicate.

:func:`fuzz_batch` is the throughput tier: it stacks whole seed blocks —
one template leader plus data-only variants (:func:`vary_case`) — into a
single :class:`~repro.pim.BatchEngine` launch and checks every job
bitwise against a solo lane run, while the leader still goes through the
full three-oracle :func:`run_case`. Verdicts are identical to the
per-seed path; only the wall-clock changes.
"""

from __future__ import annotations

import dataclasses
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import ProcessingUnitConfig, element_size, resolve_batch
from ..errors import CheckError, ReproError
from ..isa import (BInstruction, BinaryOp, CInstruction, Identity, Opcode,
                   Operand, Program, SetMode)
from ..isa.opcodes import ValueFormat
from ..pim import AllBankEngine, BatchEngine, Beat, LaneEngine, Mode
from .reference import ReferenceEngine

_PRECISIONS = ("fp64", "fp32", "fp16", "int8")
_FORMATS = {"fp64": ValueFormat.FP64, "fp32": ValueFormat.FP32,
            "fp16": ValueFormat.FP16, "int8": ValueFormat.INT8}
_COMPUTE_OPS = (BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.MIN,
                BinaryOp.MAX, BinaryOp.LAND, BinaryOp.LOR, BinaryOp.FIRST,
                BinaryOp.SECOND)
_REDUCE_OPS = (BinaryOp.ADD, BinaryOp.MUL, BinaryOp.MIN, BinaryOp.MAX,
               BinaryOp.LOR, BinaryOp.LAND)
_DRF = (Operand.DRF0, Operand.DRF1, Operand.DRF2)
_SPVQ = (Operand.SPVQ0, Operand.SPVQ1, Operand.SPVQ2)

#: Hard cap on the statically-expanded beat stream (runaway guard).
MAX_BEATS = 5000


@dataclass(frozen=True)
class BlockSpec:
    """One kernel block. Fields unused by a kind keep their defaults."""

    kind: str                      # dense | spmv | gather | merge | spmm
    op: BinaryOp = BinaryOp.ADD
    reduce_op: BinaryOp = BinaryOp.ADD
    queue: int = 0                 # primary (load-target) SpVQ
    out_queue: int = 2             # compute-result SpVQ
    drain: str = "spfw"            # spfw | store | reduce | scatter
    sspv: bool = False             # interpose SSpV between load and drain
    union: bool = False            # SpVSpV set mode (merge blocks)
    ident: Identity = Identity.ZERO
    merge_width: int = 2           # SpVSpV executions per iteration
    repeats: int = 1               # dense-block JUMP count (1 = no loop)
    int_values: bool = False       # small-integer inputs (ties, zeros)


@dataclass(frozen=True)
class FuzzCase:
    """A fully seeded differential test case.

    ``data_seed`` decouples input data from program structure: ``None``
    (the default, and what :func:`generate_case` produces) derives the
    data from ``seed`` as always, while an explicit value re-seeds only
    the input data. Cases that differ solely in ``data_seed`` build to an
    identical program and beat stream — the template — which is what lets
    :func:`fuzz_batch` stack whole seed blocks into one
    :class:`~repro.pim.BatchEngine` launch.
    """

    seed: int
    precision: str
    num_banks: int
    stream_len: int
    blocks: Tuple[BlockSpec, ...]
    data_seed: Optional[int] = None
    #: Name of the generator that produced this case — keeps reproducer
    #: strings exact for cases from the SpMM template universe
    #: (:func:`generate_spmm_case`), whose seeds deliberately do NOT
    #: collide with the classic :func:`generate_case` stream.
    generator: str = "generate_case"

    def reproducer(self) -> str:
        make = (f"{self.generator}({self.seed})"
                if self.data_seed is None
                else f"vary_case({self.generator}({self.seed}), "
                     f"{self.data_seed})")
        return (f"repro.check.fuzz.run_case({make}) "
                f"[precision={self.precision} banks={self.num_banks} "
                f"stream={self.stream_len} "
                f"blocks={[b.kind for b in self.blocks]}]")


def vary_case(case: FuzzCase, data_seed: Optional[int]) -> FuzzCase:
    """Same program/beat template as *case*, fresh input data.

    The returned case draws its dense arrays and COO streams from
    *data_seed* instead of ``case.seed`` but keeps every structural field,
    so it expands to the same instructions and beats and may run in one
    batch with *case*. ``data_seed=None`` restores the original data.
    """
    return dataclasses.replace(
        case, data_seed=None if data_seed is None else int(data_seed))


@dataclass
class BuiltCase:
    """The concrete artifacts a case expands to."""

    program: Program
    beats: List[Beat]
    dense_data: Dict[str, List[np.ndarray]]
    triple_data: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]


def generate_case(seed: int) -> FuzzCase:
    """Draw a random case; every field is derived from *seed* alone."""
    rng = np.random.default_rng(seed)
    precision = _PRECISIONS[rng.integers(len(_PRECISIONS))]
    num_banks = int(rng.integers(1, 5))
    stream_len = int(rng.integers(6, 41))
    kinds = ("dense", "spmv", "gather", "merge")
    blocks = []
    for _ in range(int(rng.integers(1, 4))):
        kind = kinds[rng.integers(len(kinds))]
        blocks.append(BlockSpec(
            kind=kind,
            op=_COMPUTE_OPS[rng.integers(len(_COMPUTE_OPS))],
            reduce_op=_REDUCE_OPS[rng.integers(len(_REDUCE_OPS))],
            queue=int(rng.integers(0, 2)),
            out_queue=2,
            drain=("spfw", "store", "reduce",
                   "scatter")[rng.integers(4)],
            sspv=bool(rng.integers(2)),
            union=bool(rng.integers(2)),
            ident=(Identity.ZERO, Identity.ONE)[rng.integers(2)],
            merge_width=int(rng.integers(2, 4)),
            repeats=int(rng.integers(1, 4)),
            int_values=bool(rng.integers(2)),
        ))
    return FuzzCase(seed=seed, precision=precision, num_banks=num_banks,
                    stream_len=stream_len, blocks=tuple(blocks))


def generate_spmm_case(seed: int) -> FuzzCase:
    """Draw a random multi-rhs SpMM-template case from *seed*.

    The template mirrors the SpMM workload shape: one ``"spmm"`` block —
    a resident matrix stream re-read once per right-hand-side column,
    each column doing a scalar-vector compute and a dense-block
    scatter-accumulate into its own output, all under one CEXIT-guarded
    loop — optionally followed by a light dense/gather block so the
    template interacts with leftover queue state. The RNG stream and the
    ``"spmm"`` block kind are both unreachable from
    :func:`generate_case`, so this universe never perturbs the classic
    seed corpus (golden CI seed ranges stay bitwise stable).
    """
    rng = np.random.default_rng((int(seed) << 1) ^ 0x5B11)
    precision = _PRECISIONS[rng.integers(len(_PRECISIONS))]
    num_banks = int(rng.integers(1, 5))
    stream_len = int(rng.integers(6, 33))
    blocks = [BlockSpec(
        kind="spmm",
        op=_COMPUTE_OPS[rng.integers(len(_COMPUTE_OPS))],
        reduce_op=_REDUCE_OPS[rng.integers(len(_REDUCE_OPS))],
        queue=int(rng.integers(0, 2)),
        out_queue=2,
        ident=(Identity.ZERO, Identity.ONE)[rng.integers(2)],
        merge_width=int(rng.integers(2, 5)),     # rhs columns
        int_values=bool(rng.integers(2)),
    )]
    if rng.integers(2):
        blocks.append(BlockSpec(
            kind=("dense", "gather")[rng.integers(2)],
            op=_COMPUTE_OPS[rng.integers(len(_COMPUTE_OPS))],
            reduce_op=_REDUCE_OPS[rng.integers(len(_REDUCE_OPS))],
            queue=int(rng.integers(0, 2)),
            out_queue=2,
            sspv=bool(rng.integers(2)),
            ident=(Identity.ZERO, Identity.ONE)[rng.integers(2)],
            repeats=int(rng.integers(1, 3)),
            int_values=bool(rng.integers(2)),
        ))
    return FuzzCase(seed=seed, precision=precision, num_banks=num_banks,
                    stream_len=stream_len, blocks=tuple(blocks),
                    generator="generate_spmm_case")


# ----------------------------------------------------------------------
# case expansion
# ----------------------------------------------------------------------
def _values(rng, n: int, ints: bool) -> np.ndarray:
    if ints:
        return rng.integers(-2, 3, n).astype(np.float64)
    return rng.standard_normal(n)


def _coo(rng, length: int, ints: bool):
    """One bank's padded COO stream: sorted rows, ``-1`` tail padding."""
    valid = int(rng.integers(max(1, length // 2), length + 1))
    rows = np.sort(rng.integers(0, length, valid)).astype(np.int64)
    cols = rng.integers(0, length, valid).astype(np.int64)
    vals = _values(rng, valid, ints)
    pad = length - valid
    rows = np.concatenate([rows, np.full(pad, -1, dtype=np.int64)])
    cols = np.concatenate([cols, np.full(pad, -1, dtype=np.int64)])
    vals = np.concatenate([vals, np.zeros(pad)])
    return rows, cols, vals


class _Slot:
    """Beat recipe for one bank-access instruction slot."""

    __slots__ = ("region", "wrap", "write", "counter")

    def __init__(self, region: str, wrap: int = 0, write: bool = False,
                 counter: bool = False) -> None:
        self.region = region
        self.wrap = wrap        # >0: visit counter modulo wrap
        self.counter = counter  # raw visit counter (gather must exhaust)
        self.write = write


def build_case(case: FuzzCase,
               config: ProcessingUnitConfig = ProcessingUnitConfig(),
               ) -> BuiltCase:
    """Expand *case* into a program, a beat stream and input data."""
    data_seed = case.seed if case.data_seed is None else case.data_seed
    rng = np.random.default_rng(data_seed + 0x5EED)
    value_bytes = element_size(case.precision)
    lanes = config.datapath_bytes // value_bytes
    capacity = min(config.subqueue_bytes // value_bytes,
                   config.subqueue_bytes // 2)
    gs = min(lanes, capacity)
    fmt = _FORMATS[case.precision]
    length = case.stream_len
    windows = max(1, -(-length // lanes))
    groups = -(-length // gs)

    instructions: List = []
    slots: List[Optional[_Slot]] = []
    dense_data: Dict[str, List[np.ndarray]] = {}
    triple_data: Dict[str, List[Tuple]] = {}

    def emit(ins, slot: Optional[_Slot] = None) -> None:
        instructions.append(ins)
        slots.append(slot)

    def add_dense(name: str, maker: Callable[[], np.ndarray]) -> None:
        dense_data[name] = [maker() for _ in range(case.num_banks)]

    def add_triples(name: str, maker: Callable[[], Tuple]) -> None:
        triple_data[name] = [maker() for _ in range(case.num_banks)]

    for bi, block in enumerate(case.blocks):
        # spmm blocks emit 3 instructions per rhs column plus the loop
        # pair; every classic kind fits in 9 (the historical budget).
        need = (3 * block.merge_width + 2 if block.kind == "spmm"
                else 9)
        if len(instructions) + need > 32:
            break
        start = len(instructions)
        ints = block.int_values
        if block.kind == "dense":
            src, dst = _DRF[0], _DRF[1]
            name_in, name_out = f"d{bi}_in", f"d{bi}_out"
            add_dense(name_in, lambda: _values(rng, length, ints))
            add_dense(name_out, lambda: np.zeros(length))
            emit(BInstruction(Opcode.DMOV, dst=src, src0=Operand.BANK,
                              value=fmt),
                 _Slot(name_in, wrap=windows))
            if block.sspv:   # reuse the flag: scalar (.) vector flavour
                emit(BInstruction(Opcode.SDV, dst=dst, src0=Operand.SRF,
                                  src1=Operand.BANK, value=fmt,
                                  binary=block.op),
                     _Slot(name_in, wrap=windows))
            else:
                emit(BInstruction(Opcode.DVDV, dst=dst, src0=src,
                                  src1=Operand.BANK, value=fmt,
                                  binary=block.op),
                     _Slot(name_in, wrap=windows))
            emit(BInstruction(Opcode.REDUCE, dst=Operand.SRF, src0=dst,
                              value=fmt, binary=block.reduce_op))
            emit(BInstruction(Opcode.DMOV, dst=Operand.BANK, src0=dst,
                              value=fmt),
                 _Slot(name_out, wrap=windows, write=True))
            if block.repeats > 1:
                emit(CInstruction(Opcode.JUMP, imm0=start, order=bi,
                                  imm1=block.repeats))
        elif block.kind == "spmv":
            q = block.queue
            d = block.out_queue if block.sspv else q
            stream = f"c{bi}"
            add_triples(stream, lambda: _coo(rng, length, ints))
            emit(BInstruction(Opcode.SPMOV, dst=_SPVQ[q],
                              src0=Operand.BANK, value=fmt),
                 _Slot(stream))
            if block.sspv:
                for _ in range(2):
                    emit(BInstruction(Opcode.SSPV, dst=_SPVQ[d],
                                      src0=Operand.SRF, src1=_SPVQ[q],
                                      value=fmt, binary=block.op))
            if block.drain == "reduce":
                emit(BInstruction(Opcode.REDUCE, dst=Operand.SRF,
                                  src0=_SPVQ[d], value=fmt,
                                  binary=block.reduce_op))
            elif block.drain == "scatter":
                acc = f"d{bi}_acc"
                add_dense(acc, lambda: _values(rng, length, ints))
                emit(BInstruction(Opcode.GTHSCT, dst=Operand.BANK,
                                  src0=_SPVQ[d], value=fmt,
                                  idnt=block.ident),
                     _Slot(acc, write=True))
            else:
                out = f"t{bi}_out"
                # sized for the stream plus any queue leftovers earlier
                # blocks may have abandoned in the drained SpVQ
                room = length + 3 * capacity
                add_triples(out, lambda: (
                    np.full(room, -1, dtype=np.int64),
                    np.full(room, -1, dtype=np.int64),
                    np.zeros(room)))
                opcode = (Opcode.SPFW if block.drain == "spfw"
                          else Opcode.SPMOV)
                emit(BInstruction(opcode, dst=Operand.BANK, src0=_SPVQ[d],
                                  value=fmt),
                     _Slot(out, write=True))
            emit(CInstruction(Opcode.CEXIT,
                              imm1=(1 << q) | (1 << d)))
            count = groups + 4 + (-(-length // 2) if block.sspv else 0)
            emit(CInstruction(Opcode.JUMP, imm0=start, order=bi,
                              imm1=min(count, 1000)))
        elif block.kind == "gather":
            q = block.queue
            name_in, name_out = f"g{bi}_in", f"g{bi}_out"

            def sparse_dense() -> np.ndarray:
                data = _values(rng, length, ints)
                data[rng.random(length) < 0.4] = block.ident.value_as_float
                return data

            add_dense(name_in, sparse_dense)
            add_dense(name_out, lambda: np.zeros(length))
            emit(BInstruction(Opcode.GTHSCT, dst=_SPVQ[q],
                              src0=Operand.BANK, value=fmt,
                              idnt=block.ident),
                 _Slot(name_in, counter=True))
            emit(BInstruction(Opcode.GTHSCT, dst=Operand.BANK,
                              src0=_SPVQ[q], value=fmt,
                              idnt=block.ident),
                 _Slot(name_out, write=True))
            emit(CInstruction(Opcode.CEXIT, imm1=1 << q))
            emit(CInstruction(Opcode.JUMP, imm0=start, order=bi,
                              imm1=groups + 3))
        elif block.kind == "merge":
            name_a, name_b, out = f"mA{bi}", f"mB{bi}", f"m{bi}_out"
            add_triples(name_a, lambda: _coo(rng, length, ints))
            add_triples(name_b, lambda: _coo(rng, length, ints))
            room = 2 * length + 3 * capacity
            add_triples(out, lambda: (
                np.full(room, -1, dtype=np.int64),
                np.full(room, -1, dtype=np.int64),
                np.zeros(room)))
            emit(BInstruction(Opcode.SPMOV, dst=_SPVQ[0],
                              src0=Operand.BANK, value=fmt),
                 _Slot(name_a))
            emit(BInstruction(Opcode.SPMOV, dst=_SPVQ[1],
                              src0=Operand.BANK, value=fmt),
                 _Slot(name_b))
            for _ in range(block.merge_width):
                emit(BInstruction(
                    Opcode.SPVSPV, dst=_SPVQ[2], src0=_SPVQ[0],
                    src1=_SPVQ[1], value=fmt, binary=block.op,
                    set_mode=(SetMode.UNION if block.union
                              else SetMode.INTERSECTION),
                    idnt=block.ident))
            emit(BInstruction(Opcode.SPFW, dst=Operand.BANK,
                              src0=_SPVQ[2], value=fmt),
                 _Slot(out, write=True))
            emit(CInstruction(Opcode.CEXIT, imm1=0b111))
            count = groups + -(-2 * length // block.merge_width) + 6
            emit(CInstruction(Opcode.JUMP, imm0=start, order=bi,
                              imm1=min(count, 1000)))
        elif block.kind == "spmm":
            # Multi-rhs SpMM template: one matrix COO stream, re-read
            # per right-hand-side column (``merge_width`` doubles as the
            # rhs width); each column multiplies the stream by a scalar
            # (SRF stands in for its staged x value) and scatter-
            # accumulates into its own dense output block.
            q, d = block.queue, block.out_queue
            width = block.merge_width
            mats = [_coo(rng, length, ints)
                    for _ in range(case.num_banks)]
            for j in range(width):
                triple_data[f"s{bi}_mat{j}"] = [
                    (rows.copy(), cols.copy(), vals.copy())
                    for rows, cols, vals in mats]
            for j in range(width):
                acc = f"s{bi}_acc{j}"
                add_dense(acc, lambda: _values(rng, length, ints))
                emit(BInstruction(Opcode.SPMOV, dst=_SPVQ[q],
                                  src0=Operand.BANK, value=fmt),
                     _Slot(f"s{bi}_mat{j}"))
                emit(BInstruction(Opcode.SSPV, dst=_SPVQ[d],
                                  src0=Operand.SRF, src1=_SPVQ[q],
                                  value=fmt, binary=block.op))
                emit(BInstruction(Opcode.GTHSCT, dst=Operand.BANK,
                                  src0=_SPVQ[d], value=fmt,
                                  idnt=block.ident),
                     _Slot(acc, write=True))
            emit(CInstruction(Opcode.CEXIT,
                              imm1=(1 << q) | (1 << d)))
            count = width * (groups + 4)
            emit(CInstruction(Opcode.JUMP, imm0=start, order=bi,
                              imm1=min(count, 1000)))
        else:
            raise CheckError(f"unknown block kind {block.kind!r}")

    program = Program(instructions, name=f"fuzz-{case.seed}")
    beats = _static_beats(program, slots)
    return BuiltCase(program=program, beats=beats,
                     dense_data=dense_data, triple_data=triple_data)


def _static_beats(program: Program,
                  slots: Sequence[Optional[_Slot]]) -> List[Beat]:
    """Expand the never-exiting control path into its beat stream.

    CEXIT is treated as not taken (the maximal stream: a bank that never
    satisfies its exit condition consumes exactly these transactions, and
    banks that exit early simply stop consuming). JUMP counters are
    static, so the walk terminates.
    """
    beats: List[Beat] = []
    counters: Dict[int, int] = {}
    visits: Dict[int, int] = {}
    pc = 0
    while pc < len(program) and len(beats) < MAX_BEATS:
        ins = program[pc]
        if isinstance(ins, CInstruction):
            if ins.opcode is Opcode.JUMP:
                taken = counters.get(ins.order, 0) + 1
                if taken < ins.imm1:
                    counters[ins.order] = taken
                    pc = ins.imm0
                    continue
                counters[ins.order] = 0
            elif ins.opcode is Opcode.EXIT:
                break
            pc += 1
            continue
        slot = slots[pc]
        if slot is not None:
            n = visits.get(pc, 0)
            visits[pc] = n + 1
            if slot.wrap:
                index = n % slot.wrap
            elif slot.counter:
                index = n
            else:
                index = 0
            beats.append(Beat(region=slot.region, index=index,
                              write=slot.write))
        pc += 1
    if len(beats) >= MAX_BEATS:
        raise CheckError(
            f"case expanded past {MAX_BEATS} beats; generator bug")
    return beats


# ----------------------------------------------------------------------
# the three oracles
# ----------------------------------------------------------------------
def _drive_production(engine, built: BuiltCase) -> int:
    for name, per_bank in built.dense_data.items():
        engine.host_write_dense(name, per_bank)
    for name, per_bank in built.triple_data.items():
        engine.host_write_triples(name, per_bank)
    engine.switch_mode(Mode.AB)
    engine.load_program(built.program)
    engine.switch_mode(Mode.AB_PIM)
    return engine.run(built.beats)


def _drive_reference(engine: ReferenceEngine, built: BuiltCase) -> int:
    for name, per_bank in built.dense_data.items():
        engine.write_dense(name, per_bank)
    for name, per_bank in built.triple_data.items():
        engine.write_triples(name, per_bank)
    engine.load_program(built.program)
    return engine.run(built.beats)


def _pack(value: float) -> bytes:
    """Bitwise float identity (NaN- and signed-zero-exact)."""
    return struct.pack("<d", float(value))


def _arr(a: np.ndarray) -> tuple:
    a = np.ascontiguousarray(a)
    return (a.dtype.str, a.shape, a.tobytes())


def _snapshot_production(engine, built: BuiltCase) -> dict:
    """Architectural state of a scalar or lane engine, as plain bytes."""
    is_lane = isinstance(engine, LaneEngine)
    banks = {}
    for b in range(len(engine.banks)):
        unit = engine.units[b]
        if is_lane:
            drf = [_arr(engine.dense[i, b])
                   for i in range(engine.dense.shape[0])]
            queues = [[(r, c, _pack(v))
                       for r, c, v in engine.queues[qi].snapshot(b)]
                      for qi in range(len(engine.queues))]
        else:
            drf = [_arr(reg.data) for reg in unit.registers.dense]
            queues = [[(r, c, _pack(v)) for r, c, v in queue._items]
                      for queue in unit.registers.queues]
        regions = {}
        bank = engine.banks[b]
        for name in built.dense_data:
            regions[name] = _arr(bank.dense(name).data)
        for name in built.triple_data:
            region = bank.triples(name)
            regions[name] = (_arr(region.rows), _arr(region.cols),
                             _arr(region.vals))
        banks[b] = {
            "exited": bool(unit.exited),
            "exhausted_mask": int(unit.exhausted_mask),
            "load_targets_mask": int(unit.load_targets_mask),
            "srf": _pack(unit.registers.scalar),
            "drf": drf,
            "queues": queues,
            "regions": regions,
        }
    return banks


def _snapshot_reference(engine: ReferenceEngine,
                        built: BuiltCase) -> dict:
    banks = {}
    for b, bank in enumerate(engine.banks):
        regions = {}
        for name in built.dense_data:
            regions[name] = _arr(bank.dense[name])
        for name in built.triple_data:
            rows, cols, vals = bank.coo[name]
            regions[name] = (_arr(rows), _arr(cols), _arr(vals))
        banks[b] = {
            "exited": bool(bank.exited),
            "exhausted_mask": int(bank.exhausted_mask),
            "load_targets_mask": int(bank.load_targets_mask),
            "srf": _pack(bank.srf),
            "drf": [_arr(r) for r in bank.drf],
            "queues": [[(r, c, _pack(v)) for r, c, v in q]
                       for q in bank.queues],
            "regions": regions,
        }
    return banks


def _first_diff(a, b, path="state") -> Optional[str]:
    """Locate the first structural difference between two snapshots."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        if a.keys() != b.keys():
            return f"{path}: keys {sorted(a)} != {sorted(b)}"
        for k in a:
            diff = _first_diff(a[k], b[k], f"{path}.{k}")
            if diff:
                return diff
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = _first_diff(x, y, f"{path}[{i}]")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


_STAT_FIELDS = ("beats", "mode_switches", "programs_loaded",
                "kernel_launches", "instructions", "alu_ops",
                "predicated_beats")


def run_case(case: FuzzCase,
             config: ProcessingUnitConfig = ProcessingUnitConfig(),
             ) -> BuiltCase:
    """Run *case* through all three engines; raise CheckError on mismatch.

    Scalar vs lane is compared in full (architectural state plus every
    stats counter); the reference engine is compared on architectural
    state only — it has no notion of beat accounting by design.
    """
    built = build_case(case, config)
    scalar = AllBankEngine(case.num_banks, config, case.precision)
    lane = LaneEngine(case.num_banks, config, case.precision)
    ref = ReferenceEngine(case.num_banks, config, case.precision)
    consumed = {
        "scalar": _drive_production(scalar, built),
        "lane": _drive_production(lane, built),
        "reference": _drive_reference(ref, built),
    }
    if len(set(consumed.values())) != 1:
        raise CheckError(
            f"beat consumption diverged: {consumed}; "
            f"reproduce: {case.reproducer()}")
    snap_scalar = _snapshot_production(scalar, built)
    snap_lane = _snapshot_production(lane, built)
    snap_ref = _snapshot_reference(ref, built)
    diff = _first_diff(snap_scalar, snap_lane, "scalar-vs-lane")
    if diff is None:
        diff = _first_diff(snap_scalar, snap_ref, "scalar-vs-reference")
    if diff is None:
        for name in _STAT_FIELDS:
            a = getattr(scalar.stats, name)
            b = getattr(lane.stats, name)
            if a != b:
                diff = f"stats.{name}: scalar {a} != lane {b}"
                break
    if diff is not None:
        raise CheckError(f"{diff}; reproduce: {case.reproducer()}")
    return built


# ----------------------------------------------------------------------
# shrinking and batch driving
# ----------------------------------------------------------------------
def shrink_case(case: FuzzCase,
                failed: Callable[[FuzzCase], bool]) -> FuzzCase:
    """Greedy structural shrink: fewer blocks, shorter streams, fewer
    banks — keeping only reductions for which *failed* still holds."""
    changed = True
    while changed:
        changed = False
        for i in range(len(case.blocks)):
            if len(case.blocks) <= 1:
                break
            candidate = dataclasses.replace(
                case, blocks=case.blocks[:i] + case.blocks[i + 1:])
            if failed(candidate):
                case = candidate
                changed = True
                break
        if not changed and case.stream_len > 6:
            candidate = dataclasses.replace(
                case, stream_len=max(6, case.stream_len // 2))
            if failed(candidate):
                case = candidate
                changed = True
        if not changed and case.num_banks > 1:
            candidate = dataclasses.replace(
                case, num_banks=case.num_banks - 1)
            if failed(candidate):
                case = candidate
                changed = True
    return case


def _case_fails(case: FuzzCase) -> bool:
    try:
        run_case(case)
    except CheckError:
        return True
    return False


def fuzz_range(start: int, count: int,
               shrink: bool = True) -> List[Tuple[int, str]]:
    """Run seeds ``[start, start+count)``; return (seed, message) failures.

    Each failure is shrunk (when *shrink*) before being reported, and the
    reported message always carries the original reproducer seed.
    """
    failures: List[Tuple[int, str]] = []
    for seed in range(start, start + count):
        case = generate_case(seed)
        try:
            run_case(case)
        except CheckError as exc:
            message = str(exc)
            if shrink:
                small = shrink_case(case, _case_fails)
                if small != case:
                    message += f"; shrunk: {small.reproducer()}"
            failures.append((seed, message))
    return failures


# ----------------------------------------------------------------------
# batched fuzzing (jobs x banks execution of whole seed blocks)
# ----------------------------------------------------------------------
#: Seeds per batch group in ``fuzz_batch`` (one BatchEngine launch each).
FUZZ_BATCH_GROUP = 8


def template_key(case: FuzzCase, built: BuiltCase) -> tuple:
    """Hashable template identity: equal keys may share one batch.

    Two cases batch together exactly when they agree on precision, bank
    count, the expanded instruction tuple and the expanded beat stream —
    input data is free to differ per job.
    """
    return (case.precision, case.num_banks,
            built.program.instructions, tuple(built.beats))


def run_single(case: FuzzCase,
               config: ProcessingUnitConfig = ProcessingUnitConfig(),
               engine: str = "lane",
               built: Optional[BuiltCase] = None):
    """Run *case* alone on one production engine; return (snapshot, engine).

    The snapshot has the :func:`_snapshot_production` structure, making it
    directly comparable (via :func:`_first_diff`) with per-job batch
    snapshots from :func:`run_batch_group`.
    """
    if built is None:
        built = build_case(case, config)
    cls = LaneEngine if engine == "lane" else AllBankEngine
    eng = cls(case.num_banks, config=config, precision=case.precision)
    _drive_production(eng, built)
    return _snapshot_production(eng, built), eng


def _snapshot_batch_job(engine: BatchEngine, built: BuiltCase,
                        job: int) -> dict:
    """One job's architectural state, shaped like a per-job snapshot."""
    num_banks = engine.num_banks
    units = engine.job_units(job)
    views = engine.job_banks(job)
    banks = {}
    for b in range(num_banks):
        lane = job * num_banks + b
        drf = [_arr(engine.dense[i, lane])
               for i in range(engine.dense.shape[0])]
        queues = [[(r, c, _pack(v))
                   for r, c, v in engine.queues[qi].snapshot(lane)]
                  for qi in range(len(engine.queues))]
        regions = {}
        for name in built.dense_data:
            regions[name] = _arr(views[b].dense(name).data)
        for name in built.triple_data:
            region = views[b].triples(name)
            regions[name] = (_arr(region.rows), _arr(region.cols),
                             _arr(region.vals))
        banks[b] = {
            "exited": bool(units[b].exited),
            "exhausted_mask": int(units[b].exhausted_mask),
            "load_targets_mask": int(units[b].load_targets_mask),
            "srf": _pack(units[b].registers.scalar),
            "drf": drf,
            "queues": queues,
            "regions": regions,
        }
    return banks


def run_batch_group(cases: Sequence[FuzzCase],
                    config: ProcessingUnitConfig = ProcessingUnitConfig(),
                    builts: Optional[Sequence[BuiltCase]] = None):
    """Execute same-template *cases* as one jobs x banks batch launch.

    Returns ``(snapshots, engine)`` where ``snapshots[j]`` is job *j*'s
    architectural state in the per-job snapshot structure. Raises
    :class:`CheckError` when the cases do not share one template.
    """
    if not cases:
        raise CheckError("empty batch group")
    if builts is None:
        builts = [build_case(case, config) for case in cases]
    key = template_key(cases[0], builts[0])
    for case, built in zip(cases[1:], builts[1:]):
        if template_key(case, built) != key:
            raise CheckError(
                f"mixed templates in one batch group: {case.reproducer()} "
                f"does not match {cases[0].reproducer()}")
    engine = BatchEngine(len(cases), cases[0].num_banks, config=config,
                         precision=cases[0].precision)
    for name in builts[0].dense_data:
        engine.host_write_dense_jobs(
            name, [built.dense_data[name] for built in builts])
    for name in builts[0].triple_data:
        engine.host_write_triples_jobs(
            name, [built.triple_data[name] for built in builts])
    engine.switch_mode(Mode.AB)
    engine.load_program(builts[0].program)
    engine.switch_mode(Mode.AB_PIM)
    engine.run(builts[0].beats)
    snapshots = [_snapshot_batch_job(engine, builts[j], j)
                 for j in range(len(cases))]
    return snapshots, engine


def _batch_case_fails(case: FuzzCase) -> bool:
    """Shrink predicate: does the batched run still diverge from lane?"""
    try:
        built = build_case(case)
        snapshots, _ = run_batch_group([case], builts=[built])
        lane_snap, _ = run_single(case, built=built)
    except ReproError:
        return True
    return _first_diff(lane_snap, snapshots[0]) is not None


def fuzz_batch(seeds: Sequence[int], shrink: bool = True,
               group_size: Optional[int] = None,
               batch: Optional[str] = None,
               config: ProcessingUnitConfig = ProcessingUnitConfig(),
               generator: Callable[[int], FuzzCase] = generate_case,
               ) -> List[Tuple[int, str]]:
    """Batched differential fuzzing; returns (seed, message) failures.

    *seeds* are chunked into blocks of *group_size*. The first seed of a
    block is the template leader: its case goes through the full
    three-oracle :func:`run_case` (the scalar engine stays the sole
    ground truth), and every other seed re-runs the leader's template
    with its own input data (:func:`vary_case`). The whole block then
    executes as ONE :class:`~repro.pim.BatchEngine` launch, and each
    job's final architectural state must be bitwise-identical to a solo
    :class:`~repro.pim.LaneEngine` run of the same case — any divergence
    is reported under the responsible seed and shrunk to a one-line
    reproducer exactly like :func:`fuzz_range` failures.

    ``batch`` follows :func:`repro.config.resolve_batch`
    (``PSYNCPIM_BATCH``); in ``"off"`` mode the default group size drops
    to 1, which degenerates to the per-seed :func:`fuzz_range` protocol
    over the same seed list — bitwise-identical verdicts, no batching.

    *generator* selects the case universe: the classic
    :func:`generate_case` (the default) or the SpMM-template
    :func:`generate_spmm_case` — the two draw from disjoint RNG streams,
    so the same seed range may safely cover both without correlation.
    """
    seeds = [int(seed) for seed in seeds]
    mode = resolve_batch(batch)
    if group_size is None:
        group_size = FUZZ_BATCH_GROUP if mode == "jobs" else 1
    group_size = max(1, int(group_size))
    failures: List[Tuple[int, str]] = []
    groups = 0
    for at in range(0, len(seeds), group_size):
        block = seeds[at:at + group_size]
        leader = generator(block[0])
        cases = [leader] + [vary_case(leader, seed) for seed in block[1:]]
        groups += 1
        try:
            run_case(leader, config)
        except CheckError as exc:
            message = str(exc)
            if shrink:
                small = shrink_case(leader, _case_fails)
                if small != leader:
                    message += f"; shrunk: {small.reproducer()}"
            failures.append((block[0], message))
        if len(cases) == 1:
            continue
        builts = [build_case(case, config) for case in cases]
        try:
            snapshots, _ = run_batch_group(cases, config, builts)
        except ReproError as exc:
            failures.append((
                block[0],
                f"batch execution failed: {exc}; reproduce: "
                f"run_batch_group over {leader.reproducer()}"))
            continue
        for seed, case, built, snap in zip(block, cases, builts,
                                           snapshots):
            lane_snap, _ = run_single(case, config, built=built)
            diff = _first_diff(lane_snap, snap, "lane-vs-batch")
            if diff is None:
                continue
            message = f"{diff}; reproduce: {case.reproducer()}"
            if shrink:
                small = shrink_case(case, _batch_case_fails)
                if small != case:
                    message += f"; shrunk: {small.reproducer()}"
            failures.append((seed, message))
    if obs.enabled():
        obs.add_counter("check.fuzz_seeds", len(seeds))
        obs.add_counter("check.fuzz_groups", groups)
        obs.add_counter("check.fuzz_failures", len(failures))
    return failures
