"""Conformance and fuzzing subsystem: the repo's independent oracles.

Three pillars, each checking the model from outside the code paths that
produce results (DESIGN.md, "three-oracle strategy"):

* :mod:`repro.check.protocol` — an independent JEDEC protocol checker
  replaying timed command streams against the HBM2 rules, re-derived
  from :class:`~repro.dram.TimingParams` alone;
* :mod:`repro.check.fuzz` — a seeded ISA program fuzzer running random
  well-formed kernels through the scalar engine, the lane engine and a
  pure-numpy semantic reference (:mod:`repro.check.reference`),
  asserting bitwise-equal architectural state;
* :mod:`repro.check.golden` — golden-trace regression snapshots of
  canonical workloads (full command traces, cycle counts, energy),
  compared exactly in CI.
"""

from .fuzz import (FuzzCase, build_case, fuzz_batch, fuzz_range,
                   generate_case, generate_spmm_case, run_batch_group,
                   run_case, run_single, shrink_case, vary_case)
from .golden import (build_record, compare_golden, default_golden_dir,
                     golden_traces, update_golden)
from .protocol import (ProtocolChecker, Violation, check_timed,
                       check_trace, summarize)
from .reference import ReferenceEngine

__all__ = [
    "FuzzCase",
    "ProtocolChecker",
    "ReferenceEngine",
    "Violation",
    "build_case",
    "build_record",
    "check_timed",
    "check_trace",
    "compare_golden",
    "default_golden_dir",
    "fuzz_batch",
    "fuzz_range",
    "generate_case",
    "generate_spmm_case",
    "golden_traces",
    "run_batch_group",
    "run_case",
    "run_single",
    "shrink_case",
    "summarize",
    "update_golden",
]
