"""DRAM command vocabulary for single-bank and all-bank operation.

The host controls pSyncPIM with ordinary JEDEC commands. In single-bank (SB)
mode they address one bank; in all-bank (AB / AB-PIM) modes one command is
broadcast to every bank of the pseudo-channel (paper §II-B, Fig. 1). Mode
transitions are themselves command sequences and appear in the trace as
``MODE`` entries so their bus occupancy and latency are accounted for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Tuple, Union


class CommandType(enum.Enum):
    """Kinds of entries a command trace may contain."""

    ACT = "act"        # activate a row in one bank
    PRE = "pre"        # precharge one bank
    RD = "rd"          # column read from one bank
    WR = "wr"          # column write to one bank
    ACT_AB = "act_ab"  # broadcast activate: same row in all banks
    PRE_AB = "pre_ab"  # broadcast precharge of all banks
    RD_AB = "rd_ab"    # broadcast column read (drives PIM execution)
    WR_AB = "wr_ab"    # broadcast column write (drives PIM execution)
    REF = "ref"        # refresh (all banks of the channel)
    MODE = "mode"      # SB<->AB<->AB-PIM mode-switch sequence

    @property
    def is_row(self) -> bool:
        """True for commands issued on the row-command bus."""
        return self in (CommandType.ACT, CommandType.PRE, CommandType.ACT_AB,
                        CommandType.PRE_AB, CommandType.REF)

    @property
    def is_column(self) -> bool:
        """True for commands issued on the column-command bus."""
        return self in (CommandType.RD, CommandType.WR, CommandType.RD_AB,
                        CommandType.WR_AB)

    @property
    def is_all_bank(self) -> bool:
        """True when one command drives every bank of the channel."""
        return self in (CommandType.ACT_AB, CommandType.PRE_AB,
                        CommandType.RD_AB, CommandType.WR_AB,
                        CommandType.REF)

    @property
    def is_read(self) -> bool:
        return self in (CommandType.RD, CommandType.RD_AB)

    @property
    def is_write(self) -> bool:
        return self in (CommandType.WR, CommandType.WR_AB)


@dataclass(frozen=True)
class Command:
    """One trace entry targeting a pseudo-channel.

    ``bank`` identifies the bank within the channel (0..15) for single-bank
    commands and is ignored for all-bank commands. ``min_gap`` lets the PIM
    engine encode compute throttling: the command may not issue earlier than
    ``min_gap`` cycles after the previous command of the trace (used when the
    processing units need more than one column interval to digest a beat).
    """

    kind: CommandType
    channel: int = 0
    bank: int = 0
    row: int = 0
    col: int = 0
    min_gap: int = 0
    #: Optional annotation for debugging / breakdown reporting.
    tag: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.channel < 0 or self.bank < 0 or self.row < 0 or self.col < 0:
            raise ValueError("command coordinates must be non-negative")
        if self.min_gap < 0:
            raise ValueError("min_gap must be non-negative")


@dataclass(frozen=True)
class CommandRun:
    """``count`` consecutive issues of one identical command.

    Trace generators emit runs for the homogeneous stretches that dominate
    kernel traces (N beats of RD_AB/WR_AB against the same open row at
    tCCD spacing); the scheduler prices a run in closed form instead of
    walking it command by command, with cycle counts and per-type counters
    identical to the expanded trace. A run is semantically exactly its
    expansion — every consumer that cannot batch can iterate
    :func:`expand_trace`.

    The `Command`-like read-only properties let trace inspection code
    (``{c.kind for c in trace}``) treat a run like its command.
    """

    command: Command
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a command run needs at least one command")

    @property
    def kind(self) -> CommandType:
        return self.command.kind

    @property
    def channel(self) -> int:
        return self.command.channel

    @property
    def bank(self) -> int:
        return self.command.bank

    @property
    def row(self) -> int:
        return self.command.row

    @property
    def col(self) -> int:
        return self.command.col

    @property
    def min_gap(self) -> int:
        return self.command.min_gap

    @property
    def tag(self) -> Optional[str]:
        return self.command.tag


#: A command trace entry: a single command or a homogeneous run.
TraceEntry = Union[Command, CommandRun]


def as_run(entry: TraceEntry) -> Tuple[Command, int]:
    """Normalise a trace entry to ``(command, count)``."""
    if isinstance(entry, CommandRun):
        return entry.command, entry.count
    return entry, 1


def expand_trace(trace: Iterable[TraceEntry]) -> Iterator[Command]:
    """Flatten runs into their per-command expansion (reference path)."""
    for entry in trace:
        command, count = as_run(entry)
        for _ in range(count):
            yield command
