"""HBM2 DRAM timing, scheduling and energy substrate.

Command-granularity reimplementation of the DRAMsim3 behaviours pSyncPIM
relies on: JEDEC timing enforcement, single-bank vs all-bank command issue,
the one-row/one-column-command-per-cycle channel buses, refresh, and a
DRAMPower-style energy model.
"""

from .timing import HBM2_1GHZ, TimingParams
from .commands import (Command, CommandRun, CommandType, TraceEntry,
                       as_run, expand_trace)
from .address import AddressMapper, DecodedAddress
from .bank import BankState
from .channel import (BANKS_PER_CHANNEL, BANKS_PER_GROUP,
                      GROUPS_PER_CHANNEL, ChannelScheduler)
from .controller import MemoryController, ScheduleResult, count_commands
from .power import EnergyModel, EnergyParams, EnergyReport

__all__ = [
    "HBM2_1GHZ", "TimingParams", "Command", "CommandRun", "CommandType",
    "TraceEntry", "as_run", "expand_trace",
    "AddressMapper", "DecodedAddress", "BankState",
    "BANKS_PER_CHANNEL", "BANKS_PER_GROUP", "GROUPS_PER_CHANNEL",
    "ChannelScheduler", "MemoryController", "ScheduleResult",
    "count_commands", "EnergyModel", "EnergyParams", "EnergyReport",
]
