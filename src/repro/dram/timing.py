"""HBM2 timing parameters and derived inter-command constraints.

The values follow DRAMsim3's HBM2 configuration at 1 GHz (tCK = 1 ns), which
is what the paper's modified simulator uses (Table VII: "HBM2 default
timing"). All parameters are expressed in DRAM clock cycles.

Only the constraints that shape pSyncPIM behaviour are modelled — activation
and precharge windows, column-to-column spacing within and across bank
groups, the four-activation window, bus turnaround, and refresh. They are the
same constraints DRAMsim3 enforces at command granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TimingParams:
    """JEDEC-style timing constraints, in DRAM clock cycles."""

    tck_ns: float = 1.0     # 1 GHz DRAM clock (Table VII)
    cl: int = 14            # CAS latency (RD to data)
    cwl: int = 4            # CAS write latency
    trcd: int = 14          # ACT to RD/WR
    trp: int = 14           # PRE to ACT
    tras: int = 33          # ACT to PRE
    tccd_s: int = 2         # column-to-column, different bank group
    tccd_l: int = 4         # column-to-column, same bank group
    trrd_s: int = 4         # ACT-to-ACT, different bank group
    trrd_l: int = 6         # ACT-to-ACT, same bank group
    tfaw: int = 16          # four-activation window
    twr: int = 16           # write recovery (WR data end to PRE)
    twtr: int = 8           # write-to-read turnaround
    trtp: int = 5           # read-to-precharge
    trefi: int = 3900       # refresh interval
    trfc: int = 260         # refresh cycle time
    burst_cycles: int = 2   # data burst occupancy per column command
    #: Cycles charged for each SB<->AB<->AB-PIM mode transition. The paper
    #: describes each switch as "a sequence of memory commands"; HBM-PIM uses
    #: a short fixed command sequence, modelled as one bus-occupying window.
    mode_switch_cycles: int = 32
    #: Cycles to program one PIM instruction into the control registers
    #: (one write transaction per instruction word group).
    program_cycles_per_instruction: int = 2

    @property
    def trc(self) -> int:
        """Row cycle time: minimum spacing of ACTs to the same bank."""
        return self.tras + self.trp

    @property
    def read_to_write(self) -> int:
        """Column bus turnaround from a RD to a WR (RL + BL/2 + 2 - WL)."""
        return self.cl + self.burst_cycles + 2 - self.cwl

    @property
    def write_to_read(self) -> int:
        """Column bus turnaround from a WR to a RD."""
        return self.cwl + self.burst_cycles + self.twtr

    @property
    def write_recovery(self) -> int:
        """WR command to PRE of the same bank."""
        return self.cwl + self.burst_cycles + self.twr

    def validate(self) -> "TimingParams":
        """Sanity-check physically required orderings."""
        if min(self.cl, self.trcd, self.trp, self.tras) <= 0:
            raise ConfigError("core timing parameters must be positive")
        if self.tccd_l < self.tccd_s:
            raise ConfigError("same-bank-group CCD cannot be shorter than "
                              "cross-group CCD")
        if self.trrd_l < self.trrd_s:
            raise ConfigError("same-bank-group RRD cannot be shorter than "
                              "cross-group RRD")
        if self.tfaw < self.trrd_s:
            raise ConfigError("tFAW shorter than a single ACT spacing")
        if self.trfc >= self.trefi:
            raise ConfigError("refresh would consume the whole interval")
        return self


#: The configuration used throughout the paper's evaluation.
HBM2_1GHZ = TimingParams()
