"""Pseudo-channel command scheduler.

One :class:`ChannelScheduler` owns the 16 banks of an HBM2 pseudo-channel
(4 groups x 4 banks, Table VII) and computes, for each command, the earliest
cycle at which it can legally issue given

* per-bank windows (tRCD/tRAS/tRP/tRC/tWR/tRTP — :mod:`repro.dram.bank`),
* bank-group constraints (tCCD_L / tRRD_L vs tCCD_S / tRRD_S),
* the four-activation window (tFAW),
* the shared command buses — one row command and one column command per
  cycle, the constraint the paper's Figure 3 argument rests on ("DRAM chips
  can handle only two memory commands per clock per channel"), and
* read/write turnaround on the shared data bus.

All-bank commands (AB / AB-PIM modes) are single bus slots whose constraints
are the maximum over all banks and which update every bank's state. The
four-activation window is not applied to broadcast activates: HBM-PIM's
all-bank mode staggers the internal activation under a relaxed power budget,
which the model reflects by spacing consecutive broadcast ACTs by tRC via the
ordinary per-bank windows.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import TimingError
from .bank import BankState
from .commands import Command, CommandType
from .timing import TimingParams

BANKS_PER_GROUP = 4
GROUPS_PER_CHANNEL = 4
BANKS_PER_CHANNEL = BANKS_PER_GROUP * GROUPS_PER_CHANNEL


class ChannelScheduler:
    """In-order command scheduler for one pseudo-channel."""

    def __init__(self, timing: TimingParams,
                 enable_refresh: bool = True,
                 validate_protocol: bool = False,
                 channel: int = 0,
                 banks_per_channel: int = BANKS_PER_CHANNEL) -> None:
        self.timing = timing.validate()
        self.enable_refresh = enable_refresh
        self._channel = channel
        if banks_per_channel <= 0:
            raise TimingError("need at least one bank per channel")
        self.banks_per_channel = banks_per_channel
        if validate_protocol:
            # Deferred import: repro.check depends on repro.dram types.
            from ..check.protocol import ProtocolChecker
            self._checker = ProtocolChecker(timing, channel=channel)
        else:
            self._checker = None
        self.banks: List[BankState] = [BankState(timing)
                                       for _ in range(banks_per_channel)]
        self._row_bus_free = 0
        self._col_bus_free = 0
        # Column-command history for CCD spacing and bus turnaround.
        self._last_col_cycle = -10 ** 9
        self._last_col_group: Optional[int] = None
        self._last_col_was_write = False
        self._last_col_all_bank = False
        # ACT history for tFAW (single-bank ACTs only) and RRD spacing.
        self._act_times: Deque[int] = deque(maxlen=4)
        self._last_act_cycle = -10 ** 9
        self._last_act_group: Optional[int] = None
        self._next_refresh = timing.trefi
        self._now = 0
        self.counts: Dict[CommandType, int] = {k: 0 for k in CommandType}
        self.refreshes_performed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Cycle at which the most recent command issued."""
        return self._now

    @property
    def protocol_violations(self) -> list:
        """Violations found by the opt-in independent protocol checker."""
        return [] if self._checker is None else self._checker.violations

    def _group_of(self, bank: int) -> int:
        return bank // BANKS_PER_GROUP

    # ------------------------------------------------------------------
    def issue(self, command: Command, earliest: int = 0) -> int:
        """Issue *command* no earlier than *earliest*; return its cycle.

        Commands must arrive in program order (in-order controller, as the
        paper requires for PIM: out-of-order issue is disabled).
        """
        earliest = max(earliest, self._now + command.min_gap)
        if self.enable_refresh:
            self._maybe_refresh(earliest)
        kind = command.kind
        if kind is CommandType.MODE:
            cycle = self._issue_mode(earliest)
        elif kind is CommandType.REF:
            cycle = self._issue_refresh(earliest)
        elif kind.is_row:
            cycle = self._issue_row(command, earliest)
        elif kind.is_column:
            cycle = self._issue_column(command, earliest)
        else:  # pragma: no cover - enum is exhaustive
            raise TimingError(f"unhandled command kind {kind}")
        self.counts[kind] += 1
        self._now = cycle
        if self._checker is not None:
            self._checker.observe(cycle, command)
        return cycle

    def issue_run(self, command: Command, count: int) -> "tuple[int, int]":
        """Issue *count* identical commands; return (first, last) cycles.

        Homogeneous column runs — the beat streams that dominate kernel
        traces — are priced in closed form: after the first command issues
        normally, every successor of the same kind against the same open
        row is constrained only by the column bus (1), the burst
        (``burst_cycles``), same-bank/broadcast CCD (``tccd_l``) and the
        command's own ``min_gap``, all measured from its predecessor, so
        the run issues at a fixed spacing. Refresh cannot interleave
        (the target row stays open, and the scheduler only inserts
        refresh while all banks are precharged), and every per-bank
        window is a max-accumulation, so applying the final command's
        effects alone reproduces the per-command end state exactly.

        Non-column kinds fall back to per-command issue (run boundaries,
        mode switches and row commands never form homogeneous column
        runs).
        """
        first = last = self.issue(command)
        if count <= 1:
            return first, last
        kind = command.kind
        if not kind.is_column:
            for _ in range(count - 1):
                last = self.issue(command)
            return first, last
        t = self.timing
        spacing = max(command.min_gap, 1, t.burst_cycles, t.tccd_l)
        last = first + (count - 1) * spacing
        write = kind.is_write
        if kind.is_all_bank:
            for b in self.banks:
                (b.apply_write if write else b.apply_read)(last)
        else:
            bank = self._bank(command.bank)
            (bank.apply_write if write else bank.apply_read)(last)
        # Bus/CCD history: the first issue already recorded the kind,
        # group and direction; only the cycle values move.
        self._last_col_cycle = last
        self._col_bus_free = last + 1
        self.counts[kind] += count - 1
        self._now = last
        if self._checker is not None:
            # The checker sees the run's per-command expansion, which
            # independently validates the closed-form spacing itself.
            for i in range(1, count):
                self._checker.observe(first + i * spacing, command)
        return first, last

    # ------------------------------------------------------------------
    # row commands
    # ------------------------------------------------------------------
    def _issue_row(self, command: Command, earliest: int) -> int:
        t = self.timing
        kind = command.kind
        cycle = max(earliest, self._row_bus_free)
        if kind is CommandType.ACT:
            bank = self._bank(command.bank)
            cycle = max(cycle, bank.earliest_act())
            cycle = max(cycle, self._rrd_window(command.bank, cycle))
            cycle = self._faw_window(cycle)
            bank.apply_act(cycle, command.row)
            self._act_times.append(cycle)
            self._last_act_cycle = cycle
            self._last_act_group = self._group_of(command.bank)
        elif kind is CommandType.ACT_AB:
            cycle = max(cycle, *(b.earliest_act() for b in self.banks))
            for b in self.banks:
                b.apply_act(cycle, command.row)
            # Broadcast ACT resets single-bank RRD history; internal
            # staggering is folded into the per-bank tRC spacing.
            self._last_act_cycle = cycle
            self._last_act_group = None
        elif kind is CommandType.PRE:
            bank = self._bank(command.bank)
            cycle = max(cycle, bank.earliest_pre())
            bank.apply_pre(cycle)
        elif kind is CommandType.PRE_AB:
            open_banks = [b for b in self.banks if b.is_open]
            if not open_banks:
                raise TimingError("PRE_AB with no open banks")
            cycle = max(cycle, *(b.earliest_pre() for b in open_banks))
            for b in open_banks:
                b.apply_pre(cycle)
        self._row_bus_free = cycle + 1
        return cycle

    def _rrd_window(self, bank: int, cycle: int) -> int:
        """ACT-to-ACT spacing: tRRD_L within a group, tRRD_S across."""
        if self._last_act_cycle < 0:
            return cycle
        same_group = self._last_act_group == self._group_of(bank)
        spacing = self.timing.trrd_l if same_group else self.timing.trrd_s
        return max(cycle, self._last_act_cycle + spacing)

    def _faw_window(self, cycle: int) -> int:
        """No more than four single-bank ACTs within tFAW."""
        if len(self._act_times) == 4:
            cycle = max(cycle, self._act_times[0] + self.timing.tfaw)
        return cycle

    # ------------------------------------------------------------------
    # column commands
    # ------------------------------------------------------------------
    def _issue_column(self, command: Command, earliest: int) -> int:
        t = self.timing
        kind = command.kind
        write = kind.is_write
        cycle = max(earliest, self._col_bus_free)
        if kind.is_all_bank:
            cycle = max(cycle, *(b.earliest_column(command.row, write)
                                 for b in self.banks))
            group: Optional[int] = None
        else:
            bank = self._bank(command.bank)
            cycle = max(cycle, bank.earliest_column(command.row, write))
            group = self._group_of(command.bank)
        cycle = max(cycle, self._ccd_window(group))
        cycle = max(cycle, self._turnaround(write))
        if kind.is_all_bank:
            for b in self.banks:
                (b.apply_write if write else b.apply_read)(cycle)
        else:
            (bank.apply_write if write else bank.apply_read)(cycle)
        self._last_col_cycle = cycle
        self._last_col_group = group
        self._last_col_was_write = write
        self._last_col_all_bank = kind.is_all_bank
        self._col_bus_free = cycle + 1
        return cycle

    def _ccd_window(self, group: Optional[int]) -> int:
        """Column-to-column spacing; broadcasts always pay tCCD_L."""
        if self._last_col_cycle < 0:
            return 0
        same_group = (group is None or self._last_col_all_bank
                      or self._last_col_group == group)
        spacing = self.timing.tccd_l if same_group else self.timing.tccd_s
        return self._last_col_cycle + spacing

    def _turnaround(self, write: bool) -> int:
        """Data-bus direction switch penalty."""
        if self._last_col_cycle < 0 or write == self._last_col_was_write:
            return 0
        t = self.timing
        gap = t.read_to_write if write else t.write_to_read
        return self._last_col_cycle + gap

    # ------------------------------------------------------------------
    # mode switches and refresh
    # ------------------------------------------------------------------
    def _issue_mode(self, earliest: int) -> int:
        """An SB<->AB<->AB-PIM transition occupies both buses."""
        cycle = max(earliest, self._row_bus_free, self._col_bus_free)
        done = cycle + self.timing.mode_switch_cycles
        self._row_bus_free = done
        self._col_bus_free = done
        return cycle

    def _issue_refresh(self, earliest: int) -> int:
        """All-bank refresh; requires every bank precharged."""
        open_banks = [b for b in self.banks if b.is_open]
        if open_banks:
            raise TimingError("REF issued while banks are open; "
                              "precharge first")
        cycle = max(earliest, self._row_bus_free,
                    *(b.act_ready for b in self.banks))
        done = cycle + self.timing.trfc
        for b in self.banks:
            b.block_until(done)
        self._row_bus_free = cycle + 1
        self.refreshes_performed += 1
        return cycle

    def _maybe_refresh(self, earliest: int) -> None:
        """Insert due refreshes at row boundaries (all banks precharged).

        Real controllers defer refresh while rows are open and catch up at
        the next precharge; the model does the same, so a refresh can slide
        past its nominal tREFI point but is never dropped.
        """
        if any(b.is_open for b in self.banks):
            return
        while self._next_refresh <= max(earliest, self._now):
            self.counts[CommandType.REF] += 1
            self._now = self._issue_refresh(max(self._next_refresh,
                                                self._now))
            if self._checker is not None:
                # Deferred refreshes never appear in the input trace, so
                # the checker observes them here, in issue order.
                self._checker.observe(
                    self._now, Command(CommandType.REF,
                                       channel=self._channel))
            self._next_refresh += self.timing.trefi

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def row_misses(self) -> int:
        """Column accesses that needed a fresh activation (the ACTs)."""
        return (self.counts[CommandType.ACT]
                + self.counts[CommandType.ACT_AB])

    @property
    def row_hits(self) -> int:
        """Column accesses served from an already-open row.

        Every column command legally requires its row open, so each ACT
        buys the first access as the miss and every further column against
        that row is a hit.
        """
        columns = sum(n for k, n in self.counts.items() if k.is_column)
        return max(columns - self.row_misses, 0)

    def stats(self) -> Dict[str, int]:
        """Summary counters of this channel's schedule so far."""
        columns = sum(n for k, n in self.counts.items() if k.is_column)
        return {
            "cycles": self._now,
            "commands": sum(self.counts.values()),
            "column_commands": columns,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "refreshes": self.refreshes_performed,
            "mode_switches": self.counts[CommandType.MODE],
        }

    # ------------------------------------------------------------------
    def _bank(self, index: int) -> BankState:
        if not 0 <= index < self.banks_per_channel:
            raise TimingError(f"bank index {index} outside channel")
        return self.banks[index]
