"""Physical address mapping for the pSyncPIM HBM2 cube.

Table VII specifies the ``rorabgbachco`` interleaving with a 0-bit rank
field: reading the string left to right gives the fields from most- to
least-significant — row (ro), rank (ra, absent), bank group (bg), bank (ba),
channel (ch), column (co). The decoder is generic over the field order so
alternative mappings can be explored in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import HBM2Config
from ..errors import AddressError

#: Two-letter field tokens in mapping strings -> canonical field names.
_FIELD_TOKENS = {
    "ro": "row",
    "ra": "rank",
    "bg": "bankgroup",
    "ba": "bank",
    "ch": "channel",
    "co": "column",
}


def _bits_for(count: int) -> int:
    """Number of address bits needed to index *count* items (0 if 1)."""
    if count <= 0:
        raise AddressError(f"cannot size a field for {count} items")
    return max(0, (count - 1).bit_length())


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address split into DRAM coordinates."""

    channel: int
    bankgroup: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Bank index within the channel (bankgroup-major)."""
        return self.bankgroup * 4 + self.bank  # 4 banks per group (Table VII)


class AddressMapper:
    """Encode/decode physical byte addresses per a mapping string.

    Addresses are byte addresses within one cube; the low
    ``log2(column_bytes)`` bits are the byte offset inside a column and are
    not part of the mapping.
    """

    def __init__(self, config: HBM2Config = HBM2Config()) -> None:
        self._config = config
        self._offset_bits = _bits_for(config.column_bytes)
        sizes = {
            "row": config.num_rows,
            "rank": 1,  # Table VII: rank is 0 bits
            "bankgroup": config.num_bankgroups,
            "bank": config.banks_per_group,
            "channel": config.num_pseudo_channels,
            "column": config.num_columns,
        }
        self._fields = self._parse(config.address_mapping)
        # (name, bits, size) from most to least significant
        self._layout: List[Tuple[str, int, int]] = [
            (name, _bits_for(sizes[name]), sizes[name])
            for name in self._fields]
        self._total_bits = sum(bits for _, bits, _ in self._layout)

    @staticmethod
    def _parse(mapping: str) -> List[str]:
        if len(mapping) % 2:
            raise AddressError(f"mapping string {mapping!r} has odd length")
        fields = []
        for i in range(0, len(mapping), 2):
            token = mapping[i:i + 2]
            if token not in _FIELD_TOKENS:
                raise AddressError(f"unknown mapping token {token!r}")
            name = _FIELD_TOKENS[token]
            if name in fields:
                raise AddressError(f"field {token!r} appears twice")
            fields.append(name)
        missing = set(_FIELD_TOKENS.values()) - set(fields)
        if missing:
            raise AddressError(f"mapping misses fields: {sorted(missing)}")
        return fields

    @property
    def addressable_bytes(self) -> int:
        """Total bytes covered by the mapping (the cube capacity)."""
        return 1 << (self._total_bits + self._offset_bits)

    def decode(self, address: int) -> DecodedAddress:
        """Split a byte *address* into DRAM coordinates."""
        if not 0 <= address < self.addressable_bytes:
            raise AddressError(
                f"address {address:#x} outside cube capacity "
                f"{self.addressable_bytes:#x}")
        bits = address >> self._offset_bits
        values: Dict[str, int] = {}
        shift = self._total_bits
        for name, width, size in self._layout:
            shift -= width
            value = (bits >> shift) & ((1 << width) - 1)
            if value >= size:
                raise AddressError(
                    f"{name} index {value} exceeds size {size} in "
                    f"address {address:#x}")
            values[name] = value
        return DecodedAddress(channel=values["channel"],
                              bankgroup=values["bankgroup"],
                              bank=values["bank"], row=values["row"],
                              column=values["column"])

    def encode(self, channel: int, bankgroup: int, bank: int, row: int,
               column: int, offset: int = 0) -> int:
        """Compose a byte address from DRAM coordinates."""
        values = {"channel": channel, "bankgroup": bankgroup, "bank": bank,
                  "row": row, "column": column, "rank": 0}
        if not 0 <= offset < self._config.column_bytes:
            raise AddressError(f"offset {offset} exceeds column size")
        bits = 0
        for name, width, size in self._layout:
            value = values[name]
            if not 0 <= value < size:
                raise AddressError(f"{name}={value} out of range [0,{size})")
            bits = (bits << width) | value
        return (bits << self._offset_bits) | offset
