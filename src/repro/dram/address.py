"""Physical address mapping for the pSyncPIM HBM2 cube.

Table VII specifies the ``rorabgbachco`` interleaving with a 0-bit rank
field: reading the string left to right gives the fields from most- to
least-significant — row (ro), rank (ra, absent), bank group (bg), bank (ba),
channel (ch), column (co). The decoder is generic over the field order so
alternative mappings can be explored in ablations.

HBM2's channels are *pseudo*-channels: pairs sharing one physical channel's
pins (JESD235B). The default mapping addresses them with one combined
``ch`` field; adding the optional ``pc`` token splits the bits — ``ch``
then indexes the physical channel and ``pc`` the pseudo-channel within it
— so mappings can place the two halves at different positions. Decoded
addresses always expose the combined pseudo-channel index (``channel``,
what planning/sharding consume) alongside the split
``physical_channel`` / ``pseudo_channel`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import HBM2Config
from ..errors import AddressError

#: Two-letter field tokens in mapping strings -> canonical field names.
_FIELD_TOKENS = {
    "ro": "row",
    "ra": "rank",
    "bg": "bankgroup",
    "ba": "bank",
    "ch": "channel",
    "pc": "pseudochannel",
    "co": "column",
}

#: Fields every mapping must carry; ``pc`` is optional (without it the
#: ``ch`` field addresses the combined pseudo-channel index directly).
_REQUIRED_FIELDS = frozenset(
    name for token, name in _FIELD_TOKENS.items() if token != "pc")


def _bits_for(count: int) -> int:
    """Number of address bits needed to index *count* items (0 if 1)."""
    if count <= 0:
        raise AddressError(f"cannot size a field for {count} items")
    return max(0, (count - 1).bit_length())


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address split into DRAM coordinates.

    ``channel`` is the combined pseudo-channel index (what distribution
    and sharding consume); ``physical_channel`` / ``pseudo_channel`` are
    its split per the platform's pseudo-channels-per-channel.
    """

    channel: int
    bankgroup: int
    bank: int
    row: int
    column: int
    physical_channel: int = 0
    pseudo_channel: int = 0

    @property
    def flat_bank(self) -> int:
        """Bank index within the channel (bankgroup-major)."""
        return self.bankgroup * 4 + self.bank  # 4 banks per group (Table VII)


class AddressMapper:
    """Encode/decode physical byte addresses per a mapping string.

    Addresses are byte addresses within one cube; the low
    ``log2(column_bytes)`` bits are the byte offset inside a column and are
    not part of the mapping.
    """

    def __init__(self, config: HBM2Config = HBM2Config()) -> None:
        self._config = config
        self._offset_bits = _bits_for(config.column_bytes)
        self._fields = self._parse(config.address_mapping)
        self._split_channel = "pseudochannel" in self._fields
        self._pcs = config.pseudo_channels_per_channel
        sizes = {
            "row": config.num_rows,
            "rank": 1,  # Table VII: rank is 0 bits
            "bankgroup": config.num_bankgroups,
            "bank": config.banks_per_group,
            # With a "pc" field the "ch" bits index physical channels and
            # "pc" the pseudo-channel within one; otherwise "ch" carries
            # the combined pseudo-channel index (Table VII default).
            "channel": (config.num_physical_channels if self._split_channel
                        else config.num_pseudo_channels),
            "pseudochannel": self._pcs,
            "column": config.num_columns,
        }
        # (name, bits, size) from most to least significant
        self._layout: List[Tuple[str, int, int]] = [
            (name, _bits_for(sizes[name]), sizes[name])
            for name in self._fields]
        self._total_bits = sum(bits for _, bits, _ in self._layout)

    @staticmethod
    def _parse(mapping: str) -> List[str]:
        if len(mapping) % 2:
            raise AddressError(f"mapping string {mapping!r} has odd length")
        fields = []
        for i in range(0, len(mapping), 2):
            token = mapping[i:i + 2]
            if token not in _FIELD_TOKENS:
                raise AddressError(f"unknown mapping token {token!r}")
            name = _FIELD_TOKENS[token]
            if name in fields:
                raise AddressError(f"field {token!r} appears twice")
            fields.append(name)
        missing = _REQUIRED_FIELDS - set(fields)
        if missing:
            raise AddressError(f"mapping misses fields: {sorted(missing)}")
        return fields

    @property
    def addressable_bytes(self) -> int:
        """Total bytes covered by the mapping (the cube capacity)."""
        return 1 << (self._total_bits + self._offset_bits)

    def decode(self, address: int) -> DecodedAddress:
        """Split a byte *address* into DRAM coordinates."""
        if not 0 <= address < self.addressable_bytes:
            raise AddressError(
                f"address {address:#x} outside cube capacity "
                f"{self.addressable_bytes:#x}")
        bits = address >> self._offset_bits
        values: Dict[str, int] = {}
        shift = self._total_bits
        for name, width, size in self._layout:
            shift -= width
            value = (bits >> shift) & ((1 << width) - 1)
            if value >= size:
                raise AddressError(
                    f"{name} index {value} exceeds size {size} in "
                    f"address {address:#x}")
            values[name] = value
        if self._split_channel:
            physical = values["channel"]
            pseudo = values["pseudochannel"]
            combined = physical * self._pcs + pseudo
        else:
            combined = values["channel"]
            physical, pseudo = divmod(combined, self._pcs)
        return DecodedAddress(channel=combined,
                              bankgroup=values["bankgroup"],
                              bank=values["bank"], row=values["row"],
                              column=values["column"],
                              physical_channel=physical,
                              pseudo_channel=pseudo)

    def encode(self, channel: int, bankgroup: int, bank: int, row: int,
               column: int, offset: int = 0) -> int:
        """Compose a byte address from DRAM coordinates.

        *channel* is always the combined pseudo-channel index; with a
        ``pc`` mapping it is decomposed onto the split ``ch``/``pc`` bit
        fields internally.
        """
        values = {"channel": channel, "bankgroup": bankgroup, "bank": bank,
                  "row": row, "column": column, "rank": 0,
                  "pseudochannel": 0}
        if self._split_channel:
            if not 0 <= channel < self._config.num_pseudo_channels:
                raise AddressError(
                    f"channel={channel} out of range "
                    f"[0,{self._config.num_pseudo_channels})")
            values["channel"], values["pseudochannel"] = divmod(
                channel, self._pcs)
        if not 0 <= offset < self._config.column_bytes:
            raise AddressError(f"offset {offset} exceeds column size")
        bits = 0
        for name, width, size in self._layout:
            value = values[name]
            if not 0 <= value < size:
                raise AddressError(f"{name}={value} out of range [0,{size})")
            bits = (bits << width) | value
        return (bits << self._offset_bits) | offset
