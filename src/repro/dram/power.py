"""Energy and power model for pSyncPIM (paper §VII-F).

The paper estimates power from the Samsung HBM-PIM silicon data [24] with
ALU energies from Galal & Horowitz [10], running a modified DRAMsim3 power
model. This module does the equivalent at command granularity: each command
class carries a per-event energy, background power accrues with elapsed
cycles, and PU ALU/register energy accrues per executed operation. In PIM
execution mode the 1024-bit buffer-die I/O is assumed off (paper assumption),
which the model expresses by charging external-I/O energy only for commands
tagged as host traffic.

The constants are in picojoules and are documented with their provenance;
they sit in a dataclass so ablations can replace them wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .commands import CommandType
from .timing import TimingParams


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ) and background power (mW per channel)."""

    #: One row activation + implied precharge restore for one bank.
    #: Scaled from HBM-PIM silicon power data [24]: the all-bank PIM mode
    #: activates with the buffer-die I/O off and a reduced page, landing
    #: well below conventional per-bank activation energy.
    act_pre_pj: float = 220.0
    #: One 32 B internal column read (bank to PU): ~0.6 pJ/bit internal.
    read_internal_pj: float = 95.0
    #: One 32 B internal column write.
    write_internal_pj: float = 120.0
    #: Extra energy when the data additionally crosses the external
    #: interface to the host (~6 pJ/bit for HBM2 I/O + PHY).
    external_io_pj: float = 1350.0
    #: Refresh of all banks of a channel.
    refresh_pj: float = 28000.0
    #: Static + peripheral background power per pseudo-channel, in mW.
    #: HBM2 standby + peripheral power is ~1 W per cube (16 pseudo
    #: channels); this is what makes slow schedules expensive (Fig. 14's
    #: per-bank energy penalty comes mostly from here).
    background_mw_per_channel: float = 60.0
    #: PU ALU energy per FP64-equivalent operation (Galal-Horowitz FPU,
    #: scaled to a 2x nm-class node), including register file access.
    alu_fp64_pj: float = 11.0
    #: Relative ALU energy per op for other precisions.
    alu_scale: Dict[str, float] = field(default_factory=lambda: {
        "int8": 0.03, "int16": 0.06, "int32": 0.12, "int64": 0.45,
        "fp16": 0.10, "fp32": 0.30, "fp64": 1.0})

    def alu_pj(self, precision: str) -> float:
        """ALU energy per scalar operation for *precision* (pJ)."""
        return self.alu_fp64_pj * self.alu_scale[precision]


@dataclass
class EnergyReport:
    """Accumulated energy broken down by source, in picojoules."""

    activation_pj: float = 0.0
    read_pj: float = 0.0
    write_pj: float = 0.0
    external_pj: float = 0.0
    refresh_pj: float = 0.0
    background_pj: float = 0.0
    alu_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (self.activation_pj + self.read_pj + self.write_pj
                + self.external_pj + self.refresh_pj + self.background_pj
                + self.alu_pj)

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    def as_dict(self) -> Dict[str, float]:
        """Per-source breakdown in pJ, keyed by the field names."""
        return {
            "activation_pj": self.activation_pj,
            "read_pj": self.read_pj,
            "write_pj": self.write_pj,
            "external_pj": self.external_pj,
            "refresh_pj": self.refresh_pj,
            "background_pj": self.background_pj,
            "alu_pj": self.alu_pj,
        }

    def average_power_watts(self, elapsed_cycles: int,
                            timing: TimingParams) -> float:
        """Mean power over *elapsed_cycles* of DRAM time."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles * timing.tck_ns * 1e-9
        return self.total_joules / seconds


class EnergyModel:
    """Turn command counts, elapsed time and ALU ops into an EnergyReport."""

    def __init__(self, params: EnergyParams = EnergyParams(),
                 timing: TimingParams = TimingParams()) -> None:
        self.params = params
        self.timing = timing

    def command_energy(self, counts: Dict[CommandType, int],
                       banks_per_channel: int = 16,
                       host_column_traffic: int = 0) -> EnergyReport:
        """Energy of a command mix.

        All-bank commands charge every bank they touch.
        ``host_column_traffic`` is the number of column commands whose data
        crossed the external interface (SB-mode host reads/writes); PIM-mode
        column traffic stays internal.
        """
        p = self.params
        report = EnergyReport()
        acts = (counts.get(CommandType.ACT, 0)
                + counts.get(CommandType.ACT_AB, 0) * banks_per_channel)
        report.activation_pj = acts * p.act_pre_pj
        reads = (counts.get(CommandType.RD, 0)
                 + counts.get(CommandType.RD_AB, 0) * banks_per_channel)
        writes = (counts.get(CommandType.WR, 0)
                  + counts.get(CommandType.WR_AB, 0) * banks_per_channel)
        report.read_pj = reads * p.read_internal_pj
        report.write_pj = writes * p.write_internal_pj
        report.external_pj = host_column_traffic * p.external_io_pj
        report.refresh_pj = counts.get(CommandType.REF, 0) * p.refresh_pj
        return report

    def add_background(self, report: EnergyReport, elapsed_cycles: int,
                       num_channels: int = 1) -> EnergyReport:
        """Accrue background power over the elapsed schedule length."""
        seconds = elapsed_cycles * self.timing.tck_ns * 1e-9
        report.background_pj += (self.params.background_mw_per_channel * 1e-3
                                 * num_channels * seconds * 1e12)
        return report

    def add_alu(self, report: EnergyReport, operations: int,
                precision: str) -> EnergyReport:
        """Accrue PU ALU energy for *operations* scalar ops."""
        report.alu_pj += operations * self.params.alu_pj(precision)
        return report
